//! `bench-report` — one-shot performance snapshot for the perf
//! trajectory (`BENCH_*.json`, written by `scripts/bench.sh`).
//!
//! Usage: `bench-report <out.json>`
//!
//! Four sections (schema documented in docs/BENCHMARKS.md):
//!
//! * `scheduler` — events/s of the calendar-queue [`EventQueue`]
//!   against the retained binary-heap [`ReferenceQueue`] on two
//!   workload shapes: `fig10_shaped` (a storm of short signaling
//!   procedures, the fig10 miniature) and `ext_chaos_shaped` (a
//!   steady-state hold over hours of simulated time, the chaos
//!   timeline). The `speedup` fields back the perf-campaign claim.
//! * `run_until` — the single-pop horizon drain against the two-op
//!   peek-then-pop loop it replaced.
//! * `experiments` — full fig10/ext_chaos runs: wall seconds, DES
//!   events processed (`netsim.des.processed`), end-to-end events/s,
//!   and the p99 `netsim.sim.step` span cost in simulated ms (a
//!   deterministic quantity: byte-stable across reruns).
//! * `mload` — the million-UE sharded sustained-load soak
//!   (`sc_emu::ext_mload`, full config): total UEs, churn events
//!   processed, steady-state events/s (best wall of the serial and
//!   parallel runs), the deterministic p99 sim-step cost, and the
//!   serial-vs-parallel speedup. The two runs are also asserted
//!   byte-identical — the thread-invariance contract, re-checked at
//!   bench time.
//! * `chaosload` — the fault-injected million-UE soak
//!   (`sc_emu::ext_chaosload`, full config): recovery SLOs of the
//!   mid-soak crash/re-crash scenario — sessions dropped, session
//!   survival, per-crash time-to-99%-re-established, and the
//!   signaling-surge amplitude — plus wall times. Serial and parallel
//!   runs are asserted byte-identical, and the two acceptance SLOs
//!   (survival ≥ 98%, surge ≤ 3× steady state) are asserted here so a
//!   perf or policy regression fails the bench run loudly. `sc-bench/3`
//!   adds the surge-per-window summary (breached windows, peak window
//!   time, settle time) from the folded 1 s re-registration windows.
//!
//! Plus `peak_rss_kb` (VmHWM) for the whole process. Wall-clock reads
//! live here and in the shell wrapper only; the report filename's date
//! comes from `scripts/bench.sh`, not from this binary.

use sc_netsim::des::{reference::ReferenceQueue, EventQueue};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    schema: &'static str,
    scheduler: Scheduler,
    run_until: RunUntil,
    experiments: Experiments,
    mload: Mload,
    chaosload: Chaosload,
    peak_rss_kb: u64,
}

#[derive(Serialize)]
struct Chaosload {
    total_ues: usize,
    threads: usize,
    events_measured: u64,
    wall_s_serial: f64,
    wall_s_parallel: f64,
    events_per_s: f64,
    /// Connected sessions dropped by the crash/re-crash scenario.
    sessions_dropped: u64,
    /// Fraction re-established within the deadline (SLO: ≥ 0.98).
    session_survival: f64,
    /// Peak re-registration rate over the crashed footprint vs its
    /// steady-state C1 rate (SLO: ≤ 3.0 with the retry budget on).
    surge_amplitude: f64,
    /// Surge-per-window summary over the 1 s re-registration windows
    /// (`sc-bench/3`): measured windows above the 3× steady-state
    /// budget (0 with the retry budget on), the sim-time of the peak
    /// window, and when the storm settled back to ≤ the steady C1 rate.
    surge_breached_windows: u64,
    surge_peak_t_s: f64,
    surge_settle_t_s: Option<f64>,
    /// Per-crash time to 99% re-established, s (timeline order).
    tt99_s: Vec<Option<f64>>,
    /// p99 session re-establishment latency after a crash, simulated ms
    /// (deterministic; byte-stable across reruns).
    reattach_ms_p99: Option<f64>,
    signaling_reduction: f64,
}

#[derive(Serialize)]
struct Mload {
    total_ues: usize,
    /// Geospatial-cell shards driving the run.
    shards: usize,
    /// Worker threads of the parallel run (`SC_EMU_THREADS` or the
    /// machine's parallelism).
    threads: usize,
    /// Churn events processed over warmup + measured windows.
    events_total: u64,
    events_measured: u64,
    /// Mean concurrent sessions over the measured window.
    mean_active_sessions: f64,
    wall_s_serial: f64,
    wall_s_parallel: f64,
    /// `events_total` over the best wall time — the engine's sustained
    /// processing rate.
    steady_state_events_per_s: f64,
    parallel_speedup: f64,
    /// p99 per-event SpaceCore processing cost, simulated ms
    /// (deterministic; byte-stable across reruns).
    p99_step_cost_ms: Option<f64>,
    signaling_reduction: f64,
}

#[derive(Serialize)]
struct Scheduler {
    fig10_shaped: QueuePair,
    ext_chaos_shaped: QueuePair,
}

#[derive(Serialize)]
struct QueuePair {
    events: u64,
    calendar_events_per_s: f64,
    heap_events_per_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct RunUntil {
    events: u64,
    /// Calendar `run_until`: one `pop_front` per event.
    single_pop_events_per_s: f64,
    /// Same calendar queue driven by an external peek-then-pop loop —
    /// isolates the loop-shape win.
    peek_then_pop_events_per_s: f64,
    /// The replaced implementation: peek-then-pop on the binary heap.
    heap_peek_then_pop_events_per_s: f64,
    /// single_pop vs the replaced heap loop (the end-to-end win).
    speedup: f64,
    /// single_pop vs peek-then-pop on the same queue.
    loop_shape_speedup: f64,
}

#[derive(Serialize)]
struct Experiments {
    fig10: Experiment,
    ext_chaos: Experiment,
}

#[derive(Serialize)]
struct Experiment {
    wall_s: f64,
    des_events: u64,
    events_per_s: f64,
    p99_step_cost_ms: Option<f64>,
}

/// Deterministic xorshift64* stream; the same sequence drives both
/// queues so they see identical workloads.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The two queue flavours under one face so each workload is written
/// once.
trait Des {
    fn schedule(&mut self, t: f64, v: u32);
    fn pop_tv(&mut self) -> Option<(f64, u32)>;
}

impl Des for EventQueue<u32> {
    fn schedule(&mut self, t: f64, v: u32) {
        EventQueue::schedule(self, t, v);
    }

    fn pop_tv(&mut self) -> Option<(f64, u32)> {
        self.pop().map(|e| (e.time, e.event))
    }
}

impl Des for ReferenceQueue<u32> {
    fn schedule(&mut self, t: f64, v: u32) {
        ReferenceQueue::schedule(self, t, v);
    }

    fn pop_tv(&mut self) -> Option<(f64, u32)> {
        self.pop().map(|e| (e.time, e.event))
    }
}

/// fig10-shaped: 30 000 concurrent signaling procedures — fig10's
/// top swept satellite capacity (30K UEs) under a signaling storm —
/// each a chain of 24 steps a few simulated ms apart: short horizons,
/// heavy ties, everything in the current calendar day.
fn fig10_shaped(q: &mut dyn Des, rng: &mut Rng) -> u64 {
    const PROCS: u32 = 30_000;
    const STEPS: u32 = 24;
    for p in 0..PROCS {
        q.schedule(rng.unit() * 0.002, p * STEPS);
    }
    let mut processed = 0;
    while let Some((t, v)) = q.pop_tv() {
        processed += 1;
        if (v + 1) % STEPS != 0 {
            q.schedule(t + 0.001 + rng.unit() * 0.004, v + 1);
        }
    }
    processed
}

/// ext_chaos-shaped: a 20 000-event steady-state hold over hours of
/// simulated time — the wheel and (rarely) the overflow heap carry
/// the load, as in the chaos timeline's long fault/recovery arcs.
fn ext_chaos_shaped(q: &mut dyn Des, rng: &mut Rng) -> u64 {
    const PENDING: u32 = 20_000;
    const TOTAL: u64 = 400_000;
    for v in 0..PENDING {
        q.schedule(rng.unit() * 3_600.0, v);
    }
    let mut processed = 0;
    while processed < TOTAL {
        let Some((t, v)) = q.pop_tv() else { break };
        processed += 1;
        q.schedule(t + 0.1 + rng.unit() * 240.0, v);
    }
    while q.pop_tv().is_some() {
        processed += 1;
    }
    processed
}

/// Timing reps per queue; the minimum is reported (best-of-N damps
/// scheduler jitter and frequency scaling out of sub-ms workloads).
const TIMING_REPS: usize = 7;

fn time_queue_pair(workload: fn(&mut dyn Des, &mut Rng) -> u64) -> QueuePair {
    let run = |q: &mut dyn Des| {
        let mut rng = Rng(0x5EED_CAFE_F00D_BEEF);
        let start = Instant::now();
        let n = workload(q, &mut rng);
        (n, start.elapsed().as_secs_f64())
    };
    // Warm-up then best-of-N, each rep on a fresh queue.
    let _ = run(&mut EventQueue::new());
    let _ = run(&mut ReferenceQueue::new());
    let mut events = 0;
    let mut cal_s = f64::INFINITY;
    let mut heap_s = f64::INFINITY;
    for _ in 0..TIMING_REPS {
        let (n, s) = run(&mut EventQueue::new());
        events = n;
        cal_s = cal_s.min(s);
        let (heap_events, s) = run(&mut ReferenceQueue::new());
        heap_s = heap_s.min(s);
        assert_eq!(events, heap_events, "workloads diverged between queues");
    }
    QueuePair {
        events,
        calendar_events_per_s: events as f64 / cal_s,
        heap_events_per_s: events as f64 / heap_s,
        speedup: heap_s / cal_s,
    }
}

/// Horizon-driven drain on the calendar queue: `run_until` (one
/// `pop_front` per event) against the external peek-then-pop loop the
/// simulator used before — on the *same* queue, so the difference is
/// purely the loop shape (peek re-derives the cross-tier minimum every
/// event; run_until amortizes it).
fn time_run_until() -> RunUntil {
    const PENDING: u32 = 100_000;
    const HORIZON_STEP: f64 = 1.0;
    let fill = |q: &mut EventQueue<u32>| {
        let mut rng = Rng(0xDE50_F00D_5ACE_CA11);
        for v in 0..PENDING {
            q.schedule(rng.unit() * 600.0, v);
        }
    };
    let single = || {
        let mut q = EventQueue::new();
        fill(&mut q);
        let start = Instant::now();
        let mut horizon = 0.0;
        let mut n = 0u64;
        while !q.is_empty() {
            horizon += HORIZON_STEP;
            n += q.run_until(horizon, |_, _, _| ()) as u64;
        }
        (n, start.elapsed().as_secs_f64())
    };
    let double = || {
        let mut q = EventQueue::new();
        fill(&mut q);
        let start = Instant::now();
        let mut horizon = 0.0;
        let mut n = 0u64;
        while !q.is_empty() {
            horizon += HORIZON_STEP;
            loop {
                match q.peek() {
                    Some(ev) if ev.time <= horizon => {}
                    _ => break,
                }
                q.pop();
                n += 1;
            }
        }
        (n, start.elapsed().as_secs_f64())
    };
    let heap_double = || {
        let mut q = ReferenceQueue::new();
        let mut rng = Rng(0xDE50_F00D_5ACE_CA11);
        for v in 0..PENDING {
            q.schedule(rng.unit() * 600.0, v);
        }
        let start = Instant::now();
        let mut horizon = 0.0;
        let mut n = 0u64;
        while !q.is_empty() {
            horizon += HORIZON_STEP;
            loop {
                match q.peek() {
                    Some(ev) if ev.time <= horizon => {}
                    _ => break,
                }
                q.pop();
                n += 1;
            }
        }
        (n, start.elapsed().as_secs_f64())
    };
    let _ = single();
    let _ = double();
    let _ = heap_double();
    let mut events = 0;
    let mut single_s = f64::INFINITY;
    let mut double_s = f64::INFINITY;
    let mut heap_s = f64::INFINITY;
    for _ in 0..TIMING_REPS {
        let (n, s) = single();
        events = n;
        single_s = single_s.min(s);
        let (n2, s) = double();
        double_s = double_s.min(s);
        assert_eq!(events, n2, "run_until drained a different event count");
        let (n3, s) = heap_double();
        heap_s = heap_s.min(s);
        assert_eq!(events, n3, "heap loop drained a different event count");
    }
    RunUntil {
        events,
        single_pop_events_per_s: events as f64 / single_s,
        peek_then_pop_events_per_s: events as f64 / double_s,
        heap_peek_then_pop_events_per_s: events as f64 / heap_s,
        speedup: heap_s / single_s,
        loop_shape_speedup: double_s / single_s,
    }
}

/// p99 of the closed `netsim.sim.step` spans, simulated ms.
fn p99_step_cost(snapshot_json: &str) -> Option<f64> {
    let sc = sc_obs::sidecar::Sidecar::parse(snapshot_json).ok()?;
    let mut costs: Vec<f64> = sc
        .spans
        .iter()
        .filter(|s| s.kind == "netsim.sim.step")
        .filter_map(|s| s.duration())
        .collect();
    if costs.is_empty() {
        return None;
    }
    costs.sort_by(f64::total_cmp);
    let idx = ((costs.len() as f64) * 0.99).ceil() as usize - 1;
    costs.get(idx.min(costs.len() - 1)).copied()
}

fn timed_experiment<R>(name: &str, run: impl FnOnce(&sc_obs::Recorder) -> R) -> Experiment {
    let rec = sc_obs::Recorder::new();
    let start = Instant::now();
    let _ = run(&rec);
    let wall_s = start.elapsed().as_secs_f64();
    let snap = rec.snapshot();
    let des_events = snap.counter("netsim.des.processed");
    Experiment {
        wall_s,
        des_events,
        events_per_s: des_events as f64 / wall_s,
        p99_step_cost_ms: p99_step_cost(&snap.to_json(name)),
    }
}

/// The million-UE soak, timed serially and at the machine's worker
/// count. Telemetry stays disabled (as in a production soak); the p99
/// comes from the result's own merged histogram, so it is deterministic
/// even here.
fn time_mload() -> Mload {
    use sc_emu::ext_mload::{run_config_with, MloadConfig};
    let cfg = MloadConfig::full();
    let rec = sc_obs::Recorder::disabled();
    let start = Instant::now();
    let serial = run_config_with(1, &rec, &cfg);
    let wall_serial = start.elapsed().as_secs_f64();
    let threads = sc_emu::engine::thread_count();
    let start = Instant::now();
    let parallel = run_config_with(threads, &rec, &cfg);
    let wall_parallel = start.elapsed().as_secs_f64();
    assert_eq!(
        serde_json::to_string(&serial).expect("serialize"),
        serde_json::to_string(&parallel).expect("serialize"),
        "mload results diverged between 1 and {threads} threads"
    );
    Mload {
        total_ues: cfg.total_ues,
        shards: cfg.shards,
        threads,
        events_total: parallel.events_total,
        events_measured: parallel.events_measured,
        mean_active_sessions: parallel.mean_active_sessions,
        wall_s_serial: wall_serial,
        wall_s_parallel: wall_parallel,
        steady_state_events_per_s: parallel.events_total as f64 / wall_serial.min(wall_parallel),
        parallel_speedup: wall_serial / wall_parallel,
        p99_step_cost_ms: parallel.p99_step_cost_ms,
        signaling_reduction: parallel.signaling_reduction,
    }
}

/// The fault-injected million-UE soak, timed serially and at the
/// machine's worker count. Beyond the byte-identity assert, this is
/// where the PR's two recovery SLOs are enforced at bench time: the
/// crash/re-crash scenario must keep ≥ 98 % of dropped sessions and the
/// paced retry budget must hold the re-registration surge under 3× the
/// steady-state C1 rate.
fn time_chaosload() -> Chaosload {
    use sc_emu::ext_chaosload::{run_config_with, ChaosloadConfig};
    let cfg = ChaosloadConfig::full();
    let rec = sc_obs::Recorder::disabled();
    let start = Instant::now();
    let serial = run_config_with(1, &rec, &cfg);
    let wall_serial = start.elapsed().as_secs_f64();
    let threads = sc_emu::engine::thread_count();
    let start = Instant::now();
    let parallel = run_config_with(threads, &rec, &cfg);
    let wall_parallel = start.elapsed().as_secs_f64();
    assert_eq!(
        serde_json::to_string(&serial).expect("serialize"),
        serde_json::to_string(&parallel).expect("serialize"),
        "chaosload results diverged between 1 and {threads} threads"
    );
    assert!(
        parallel.session_survival >= 0.98,
        "session survival {:.4} below the 0.98 SLO",
        parallel.session_survival
    );
    assert!(
        parallel.surge_amplitude <= 3.0,
        "signaling surge {:.2}x exceeds the 3x steady-state SLO",
        parallel.surge_amplitude
    );
    // Surge-per-window summary from the folded 1 s re-registration
    // windows (the same vector the `emu.chaosload.rereg_storm_per_s`
    // telemetry series and the windowed SLO pass are built from).
    let warmup_win = (cfg.load.warmup_s as usize).min(parallel.rereg_storm_win.len());
    let budget = 3.0 * parallel.steady_c1_per_s;
    let measured = &parallel.rereg_storm_win[warmup_win..];
    let surge_breached_windows =
        measured.iter().filter(|&&v| v as f64 > budget).count() as u64;
    // Ties resolve to the earliest window, like `SidecarSeries::peak`.
    let peak_off = measured
        .iter()
        .enumerate()
        .fold((0usize, 0u64), |best, (i, &v)| {
            if v > best.1 {
                (i, v)
            } else {
                best
            }
        })
        .0;
    let surge_peak_t_s = (warmup_win + peak_off) as f64;
    let surge_settle_t_s = measured[peak_off..]
        .iter()
        .position(|&v| (v as f64) <= parallel.steady_c1_per_s)
        .map(|i| (warmup_win + peak_off + i) as f64);
    Chaosload {
        total_ues: cfg.load.total_ues,
        threads,
        events_measured: parallel.events_measured,
        wall_s_serial: wall_serial,
        wall_s_parallel: wall_parallel,
        events_per_s: parallel.events_measured as f64 / wall_serial.min(wall_parallel),
        sessions_dropped: parallel.sessions_dropped,
        session_survival: parallel.session_survival,
        surge_amplitude: parallel.surge_amplitude,
        surge_breached_windows,
        surge_peak_t_s,
        surge_settle_t_s,
        tt99_s: parallel.crashes.iter().map(|c| c.tt99_s).collect(),
        reattach_ms_p99: parallel.reattach_ms_p99,
        signaling_reduction: parallel.signaling_reduction,
    }
}

fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let out = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: bench-report <out.json>");
            std::process::exit(1);
        }
    };
    eprintln!("bench-report: scheduler microbenches");
    let scheduler = Scheduler {
        fig10_shaped: time_queue_pair(fig10_shaped),
        ext_chaos_shaped: time_queue_pair(ext_chaos_shaped),
    };
    eprintln!(
        "bench-report: fig10-shaped {:.2}x, ext_chaos-shaped {:.2}x",
        scheduler.fig10_shaped.speedup, scheduler.ext_chaos_shaped.speedup
    );
    let run_until = time_run_until();
    eprintln!(
        "bench-report: run_until {:.2}x vs replaced heap loop ({:.2}x loop shape)",
        run_until.speedup, run_until.loop_shape_speedup
    );
    eprintln!("bench-report: full experiment runs (threads=1)");
    let experiments = Experiments {
        fig10: timed_experiment("fig10", sc_emu::fig10::run_obs),
        ext_chaos: timed_experiment("ext_chaos", |rec| sc_emu::ext_chaos::run_with(1, rec)),
    };
    eprintln!("bench-report: million-UE sustained-load soak");
    let mload = time_mload();
    eprintln!(
        "bench-report: mload {} UEs, {:.0} events/s steady-state, {:.2}x parallel",
        mload.total_ues, mload.steady_state_events_per_s, mload.parallel_speedup
    );
    eprintln!("bench-report: million-UE chaos soak (crash/re-crash + flap + burst)");
    let chaosload = time_chaosload();
    eprintln!(
        "bench-report: chaosload survival {:.2}%, surge {:.2}x, tt99 {:?} s",
        chaosload.session_survival * 100.0,
        chaosload.surge_amplitude,
        chaosload.tt99_s
    );
    let report = Report {
        schema: "sc-bench/3",
        scheduler,
        run_until,
        experiments,
        mload,
        chaosload,
        peak_rss_kb: peak_rss_kb(),
    };
    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench-report: serialize failed: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("bench-report: cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("bench-report: wrote {out}");
}
