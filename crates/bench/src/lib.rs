//! Measurement substrate: Criterion micro-benches plus the `BENCH_*.json`
//! snapshot binary.
//!
//! The library itself is intentionally empty — everything measurable
//! lives in two kinds of targets:
//!
//! * **`benches/` — one Criterion target per paper table/figure**, named
//!   after what it reproduces (`fig05` … `fig21`, `table2_dataset`,
//!   `table3_cells`, `table4_reductions`), plus the DESIGN.md ablations
//!   (`ablation_routing`, `ablation_cell_granularity`,
//!   `ablation_rollback`, `ablation_visibility`), the extension
//!   experiments (`ext_anchor`, `ext_chaos`, `ext_resilience`), and
//!   `des_queue`, the calendar-queue vs. binary-heap scheduler
//!   head-to-head. Run one with
//!   `cargo bench -p sc-bench --bench fig18a_abe`, or everything with
//!   `cargo bench -p sc-bench`. Use these for before/after work on a
//!   single hot path.
//!
//! * **`bench-report` (`src/bin/bench_report.rs`) — the cross-PR
//!   record**: one self-timed binary that emits the `"sc-bench/3"`
//!   snapshot consumed by `scripts/bench.sh` and checked in as
//!   `BENCH_<date>.json`. It times the DES scheduler on fig10- and
//!   ext_chaos-shaped workloads against the replaced binary heap, the
//!   `run_until` loop shape, full fig10/ext_chaos experiment runs, the
//!   million-UE `ext_mload` soak, and the fault-injected
//!   `ext_chaosload` soak (both soaks' serial and parallel results
//!   asserted byte-identical; chaosload's recovery SLOs — survival
//!   ≥ 98 %, signaling surge ≤ 3× — asserted too), then reads peak
//!   RSS. Schema and the snapshot trajectory: `docs/BENCHMARKS.md`.
//!
//! This crate and `scripts/` are the only places in the tree allowed to
//! read a wall clock — everything else must be deterministic, and
//! sc-audit's R2 rule enforces exactly that (the allowlist lives in
//! `crates/audit`). Keep new timing code here.
