//! Bench-only crate: see `benches/` for one Criterion target per paper
//! table/figure plus the DESIGN.md ablations.
