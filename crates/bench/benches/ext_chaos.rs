//! Criterion bench for the chaos session-survival extension experiment
//! (one timeline-driven DES sweep over Starlink).
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("ext_chaos::run", |b| {
        b.iter(|| std::hint::black_box(sc_emu::ext_chaos::run()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
