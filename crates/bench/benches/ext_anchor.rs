//! Criterion bench for the anchor-bottleneck extension experiment.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("ext_anchor::run", |b| {
        b.iter(|| std::hint::black_box(sc_emu::ext_anchor::run()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
