//! Criterion micro-benches for the DES scheduler hot paths: the
//! calendar-queue [`EventQueue`] against the retained binary-heap
//! [`ReferenceQueue`] (schedule/pop hold pattern), and the single-pop
//! `run_until` against the peek-then-pop loop it replaced.
//! `bench-report` measures the same shapes for `BENCH_*.json`.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sc_netsim::des::{reference::ReferenceQueue, EventQueue};

const PENDING: u32 = 10_000;
const CHURN: u64 = 50_000;

/// Steady-state hold: `PENDING` events in flight, each pop reschedules
/// one event further out, `CHURN` pops total.
fn hold_calendar() -> u64 {
    let mut q = EventQueue::new();
    for v in 0..PENDING {
        q.schedule(f64::from(v % 512) * 0.7, v);
    }
    let mut n = 0;
    while n < CHURN {
        let Some(e) = q.pop() else { break };
        q.schedule(e.time + 0.3 + f64::from(e.event % 97) * 0.11, e.event);
        n += 1;
    }
    n
}

fn hold_heap() -> u64 {
    let mut q = ReferenceQueue::new();
    for v in 0..PENDING {
        q.schedule(f64::from(v % 512) * 0.7, v);
    }
    let mut n = 0;
    while n < CHURN {
        let Some(e) = q.pop() else { break };
        q.schedule(e.time + 0.3 + f64::from(e.event % 97) * 0.11, e.event);
        n += 1;
    }
    n
}

fn drain_run_until() -> u64 {
    let mut q = EventQueue::new();
    for v in 0..PENDING {
        q.schedule(f64::from(v % 600) + f64::from(v % 7) * 0.01, v);
    }
    let mut horizon = 0.0;
    let mut n = 0u64;
    while !q.is_empty() {
        horizon += 1.0;
        n += q.run_until(horizon, |_, _, _| ()) as u64;
    }
    n
}

fn drain_peek_then_pop() -> u64 {
    let mut q = ReferenceQueue::new();
    for v in 0..PENDING {
        q.schedule(f64::from(v % 600) + f64::from(v % 7) * 0.01, v);
    }
    let mut horizon = 0.0;
    let mut n = 0u64;
    while !q.is_empty() {
        horizon += 1.0;
        loop {
            match q.peek() {
                Some(ev) if ev.time <= horizon => {}
                _ => break,
            }
            q.pop();
            n += 1;
        }
    }
    n
}

fn bench(c: &mut Criterion) {
    c.bench_function("des_queue::hold/calendar", |b| {
        b.iter(|| black_box(hold_calendar()))
    });
    c.bench_function("des_queue::hold/heap", |b| b.iter(|| black_box(hold_heap())));
    c.bench_function("des_queue::run_until/single_pop", |b| {
        b.iter(|| black_box(drain_run_until()))
    });
    c.bench_function("des_queue::run_until/peek_then_pop", |b| {
        b.iter(|| black_box(drain_peek_then_pop()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
