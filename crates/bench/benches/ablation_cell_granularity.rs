//! Ablation (DESIGN.md §5): geospatial cell granularity.
//!
//! §6.2: Iridium's occasional >100 ms detours under J4 "arise from the
//! detours due to the granularity of the geospatial cells and can be
//! avoided with finer-grained cells (thus more bits in the addressing)".
//! This bench sweeps the relay's coordinate-space coverage radius and
//! reports the trace cost; the companion integration test checks the
//! hop-count effect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_orbit::{ConstellationConfig, J4Propagator, Propagator, SatId};
use spacecore::relay::GeoRelay;

fn bench(c: &mut Criterion) {
    let cfg = ConstellationConfig::iridium();
    let prop = J4Propagator::new(cfg.clone());
    let base = GeoRelay::for_shell(&cfg);
    let base_r = base.coverage_radius();

    let mut g = c.benchmark_group("ablation_cell_granularity");
    for scale in [0.75f64, 1.0, 1.5, 2.0] {
        let relay = GeoRelay::for_shell(&cfg).with_coverage_radius(base_r * scale);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("radius_x{scale}")),
            &relay,
            |b, relay| {
                let mut t = 0.0;
                b.iter(|| {
                    t += 60.0;
                    let dst = prop.state(SatId::new(3, 6), t).coord;
                    std::hint::black_box(relay.trace(&prop, SatId::new(0, 0), dst, t, 1.0))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
