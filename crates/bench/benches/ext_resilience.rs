//! Criterion bench for the message-level resilience extension
//! experiment (one DES sweep).
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("ext_resilience::run", |b| {
        b.iter(|| std::hint::black_box(sc_emu::ext_resilience::run()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
