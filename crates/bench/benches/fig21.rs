//! Criterion bench regenerating fig21: times one full experiment run.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("fig21::run", |b| b.iter(|| std::hint::black_box(sc_emu::fig21::run())));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
