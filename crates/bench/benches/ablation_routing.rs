//! Ablation (DESIGN.md §5): Algorithm 1's stateless geospatial relaying
//! vs. Dijkstra shortest-path over the full ISL graph.
//!
//! Measures (a) decision cost — Algorithm 1 is O(1) per hop with no
//! routing state, Dijkstra is O(E log V) per path with a global
//! topology view — and (b) end-to-end path computation for a random
//! satellite pair.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_netsim::isl::{IslConfig, IslNetwork};
use sc_orbit::{ConstellationConfig, GroundStationSet, IdealPropagator, Propagator, SatId};
use spacecore::relay::GeoRelay;

fn bench(c: &mut Criterion) {
    let cfg = ConstellationConfig::starlink();
    let prop = IdealPropagator::new(cfg.clone());
    let relay = GeoRelay::for_shell(&cfg);
    let gs = GroundStationSet::starlink_like();
    let net = IslNetwork::build(&prop, &gs, 0.0, IslConfig::default());

    c.bench_function("ablation_routing/algorithm1_trace", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = (i + 7) % 72;
            let dst = prop.state(SatId::new(i, i % 22), 0.0).coord;
            std::hint::black_box(relay.trace(&prop, SatId::new(0, 0), dst, 0.0, 1.0))
        })
    });

    c.bench_function("ablation_routing/dijkstra_path", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = (i + 7) % 72;
            let dst = net.sat_node(SatId::new(i, i % 22));
            std::hint::black_box(
                net.graph()
                    .shortest_path(net.sat_node(SatId::new(0, 0)), dst, |_| false),
            )
        })
    });

    // Per-hop decision: the O(1) forwarding core of Algorithm 1.
    c.bench_function("ablation_routing/algorithm1_decide", |b| {
        let sat = prop.state(SatId::new(0, 0), 0.0).coord;
        let dst = prop.state(SatId::new(36, 11), 0.0).coord;
        b.iter(|| std::hint::black_box(relay.decide(sat, dst)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
