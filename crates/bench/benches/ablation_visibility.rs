//! Ablation (DESIGN.md §2): spatial visibility index vs. linear scan.
//!
//! The linear path examines every satellite state for every query; the
//! indexed path touches only the lat/lon buckets within one coverage
//! half-angle of the query point. The win grows with constellation
//! size — roughly constant-time per query for the indexed path versus
//! O(N) for the linear scan — so the sweep runs across all four
//! Table 1 presets (Iridium 66 → Kuiper 3236 satellites). Both paths
//! return bit-identical results (property-tested in sc-orbit).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sc_orbit::{ConstellationConfig, CoverageModel, IdealPropagator, IndexedSnapshot, Propagator};

/// Query points spread over land and ocean, mid and high latitude.
const QUERIES: [(f64, f64); 4] = [
    (48.9, 2.4),    // Paris
    (-33.9, 151.2), // Sydney
    (64.1, -21.9),  // Reykjavik
    (0.0, -140.0),  // equatorial Pacific
];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_visibility");
    for cfg in ConstellationConfig::all_presets() {
        let prop = IdealPropagator::new(cfg.clone());
        let cov = CoverageModel::new(&prop);
        let snapshot = prop.snapshot(0.0);
        let indexed = IndexedSnapshot::build(&prop, 0.0);
        let points: Vec<sc_geo::GeoPoint> = QUERIES
            .iter()
            .map(|&(lat, lon)| sc_geo::GeoPoint::from_degrees(lat, lon))
            .collect();

        group.throughput(Throughput::Elements(cfg.total_sats() as u64));
        group.bench_with_input(
            BenchmarkId::new("linear", cfg.name),
            &points,
            |b, points| {
                b.iter(|| {
                    for p in points {
                        std::hint::black_box(cov.visible_from_snapshot(&snapshot, p));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("indexed", cfg.name),
            &points,
            |b, points| {
                b.iter(|| {
                    for p in points {
                        std::hint::black_box(cov.visible_from_indexed(&indexed, p));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("indexed_with_build", cfg.name),
            &points,
            |b, points| {
                b.iter(|| {
                    let indexed = IndexedSnapshot::build(&prop, 0.0);
                    for p in points {
                        std::hint::black_box(cov.visible_from_indexed(&indexed, p));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
