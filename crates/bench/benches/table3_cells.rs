//! Table 3 — geospatial cell statistics computation per constellation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_orbit::ConstellationConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/cell_stats");
    for cfg in ConstellationConfig::all_presets() {
        let grid = cfg.cell_grid();
        g.bench_with_input(BenchmarkId::from_parameter(cfg.name), &grid, |b, grid| {
            b.iter(|| std::hint::black_box(grid.stats()))
        });
    }
    g.finish();

    // Point-to-cell assignment throughput (hot path of Algorithm 1's
    // destination extraction).
    let grid = ConstellationConfig::starlink().cell_grid();
    c.bench_function("table3/cell_of_point", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let lat = ((i % 100) as f64 - 50.0) / 60.0;
            let lon = ((i % 360) as f64 - 180.0).to_radians();
            std::hint::black_box(grid.cell_of_point(&sc_geo::GeoPoint::new(lat, lon)))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
