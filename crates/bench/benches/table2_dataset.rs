//! Table 2 — synthetic signaling trace generation throughput for each
//! dataset source.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sc_dataset::table2::{DatasetSource, Table2};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2/synthesize");
    let n = 10_000usize;
    g.throughput(Throughput::Elements(n as u64));
    for src in DatasetSource::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(src.name()), &src, |b, s| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(Table2::synthesize(*s, n, seed))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
