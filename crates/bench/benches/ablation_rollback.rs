//! Ablation (DESIGN.md §5): local-path vs. legacy-rollback mix.
//!
//! SpaceCore rolls back to the home-routed procedure for UEs without
//! the local-state proxy (§5). This bench measures establishment cost
//! at 0%, 50% and 100% legacy-UE fractions, plus the raw local path
//! (Algorithm 2 decrypt + station-to-station) in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_geo::sphere::GeoPoint;
use sc_orbit::SatId;
use spacecore::home::{HomeConfig, HomeNetwork};
use spacecore::satellite::SpaceCoreSatellite;

fn bench(c: &mut Criterion) {
    let home = HomeNetwork::new(HomeConfig::default());
    let sat = SpaceCoreSatellite::provision(&home, SatId::new(1, 1));

    let mut g = c.benchmark_group("ablation_rollback");
    for legacy_pct in [0u32, 50, 100] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("legacy_{legacy_pct}pct")),
            &legacy_pct,
            |b, pct| {
                let mut ues: Vec<_> = (0..100u64)
                    .map(|i| {
                        let mut ue =
                            home.register_ue(10_000 + i, &GeoPoint::from_degrees(40.0, 116.0));
                        ue.supports_spacecore = (i % 100) >= *pct as u64;
                        ue
                    })
                    .collect();
                let mut now = 0.0;
                b.iter(|| {
                    now += 0.001;
                    for ue in ues.iter_mut() {
                        std::hint::black_box(sat.establish_session(&home, ue, now));
                        sat.release(ue.supi);
                    }
                })
            },
        );
    }
    g.finish();

    c.bench_function("ablation_rollback/local_path_only", |b| {
        let mut ue = home.register_ue(99_999, &GeoPoint::from_degrees(40.0, 116.0));
        let mut now = 0.0;
        b.iter(|| {
            now += 0.001;
            let o = sat
                .try_local_establishment(&home, &mut ue, now)
                .expect("authorized");
            sat.release(ue.supi);
            std::hint::black_box(o)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
