//! Criterion bench regenerating fig10: times one full experiment run.
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("fig10::run", |b| b.iter(|| std::hint::black_box(sc_emu::fig10::run())));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
