//! Fig. 18a — ABE encryption/decryption latency vs. attribute count.
//!
//! This is the real micro-benchmark behind the figure: the actual
//! `sc-crypto` ABE implementation is timed per attribute count, giving
//! the encrypt/decrypt scaling the paper plots (and doubling as the
//! "ABE attribute-set size" ablation from DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_crypto::abe::AbeSystem;
use sc_crypto::policy::{attr_set, AccessTree};

fn bench(c: &mut Criterion) {
    let (pk, msk) = AbeSystem::setup(0xBEEF);
    let payload = vec![0x42u8; 256];

    let mut enc = c.benchmark_group("fig18a/encrypt");
    for k in [2usize, 4, 6, 8, 10] {
        let attrs: Vec<String> = (0..k).map(|i| format!("attr-{i}")).collect();
        let refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
        let policy = AccessTree::all_of(&refs);
        enc.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                std::hint::black_box(AbeSystem::encrypt(&pk, &payload, &policy, i))
            })
        });
    }
    enc.finish();

    let mut dec = c.benchmark_group("fig18a/decrypt");
    for k in [2usize, 4, 6, 8, 10] {
        let attrs: Vec<String> = (0..k).map(|i| format!("attr-{i}")).collect();
        let refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
        let policy = AccessTree::all_of(&refs);
        let sk = AbeSystem::keygen(&msk, &attr_set(&refs));
        let ct = AbeSystem::encrypt(&pk, &payload, &policy, 1);
        dec.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| std::hint::black_box(AbeSystem::decrypt(&ct, &sk).expect("authorized")))
        });
    }
    dec.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
