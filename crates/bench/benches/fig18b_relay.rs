//! Fig. 18b — stateless geospatial relaying Beijing → New York, per
//! constellation, under ideal and J4-perturbed orbits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_geo::sphere::GeoPoint;
use sc_orbit::{ConstellationConfig, IdealPropagator, J4Propagator, Propagator};
use spacecore::relay::GeoRelay;

fn bench(c: &mut Criterion) {
    let beijing = GeoPoint::from_degrees(39.9042, 116.4074);
    let ny = GeoPoint::from_degrees(40.7128, -74.0060);
    let mut g = c.benchmark_group("fig18b/relay");
    g.sample_size(20);
    for cfg in ConstellationConfig::all_presets() {
        let relay = GeoRelay::for_shell(&cfg);
        let ideal = IdealPropagator::new(cfg.clone());
        let j4 = J4Propagator::new(cfg.clone());
        let props: [(&str, &dyn Propagator); 2] = [("ideal", &ideal), ("j4", &j4)];
        for (pname, prop) in props {
            g.bench_with_input(
                BenchmarkId::new(cfg.name, pname),
                &pname,
                |b, _| {
                    let mut t = 0.0;
                    b.iter(|| {
                        t += 30.0;
                        // Sparse shells (Iridium) have instants with no
                        // satellite above the source's minimum elevation;
                        // skip those gaps rather than fail the bench.
                        match relay.deliver_ground_to_ground(prop, &beijing, &ny, t, 1.0) {
                            Some(tr) => {
                                assert!(tr.delivered);
                                std::hint::black_box(tr.delay_ms)
                            }
                            None => std::hint::black_box(0.0),
                        }
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
