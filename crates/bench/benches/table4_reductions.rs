//! Table 4 — computing SpaceCore's signaling reduction factors.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("table4::run", |b| {
        b.iter(|| std::hint::black_box(sc_emu::table4::run()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
