//! Property-based tests for the 5G core substrate.

use proptest::prelude::*;
use sc_fiveg::gtp::GtpUHeader;
use sc_fiveg::ids::{PlmnId, SessionId, Supi, TunnelId};
use sc_fiveg::nas::{IeTag, NasMessage, NasMessageType};
use sc_fiveg::security::{generate_av, ue_respond, verify_response, KeyHierarchy};
use sc_fiveg::smf::Smf;
use sc_fiveg::state::SessionState;
use sc_fiveg::upf::TokenBucket;

proptest! {
    #[test]
    fn session_state_codec_total(msin in any::<u64>()) {
        let s = SessionState::sample(msin % (1 << 40));
        prop_assert_eq!(SessionState::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn session_state_codec_rejects_mutations(msin in 0u64..1_000_000, flip in any::<usize>()) {
        // Flipping the version byte or truncating always fails; flipping
        // payload bytes must never panic (may still decode to a
        // *different* state, which the home signature layer catches).
        let b = SessionState::sample(msin).encode();
        let mut m = b.clone();
        let i = flip % m.len();
        m[i] ^= 0xFF;
        let _ = SessionState::decode(&m); // no panic
        prop_assert!(SessionState::decode(&b[..b.len() - 1]).is_none());
    }

    #[test]
    fn plmn_supi_roundtrip(mcc in 0u16..1000, mnc in 0u16..1000, msin in 0u64..(1 << 40)) {
        let plmn = PlmnId::new(mcc, mnc);
        prop_assert_eq!(PlmnId::unpack(plmn.pack()), plmn);
        let supi = Supi::new(plmn, msin);
        prop_assert_eq!(supi.plmn(), plmn);
        prop_assert_eq!(supi.msin(), msin);
    }

    #[test]
    fn gtp_fef_roundtrip(teid in any::<u32>(), fef in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let h = GtpUHeader::gpdu(TunnelId(teid), 0).with_fef(fef.clone());
        let (d, n) = GtpUHeader::decode(&h.encode()).unwrap();
        prop_assert_eq!(n, h.header_len());
        prop_assert_eq!(d.fef.unwrap(), fef);
    }

    #[test]
    fn gtp_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = GtpUHeader::decode(&data);
    }

    #[test]
    fn nas_roundtrip(values in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 0..5)) {
        let tags = [IeTag::MobileIdentity, IeTag::AuthParam, IeTag::PduAddress,
                    IeTag::QosRules, IeTag::StateReplica];
        let mut m = NasMessage::new(NasMessageType::RegistrationRequest);
        for (i, v) in values.iter().enumerate() {
            m = m.with_ie(tags[i % tags.len()], v.clone());
        }
        prop_assert_eq!(NasMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn nas_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = NasMessage::decode(&data);
    }

    #[test]
    fn aka_succeeds_iff_keys_match(k in any::<u64>(), k2 in any::<u64>(), rand in any::<u64>(), sqn in any::<u64>()) {
        let av = generate_av(k, rand, sqn);
        // Right key: always verifies.
        let res = ue_respond(k, av.rand, av.autn, sqn).unwrap();
        prop_assert!(verify_response(&av, res));
        // Wrong key: AUTN check fails (or, astronomically unlikely,
        // collides — accept either but never a forged pass-through).
        if k2 != k {
            if let Some(r2) = ue_respond(k2, av.rand, av.autn, sqn) {
                prop_assert!(!verify_response(&av, r2));
            }
        }
    }

    #[test]
    fn key_hierarchy_distinct_levels(k in any::<u64>(), rand in any::<u64>(), snid in any::<u64>()) {
        let h = KeyHierarchy::derive(k, rand, snid);
        let keys = [h.k_ausf, h.k_seaf, h.k_amf, h.k_nas, h.k_gnb];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                prop_assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn token_bucket_never_exceeds_rate_long_run(kbps in 64u32..100_000, seconds in 2u32..10) {
        let mut tb = TokenBucket::from_kbps(kbps, 100.0);
        let mut admitted = 0u64;
        let packet = 1500u64;
        let steps = 1000 * seconds;
        for i in 0..steps {
            let now = i as f64 * seconds as f64 / steps as f64;
            if tb.admit(now, packet) {
                admitted += packet;
            }
        }
        let rate_kbps = admitted as f64 * 8.0 / 1000.0 / seconds as f64;
        // Long-run rate bounded by sustained rate + burst amortization.
        prop_assert!(rate_kbps <= kbps as f64 * 1.3 + 200.0, "{rate_kbps} vs {kbps}");
    }

    #[test]
    fn smf_ips_unique(n in 1usize..40) {
        let mut smf = Smf::new(vec![1, 2, 3], 0xFD77);
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            let s = smf
                .establish(Supi::new(PlmnId::new(460, 1), i as u64), SessionId(1), 0)
                .unwrap();
            prop_assert!(seen.insert(s.ip));
        }
    }
}
