//! The SMF as an explicit state machine: PDU session contexts, IP
//! allocation, anchor-UPF selection, and the path updates of C2/C3.
//!
//! In the legacy architecture each session is pinned to a fixed anchor
//! UPF "since the global users' traffic would be redirected to it"
//! (§3.1) — the data-plane bottleneck SpaceCore removes. This SMF makes
//! that anchor explicit, so experiments can count how much traffic each
//! anchor attracts.

use crate::ids::{SessionId, Supi, TunnelId};
use sc_obs::Recorder;
use std::collections::HashMap;
use std::net::Ipv6Addr;

/// A PDU session context at the SMF. All-scalar and `Copy`:
/// [`Smf::establish`] returns it by value, so callers never clone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PduSession {
    pub supi: Supi,
    pub session_id: SessionId,
    /// Allocated UE address.
    pub ip: Ipv6Addr,
    /// The anchor UPF this session is pinned to.
    pub anchor_upf: u32,
    /// Uplink tunnel toward the anchor.
    pub uplink_teid: TunnelId,
    /// Downlink tunnel toward the current RAN node.
    pub downlink_teid: TunnelId,
    /// Current RAN node id (changes on every handover path switch).
    pub ran_node: u32,
}

/// Errors from SMF operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmfError {
    UnknownSession,
    /// Per-UE session limit exceeded (5G allows 15).
    TooManySessions,
    /// The SMF was configured with no candidate anchor UPFs.
    NoAnchors,
}

impl std::fmt::Display for SmfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmfError::UnknownSession => f.write_str("unknown PDU session"),
            SmfError::TooManySessions => f.write_str("per-UE session limit reached"),
            SmfError::NoAnchors => f.write_str("no candidate anchor UPFs configured"),
        }
    }
}

impl std::error::Error for SmfError {}

/// A Session Management Function with an IP pool and a set of candidate
/// anchor UPFs.
#[derive(Debug, Clone)]
pub struct Smf {
    /// Candidate anchor UPF ids (ground gateways in the legacy design).
    anchors: Vec<u32>,
    /// IPv6 prefix for the UE pool.
    prefix: u64,
    next_host: u64,
    next_teid: u32,
    // sc-audit: allow(stateful, reason = "legacy stateful SMF baseline — per-UE S2 session anchors, kept to account the Fig. 5a anchor-gateway bottleneck")
    sessions: HashMap<(Supi, SessionId), PduSession>,
    /// Sessions pinned per anchor (bottleneck accounting).
    per_anchor: HashMap<u32, u32>,
    /// Telemetry (disabled by default): `fiveg.smf.*` counters and the
    /// active-session gauge.
    obs: Recorder,
}

/// 5G's per-UE PDU session cap.
pub const MAX_SESSIONS_PER_UE: usize = 15;

impl Smf {
    pub fn new(anchors: Vec<u32>, prefix: u64) -> Self {
        assert!(!anchors.is_empty(), "need at least one anchor UPF");
        Self {
            anchors,
            prefix,
            next_host: 1,
            next_teid: 1,
            sessions: HashMap::new(),
            per_anchor: HashMap::new(),
            obs: Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder; subsequent operations count under
    /// `fiveg.smf.*` and maintain the `fiveg.smf.sessions` gauge.
    pub fn attach_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// C2/P7-P9 — establish a PDU session: allocate IP + tunnels, select
    /// the least-loaded anchor UPF. Returns the session by value
    /// (`PduSession` is `Copy`).
    pub fn establish(
        &mut self,
        supi: Supi,
        session_id: SessionId,
        ran_node: u32,
    ) -> Result<PduSession, SmfError> {
        let per_ue = self.sessions.keys().filter(|(s, _)| *s == supi).count();
        if per_ue >= MAX_SESSIONS_PER_UE {
            return Err(SmfError::TooManySessions);
        }
        let anchor = *self
            .anchors
            .iter()
            .min_by_key(|a| self.per_anchor.get(a).copied().unwrap_or(0))
            .ok_or(SmfError::NoAnchors)?;
        *self.per_anchor.entry(anchor).or_insert(0) += 1;

        let ip = Ipv6Addr::from(((self.prefix as u128) << 64) | self.next_host as u128);
        self.next_host += 1;
        let uplink = TunnelId(self.next_teid);
        let downlink = TunnelId(self.next_teid + 1);
        self.next_teid += 2;

        let session = PduSession {
            supi,
            session_id,
            ip,
            anchor_upf: anchor,
            uplink_teid: uplink,
            downlink_teid: downlink,
            ran_node,
        };
        self.obs.inc("fiveg.smf.establishments", 1);
        self.sessions.insert((supi, session_id), session);
        self.obs
            .set_gauge("fiveg.smf.sessions", self.sessions.len() as f64);
        Ok(session)
    }

    /// C3/P10 — path switch: point the downlink at a new RAN node. The
    /// anchor (and the IP) stay fixed — that is the legacy design's
    /// session-continuity mechanism *and* its bottleneck.
    pub fn path_switch(
        &mut self,
        supi: Supi,
        session_id: SessionId,
        new_ran_node: u32,
    ) -> Result<TunnelId, SmfError> {
        let s = self
            .sessions
            .get_mut(&(supi, session_id))
            .ok_or(SmfError::UnknownSession)?;
        s.ran_node = new_ran_node;
        // New downlink tunnel toward the new node.
        s.downlink_teid = TunnelId(self.next_teid);
        self.next_teid += 1;
        let teid = s.downlink_teid;
        self.obs.inc("fiveg.smf.path_switches", 1);
        Ok(teid)
    }

    /// P15 — release a session.
    pub fn release(&mut self, supi: Supi, session_id: SessionId) -> Result<(), SmfError> {
        let s = self
            .sessions
            .remove(&(supi, session_id))
            .ok_or(SmfError::UnknownSession)?;
        if let Some(n) = self.per_anchor.get_mut(&s.anchor_upf) {
            *n = n.saturating_sub(1);
        }
        self.obs.inc("fiveg.smf.releases", 1);
        self.obs
            .set_gauge("fiveg.smf.sessions", self.sessions.len() as f64);
        Ok(())
    }

    /// Look up a session.
    pub fn session(&self, supi: Supi, session_id: SessionId) -> Option<&PduSession> {
        self.sessions.get(&(supi, session_id))
    }

    /// Sessions currently pinned to each anchor — the Fig. 5a
    /// "anchor gateway as single-point bottleneck" quantity.
    pub fn anchor_load(&self) -> &HashMap<u32, u32> {
        &self.per_anchor
    }

    /// Total active sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PlmnId;

    /// Tests compose with `?` instead of `unwrap()` — see the R3 ratchet.
    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn supi(n: u64) -> Supi {
        Supi::new(PlmnId::new(460, 1), n)
    }

    fn smf() -> Smf {
        Smf::new(vec![100, 101, 102], 0xFD00_0000_0000_0001)
    }

    #[test]
    fn establish_allocates_unique_resources() -> TestResult {
        let mut s = smf();
        let a = s.establish(supi(1), SessionId(1), 7)?;
        let b = s.establish(supi(2), SessionId(1), 7)?;
        assert_ne!(a.ip, b.ip);
        assert_ne!(a.uplink_teid, b.uplink_teid);
        assert_ne!(a.downlink_teid, b.downlink_teid);
        assert_eq!(s.session_count(), 2);
        Ok(())
    }

    #[test]
    fn anchor_selection_balances_load() -> TestResult {
        let mut s = smf();
        for i in 0..30 {
            s.establish(supi(i), SessionId(1), 0)?;
        }
        let loads: Vec<u32> = s.anchor_load().values().copied().collect();
        assert_eq!(loads.iter().sum::<u32>(), 30);
        for l in loads {
            assert_eq!(l, 10, "least-loaded selection balances evenly");
        }
        Ok(())
    }

    #[test]
    fn path_switch_keeps_ip_and_anchor() -> TestResult {
        // The legacy session-continuity contract: the IP and anchor
        // survive handovers; only the downlink leg moves.
        let mut s = smf();
        let before = s.establish(supi(1), SessionId(1), 7)?;
        let new_teid = s.path_switch(supi(1), SessionId(1), 8)?;
        let after = s
            .session(supi(1), SessionId(1))
            .ok_or("session vanished after path switch")?;
        assert_eq!(after.ip, before.ip);
        assert_eq!(after.anchor_upf, before.anchor_upf);
        assert_eq!(after.ran_node, 8);
        assert_eq!(after.downlink_teid, new_teid);
        assert_ne!(new_teid, before.downlink_teid);
        Ok(())
    }

    #[test]
    fn release_frees_anchor_capacity() -> TestResult {
        let mut s = smf();
        let sess = s.establish(supi(1), SessionId(1), 0)?;
        assert_eq!(s.anchor_load()[&sess.anchor_upf], 1);
        s.release(supi(1), SessionId(1))?;
        assert_eq!(s.anchor_load()[&sess.anchor_upf], 0);
        assert_eq!(s.session_count(), 0);
        assert_eq!(
            s.release(supi(1), SessionId(1)).unwrap_err(),
            SmfError::UnknownSession
        );
        Ok(())
    }

    #[test]
    fn recorder_counts_session_lifecycle() -> TestResult {
        let rec = Recorder::new();
        let mut s = smf();
        s.attach_recorder(rec.clone());
        s.establish(supi(1), SessionId(1), 7)?;
        s.establish(supi(2), SessionId(1), 7)?;
        s.path_switch(supi(1), SessionId(1), 8)?;
        s.release(supi(2), SessionId(1))?;
        let snap = rec.snapshot();
        assert_eq!(snap.counter("fiveg.smf.establishments"), 2);
        assert_eq!(snap.counter("fiveg.smf.path_switches"), 1);
        assert_eq!(snap.counter("fiveg.smf.releases"), 1);
        assert_eq!(snap.gauge("fiveg.smf.sessions"), Some(1.0));
        Ok(())
    }

    #[test]
    fn per_ue_session_cap() -> TestResult {
        let mut s = smf();
        for i in 0..MAX_SESSIONS_PER_UE {
            s.establish(supi(1), SessionId(i as u32), 0)?;
        }
        assert_eq!(
            s.establish(supi(1), SessionId(99), 0).unwrap_err(),
            SmfError::TooManySessions
        );
        // Other UEs unaffected.
        assert!(s.establish(supi(2), SessionId(1), 0).is_ok());
        Ok(())
    }

    #[test]
    fn single_anchor_becomes_the_bottleneck() -> TestResult {
        // Fig. 5a in miniature: with one gateway anchor, every session
        // lands on it.
        let mut s = Smf::new(vec![100], 0xFD00);
        for i in 0..50 {
            s.establish(supi(i), SessionId(1), 0)?;
        }
        assert_eq!(s.anchor_load()[&100], 50);
        Ok(())
    }
}
