//! GTP-U-style user-plane tunnel header with the `FutureExtensionField`
//! piggyback (§5).
//!
//! SpaceCore "piggybacks UE states in the FutureExtensionField (FEF) in
//! the 5G GTP-U tunnel header for packets to the next-hop UPFs in the
//! same session". This module provides a compact binary encoding of the
//! GTPv1-U header (version, message type, TEID, length) plus an optional
//! extension carrying opaque piggybacked state bytes, with strict
//! decode-side validation.

use crate::ids::TunnelId;

/// GTP-U message types we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GtpMessageType {
    /// G-PDU: encapsulated user data (type 255 in GTPv1-U).
    GPdu,
    /// Echo request (keepalive).
    EchoRequest,
    /// Echo response.
    EchoResponse,
    /// End marker (path switch in handover).
    EndMarker,
}

impl GtpMessageType {
    fn to_byte(self) -> u8 {
        match self {
            GtpMessageType::EchoRequest => 1,
            GtpMessageType::EchoResponse => 2,
            GtpMessageType::EndMarker => 254,
            GtpMessageType::GPdu => 255,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            1 => GtpMessageType::EchoRequest,
            2 => GtpMessageType::EchoResponse,
            254 => GtpMessageType::EndMarker,
            255 => GtpMessageType::GPdu,
            _ => return None,
        })
    }
}

/// A GTP-U header with optional piggybacked state extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GtpUHeader {
    pub msg_type: GtpMessageType,
    /// Tunnel endpoint identifier of the receiving endpoint.
    pub teid: TunnelId,
    /// Payload length (bytes of user data following the header).
    pub payload_len: u16,
    /// SpaceCore's FutureExtensionField: opaque encrypted UE state bytes.
    pub fef: Option<Vec<u8>>,
}

/// Decode failure reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GtpDecodeError {
    Truncated,
    BadVersion,
    BadMessageType,
    BadExtensionLength,
}

impl std::fmt::Display for GtpDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GtpDecodeError::Truncated => "truncated header",
            GtpDecodeError::BadVersion => "unsupported GTP version",
            GtpDecodeError::BadMessageType => "unknown message type",
            GtpDecodeError::BadExtensionLength => "extension length mismatch",
        };
        f.write_str(s)
    }
}

impl std::error::Error for GtpDecodeError {}

const VERSION_FLAGS: u8 = 0b0011_0000; // version 1, protocol type GTP
const FLAG_EXT: u8 = 0b0000_0100;

impl GtpUHeader {
    /// Create a plain G-PDU header.
    pub fn gpdu(teid: TunnelId, payload_len: u16) -> Self {
        Self {
            msg_type: GtpMessageType::GPdu,
            teid,
            payload_len,
            fef: None,
        }
    }

    /// Attach a FutureExtensionField carrying encrypted UE state.
    pub fn with_fef(mut self, state_bytes: Vec<u8>) -> Self {
        assert!(
            state_bytes.len() <= u16::MAX as usize,
            "FEF too large for the 16-bit length field"
        );
        self.fef = Some(state_bytes);
        self
    }

    /// Serialized header size in bytes (excludes user payload).
    pub fn header_len(&self) -> usize {
        8 + self.fef.as_ref().map_or(0, |f| 3 + f.len())
    }

    /// Encode to bytes.
    ///
    /// Layout: `flags(1) type(1) length(2) teid(4) [ext: marker(1)
    /// ext_len(2) bytes…]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(self.header_len());
        let flags = VERSION_FLAGS | if self.fef.is_some() { FLAG_EXT } else { 0 };
        b.push(flags);
        b.push(self.msg_type.to_byte());
        b.extend_from_slice(&self.payload_len.to_be_bytes());
        b.extend_from_slice(&self.teid.0.to_be_bytes());
        if let Some(fef) = &self.fef {
            b.push(0xFE); // FutureExtensionField marker
            b.extend_from_slice(&(fef.len() as u16).to_be_bytes());
            b.extend_from_slice(fef);
        }
        b
    }

    /// Decode from bytes; returns the header and the number of bytes it
    /// consumed (the user payload follows).
    pub fn decode(b: &[u8]) -> Result<(Self, usize), GtpDecodeError> {
        if b.len() < 8 {
            return Err(GtpDecodeError::Truncated);
        }
        let flags = b[0];
        if flags & 0b1111_0000 != VERSION_FLAGS {
            return Err(GtpDecodeError::BadVersion);
        }
        let msg_type =
            GtpMessageType::from_byte(b[1]).ok_or(GtpDecodeError::BadMessageType)?;
        let payload_len = u16::from_be_bytes([b[2], b[3]]);
        let teid = TunnelId(u32::from_be_bytes([b[4], b[5], b[6], b[7]]));
        let mut consumed = 8;
        let fef = if flags & FLAG_EXT != 0 {
            if b.len() < consumed + 3 {
                return Err(GtpDecodeError::Truncated);
            }
            if b[consumed] != 0xFE {
                return Err(GtpDecodeError::BadExtensionLength);
            }
            let len = u16::from_be_bytes([b[consumed + 1], b[consumed + 2]]) as usize;
            consumed += 3;
            if b.len() < consumed + len {
                return Err(GtpDecodeError::Truncated);
            }
            let fef = b[consumed..consumed + len].to_vec();
            consumed += len;
            Some(fef)
        } else {
            None
        };
        Ok((
            Self {
                msg_type,
                teid,
                payload_len,
                fef,
            },
            consumed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_plain() {
        let h = GtpUHeader::gpdu(TunnelId(0xDEADBEEF), 1400);
        let b = h.encode();
        let (h2, n) = GtpUHeader::decode(&b).unwrap();
        assert_eq!(h2, h);
        assert_eq!(n, b.len());
        assert_eq!(n, 8);
    }

    #[test]
    fn roundtrip_with_fef() {
        let state = vec![1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        let h = GtpUHeader::gpdu(TunnelId(7), 500).with_fef(state.clone());
        let b = h.encode();
        let (h2, n) = GtpUHeader::decode(&b).unwrap();
        assert_eq!(h2.fef.as_deref(), Some(state.as_slice()));
        assert_eq!(n, 8 + 3 + 9);
        assert_eq!(h2.header_len(), n);
    }

    #[test]
    fn payload_follows_header() {
        let h = GtpUHeader::gpdu(TunnelId(1), 4).with_fef(vec![0xAA; 4]);
        let mut wire = h.encode();
        wire.extend_from_slice(b"data");
        let (h2, n) = GtpUHeader::decode(&wire).unwrap();
        assert_eq!(&wire[n..], b"data");
        assert_eq!(h2.payload_len, 4);
    }

    #[test]
    fn truncation_detected() {
        let h = GtpUHeader::gpdu(TunnelId(9), 0).with_fef(vec![1, 2, 3]);
        let b = h.encode();
        for cut in [0, 4, 8, 9, 10, b.len() - 1] {
            assert_eq!(
                GtpUHeader::decode(&b[..cut]).unwrap_err(),
                GtpDecodeError::Truncated,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut b = GtpUHeader::gpdu(TunnelId(1), 0).encode();
        b[0] = 0b0101_0000; // GTP version 2
        assert_eq!(GtpUHeader::decode(&b).unwrap_err(), GtpDecodeError::BadVersion);
    }

    #[test]
    fn bad_message_type_rejected() {
        let mut b = GtpUHeader::gpdu(TunnelId(1), 0).encode();
        b[1] = 42;
        assert_eq!(
            GtpUHeader::decode(&b).unwrap_err(),
            GtpDecodeError::BadMessageType
        );
    }

    #[test]
    fn all_message_types_roundtrip() {
        for t in [
            GtpMessageType::GPdu,
            GtpMessageType::EchoRequest,
            GtpMessageType::EchoResponse,
            GtpMessageType::EndMarker,
        ] {
            let h = GtpUHeader {
                msg_type: t,
                teid: TunnelId(3),
                payload_len: 0,
                fef: None,
            };
            let (h2, _) = GtpUHeader::decode(&h.encode()).unwrap();
            assert_eq!(h2.msg_type, t);
        }
    }

    #[test]
    fn empty_fef_allowed() {
        let h = GtpUHeader::gpdu(TunnelId(1), 0).with_fef(vec![]);
        let (h2, _) = GtpUHeader::decode(&h.encode()).unwrap();
        assert_eq!(h2.fef, Some(vec![]));
    }
}
