//! UE connection state machine: RRC idle/connected with inactivity
//! release.
//!
//! §3.1: "Session establishment is frequent for each UE (every 106.9 s)
//! since inactive connections will be released after 10–15 s for power
//! saving." This module models that lifecycle; the workload generators in
//! `sc-dataset` drive it to produce the session-establishment event rates
//! behind the signaling-storm figures.

/// RRC/session connection state of a UE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// No radio connection; session establishment needed before data.
    Idle,
    /// Active radio connection with a live session.
    Connected,
}

/// Events driving the connection state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnEvent {
    /// Uplink data arrived at the UE (triggers C2 if idle).
    UplinkData,
    /// Downlink data arrived for the UE (triggers paging + C2 if idle).
    DownlinkData,
    /// The inactivity timer fired.
    InactivityTimeout,
    /// The serving radio link was lost (failure / handover failure).
    RadioLinkFailure,
}

/// What the network must do in response to an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnAction {
    /// Nothing to do.
    None,
    /// Run C2 session establishment (uplink-initiated).
    EstablishUplink,
    /// Run paging, then C2 (downlink-initiated).
    PageThenEstablish,
    /// Release the connection (power saving).
    Release,
}

/// A UE's connection with inactivity accounting.
#[derive(Debug, Clone, Copy)]
pub struct UeConnection {
    state: ConnState,
    /// Seconds of inactivity after which the RAN releases the connection
    /// (10–15 s per the paper; default 12.5 s).
    inactivity_release_s: f64,
    last_activity: f64,
    /// Count of session establishments performed.
    pub establishments: u64,
    /// Count of releases.
    pub releases: u64,
}

impl UeConnection {
    pub fn new(inactivity_release_s: f64) -> Self {
        assert!(inactivity_release_s > 0.0);
        Self {
            state: ConnState::Idle,
            inactivity_release_s,
            last_activity: 0.0,
            establishments: 0,
            releases: 0,
        }
    }

    /// Default per the paper's 10–15 s release window.
    pub fn with_default_release() -> Self {
        Self::new(12.5)
    }

    pub fn state(&self) -> ConnState {
        self.state
    }

    /// When the inactivity timer would fire, given no further activity.
    pub fn release_deadline(&self) -> f64 {
        self.last_activity + self.inactivity_release_s
    }

    /// Feed an event at time `now`; returns the required network action.
    pub fn on_event(&mut self, now: f64, ev: ConnEvent) -> ConnAction {
        match (self.state, ev) {
            (ConnState::Idle, ConnEvent::UplinkData) => {
                self.state = ConnState::Connected;
                self.last_activity = now;
                self.establishments += 1;
                ConnAction::EstablishUplink
            }
            (ConnState::Idle, ConnEvent::DownlinkData) => {
                self.state = ConnState::Connected;
                self.last_activity = now;
                self.establishments += 1;
                ConnAction::PageThenEstablish
            }
            (ConnState::Connected, ConnEvent::UplinkData | ConnEvent::DownlinkData) => {
                self.last_activity = now;
                ConnAction::None
            }
            (ConnState::Connected, ConnEvent::InactivityTimeout) => {
                if now - self.last_activity >= self.inactivity_release_s {
                    self.state = ConnState::Idle;
                    self.releases += 1;
                    ConnAction::Release
                } else {
                    ConnAction::None // activity happened since the timer was armed
                }
            }
            (ConnState::Connected, ConnEvent::RadioLinkFailure) => {
                self.state = ConnState::Idle;
                self.releases += 1;
                ConnAction::Release
            }
            (ConnState::Idle, ConnEvent::InactivityTimeout | ConnEvent::RadioLinkFailure) => {
                ConnAction::None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_uplink_establishes() {
        let mut c = UeConnection::with_default_release();
        assert_eq!(c.state(), ConnState::Idle);
        assert_eq!(c.on_event(0.0, ConnEvent::UplinkData), ConnAction::EstablishUplink);
        assert_eq!(c.state(), ConnState::Connected);
        assert_eq!(c.establishments, 1);
    }

    #[test]
    fn idle_downlink_pages_first() {
        let mut c = UeConnection::with_default_release();
        assert_eq!(
            c.on_event(0.0, ConnEvent::DownlinkData),
            ConnAction::PageThenEstablish
        );
    }

    #[test]
    fn activity_defers_release() {
        let mut c = UeConnection::with_default_release();
        c.on_event(0.0, ConnEvent::UplinkData);
        c.on_event(10.0, ConnEvent::UplinkData); // refresh at t=10
        // Timer armed at t=0 fires at 12.5 — but activity at 10 defers it.
        assert_eq!(c.on_event(12.5, ConnEvent::InactivityTimeout), ConnAction::None);
        assert_eq!(c.state(), ConnState::Connected);
        // Next deadline.
        assert_eq!(c.release_deadline(), 22.5);
        assert_eq!(c.on_event(22.5, ConnEvent::InactivityTimeout), ConnAction::Release);
        assert_eq!(c.state(), ConnState::Idle);
        assert_eq!(c.releases, 1);
    }

    #[test]
    fn reestablishment_cycle_counts() {
        // Paper: sessions every ~106.9 s, released after 10-15 s idle →
        // each cycle is one establishment + one release.
        let mut c = UeConnection::with_default_release();
        let mut t = 0.0;
        for _ in 0..10 {
            assert_eq!(c.on_event(t, ConnEvent::UplinkData), ConnAction::EstablishUplink);
            t += 12.5;
            assert_eq!(c.on_event(t, ConnEvent::InactivityTimeout), ConnAction::Release);
            t += 94.4; // rest of the 106.9 s inter-arrival
        }
        assert_eq!(c.establishments, 10);
        assert_eq!(c.releases, 10);
    }

    #[test]
    fn radio_failure_releases_immediately() {
        let mut c = UeConnection::with_default_release();
        c.on_event(0.0, ConnEvent::UplinkData);
        assert_eq!(c.on_event(1.0, ConnEvent::RadioLinkFailure), ConnAction::Release);
        assert_eq!(c.state(), ConnState::Idle);
    }

    #[test]
    fn idle_ignores_timers_and_failures() {
        let mut c = UeConnection::with_default_release();
        assert_eq!(c.on_event(5.0, ConnEvent::InactivityTimeout), ConnAction::None);
        assert_eq!(c.on_event(6.0, ConnEvent::RadioLinkFailure), ConnAction::None);
        assert_eq!(c.establishments, 0);
    }

    #[test]
    fn connected_data_is_free() {
        let mut c = UeConnection::with_default_release();
        c.on_event(0.0, ConnEvent::UplinkData);
        assert_eq!(c.on_event(1.0, ConnEvent::DownlinkData), ConnAction::None);
        assert_eq!(c.establishments, 1, "no re-establishment while connected");
    }
}
