//! Network functions and the Figure 6 function-split taxonomy.
//!
//! The paper's what-if analysis (§3) progressively adds radio, session,
//! mobility, and security functions to satellites:
//!
//! * **Option 1** — radio access only (5G NTN regeneration mode, Fig. 6a),
//! * **Option 2** — + data session (UPF) in space (Fig. 6b),
//! * **Option 3** — + mobility (AMF, SMF) in space — the Baoyun split
//!   (Fig. 6c),
//! * **Option 4** — everything in space, including AUSF/UDM/PCF
//!   (Fig. 6d).
//!
//! A [`FunctionSplit`] assigns each function a [`Placement`]; procedures
//! use it to decide which signaling hops stay local to the satellite and
//! which must traverse the space-ground boundary — the quantity behind
//! every signaling-storm figure (Figs. 10, 20).

/// A 5G core/radio network function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkFunction {
    /// Radio base station (gNB).
    Ran,
    /// Access and Mobility Management Function.
    Amf,
    /// Session Management Function.
    Smf,
    /// User Plane Function (and anchor gateway).
    Upf,
    /// Authentication Server Function.
    Ausf,
    /// Unified Data Management.
    Udm,
    /// Policy and Charging Function.
    Pcf,
    /// State repository (UDSF) / subscriber database.
    Db,
}

impl NetworkFunction {
    /// All functions, in the display order used by Figure 7's legend.
    pub const ALL: [NetworkFunction; 8] = [
        NetworkFunction::Upf,
        NetworkFunction::Amf,
        NetworkFunction::Smf,
        NetworkFunction::Pcf,
        NetworkFunction::Udm,
        NetworkFunction::Ausf,
        NetworkFunction::Db,
        NetworkFunction::Ran,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            NetworkFunction::Ran => "RAN",
            NetworkFunction::Amf => "AMF",
            NetworkFunction::Smf => "SMF",
            NetworkFunction::Upf => "UPF",
            NetworkFunction::Ausf => "AUSF",
            NetworkFunction::Udm => "UDM",
            NetworkFunction::Pcf => "PCF",
            NetworkFunction::Db => "DB",
        }
    }
}

/// Where a function instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// On the serving LEO satellite.
    Satellite,
    /// At the remote terrestrial home / ground station.
    Ground,
}

/// The Figure 6 options plus SpaceCore's split, as named presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SplitOption {
    /// Option 1: radio access only in space (5G NTN regeneration mode).
    RadioOnly,
    /// Option 2: radio + data session (UPF) in space.
    DataSession,
    /// Option 3: radio + session + mobility (UPF, SMF, AMF) — Baoyun.
    SessionMobility,
    /// Option 4: all functions in space, including security state.
    AllFunctions,
    /// SpaceCore: stateless radio + UPF + proxy in space; control
    /// functions remain at the home, states live on UEs.
    SpaceCore,
}

impl SplitOption {
    /// The four stateful options analyzed in §3 (Figure 6 / Figure 10).
    pub const STATEFUL: [SplitOption; 4] = [
        SplitOption::RadioOnly,
        SplitOption::DataSession,
        SplitOption::SessionMobility,
        SplitOption::AllFunctions,
    ];

    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            SplitOption::RadioOnly => "Radio only",
            SplitOption::DataSession => "Data session",
            SplitOption::SessionMobility => "Session & mobility",
            SplitOption::AllFunctions => "All functions",
            SplitOption::SpaceCore => "SpaceCore",
        }
    }

    /// The function split this option induces.
    pub fn split(self) -> FunctionSplit {
        use NetworkFunction as N;
        use Placement::*;
        let mut s = FunctionSplit::all_ground();
        match self {
            SplitOption::RadioOnly => {
                s.set(N::Ran, Satellite);
            }
            SplitOption::DataSession => {
                s.set(N::Ran, Satellite);
                s.set(N::Upf, Satellite);
            }
            SplitOption::SessionMobility => {
                s.set(N::Ran, Satellite);
                s.set(N::Upf, Satellite);
                s.set(N::Smf, Satellite);
                s.set(N::Amf, Satellite);
            }
            SplitOption::AllFunctions => {
                for f in N::ALL {
                    s.set(f, Satellite);
                }
            }
            SplitOption::SpaceCore => {
                // Stateless data-plane functions at the edge; control
                // functions stay home (states live on UEs).
                s.set(N::Ran, Satellite);
                s.set(N::Upf, Satellite);
            }
        }
        s
    }

    /// Does this option keep per-UE session state on the satellite?
    /// (SpaceCore is the only space-resident option that does not.)
    pub fn satellite_is_stateful(self) -> bool {
        !matches!(self, SplitOption::SpaceCore | SplitOption::RadioOnly)
    }
}

/// Maps every network function to its placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionSplit {
    placements: [Placement; 8],
}

impl FunctionSplit {
    /// Everything at the ground (the classic transparent-pipe layout).
    pub fn all_ground() -> Self {
        Self {
            placements: [Placement::Ground; 8],
        }
    }

    fn idx(f: NetworkFunction) -> usize {
        NetworkFunction::ALL
            .iter()
            .position(|x| *x == f)
            .expect("function in ALL")
    }

    /// Set one function's placement.
    pub fn set(&mut self, f: NetworkFunction, p: Placement) {
        self.placements[Self::idx(f)] = p;
    }

    /// Where does `f` run?
    pub fn placement(&self, f: NetworkFunction) -> Placement {
        self.placements[Self::idx(f)]
    }

    /// Functions running on the satellite.
    pub fn satellite_functions(&self) -> Vec<NetworkFunction> {
        NetworkFunction::ALL
            .into_iter()
            .filter(|f| self.placement(*f) == Placement::Satellite)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use NetworkFunction as N;

    #[test]
    fn option1_radio_only() {
        let s = SplitOption::RadioOnly.split();
        assert_eq!(s.placement(N::Ran), Placement::Satellite);
        assert_eq!(s.placement(N::Upf), Placement::Ground);
        assert_eq!(s.placement(N::Amf), Placement::Ground);
        assert_eq!(s.satellite_functions(), vec![N::Ran]);
    }

    #[test]
    fn option3_matches_baoyun() {
        // "This satellite consolidates 5G mobility (AMF), session
        // management (SMF), and user plane (UPF) functions."
        let s = SplitOption::SessionMobility.split();
        for f in [N::Ran, N::Upf, N::Amf, N::Smf] {
            assert_eq!(s.placement(f), Placement::Satellite, "{f:?}");
        }
        for f in [N::Ausf, N::Udm, N::Pcf, N::Db] {
            assert_eq!(s.placement(f), Placement::Ground, "{f:?}");
        }
    }

    #[test]
    fn option4_everything_in_space() {
        let s = SplitOption::AllFunctions.split();
        assert_eq!(s.satellite_functions().len(), 8);
    }

    #[test]
    fn spacecore_split_is_stateless_edge() {
        let s = SplitOption::SpaceCore.split();
        assert_eq!(s.placement(N::Ran), Placement::Satellite);
        assert_eq!(s.placement(N::Upf), Placement::Satellite);
        // Control and state functions stay home.
        for f in [N::Amf, N::Smf, N::Ausf, N::Udm, N::Pcf, N::Db] {
            assert_eq!(s.placement(f), Placement::Ground, "{f:?}");
        }
        assert!(!SplitOption::SpaceCore.satellite_is_stateful());
    }

    #[test]
    fn statefulness_classification() {
        assert!(!SplitOption::RadioOnly.satellite_is_stateful());
        assert!(SplitOption::DataSession.satellite_is_stateful());
        assert!(SplitOption::SessionMobility.satellite_is_stateful());
        assert!(SplitOption::AllFunctions.satellite_is_stateful());
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = SplitOption::STATEFUL.iter().map(|o| o.name()).collect();
        names.push(SplitOption::SpaceCore.name());
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
