//! NAS message codec: binary encoding of the signaling messages the
//! procedures exchange.
//!
//! The step tables in [`crate::messages`] treat messages abstractly;
//! this module gives the subset the SpaceCore proxy actually touches a
//! concrete wire format (TS 24.501-flavoured: extended protocol
//! discriminator, message type, TLV information elements), so the
//! piggybacking path (§5: state replicas inside the RRC setup complete /
//! PDU session request) can be tested byte-for-byte.

/// NAS message types we encode (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NasMessageType {
    RegistrationRequest,
    RegistrationAccept,
    AuthenticationRequest,
    AuthenticationResponse,
    SecurityModeCommand,
    SecurityModeComplete,
    PduSessionEstablishmentRequest,
    PduSessionEstablishmentAccept,
    ServiceRequest,
}

impl NasMessageType {
    fn to_byte(self) -> u8 {
        match self {
            NasMessageType::RegistrationRequest => 0x41,
            NasMessageType::RegistrationAccept => 0x42,
            NasMessageType::AuthenticationRequest => 0x56,
            NasMessageType::AuthenticationResponse => 0x57,
            NasMessageType::SecurityModeCommand => 0x5D,
            NasMessageType::SecurityModeComplete => 0x5E,
            NasMessageType::PduSessionEstablishmentRequest => 0xC1,
            NasMessageType::PduSessionEstablishmentAccept => 0xC2,
            NasMessageType::ServiceRequest => 0x4C,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0x41 => NasMessageType::RegistrationRequest,
            0x42 => NasMessageType::RegistrationAccept,
            0x56 => NasMessageType::AuthenticationRequest,
            0x57 => NasMessageType::AuthenticationResponse,
            0x5D => NasMessageType::SecurityModeCommand,
            0x5E => NasMessageType::SecurityModeComplete,
            0xC1 => NasMessageType::PduSessionEstablishmentRequest,
            0xC2 => NasMessageType::PduSessionEstablishmentAccept,
            0x4C => NasMessageType::ServiceRequest,
            _ => return None,
        })
    }
}

/// Information-element tags (TLV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IeTag {
    /// Concealed or temporary identity.
    MobileIdentity,
    /// RAND/AUTN or RES.
    AuthParam,
    /// Requested/assigned PDU address.
    PduAddress,
    /// QoS rules.
    QosRules,
    /// SpaceCore's piggybacked encrypted state replica (vendor IE).
    StateReplica,
    /// SpaceCore's DH public value X (vendor IE).
    DhPublic,
}

impl IeTag {
    fn to_byte(self) -> u8 {
        match self {
            IeTag::MobileIdentity => 0x77,
            IeTag::AuthParam => 0x21,
            IeTag::PduAddress => 0x29,
            IeTag::QosRules => 0x7A,
            IeTag::StateReplica => 0xE0,
            IeTag::DhPublic => 0xE1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0x77 => IeTag::MobileIdentity,
            0x21 => IeTag::AuthParam,
            0x29 => IeTag::PduAddress,
            0x7A => IeTag::QosRules,
            0xE0 => IeTag::StateReplica,
            0xE1 => IeTag::DhPublic,
            _ => return None,
        })
    }
}

/// A NAS message: type + TLV information elements, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NasMessage {
    pub msg_type: NasMessageType,
    pub ies: Vec<(IeTag, Vec<u8>)>,
}

/// Decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NasDecodeError {
    Truncated,
    BadDiscriminator,
    BadMessageType,
    UnknownIe(u8),
}

const EPD_5GMM: u8 = 0x7E; // extended protocol discriminator, 5G MM

impl NasMessage {
    pub fn new(msg_type: NasMessageType) -> Self {
        Self {
            msg_type,
            ies: Vec::new(),
        }
    }

    /// Append an information element.
    pub fn with_ie(mut self, tag: IeTag, value: Vec<u8>) -> Self {
        assert!(value.len() <= u16::MAX as usize, "IE too large");
        self.ies.push((tag, value));
        self
    }

    /// First IE with the given tag.
    pub fn ie(&self, tag: IeTag) -> Option<&[u8]> {
        self.ies
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, v)| v.as_slice())
    }

    /// Wire size in bytes.
    pub fn wire_len(&self) -> usize {
        2 + self.ies.iter().map(|(_, v)| 3 + v.len()).sum::<usize>()
    }

    /// Encode: `EPD(1) type(1) [tag(1) len(2BE) value…]*`.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut b);
        b
    }

    /// Encode into a caller-supplied buffer (cleared first) — the
    /// allocation-free variant behind [`crate::arena::MessageArena`].
    pub fn encode_into(&self, b: &mut Vec<u8>) {
        b.clear();
        b.reserve(self.wire_len());
        b.push(EPD_5GMM);
        b.push(self.msg_type.to_byte());
        for (tag, value) in &self.ies {
            b.push(tag.to_byte());
            b.extend_from_slice(&(value.len() as u16).to_be_bytes());
            b.extend_from_slice(value);
        }
    }

    /// Decode with strict validation.
    pub fn decode(b: &[u8]) -> Result<Self, NasDecodeError> {
        if b.len() < 2 {
            return Err(NasDecodeError::Truncated);
        }
        if b[0] != EPD_5GMM {
            return Err(NasDecodeError::BadDiscriminator);
        }
        let msg_type =
            NasMessageType::from_byte(b[1]).ok_or(NasDecodeError::BadMessageType)?;
        let mut ies = Vec::new();
        let mut i = 2;
        while i < b.len() {
            if i + 3 > b.len() {
                return Err(NasDecodeError::Truncated);
            }
            let tag = IeTag::from_byte(b[i]).ok_or(NasDecodeError::UnknownIe(b[i]))?;
            let len = u16::from_be_bytes([b[i + 1], b[i + 2]]) as usize;
            i += 3;
            if i + len > b.len() {
                return Err(NasDecodeError::Truncated);
            }
            ies.push((tag, b[i..i + len].to_vec()));
            i += len;
        }
        Ok(Self { msg_type, ies })
    }
}

/// Build the SpaceCore-piggybacked PDU session request (§5: "the proxy
/// leverages 5G's standard UE-initiated PDU session setup request to
/// piggyback local states to the satellites").
pub fn piggybacked_session_request(
    replica_bytes: Vec<u8>,
    dh_public: u64,
) -> NasMessage {
    NasMessage::new(NasMessageType::PduSessionEstablishmentRequest)
        .with_ie(IeTag::StateReplica, replica_bytes)
        .with_ie(IeTag::DhPublic, dh_public.to_be_bytes().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_ies() {
        let m = NasMessage::new(NasMessageType::RegistrationRequest)
            .with_ie(IeTag::MobileIdentity, vec![1, 2, 3, 4])
            .with_ie(IeTag::AuthParam, vec![9; 16]);
        let b = m.encode();
        assert_eq!(b.len(), m.wire_len());
        assert_eq!(NasMessage::decode(&b).unwrap(), m);
    }

    #[test]
    fn empty_message_roundtrip() {
        let m = NasMessage::new(NasMessageType::ServiceRequest);
        assert_eq!(NasMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn all_message_types_roundtrip() {
        for t in [
            NasMessageType::RegistrationRequest,
            NasMessageType::RegistrationAccept,
            NasMessageType::AuthenticationRequest,
            NasMessageType::AuthenticationResponse,
            NasMessageType::SecurityModeCommand,
            NasMessageType::SecurityModeComplete,
            NasMessageType::PduSessionEstablishmentRequest,
            NasMessageType::PduSessionEstablishmentAccept,
            NasMessageType::ServiceRequest,
        ] {
            let m = NasMessage::new(t);
            assert_eq!(NasMessage::decode(&m.encode()).unwrap().msg_type, t);
        }
    }

    #[test]
    fn truncation_and_garbage_rejected() {
        let m = NasMessage::new(NasMessageType::RegistrationAccept)
            .with_ie(IeTag::PduAddress, vec![0; 16]);
        let b = m.encode();
        for cut in [0, 1, 3, 4, b.len() - 1] {
            assert!(NasMessage::decode(&b[..cut]).is_err(), "cut {cut}");
        }
        let mut bad_epd = b.clone();
        bad_epd[0] = 0x2E;
        assert_eq!(
            NasMessage::decode(&bad_epd).unwrap_err(),
            NasDecodeError::BadDiscriminator
        );
        let mut bad_type = b.clone();
        bad_type[1] = 0xFF;
        assert_eq!(
            NasMessage::decode(&bad_type).unwrap_err(),
            NasDecodeError::BadMessageType
        );
        let mut bad_ie = b;
        bad_ie[2] = 0x01;
        assert_eq!(
            NasMessage::decode(&bad_ie).unwrap_err(),
            NasDecodeError::UnknownIe(0x01)
        );
    }

    #[test]
    fn piggybacked_request_carries_replica_and_x() {
        let replica = vec![0xAB; 200];
        let m = piggybacked_session_request(replica.clone(), 0x1122_3344_5566_7788);
        let b = m.encode();
        let d = NasMessage::decode(&b).unwrap();
        assert_eq!(d.ie(IeTag::StateReplica).unwrap(), replica.as_slice());
        assert_eq!(
            d.ie(IeTag::DhPublic).unwrap(),
            0x1122_3344_5566_7788u64.to_be_bytes()
        );
        // The piggyback rides one message: the replica adds bytes but no
        // extra round trips.
        assert!(m.wire_len() > 200);
    }

    #[test]
    fn ie_lookup_returns_first_match() {
        let m = NasMessage::new(NasMessageType::RegistrationAccept)
            .with_ie(IeTag::QosRules, vec![1])
            .with_ie(IeTag::QosRules, vec![2]);
        assert_eq!(m.ie(IeTag::QosRules).unwrap(), &[1]);
        assert!(m.ie(IeTag::AuthParam).is_none());
    }
}
