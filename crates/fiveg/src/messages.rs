//! Signaling procedures transcribed from Figure 9.
//!
//! Each of the paper's four core procedures — **C1** initial
//! registration, **C2** session establishment, **C3** handover, **C4**
//! mobility registration update — is encoded as an ordered list of
//! [`SignalingStep`]s: one network message each, annotated with the
//! sending and receiving entity and the session-state operations the
//! standards attach to that step (the `copy S1…`, `create S5…`
//! annotations in Figure 9).
//!
//! Given a [`FunctionSplit`], a step can be
//! classified: does it stay inside the satellite, cross the
//! space-ground boundary (loading a ground station), or stay on the
//! ground? That classification is the engine behind Figures 10/12/20.

use crate::nf::{FunctionSplit, NetworkFunction, Placement};
use crate::state::StateCategory;

/// A protocol entity participating in a procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Entity {
    /// The user equipment.
    Ue,
    /// The serving base station (source gNB in handovers).
    Ran,
    /// The target base station in handovers.
    RanTarget,
    /// The serving AMF (the *new* AMF in C4).
    Amf,
    /// The old AMF in mobility registration updates.
    AmfOld,
    Smf,
    Upf,
    Ausf,
    Udm,
    Pcf,
}

impl Entity {
    /// The network function this entity instantiates (`None` for the UE).
    pub fn nf(self) -> Option<NetworkFunction> {
        match self {
            Entity::Ue => None,
            Entity::Ran | Entity::RanTarget => Some(NetworkFunction::Ran),
            Entity::Amf | Entity::AmfOld => Some(NetworkFunction::Amf),
            Entity::Smf => Some(NetworkFunction::Smf),
            Entity::Upf => Some(NetworkFunction::Upf),
            Entity::Ausf => Some(NetworkFunction::Ausf),
            Entity::Udm => Some(NetworkFunction::Udm),
            Entity::Pcf => Some(NetworkFunction::Pcf),
        }
    }

    /// Where this entity lives under a function split. The UE is its own
    /// location.
    pub fn location(self, split: &FunctionSplit) -> EntityLocation {
        match self.nf() {
            None => EntityLocation::Ue,
            Some(f) => match split.placement(f) {
                Placement::Satellite => EntityLocation::Satellite,
                Placement::Ground => EntityLocation::Ground,
            },
        }
    }
}

/// Physical location of an entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityLocation {
    Ue,
    Satellite,
    Ground,
}

/// A state operation attached to a signaling step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateOp {
    pub kind: StateOpKind,
    pub category: StateCategory,
}

/// `StateOp` constructor usable in `const`/`static` step tables.
const fn op(kind: StateOpKind, category: StateCategory) -> StateOp {
    StateOp { kind, category }
}

/// What the step does to the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateOpKind {
    /// Replicate state to the receiver.
    Copy,
    Create,
    Update,
    Delete,
}

/// One signaling message.
///
/// Fully `'static`: the Figure 9 step tables are baked into the binary
/// as `static` arrays, so building a [`Procedure`] never allocates —
/// the capacity sweeps in fig10/fig12 construct procedures in their
/// innermost loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalingStep {
    /// Figure 9 label, e.g. "P2: registration request".
    pub label: &'static str,
    pub from: Entity,
    pub to: Entity,
    /// State operations the step performs at the receiver.
    pub ops: &'static [StateOp],
    /// Approximate wire size, bytes (NAS/NGAP messages are small).
    pub bytes: u32,
}

impl SignalingStep {
    /// Does this message traverse the space-ground boundary under the
    /// given split? (Every such traversal transits a ground station —
    /// the load counted on the GS bars of Figures 10/20.)
    pub fn crosses_space_ground(&self, split: &FunctionSplit) -> bool {
        use EntityLocation::*;
        let a = self.from.location(split);
        let b = self.to.location(split);
        matches!(
            (a, b),
            (Satellite, Ground) | (Ground, Satellite) | (Ue, Ground) | (Ground, Ue)
        )
    }

    /// Is the satellite involved in this message (as sender, receiver,
    /// or the radio relay for UE↔ground messages)?
    pub fn touches_satellite(&self, split: &FunctionSplit) -> bool {
        use EntityLocation::*;
        let a = self.from.location(split);
        let b = self.to.location(split);
        // Any UE message transits the serving satellite's radio; any
        // satellite endpoint obviously counts.
        a == Satellite || b == Satellite || a == Ue || b == Ue
    }

    /// Number of state operations that cross the space-ground boundary
    /// with this message (the "state tx" series of Fig. 12).
    pub fn state_tx_crossing(&self, split: &FunctionSplit) -> usize {
        if self.crosses_space_ground(split) {
            self.ops.len()
        } else {
            0
        }
    }
}

/// The procedure kinds of Figure 9 (plus network-triggered paging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcedureKind {
    /// C1: initial registration (Fig. 9a).
    InitialRegistration,
    /// C2: (uplink) session establishment / service request (Fig. 9b).
    SessionEstablishment,
    /// C3: handover (Fig. 9c).
    Handover,
    /// C4: mobility registration update (Fig. 9d).
    MobilityRegistration,
    /// Network-triggered paging preceding a downlink C2.
    Paging,
}

impl ProcedureKind {
    pub fn name(self) -> &'static str {
        match self {
            ProcedureKind::InitialRegistration => "C1 initial registration",
            ProcedureKind::SessionEstablishment => "C2 session establishment",
            ProcedureKind::Handover => "C3 handover",
            ProcedureKind::MobilityRegistration => "C4 mobility registration",
            ProcedureKind::Paging => "paging",
        }
    }

    /// Telemetry counter name for this kind (see docs/TELEMETRY.md).
    pub fn counter_name(self) -> &'static str {
        match self {
            ProcedureKind::InitialRegistration => "fiveg.procedures.c1_initial_registration",
            ProcedureKind::SessionEstablishment => "fiveg.procedures.c2_session_establishment",
            ProcedureKind::Handover => "fiveg.procedures.c3_handover",
            ProcedureKind::MobilityRegistration => "fiveg.procedures.c4_mobility_registration",
            ProcedureKind::Paging => "fiveg.procedures.paging",
        }
    }

    /// Windowed message-rate series name for this kind: signaling
    /// messages built per 1.0 sim-time window (see docs/TELEMETRY.md).
    /// Written by [`Procedure::build_obs_at`]; the five series side by
    /// side show which procedure class drives a storm.
    pub fn rate_series_name(self) -> &'static str {
        match self {
            ProcedureKind::InitialRegistration => "fiveg.msgs_per_window.c1_initial_registration",
            ProcedureKind::SessionEstablishment => "fiveg.msgs_per_window.c2_session_establishment",
            ProcedureKind::Handover => "fiveg.msgs_per_window.c3_handover",
            ProcedureKind::MobilityRegistration => "fiveg.msgs_per_window.c4_mobility_registration",
            ProcedureKind::Paging => "fiveg.msgs_per_window.paging",
        }
    }

    /// Root-span kind for a traced run of this procedure (the static
    /// name `sctrace` groups critical paths by; see docs/TELEMETRY.md).
    pub fn span_kind(self) -> &'static str {
        match self {
            ProcedureKind::InitialRegistration => "fiveg.proc.c1_initial_registration",
            ProcedureKind::SessionEstablishment => "fiveg.proc.c2_session_establishment",
            ProcedureKind::Handover => "fiveg.proc.c3_handover",
            ProcedureKind::MobilityRegistration => "fiveg.proc.c4_mobility_registration",
            ProcedureKind::Paging => "fiveg.proc.paging",
        }
    }
}

/// A full signaling procedure: ordered steps (a view into the static
/// Figure 9 tables — cheap to build and copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Procedure {
    pub kind: ProcedureKind,
    pub steps: &'static [SignalingStep],
}

/// Step-construction helper, usable in `static` step tables.
const fn step(
    label: &'static str,
    from: Entity,
    to: Entity,
    ops: &'static [StateOp],
    bytes: u32,
) -> SignalingStep {
    SignalingStep {
        label,
        from,
        to,
        ops,
        bytes,
    }
}

impl Procedure {
    /// Build the step list for a procedure kind. Allocation-free: the
    /// step tables are `static` data.
    pub const fn build(kind: ProcedureKind) -> Procedure {
        let steps: &'static [SignalingStep] = match kind {
            ProcedureKind::InitialRegistration => &tables::C1_INITIAL_REGISTRATION,
            ProcedureKind::SessionEstablishment => &tables::C2_SESSION_ESTABLISHMENT,
            ProcedureKind::Handover => &tables::C3_HANDOVER,
            ProcedureKind::MobilityRegistration => &tables::C4_MOBILITY_REGISTRATION,
            ProcedureKind::Paging => &tables::PAGING,
        };
        Procedure { kind, steps }
    }

    /// [`Procedure::build`] with telemetry: counts the total
    /// `fiveg.procedures.built`, the per-kind counter
    /// ([`ProcedureKind::counter_name`]), and observes the message count
    /// into the `fiveg.procedure.messages` histogram.
    pub fn build_obs(kind: ProcedureKind, obs: &sc_obs::Recorder) -> Procedure {
        let p = Procedure::build(kind);
        obs.inc("fiveg.procedures.built", 1);
        obs.inc(kind.counter_name(), 1);
        obs.observe("fiveg.procedure.messages", p.message_count() as f64);
        p
    }

    /// [`Procedure::build_obs`] stamped at sim-time `t`: additionally
    /// adds the procedure's message count to the per-kind windowed
    /// rate series ([`ProcedureKind::rate_series_name`]), so the C1–C4
    /// mix per window is visible in `sctrace series`.
    pub fn build_obs_at(kind: ProcedureKind, obs: &sc_obs::Recorder, t: f64) -> Procedure {
        let p = Procedure::build_obs(kind, obs);
        obs.series_inc(kind.rate_series_name(), t, p.message_count() as u64);
        p
    }

    /// Open this procedure's root span at sim-time `t` (ms), tagged
    /// with the procedure kind ([`ProcedureKind::span_kind`]) and its
    /// message count, plus any caller `fields` (e.g. the replay route).
    /// Pass the returned id as the parent of the transport-level run
    /// (`ProcedureSim::run_traced` in sc-netsim) and close it at the
    /// outcome time — the whole signaling exchange then reads as one
    /// tree in `sctrace`. Returns the disabled sentinel (a no-op to
    /// close) when telemetry is off.
    pub fn open_span(
        &self,
        obs: &sc_obs::Recorder,
        t: f64,
        mut fields: Vec<(&'static str, sc_obs::FieldValue)>,
    ) -> sc_obs::SpanId {
        if !obs.enabled() {
            return sc_obs::SpanId::DISABLED;
        }
        fields.insert(0, ("messages", sc_obs::FieldValue::from(self.message_count())));
        obs.span_open(None, self.kind.span_kind(), t, fields)
    }

    /// Total message count.
    pub fn message_count(&self) -> usize {
        self.steps.len()
    }

    /// Total state operations.
    pub fn state_op_count(&self) -> usize {
        self.steps.iter().map(|s| s.ops.len()).sum()
    }

    /// Messages that load the serving satellite under `split`.
    pub fn satellite_messages(&self, split: &FunctionSplit) -> usize {
        self.steps
            .iter()
            .filter(|s| s.touches_satellite(split))
            .count()
    }

    /// Messages that transit a ground station under `split`.
    pub fn ground_messages(&self, split: &FunctionSplit) -> usize {
        self.steps
            .iter()
            .filter(|s| s.crosses_space_ground(split))
            .count()
    }

    /// State operations shipped across the space-ground boundary.
    pub fn state_tx_crossing(&self, split: &FunctionSplit) -> usize {
        self.steps
            .iter()
            .map(|s| s.state_tx_crossing(split))
            .sum()
    }

    /// Per-NF processing workload: how many messages each network
    /// function receives (the unit of the Fig. 7 CPU breakdown).
    pub fn nf_workload(&self) -> Vec<(NetworkFunction, usize)> {
        let mut counts = std::collections::HashMap::new();
        for s in self.steps {
            if let Some(f) = s.to.nf() {
                *counts.entry(f).or_insert(0usize) += 1;
            }
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by_key(|(f, _)| NetworkFunction::ALL.iter().position(|x| x == f));
        v
    }
}

/// The Figure 9 step tables, baked into the binary. Scoped module so
/// the `Entity` glob import stays local to the tables.
mod tables {
    use super::{op, step, SignalingStep};
    use super::Entity::*;
    use super::StateCategory::*;
    use super::StateOpKind::*;

    /// Fig. 9a — C1 initial registration.
    pub(super) static C1_INITIAL_REGISTRATION: [SignalingStep; 24] = [
    step("P0: rrc connection request", Ue, Ran, &[], 56),
    step("P0: rrc connection setup", Ran, Ue, &[], 88),
    step("P1: rrc setup complete", Ue, Ran, &[], 96),
    step(
        "P2: registration request",
        Ran,
        Amf,
        &[op(Copy, S1Identifiers), op(Copy, S2Location)],
        180,
    ),
    // P3: authentication and security (AKA + NAS security mode).
    step("P3: ue authentication request", Amf, Ausf, &[op(Copy, S1Identifiers)], 120),
    step(
        "P3: av generation request",
        Ausf,
        Udm,
        &[op(Create, S5Security)], // create S5 (5G HE AV)
        120,
    ),
    step("P3: av generation response", Udm, Ausf, &[op(Copy, S5Security)], 160),
    step(
        "P3: ue authentication response",
        Ausf,
        Amf,
        &[op(Create, S5Security)], // create S5 (5G SE AV)
        160,
    ),
    step("P3: authentication challenge", Amf, Ue, &[op(Copy, S5Security)], 140),
    step("P3: authentication result", Ue, Amf, &[op(Update, S5Security)], 120),
    step("P3: security mode command", Amf, Ue, &[op(Update, S5Security)], 100),
    step("P3: security mode complete", Ue, Amf, &[], 90),
    // P4: policy establishment.
    step("P4: policy establishment", Amf, Pcf, &[op(Copy, S1Identifiers)], 140),
    step("P4: policy response", Pcf, Amf, &[op(Create, S3Qos), op(Create, S4Billing)], 200),
    // P5: registration accept.
    step("P5: registration accept", Amf, Ue, &[op(Update, S1Identifiers)], 160), // update S1 (5G-GUTI)
    step("P5: registration complete", Ue, Amf, &[], 80),
    // P6-P9: first PDU session.
    step(
        "P6: session request",
        Amf,
        Smf,
        &[op(Copy, S1Identifiers), op(Copy, S3Qos), op(Copy, S4Billing)],
        220,
    ),
    step("P7: session context create", Smf, Udm, &[op(Copy, S1Identifiers)], 140),
    step("P7: session context response", Udm, Smf, &[], 120),
    step(
        "P8: forwarding rule establishment",
        Smf,
        Upf,
        &[op(Create, S2Location), op(Create, S3Qos), op(Create, S4Billing)],
        240,
    ),
    step("P8: forwarding rule ack", Upf, Smf, &[op(Update, S2Location)], 120),
    step(
        "P9: session accept (to AMF)",
        Smf,
        Amf,
        &[op(Copy, S1Identifiers), op(Copy, S2Location)],
        200,
    ),
    step("P9: session accept (to RAN)", Amf, Ran, &[op(Copy, S3Qos)], 180),
    step("P9: session accept (to UE)", Ran, Ue, &[op(Copy, S2Location)], 160),
];

/// Fig. 9b — C2 session establishment (uplink service request).
pub(super) static C2_SESSION_ESTABLISHMENT: [SignalingStep; 13] = [
    step("P0: rrc connection request", Ue, Ran, &[], 56),
    step("P0: rrc connection setup", Ran, Ue, &[], 88),
    step("P1: rrc setup complete (service request)", Ue, Ran, &[], 96),
    step(
        "P6: service request",
        Ran,
        Amf,
        &[op(Copy, S1Identifiers)], // copy S1 (Tunnel ID)
        140,
    ),
    step(
        "P7: session context create",
        Amf,
        Smf,
        &[op(Copy, S1Identifiers)], // copy S1 (SUPI, Tunnel ID)
        160,
    ),
    step("P4: policy modification", Smf, Pcf, &[op(Copy, S1Identifiers)], 130),
    step("P4: policy response", Pcf, Smf, &[op(Update, S3Qos)], 150),
    step(
        "P8: forwarding rule modification",
        Smf,
        Upf,
        &[op(Update, S2Location), op(Update, S3Qos), op(Update, S4Billing)],
        220,
    ),
    step("P8: forwarding rule ack", Upf, Smf, &[], 110),
    step(
        "P9: session accept (to AMF)",
        Smf,
        Amf,
        &[op(Copy, S1Identifiers), op(Copy, S2Location)],
        190,
    ),
    step("P9: session accept (to UE)", Amf, Ue, &[op(Copy, S1Identifiers)], 160),
    step(
        "P10: session context update request",
        Amf,
        Smf,
        &[op(Update, S1Identifiers)], // update S1 (Tunnel ID)
        130,
    ),
    step("P11: session context update response", Smf, Amf, &[], 110),
];

/// Fig. 9c — C3 handover (source BS → target BS via AMF/direct tunnel).
pub(super) static C3_HANDOVER: [SignalingStep; 11] = [
    step(
        "P12: handover request",
        Ran,
        RanTarget,
        &[op(Copy, S2Location), op(Copy, S4Billing), op(Copy, S5Security)],
        260,
    ),
    step("P12: handover ack", RanTarget, Ran, &[], 120),
    step("P12: rrc reconfiguration (ho command)", Ran, Ue, &[], 140),
    step("P12: ho confirm (sync to target)", Ue, RanTarget, &[], 100),
    step(
        "P13: path switch request",
        RanTarget,
        Amf,
        &[op(Copy, S2Location), op(Copy, S5Security)],
        200,
    ),
    step(
        "P10: session context update",
        Amf,
        Smf,
        &[op(Copy, S2Location), op(Copy, S3Qos)],
        170,
    ),
    step("P10: forwarding path update", Smf, Upf, &[op(Update, S2Location)], 150),
    step("P10: forwarding path ack", Upf, Smf, &[], 100),
    step("P10: session context ack", Smf, Amf, &[], 100),
    step("P14: path switch response", Amf, RanTarget, &[op(Update, S2Location)], 130),
    step("P15: session release (source)", RanTarget, Ran, &[op(Delete, S2Location)], 90),
];

/// Fig. 9d — C4 mobility registration update (tracking-area change).
pub(super) static C4_MOBILITY_REGISTRATION: [SignalingStep; 12] = [
    step("P12': rrc + registration request", Ue, RanTarget, &[], 120),
    step(
        "P12': registration request",
        RanTarget,
        Amf,
        &[op(Copy, S1Identifiers), op(Copy, S2Location)], // S1 (5G-S-TMSI), S2 (PLMN ID)
        180,
    ),
    step(
        "P16: ue context transfer request",
        Amf,
        AmfOld,
        &[op(Copy, S1Identifiers)],
        150,
    ),
    step(
        "P16: ue context transfer",
        AmfOld,
        Amf,
        &[
            op(Copy, S1Identifiers),
            op(Copy, S2Location),
            op(Copy, S3Qos),
            op(Copy, S5Security),
        ],
        320,
    ),
    step("P1-7: re-register to UDM", Amf, Udm, &[op(Copy, S1Identifiers)], 140),
    step("P1-7: subscription data", Udm, Amf, &[op(Copy, S3Qos), op(Copy, S4Billing)], 220),
    step("P1-7: deregistration notify", Udm, AmfOld, &[op(Delete, S1Identifiers)], 100),
    step(
        "P10: session context update",
        Amf,
        Smf,
        &[op(Copy, S1Identifiers)], // copy S1 (SUPI, Tunnel ID)
        150,
    ),
    step("P10: session context ack", Smf, Amf, &[], 110),
    step("P5: registration accept", Amf, Ue, &[op(Update, S1Identifiers)], 160),
    step("P5: registration complete", Ue, Amf, &[], 80),
    step("P15: old context release", AmfOld, Ran, &[op(Delete, S2Location)], 90),
];

/// Network-triggered paging before a downlink session establishment:
/// the anchor UPF notifies SMF/AMF of data arrival; the RAN pages the UE.
pub(super) static PAGING: [SignalingStep; 4] = [
    step("downlink data notification", Upf, Smf, &[], 100),
    step("data notification forward", Smf, Amf, &[op(Copy, S1Identifiers)], 110),
    step("paging request", Amf, Ran, &[op(Copy, S1Identifiers)], 100),
    step("paging broadcast", Ran, Ue, &[], 60),
];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nf::SplitOption;
    use crate::state::StateCategory::*;

    #[test]
    fn procedure_sizes_match_figure9_scale() {
        // Full 5G registration involves ~20+ messages; service request
        // ~a dozen; handover and mobility registration ~10.
        assert_eq!(
            Procedure::build(ProcedureKind::InitialRegistration).message_count(),
            24
        );
        assert_eq!(
            Procedure::build(ProcedureKind::SessionEstablishment).message_count(),
            13
        );
        assert_eq!(Procedure::build(ProcedureKind::Handover).message_count(), 11);
        assert_eq!(
            Procedure::build(ProcedureKind::MobilityRegistration).message_count(),
            12
        );
        assert_eq!(Procedure::build(ProcedureKind::Paging).message_count(), 4);
    }

    #[test]
    fn c1_touches_all_control_functions() {
        let p = Procedure::build(ProcedureKind::InitialRegistration);
        let nfs: Vec<_> = p.nf_workload().into_iter().map(|(f, _)| f).collect();
        for f in [
            NetworkFunction::Amf,
            NetworkFunction::Smf,
            NetworkFunction::Upf,
            NetworkFunction::Ausf,
            NetworkFunction::Udm,
            NetworkFunction::Pcf,
        ] {
            assert!(nfs.contains(&f), "{f:?} missing from C1 workload");
        }
    }

    #[test]
    fn ground_crossings_by_option() {
        // Options 1-2 fetch session states from the ground (P6/P9 in
        // Fig. 9b) and so load ground stations; option 3 localizes all
        // but the PCF round-trip; option 4 is fully local.
        let c2 = Procedure::build(ProcedureKind::SessionEstablishment);
        let radio = c2.ground_messages(&SplitOption::RadioOnly.split());
        let data = c2.ground_messages(&SplitOption::DataSession.split());
        let mob = c2.ground_messages(&SplitOption::SessionMobility.split());
        let all = c2.ground_messages(&SplitOption::AllFunctions.split());
        assert!(radio >= 2, "radio {radio}");
        assert!(data >= radio, "data {data} radio {radio}");
        assert!(mob < data, "mob {mob} data {data}");
        assert_eq!(all, 0, "option 4 fully local");
    }

    #[test]
    fn option3_localizes_session_establishment() {
        // With AMF+SMF+UPF on the satellite, C2's only remaining ground
        // crossings are the PCF policy round-trip.
        let c2 = Procedure::build(ProcedureKind::SessionEstablishment);
        let mob = SplitOption::SessionMobility.split();
        assert_eq!(c2.ground_messages(&mob), 2);
    }

    #[test]
    fn c4_ships_security_states_on_context_transfer() {
        let c4 = Procedure::build(ProcedureKind::MobilityRegistration);
        let transfers_s5 = c4.steps.iter().any(|s| {
            s.label.contains("context transfer")
                && s.ops.iter().any(|o| o.category == S5Security)
        });
        assert!(transfers_s5, "C4 must migrate S5 between AMFs (Fig. 9d)");
    }

    #[test]
    fn state_tx_counts_only_crossings() {
        let c1 = Procedure::build(ProcedureKind::InitialRegistration);
        let all_space = SplitOption::AllFunctions.split();
        // With everything in space, no state crosses the boundary.
        assert_eq!(c1.state_tx_crossing(&all_space), 0);
        let radio = SplitOption::RadioOnly.split();
        assert!(c1.state_tx_crossing(&radio) >= 5, "{}", c1.state_tx_crossing(&radio));
    }

    #[test]
    fn every_step_has_positive_size() {
        for kind in [
            ProcedureKind::InitialRegistration,
            ProcedureKind::SessionEstablishment,
            ProcedureKind::Handover,
            ProcedureKind::MobilityRegistration,
            ProcedureKind::Paging,
        ] {
            for s in Procedure::build(kind).steps {
                assert!(s.bytes > 0, "{}: {}", kind.name(), s.label);
                assert_ne!(s.from, s.to, "{}: {}", kind.name(), s.label);
            }
        }
    }

    #[test]
    fn satellite_touch_classification() {
        let radio = SplitOption::RadioOnly.split();
        let s = step(
            "x",
            Entity::Smf,
            Entity::Upf,
            &[],
            100,
        );
        // Both on ground under radio-only: satellite not involved.
        assert!(!s.touches_satellite(&radio));
        assert!(!s.crosses_space_ground(&radio));
        let s2 = step("y", Entity::Ue, Entity::Ran, &[], 100);
        assert!(s2.touches_satellite(&radio));
    }

    #[test]
    fn build_obs_counts_kinds_and_messages() {
        let rec = sc_obs::Recorder::new();
        Procedure::build_obs(ProcedureKind::InitialRegistration, &rec);
        Procedure::build_obs(ProcedureKind::SessionEstablishment, &rec);
        Procedure::build_obs(ProcedureKind::SessionEstablishment, &rec);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("fiveg.procedures.built"), 3);
        assert_eq!(snap.counter("fiveg.procedures.c1_initial_registration"), 1);
        assert_eq!(snap.counter("fiveg.procedures.c2_session_establishment"), 2);
        let h = snap.histogram("fiveg.procedure.messages");
        assert_eq!(h.map(|h| h.count()), Some(3));
        assert_eq!(h.and_then(|h| h.max()), Some(24.0));
    }

    #[test]
    fn open_span_tags_kind_and_messages() {
        let rec = sc_obs::Recorder::new();
        let p = Procedure::build_obs(ProcedureKind::SessionEstablishment, &rec);
        let span = p.open_span(
            &rec,
            0.0,
            vec![("route", sc_obs::FieldValue::from("ground"))],
        );
        rec.span_close(span, 62.0);
        let s = rec.snapshot();
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].kind, "fiveg.proc.c2_session_establishment");
        assert_eq!(s.spans[0].parent, None);
        assert_eq!(s.spans[0].end, Some(62.0));
        let keys: Vec<&str> = s.spans[0].fields.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["messages", "route"]);
        // Disabled recorder: sentinel id, nothing recorded.
        let off = sc_obs::Recorder::disabled();
        assert_eq!(p.open_span(&off, 0.0, vec![]), sc_obs::SpanId::DISABLED);
    }

    #[test]
    fn span_kinds_are_distinct_and_prefixed() {
        let kinds = [
            ProcedureKind::InitialRegistration,
            ProcedureKind::SessionEstablishment,
            ProcedureKind::Handover,
            ProcedureKind::MobilityRegistration,
            ProcedureKind::Paging,
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.span_kind()).collect();
        assert!(names.iter().all(|n| n.starts_with("fiveg.proc.")));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
        // The windowed rate-series names are likewise distinct.
        let mut series: Vec<&str> = kinds.iter().map(|k| k.rate_series_name()).collect();
        assert!(series.iter().all(|n| n.starts_with("fiveg.msgs_per_window.")));
        series.sort_unstable();
        series.dedup();
        assert_eq!(series.len(), kinds.len());
    }

    #[test]
    fn build_obs_at_bills_the_windowed_rate_series() {
        let rec = sc_obs::Recorder::new();
        // Two C2 builds in window 0, one in window 2: the series carries
        // the per-window message totals, the counters the run totals.
        let p = Procedure::build_obs_at(ProcedureKind::SessionEstablishment, &rec, 0.1);
        Procedure::build_obs_at(ProcedureKind::SessionEstablishment, &rec, 0.9);
        Procedure::build_obs_at(ProcedureKind::SessionEstablishment, &rec, 2.0);
        let s = rec.snapshot();
        assert_eq!(s.counter("fiveg.procedures.c2_session_establishment"), 3);
        let m = p.message_count() as f64;
        let pts = s
            .series
            .get(ProcedureKind::SessionEstablishment.rate_series_name())
            .map(|d| d.points());
        assert_eq!(pts, Some(vec![(0, 2.0 * m), (2, m)]));
    }

    #[test]
    fn paging_reaches_ue_via_ran() {
        let p = Procedure::build(ProcedureKind::Paging);
        let last = p.steps.last().unwrap();
        assert_eq!(last.from, Entity::Ran);
        assert_eq!(last.to, Entity::Ue);
    }
}
