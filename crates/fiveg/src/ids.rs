//! Subscriber and session identifiers (the S1 state inputs of §3.1).

/// Public Land Mobile Network identifier: MCC (3 digits) + MNC (2-3
/// digits), packed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlmnId {
    /// Mobile country code, e.g. 460 (China), 310 (US).
    pub mcc: u16,
    /// Mobile network code.
    pub mnc: u16,
}

impl PlmnId {
    pub fn new(mcc: u16, mnc: u16) -> Self {
        assert!(mcc < 1000 && mnc < 1000, "PLMN digits out of range");
        Self { mcc, mnc }
    }

    /// Pack into 32 bits for the geospatial address prefix (Fig. 15c).
    pub fn pack(&self) -> u32 {
        (self.mcc as u32) << 10 | self.mnc as u32
    }

    pub fn unpack(v: u32) -> Self {
        Self {
            mcc: (v >> 10) as u16,
            mnc: (v & 0x3FF) as u16,
        }
    }
}

impl std::fmt::Display for PlmnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:03}-{:02}", self.mcc, self.mnc)
    }
}

/// Subscription Permanent Identifier (the IMSI successor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Supi(pub u64);

impl Supi {
    /// Build from PLMN + MSIN.
    pub fn new(plmn: PlmnId, msin: u64) -> Self {
        Supi((plmn.pack() as u64) << 40 | (msin & 0xFF_FFFF_FFFF))
    }

    /// The home PLMN encoded in the SUPI.
    pub fn plmn(&self) -> PlmnId {
        PlmnId::unpack((self.0 >> 40) as u32)
    }

    /// The per-operator subscriber number.
    pub fn msin(&self) -> u64 {
        self.0 & 0xFF_FFFF_FFFF
    }
}

impl std::fmt::Display for Supi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "supi-{}-{:010}", self.plmn(), self.msin())
    }
}

/// 5G-GUTI / 5G-TMSI: the temporary identifier re-assigned by the AMF at
/// every (mobility) registration — one of the state updates C1/C4 perform
/// ("update S1(5G-GUTI)" in Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guti {
    /// Serving PLMN.
    pub plmn: PlmnId,
    /// AMF identifier that allocated this GUTI.
    pub amf_id: u32,
    /// The temporary subscriber number (5G-TMSI).
    pub tmsi: u32,
}

impl Guti {
    pub fn new(plmn: PlmnId, amf_id: u32, tmsi: u32) -> Self {
        Self { plmn, amf_id, tmsi }
    }
}

/// PDU session identifier (per-UE, small integer in real 5G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u32);

/// GTP-U tunnel endpoint identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TunnelId(pub u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plmn_pack_roundtrip() {
        for (mcc, mnc) in [(460u16, 1u16), (310, 260), (1, 999), (999, 0)] {
            let p = PlmnId::new(mcc, mnc);
            assert_eq!(PlmnId::unpack(p.pack()), p);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plmn_rejects_large() {
        PlmnId::new(1000, 0);
    }

    #[test]
    fn supi_fields() {
        let plmn = PlmnId::new(460, 1);
        let s = Supi::new(plmn, 123_456_789);
        assert_eq!(s.plmn(), plmn);
        assert_eq!(s.msin(), 123_456_789);
        assert_eq!(s.to_string(), "supi-460-01-0123456789");
    }

    #[test]
    fn supi_distinct_per_subscriber() {
        let plmn = PlmnId::new(460, 1);
        assert_ne!(Supi::new(plmn, 1), Supi::new(plmn, 2));
        assert_ne!(
            Supi::new(PlmnId::new(460, 1), 7),
            Supi::new(PlmnId::new(460, 2), 7)
        );
    }

    #[test]
    fn guti_reassignment_changes_identity() {
        let plmn = PlmnId::new(460, 1);
        let g1 = Guti::new(plmn, 10, 0xAAAA);
        let g2 = Guti::new(plmn, 11, 0xBBBB);
        assert_ne!(g1, g2);
    }
}
