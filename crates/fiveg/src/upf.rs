//! UPF data plane: forwarding rules, QoS enforcement, usage reporting.
//!
//! The paper's home keeps "full control of each UE's data forwarding,
//! QoS, billing" (§4.2) by installing S2/S3/S4 state at whichever UPF
//! serves the session (P8 "packet forwarding rule establishment" in
//! Fig. 9). This module is that UPF: a forwarding table keyed by tunnel
//! endpoint, per-session token-bucket rate enforcement of the AMBR, and
//! byte counters that trigger usage reports at the S4 threshold — the
//! mechanism behind the home-controlled throttling example ("unlimited
//! for the first 15 GB, then 128 kbps").

use crate::ids::TunnelId;
use crate::state::{BillingState, QosState};
use std::collections::HashMap;

/// What to do with a matched packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardAction {
    /// Deliver toward the UE over the radio (downlink leg).
    ToRadio,
    /// Forward into the network/next-hop UPF (uplink leg).
    ToNetwork { next_teid: TunnelId },
    /// Drop (no session / expired rule).
    Drop,
}

/// Per-packet verdict from the data plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Forwarded.
    Forward(ForwardAction),
    /// Dropped by rate policing (AMBR exceeded).
    RateLimited,
    /// No matching rule.
    NoRule,
}

/// A token bucket enforcing a sustained rate with a burst allowance.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bytes_per_s: f64,
    burst_bytes: f64,
    tokens: f64,
    last_refill: f64,
}

impl TokenBucket {
    /// Build from a kbit/s rate (the unit QoS states carry).
    pub fn from_kbps(kbps: u32, burst_ms: f64) -> Self {
        let rate = kbps as f64 * 1000.0 / 8.0;
        let burst = (rate * burst_ms / 1000.0).max(1500.0);
        Self {
            rate_bytes_per_s: rate,
            burst_bytes: burst,
            tokens: burst,
            last_refill: 0.0,
        }
    }

    /// Attempt to consume `bytes` at time `now` (seconds). Returns
    /// whether the packet conforms.
    pub fn admit(&mut self, now: f64, bytes: u64) -> bool {
        debug_assert!(now >= self.last_refill, "time went backwards");
        self.tokens = (self.tokens + (now - self.last_refill) * self.rate_bytes_per_s)
            .min(self.burst_bytes);
        self.last_refill = now;
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Current sustained rate, bytes/s.
    pub fn rate_bytes_per_s(&self) -> f64 {
        self.rate_bytes_per_s
    }
}

/// One installed session at the UPF.
#[derive(Debug, Clone)]
struct SessionRule {
    action: ForwardAction,
    bucket: TokenBucket,
    billing: BillingState,
    /// Bytes since the last usage report.
    unreported_bytes: u64,
}

/// A usage report emitted toward the SMF/PCF (and, in SpaceCore, the
/// home — §4.4 "receives the dynamic data usage reports from the remote
/// satellites").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsageReport {
    pub teid: TunnelId,
    pub bytes: u64,
    /// Cumulative bytes for the session.
    pub total_bytes: u64,
}

/// The user-plane function.
#[derive(Debug, Clone, Default)]
pub struct Upf {
    rules: HashMap<TunnelId, SessionRule>,
}

impl Upf {
    pub fn new() -> Self {
        Self::default()
    }

    /// P8 — install forwarding + QoS + billing state for a session.
    pub fn install(
        &mut self,
        teid: TunnelId,
        action: ForwardAction,
        qos: &QosState,
        billing: &BillingState,
    ) {
        let kbps = effective_rate_kbps(qos, billing);
        self.rules.insert(
            teid,
            SessionRule {
                action,
                bucket: TokenBucket::from_kbps(kbps, 100.0),
                billing: *billing,
                unreported_bytes: 0,
            },
        );
    }

    /// Update a session's QoS/billing (home-controlled state update,
    /// e.g. post-quota throttling). Counters are preserved.
    pub fn update(&mut self, teid: TunnelId, qos: &QosState, billing: &BillingState) -> bool {
        match self.rules.get_mut(&teid) {
            None => false,
            Some(rule) => {
                let used = rule.billing.used_bytes.max(billing.used_bytes);
                rule.billing = *billing;
                rule.billing.used_bytes = used;
                rule.bucket = TokenBucket::from_kbps(effective_rate_kbps(qos, billing), 100.0);
                true
            }
        }
    }

    /// P15 — remove a session (release / path switch away).
    pub fn remove(&mut self, teid: TunnelId) -> bool {
        self.rules.remove(&teid).is_some()
    }

    /// Number of installed sessions.
    pub fn installed(&self) -> usize {
        self.rules.len()
    }

    /// Process one packet of `bytes` at `now` on tunnel `teid`.
    /// Returns the verdict plus an optional usage report (emitted when
    /// the unreported volume crosses the S4 threshold).
    pub fn process(
        &mut self,
        teid: TunnelId,
        bytes: u64,
        now: f64,
    ) -> (Verdict, Option<UsageReport>) {
        let Some(rule) = self.rules.get_mut(&teid) else {
            return (Verdict::NoRule, None);
        };
        if !rule.bucket.admit(now, bytes) {
            return (Verdict::RateLimited, None);
        }
        rule.billing.used_bytes += bytes;
        rule.unreported_bytes += bytes;
        let report = if rule.unreported_bytes >= rule.billing.report_threshold_bytes {
            let r = UsageReport {
                teid,
                bytes: rule.unreported_bytes,
                total_bytes: rule.billing.used_bytes,
            };
            rule.unreported_bytes = 0;
            Some(r)
        } else {
            None
        };
        (Verdict::Forward(rule.action), report)
    }

    /// Session byte counter (None if not installed).
    pub fn used_bytes(&self, teid: TunnelId) -> Option<u64> {
        self.rules.get(&teid).map(|r| r.billing.used_bytes)
    }
}

/// The enforced sustained rate: AMBR normally, the post-quota throttle
/// once the quota is consumed.
fn effective_rate_kbps(qos: &QosState, billing: &BillingState) -> u32 {
    if billing.over_quota() {
        billing.post_quota_kbps
    } else {
        qos.ambr_kbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SessionState;

    fn teid() -> TunnelId {
        TunnelId(0x1234)
    }

    fn fresh_upf() -> (Upf, SessionState) {
        let s = SessionState::sample(1);
        let mut upf = Upf::new();
        upf.install(teid(), ForwardAction::ToRadio, &s.qos, &s.billing);
        (upf, s)
    }

    #[test]
    fn install_forward_remove() {
        let (mut upf, _) = fresh_upf();
        assert_eq!(upf.installed(), 1);
        let (v, _) = upf.process(teid(), 1200, 0.001);
        assert_eq!(v, Verdict::Forward(ForwardAction::ToRadio));
        assert!(upf.remove(teid()));
        let (v2, _) = upf.process(teid(), 1200, 0.002);
        assert_eq!(v2, Verdict::NoRule);
    }

    #[test]
    fn token_bucket_enforces_ambr() {
        // 1 Mbit/s = 125 kB/s; burst 100 ms = 12.5 kB.
        let mut tb = TokenBucket::from_kbps(1000, 100.0);
        // Burst passes…
        assert!(tb.admit(0.0, 12_000));
        // …but the next full-size packet exceeds the depleted bucket.
        assert!(!tb.admit(0.0, 1500));
        // After 100 ms, 12.5 kB of tokens returned.
        assert!(tb.admit(0.1, 12_000));
    }

    #[test]
    fn rate_limited_verdict() {
        let (mut upf, _) = fresh_upf();
        // Exhaust the burst at t=0 with oversized writes.
        let mut limited = false;
        for _ in 0..10_000 {
            let (v, _) = upf.process(teid(), 1500, 0.0);
            if v == Verdict::RateLimited {
                limited = true;
                break;
            }
        }
        assert!(limited, "AMBR never enforced");
    }

    #[test]
    fn sustained_throughput_tracks_rate() {
        let (mut upf, s) = fresh_upf();
        // Send 1500-byte packets spread over 10 s; count admitted bytes.
        let mut admitted = 0u64;
        let n = 200_000;
        for i in 0..n {
            let now = i as f64 * 10.0 / n as f64;
            if let (Verdict::Forward(_), _) = upf.process(teid(), 1500, now) {
                admitted += 1500;
            }
        }
        let rate = admitted as f64 / 10.0; // bytes/s
        let expect = s.qos.ambr_kbps as f64 * 125.0; // kbps → B/s
        assert!(
            (rate - expect).abs() < 0.15 * expect,
            "rate {rate} expect {expect}"
        );
    }

    #[test]
    fn usage_report_on_threshold() {
        let s = SessionState::sample(2);
        let mut billing = s.billing;
        billing.report_threshold_bytes = 10_000;
        let mut upf = Upf::new();
        upf.install(teid(), ForwardAction::ToRadio, &s.qos, &billing);
        let mut reports = Vec::new();
        for i in 0..20 {
            let (_, r) = upf.process(teid(), 1500, i as f64 * 0.1);
            if let Some(r) = r {
                reports.push(r);
            }
        }
        // 20 × 1500 = 30 kB → reports at 10.5 kB and 21 kB (the third
        // would need 31.5 kB of traffic).
        assert_eq!(reports.len(), 2, "{reports:?}");
        assert_eq!(reports[0].bytes, 10_500);
        assert_eq!(reports.last().unwrap().total_bytes, 21_000);
    }

    #[test]
    fn throttle_applies_after_quota_update() {
        let s = SessionState::sample(3);
        let mut upf = Upf::new();
        upf.install(teid(), ForwardAction::ToRadio, &s.qos, &s.billing);
        let full_rate = s.qos.ambr_kbps;
        // Home pushes the post-quota state.
        let mut over = s.billing;
        over.used_bytes = over.quota_bytes;
        assert!(upf.update(teid(), &s.qos, &over));
        // Now the effective rate is the 128 kbps throttle: sending at
        // the old AMBR gets policed hard.
        let mut admitted = 0u64;
        for i in 0..10_000 {
            let now = 1.0 + i as f64 * 1.0 / 10_000.0;
            if let (Verdict::Forward(_), _) = upf.process(teid(), 1500, now) {
                admitted += 1500;
            }
        }
        let rate_kbps = admitted as f64 * 8.0 / 1000.0; // over ~1 s
        assert!(
            rate_kbps < full_rate as f64 / 10.0,
            "throttled rate {rate_kbps} vs AMBR {full_rate}"
        );
    }

    #[test]
    fn update_preserves_counters() {
        let s = SessionState::sample(4);
        let mut upf = Upf::new();
        upf.install(teid(), ForwardAction::ToRadio, &s.qos, &s.billing);
        upf.process(teid(), 5000, 0.001);
        assert_eq!(upf.used_bytes(teid()), Some(5000));
        assert!(upf.update(teid(), &s.qos, &s.billing));
        assert_eq!(upf.used_bytes(teid()), Some(5000), "counter survives update");
    }

    #[test]
    fn uplink_action_carries_next_teid() {
        let s = SessionState::sample(5);
        let mut upf = Upf::new();
        upf.install(
            TunnelId(1),
            ForwardAction::ToNetwork {
                next_teid: TunnelId(2),
            },
            &s.qos,
            &s.billing,
        );
        let (v, _) = upf.process(TunnelId(1), 100, 0.01);
        assert_eq!(
            v,
            Verdict::Forward(ForwardAction::ToNetwork {
                next_teid: TunnelId(2)
            })
        );
    }

    #[test]
    fn unknown_update_and_remove_fail() {
        let s = SessionState::sample(6);
        let mut upf = Upf::new();
        assert!(!upf.update(TunnelId(9), &s.qos, &s.billing));
        assert!(!upf.remove(TunnelId(9)));
        assert_eq!(upf.used_bytes(TunnelId(9)), None);
    }
}
