//! A from-scratch model of the 5G mobile core network (§2.1, §3.1).
//!
//! This crate rebuilds the parts of the 5G system the paper's analysis
//! and evaluation depend on — the substrate that open5gs + UERANSIM
//! provided for the original prototype:
//!
//! * [`ids`] — subscriber & session identifiers (SUPI, GUTI, TMSI,
//!   tunnel ids, PLMN),
//! * [`state`] — the five session-state categories of §3.1 (S1
//!   identifiers, S2 location, S3 QoS, S4 billing, S5 security) with a
//!   deterministic byte codec used for UE-side state replicas,
//! * [`nf`] — the network functions (AMF, SMF, UPF, AUSF, UDM, PCF, …)
//!   and the **function-split options** of Figure 6 (radio-only / data
//!   session / +mobility / everything-in-space),
//! * [`messages`] — signaling messages and the **procedure step tables**
//!   transcribed from Figure 9 (C1 initial registration, C2 session
//!   establishment, C3 handover, C4 mobility registration update),
//!   annotated with sender/receiver entity and state operations,
//! * [`cpu`] — the two satellite hardware profiles of the prototype
//!   (Raspberry Pi 4 as flown on Baoyun; a Xeon workstation comparable
//!   to OrbitsEdge hardware) with per-NF service costs calibrated to the
//!   Figure 7/8 curve shapes,
//! * [`gtp`] — a GTP-U-style tunnel header with the
//!   `FutureExtensionField` used by SpaceCore to piggyback UE states
//!   between UPFs (§5),
//! * [`conn`] — the UE RRC/session connection state machine (idle ↔
//!   connected, inactivity release),
//! * [`arena`] — a reusable buffer arena so the NAS/NGAP hot paths
//!   encode without per-message allocation.

pub mod amf;
pub mod arena;
pub mod conn;
pub mod corenet;
pub mod cpu;
pub mod gtp;
pub mod ids;
pub mod messages;
pub mod nas;
pub mod ngap;
pub mod nf;
pub mod pcf;
pub mod security;
pub mod smf;
pub mod udm;
pub mod state;
pub mod upf;

pub use amf::{Amf, RmState, UeContext};
pub use arena::{BufId, MessageArena};
pub use corenet::{CoreNetwork, ProcedureReceipt, SimulatedUe};
pub use pcf::{Pcf, PolicyDecision};
pub use udm::{SubscriptionTier, Udm};
pub use smf::{PduSession, Smf};
pub use conn::{ConnEvent, ConnState, UeConnection};
pub use cpu::{HardwareProfile, NfCostTable};
pub use gtp::GtpUHeader;
pub use ids::{PlmnId, SessionId, Supi, TunnelId};
pub use nas::{NasMessage, NasMessageType};
pub use ngap::{NgapMessage, NgapProcedure};
pub use messages::{Entity, Procedure, ProcedureKind, SignalingStep, StateOp};
pub use nf::{FunctionSplit, NetworkFunction, Placement, SplitOption};
pub use upf::{ForwardAction, TokenBucket, Upf, UsageReport, Verdict};
pub use security::{AuthVector, KeyHierarchy};
pub use state::{BillingState, IdState, LocationState, QosState, SecurityState, SessionState};
