//! An executable 5G core: the NF state machines wired together.
//!
//! The step tables in [`crate::messages`] describe *what the standards
//! say happens*; this module makes it actually happen: a
//! [`CoreNetwork`] owns an AMF pool, an SMF, a UDM, a PCF, and UPFs, and
//! executes C1–C4 against them — real AKA challenge/response, real
//! context creation/transfer/deletion, real policy decisions, real
//! forwarding-rule installation. This is the open5gs-substitute the
//! prototype experiments run on (DESIGN.md §3).
//!
//! Each call returns a [`ProcedureReceipt`] with the signaling-message
//! count actually exchanged, so aggregate models can be cross-checked
//! against the executable core (see `tests/`).

use crate::amf::{Amf, AmfError};
use crate::ids::{PlmnId, SessionId, Supi, TunnelId};
use crate::pcf::Pcf;
use crate::security::{ue_respond, verify_response, KeyHierarchy};
use crate::smf::{Smf, SmfError};
use crate::state::SessionState;
use crate::udm::{SubscriptionTier, Udm, UdmError};
use crate::upf::{ForwardAction, Upf};

/// Outcome of one executed procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcedureReceipt {
    /// Signaling messages exchanged between NFs/UE.
    pub signaling_messages: u32,
    /// The session key hierarchy established/refreshed (C1 only).
    pub keys: Option<KeyHierarchy>,
}

/// Errors an executed procedure can surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreError {
    Udm(UdmError),
    Amf(AmfError),
    Smf(SmfError),
    /// The UE failed authentication (wrong SIM key / fake UE).
    AuthenticationFailed,
    /// Target AMF index out of range.
    NoSuchAmf,
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Udm(e) => write!(f, "udm: {e}"),
            CoreError::Amf(e) => write!(f, "amf: {e}"),
            CoreError::Smf(e) => write!(f, "smf: {e}"),
            CoreError::AuthenticationFailed => f.write_str("authentication failed"),
            CoreError::NoSuchAmf => f.write_str("no such AMF"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<UdmError> for CoreError {
    fn from(e: UdmError) -> Self {
        CoreError::Udm(e)
    }
}
impl From<AmfError> for CoreError {
    fn from(e: AmfError) -> Self {
        CoreError::Amf(e)
    }
}
impl From<SmfError> for CoreError {
    fn from(e: SmfError) -> Self {
        CoreError::Smf(e)
    }
}

/// A UE simulator holding its SIM key (the UERANSIM substitute).
#[derive(Debug, Clone)]
pub struct SimulatedUe {
    pub supi: Supi,
    sim_key: u64,
    pub session: Option<SessionState>,
}

impl SimulatedUe {
    pub fn new(supi: Supi, sim_key: u64) -> Self {
        Self {
            supi,
            sim_key,
            session: None,
        }
    }
}

/// The executable core network.
#[derive(Debug)]
pub struct CoreNetwork {
    pub plmn: PlmnId,
    amfs: Vec<Amf>,
    smf: Smf,
    udm: Udm,
    pcf: Pcf,
    upf: Upf,
    rand_counter: u64,
}

impl CoreNetwork {
    /// Build a core with `num_amfs` AMFs and the given anchor UPF ids.
    pub fn new(plmn: PlmnId, num_amfs: usize, anchors: Vec<u32>) -> Self {
        assert!(num_amfs >= 1);
        Self {
            plmn,
            amfs: (0..num_amfs as u32).map(|i| Amf::new(i + 1, plmn)).collect(),
            smf: Smf::new(anchors, 0xFD00_0000_0000_0001),
            udm: Udm::new(),
            pcf: Pcf::new(),
            upf: Upf::new(),
            rand_counter: 0,
        }
    }

    /// Provision a subscriber and hand back its UE simulator.
    pub fn provision_subscriber(&mut self, msin: u64, tier: SubscriptionTier) -> SimulatedUe {
        let supi = Supi::new(self.plmn, msin);
        let k = sc_crypto::field::keyed_hash(0x51D, &msin.to_le_bytes());
        self.udm.provision(supi, k, tier);
        SimulatedUe::new(supi, k)
    }

    fn next_rand(&mut self) -> u64 {
        self.rand_counter += 1;
        sc_crypto::field::keyed_hash(0xDA2D, &self.rand_counter.to_le_bytes())
    }

    /// C1 — initial registration + first session, executed end to end:
    /// AKA against the UDM, policy from the PCF, session at the SMF,
    /// rules at the UPF, context at the AMF.
    pub fn initial_registration(
        &mut self,
        ue: &mut SimulatedUe,
        amf_index: usize,
        tracking_area: u32,
        ran_node: u32,
    ) -> Result<ProcedureReceipt, CoreError> {
        if amf_index >= self.amfs.len() {
            return Err(CoreError::NoSuchAmf);
        }
        let mut msgs = 4; // P0 ×2, P1, P2

        // P3 — AKA: UDM generates the AV, the UE answers the challenge.
        let rand = self.next_rand();
        let (av, sqn) = self.udm.generate_he_av(ue.supi, self.plmn, rand)?;
        msgs += 4; // AMF↔AUSF↔UDM legs
        let res = ue_respond(ue.sim_key, av.rand, av.autn, sqn)
            .ok_or(CoreError::AuthenticationFailed)?;
        msgs += 2; // challenge + response
        if !verify_response(&av, res) {
            return Err(CoreError::AuthenticationFailed);
        }
        msgs += 2; // security mode command/complete
        let keys = KeyHierarchy::derive(ue.sim_key, av.rand, self.plmn.pack() as u64);

        // P4 — policy.
        let (_, tier) = self
            .udm
            .subscription(ue.supi)
            .ok_or(CoreError::Udm(UdmError::UnknownSubscriber))?;
        let policy = self.pcf.decide(tier);
        msgs += 2;

        // P5 — register at the AMF (GUTI allocation).
        let mut session = SessionState::sample(ue.supi.msin());
        session.id.supi = ue.supi;
        session.qos = policy.qos;
        session.billing = policy.billing;
        session.security.anchor_key = keys.k_amf;
        let guti = self.amfs[amf_index].register(&session, tracking_area);
        session.id.guti = guti;
        msgs += 2;

        // P6-P9 — first PDU session.
        let pdu = self.smf.establish(ue.supi, SessionId(1), ran_node)?;
        session.id.uplink_tunnel = pdu.uplink_teid;
        session.id.downlink_tunnel = pdu.downlink_teid;
        session.location.ip = u128::from(pdu.ip);
        self.upf.install(
            pdu.uplink_teid,
            ForwardAction::ToNetwork {
                next_teid: pdu.downlink_teid,
            },
            &session.qos,
            &session.billing,
        );
        msgs += 8; // P6, P7 ×2, P8 ×2, P9 ×3

        ue.session = Some(session);
        Ok(ProcedureReceipt {
            signaling_messages: msgs,
            keys: Some(keys),
        })
    }

    /// C4 — mobility registration: transfer the context between AMFs.
    pub fn mobility_registration(
        &mut self,
        ue: &SimulatedUe,
        from_amf: usize,
        to_amf: usize,
        new_tracking_area: u32,
    ) -> Result<ProcedureReceipt, CoreError> {
        if from_amf >= self.amfs.len() || to_amf >= self.amfs.len() {
            return Err(CoreError::NoSuchAmf);
        }
        let ctx = self.amfs[from_amf].transfer_out(ue.supi)?;
        self.amfs[to_amf].transfer_in(ctx, new_tracking_area);
        Ok(ProcedureReceipt {
            signaling_messages: 12, // the Fig. 9d bill
            keys: None,
        })
    }

    /// C3 — handover: path-switch the session to a new RAN node.
    pub fn handover(
        &mut self,
        ue: &SimulatedUe,
        new_ran_node: u32,
    ) -> Result<ProcedureReceipt, CoreError> {
        self.smf.path_switch(ue.supi, SessionId(1), new_ran_node)?;
        Ok(ProcedureReceipt {
            signaling_messages: 11,
            keys: None,
        })
    }

    /// Push `bytes` of user traffic through the UE's uplink tunnel.
    pub fn user_traffic(&mut self, ue: &SimulatedUe, bytes: u64, now: f64) -> crate::upf::Verdict {
        let teid = ue
            .session
            .as_ref()
            .map(|s| s.id.uplink_tunnel)
            .unwrap_or(TunnelId(0));
        self.upf.process(teid, bytes, now).0
    }

    /// AMF pool (inspection).
    pub fn amf(&self, i: usize) -> &Amf {
        &self.amfs[i]
    }

    /// SMF (inspection).
    pub fn smf(&self) -> &Smf {
        &self.smf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upf::Verdict;

    /// Test-local error: procedures and missing-state lookups both
    /// convert into it, so tests compose with `?` instead of `unwrap()`
    /// (the R3 panic-hygiene ratchet keeps it that way).
    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn core() -> CoreNetwork {
        CoreNetwork::new(PlmnId::new(460, 1), 3, vec![100, 101])
    }

    #[test]
    fn full_registration_executes() -> TestResult {
        let mut cn = core();
        let mut ue = cn.provision_subscriber(1, SubscriptionTier::Consumer);
        let r = cn.initial_registration(&mut ue, 0, 10, 7)?;
        assert!(r.keys.is_some());
        // The executable count matches the Fig. 9a step table (24).
        assert_eq!(r.signaling_messages, 24);
        let s = ue.session.as_ref().ok_or("no session installed")?;
        let ctx = cn.amf(0).context(ue.supi).ok_or("no AMF context")?;
        assert_eq!(ctx.guti, s.id.guti);
        assert_eq!(cn.smf().session_count(), 1);
        // Policy applied from the tier.
        assert_eq!(s.billing.post_quota_kbps, 128);
        Ok(())
    }

    #[test]
    fn fake_sim_fails_authentication() {
        let mut cn = core();
        let mut ue = cn.provision_subscriber(2, SubscriptionTier::Consumer);
        ue.sim_key ^= 1; // cloned SIM with a wrong key
        assert_eq!(
            cn.initial_registration(&mut ue, 0, 1, 1).unwrap_err(),
            CoreError::AuthenticationFailed
        );
        assert!(cn.amf(0).context(ue.supi).is_none(), "no context on failure");
    }

    #[test]
    fn unprovisioned_ue_rejected() {
        let mut cn = core();
        let mut ghost = SimulatedUe::new(Supi::new(PlmnId::new(460, 1), 999), 1);
        assert_eq!(
            cn.initial_registration(&mut ghost, 0, 1, 1).unwrap_err(),
            CoreError::Udm(UdmError::UnknownSubscriber)
        );
    }

    #[test]
    fn traffic_flows_after_registration() -> TestResult {
        let mut cn = core();
        let mut ue = cn.provision_subscriber(3, SubscriptionTier::Consumer);
        cn.initial_registration(&mut ue, 0, 1, 1)?;
        assert!(matches!(cn.user_traffic(&ue, 1400, 0.01), Verdict::Forward(_)));
        // No session → no rule.
        let stranger = SimulatedUe::new(Supi::new(PlmnId::new(460, 1), 55), 1);
        assert_eq!(cn.user_traffic(&stranger, 1400, 0.01), Verdict::NoRule);
        Ok(())
    }

    #[test]
    fn mobility_registration_moves_context() -> TestResult {
        let mut cn = core();
        let mut ue = cn.provision_subscriber(4, SubscriptionTier::Consumer);
        cn.initial_registration(&mut ue, 0, 1, 1)?;
        let r = cn.mobility_registration(&ue, 0, 1, 42)?;
        assert_eq!(r.signaling_messages, 12);
        assert!(cn.amf(0).context(ue.supi).is_none());
        let ctx = cn.amf(1).context(ue.supi).ok_or("context not at AMF 1")?;
        assert_eq!(ctx.tracking_area, 42);
        Ok(())
    }

    #[test]
    fn handover_switches_path_keeps_ip() -> TestResult {
        let mut cn = core();
        let mut ue = cn.provision_subscriber(5, SubscriptionTier::Consumer);
        cn.initial_registration(&mut ue, 0, 1, 1)?;
        let ip_before = cn
            .smf()
            .session(ue.supi, SessionId(1))
            .ok_or("session missing before handover")?
            .ip;
        cn.handover(&ue, 99)?;
        let s = cn
            .smf()
            .session(ue.supi, SessionId(1))
            .ok_or("session missing after handover")?;
        assert_eq!(s.ran_node, 99);
        assert_eq!(s.ip, ip_before);
        Ok(())
    }

    #[test]
    fn satellite_sweep_storm_executes() -> TestResult {
        // The §3.2 scenario against the executable core: 50 static UEs,
        // AMF changes every transit → 50 context transfers per sweep.
        let mut cn = core();
        let mut ues: Vec<_> = (0..50)
            .map(|i| cn.provision_subscriber(100 + i, SubscriptionTier::Iot))
            .collect();
        for ue in ues.iter_mut() {
            cn.initial_registration(ue, 0, 0, 0)?;
        }
        let mut total_msgs = 0;
        for sweep in 0..2usize {
            for ue in &ues {
                total_msgs += cn
                    .mobility_registration(ue, sweep, sweep + 1, sweep as u32 + 1)?
                    .signaling_messages;
            }
        }
        assert_eq!(total_msgs, 2 * 50 * 12);
        assert_eq!(cn.amf(2).context_count(), 50);
        Ok(())
    }

    #[test]
    fn iot_tier_gets_narrow_policy() -> TestResult {
        let mut cn = core();
        let mut ue = cn.provision_subscriber(6, SubscriptionTier::Iot);
        cn.initial_registration(&mut ue, 0, 1, 1)?;
        let s = ue.session.as_ref().ok_or("no session installed")?;
        assert_eq!(s.qos.ambr_kbps, 64);
        Ok(())
    }
}
