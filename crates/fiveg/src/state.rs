//! The five session-state categories of §3.1.
//!
//! > "Each session has five categories of states according to standards:
//! > (1) **S1**: identifiers, including the UE and session identity;
//! > (2) **S2**: UE locations, including the UE's service area IDs (cell
//! > ID and tracking area ID) and IP address; (3) **S3**: QoS, including
//! > the QoS class, priority, and forwarding rules; (4) **S4**: billing,
//! > including the network usage report rules; and (5) **S5**: security,
//! > including keys, authentication vectors, and access policies."
//!
//! [`SessionState`] is the unit SpaceCore delegates to UEs: it has a
//! deterministic byte codec (`encode`/`decode`) so it can be wrapped by
//! the ABE layer and piggybacked in signaling/GTP-U extension fields.

use crate::ids::{Guti, PlmnId, SessionId, Supi, TunnelId};
use sc_geo::addr::GeoAddress;
use sc_geo::cells::CellId;

/// S1 — identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdState {
    pub supi: Supi,
    pub guti: Guti,
    pub session: SessionId,
    /// Uplink tunnel endpoint at the anchor gateway.
    pub uplink_tunnel: TunnelId,
    /// Downlink tunnel endpoint at the RAN.
    pub downlink_tunnel: TunnelId,
}

/// S2 — location: service-area ids and the IP address.
///
/// In legacy 5G these are three separate states (cell, tracking area,
/// IP); SpaceCore's geospatial address subsumes all of them, which is why
/// [`LocationState::geo`] is an `Option` — `None` for legacy deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocationState {
    /// Serving cell (legacy logical id, or geospatial cell).
    pub cell: CellId,
    /// Tracking area (legacy: AMF-scoped group of cells).
    pub tracking_area: u32,
    /// The UE's IP address, as a raw 128-bit value.
    pub ip: u128,
    /// SpaceCore's geospatial address (§4.1 Step 2), when in use.
    pub geo: Option<GeoAddress>,
}

/// S3 — QoS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosState {
    /// 5G QoS identifier (5QI) class.
    pub qi: u8,
    /// Allocation/retention priority (1 = highest).
    pub priority: u8,
    /// Guaranteed downlink bit rate, kbit/s (0 = non-GBR).
    pub gbr_down_kbps: u32,
    /// Guaranteed uplink bit rate, kbit/s.
    pub gbr_up_kbps: u32,
    /// Aggregate maximum bit rate, kbit/s.
    pub ambr_kbps: u32,
    /// Number of packet forwarding rules installed at the UPF.
    pub forwarding_rules: u8,
}

/// S4 — billing / charging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BillingState {
    /// Usage-report threshold, bytes (report to PCF when exceeded).
    pub report_threshold_bytes: u64,
    /// Bytes consumed so far in this charging period.
    pub used_bytes: u64,
    /// Throttle rate applied after the quota, kbit/s (the paper's
    /// "unlimited for the first 15 GB, throttled to 128 kbps" example).
    pub post_quota_kbps: u32,
    /// Quota in bytes.
    pub quota_bytes: u64,
}

impl BillingState {
    /// Is the UE past its quota (throttling applies)?
    pub fn over_quota(&self) -> bool {
        self.used_bytes >= self.quota_bytes
    }
}

/// S5 — security.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecurityState {
    /// The anchor key (K_AMF analogue).
    pub anchor_key: u64,
    /// Home-environment authentication vector (5G HE AV).
    pub he_av: u64,
    /// Serving-environment authentication vector (5G SE AV).
    pub se_av: u64,
    /// NAS uplink count (replay protection).
    pub nas_count: u32,
    /// Access-policy token (in SpaceCore: hash of the ABE access tree).
    pub access_policy: u64,
}

/// The full per-session state bundle (S1–S5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionState {
    pub id: IdState,
    pub location: LocationState,
    pub qos: QosState,
    pub billing: BillingState,
    pub security: SecurityState,
}

/// Which state category an operation touches — used for signaling-cost
/// and leakage accounting (each category weighs differently in Fig. 19:
/// leaking S5 is what the paper calls "sensitive").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateCategory {
    S1Identifiers,
    S2Location,
    S3Qos,
    S4Billing,
    S5Security,
}

impl StateCategory {
    /// Is a leak of this category "sensitive" in the paper's sense?
    pub fn sensitive(self) -> bool {
        matches!(self, StateCategory::S5Security)
    }

    pub const ALL: [StateCategory; 5] = [
        StateCategory::S1Identifiers,
        StateCategory::S2Location,
        StateCategory::S3Qos,
        StateCategory::S4Billing,
        StateCategory::S5Security,
    ];
}

impl SessionState {
    /// A deterministic sample state for subscriber `msin` — used by
    /// tests, examples, and workload generators.
    pub fn sample(msin: u64) -> Self {
        let plmn = PlmnId::new(460, 1);
        let supi = Supi::new(plmn, msin);
        SessionState {
            id: IdState {
                supi,
                guti: Guti::new(plmn, 1, (msin as u32).wrapping_mul(2654435761)),
                session: SessionId(1),
                uplink_tunnel: TunnelId(msin as u32 ^ 0xAAAA),
                downlink_tunnel: TunnelId(msin as u32 ^ 0x5555),
            },
            location: LocationState {
                cell: CellId::new((msin % 72) as u16, (msin % 22) as u16),
                tracking_area: (msin % 100) as u32,
                ip: 0xFD00 << 112 | msin as u128,
                geo: None,
            },
            qos: QosState {
                qi: 9,
                priority: 8,
                gbr_down_kbps: 0,
                gbr_up_kbps: 0,
                ambr_kbps: 100_000,
                forwarding_rules: 2,
            },
            billing: BillingState {
                report_threshold_bytes: 1 << 30,
                used_bytes: 0,
                post_quota_kbps: 128,
                quota_bytes: 15 << 30,
            },
            security: SecurityState {
                anchor_key: msin.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                he_av: msin.wrapping_mul(0xBF58_476D_1CE4_E5B9),
                se_av: msin.wrapping_mul(0x94D0_49BB_1331_11EB),
                nas_count: 0,
                access_policy: 0,
            },
        }
    }

    /// Encode to bytes (deterministic, versioned, length-checked codec).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(128);
        b.push(1u8); // codec version
        put_u64(&mut b, self.id.supi.0);
        put_u32(&mut b, self.id.guti.plmn.pack());
        put_u32(&mut b, self.id.guti.amf_id);
        put_u32(&mut b, self.id.guti.tmsi);
        put_u32(&mut b, self.id.session.0);
        put_u32(&mut b, self.id.uplink_tunnel.0);
        put_u32(&mut b, self.id.downlink_tunnel.0);
        put_u32(&mut b, self.location.cell.pack());
        put_u32(&mut b, self.location.tracking_area);
        b.extend_from_slice(&self.location.ip.to_le_bytes());
        match self.location.geo {
            Some(g) => {
                b.push(1);
                b.extend_from_slice(&g.encode().to_le_bytes());
            }
            None => b.push(0),
        }
        b.push(self.qos.qi);
        b.push(self.qos.priority);
        put_u32(&mut b, self.qos.gbr_down_kbps);
        put_u32(&mut b, self.qos.gbr_up_kbps);
        put_u32(&mut b, self.qos.ambr_kbps);
        b.push(self.qos.forwarding_rules);
        put_u64(&mut b, self.billing.report_threshold_bytes);
        put_u64(&mut b, self.billing.used_bytes);
        put_u32(&mut b, self.billing.post_quota_kbps);
        put_u64(&mut b, self.billing.quota_bytes);
        put_u64(&mut b, self.security.anchor_key);
        put_u64(&mut b, self.security.he_av);
        put_u64(&mut b, self.security.se_av);
        put_u32(&mut b, self.security.nas_count);
        put_u64(&mut b, self.security.access_policy);
        b
    }

    /// Decode from bytes. Returns `None` on truncation or unknown codec
    /// version (a tampered or foreign payload).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut c = Cursor { b: bytes, pos: 0 };
        if c.u8()? != 1 {
            return None;
        }
        let supi = Supi(c.u64()?);
        let guti = Guti {
            plmn: PlmnId::unpack(c.u32()?),
            amf_id: c.u32()?,
            tmsi: c.u32()?,
        };
        let session = SessionId(c.u32()?);
        let uplink_tunnel = TunnelId(c.u32()?);
        let downlink_tunnel = TunnelId(c.u32()?);
        let cell = CellId::unpack(c.u32()?);
        let tracking_area = c.u32()?;
        let ip = c.u128()?;
        let geo = match c.u8()? {
            1 => Some(GeoAddress::decode(c.u128()?)),
            0 => None,
            _ => return None,
        };
        let qos = QosState {
            qi: c.u8()?,
            priority: c.u8()?,
            gbr_down_kbps: c.u32()?,
            gbr_up_kbps: c.u32()?,
            ambr_kbps: c.u32()?,
            forwarding_rules: c.u8()?,
        };
        let billing = BillingState {
            report_threshold_bytes: c.u64()?,
            used_bytes: c.u64()?,
            post_quota_kbps: c.u32()?,
            quota_bytes: c.u64()?,
        };
        let security = SecurityState {
            anchor_key: c.u64()?,
            he_av: c.u64()?,
            se_av: c.u64()?,
            nas_count: c.u32()?,
            access_policy: c.u64()?,
        };
        if c.pos != bytes.len() {
            return None; // trailing garbage
        }
        Some(SessionState {
            id: IdState {
                supi,
                guti,
                session,
                uplink_tunnel,
                downlink_tunnel,
            },
            location: LocationState {
                cell,
                tracking_area,
                ip,
                geo,
            },
            qos,
            billing,
            security,
        })
    }
}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.b.len() {
            return None;
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().expect("len 8")))
    }
    fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|s| u128::from_le_bytes(s.try_into().expect("len 16")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrip_plain() {
        let s = SessionState::sample(42);
        assert_eq!(SessionState::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn codec_roundtrip_with_geo_address() {
        let mut s = SessionState::sample(7);
        s.location.geo = Some(GeoAddress::new(
            PlmnId::new(460, 1).pack(),
            CellId::new(3, 4),
            CellId::new(5, 6),
            99,
        ));
        assert_eq!(SessionState::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn truncation_rejected() {
        let b = SessionState::sample(1).encode();
        for cut in [0, 1, 10, b.len() - 1] {
            assert!(SessionState::decode(&b[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = SessionState::sample(1).encode();
        b.push(0);
        assert!(SessionState::decode(&b).is_none());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut b = SessionState::sample(1).encode();
        b[0] = 99;
        assert!(SessionState::decode(&b).is_none());
    }

    #[test]
    fn samples_differ_by_subscriber() {
        assert_ne!(SessionState::sample(1), SessionState::sample(2));
        // …but are deterministic.
        assert_eq!(SessionState::sample(5), SessionState::sample(5));
    }

    #[test]
    fn billing_quota_logic() {
        let mut s = SessionState::sample(3);
        assert!(!s.billing.over_quota());
        s.billing.used_bytes = s.billing.quota_bytes;
        assert!(s.billing.over_quota());
    }

    #[test]
    fn only_s5_is_sensitive() {
        let sensitive: Vec<_> = StateCategory::ALL
            .iter()
            .filter(|c| c.sensitive())
            .collect();
        assert_eq!(sensitive, vec![&StateCategory::S5Security]);
    }
}
