//! The UDM: subscriber database, authentication-vector generation, and
//! SQN tracking (the home's root of trust).
//!
//! "Stateful functions in these satellites should maintain sensitive
//! states (… permanent keys in UDM in Option 4)" (§3.3) — this is the
//! component whose placement decides whether permanent keys ever leave
//! the homeland. It owns the permanent key K per subscriber, generates
//! the 5G HE AV on request (Fig. 9a P3 "create S5 (5G HE AV)"), and
//! tracks sequence numbers for replay protection.

use crate::ids::{PlmnId, Supi};
use crate::security::{generate_av, AuthVector};
use std::collections::HashMap;

/// A subscription profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    pub supi: Supi,
    /// Permanent key K (SIM + UDM only).
    k: u64,
    /// Subscription tier (indexes PCF policy).
    pub tier: SubscriptionTier,
    /// Authentication sequence number.
    sqn: u64,
}

/// Commercial subscription tiers (drive PCF policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubscriptionTier {
    /// Delay-tolerant IoT: narrow, non-GBR.
    Iot,
    /// Consumer broadband with a soft quota.
    Consumer,
    /// Enterprise: GBR, priority.
    Enterprise,
}

/// Errors from UDM operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdmError {
    UnknownSubscriber,
    /// Registration from a PLMN this subscriber may not roam into.
    RoamingNotAllowed,
}

impl std::fmt::Display for UdmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UdmError::UnknownSubscriber => f.write_str("unknown subscriber"),
            UdmError::RoamingNotAllowed => f.write_str("roaming not allowed"),
        }
    }
}

impl std::error::Error for UdmError {}

/// The Unified Data Management function.
#[derive(Debug, Clone, Default)]
pub struct Udm {
    // sc-audit: allow(stateful, reason = "terrestrial UDM subscriber database — ground-resident by design; satellites never hold it (§4.1)")
    subs: HashMap<Supi, Subscription>,
    /// PLMNs subscribers may register from (own PLMN always allowed).
    roaming_partners: Vec<PlmnId>,
}

impl Udm {
    pub fn new() -> Self {
        Self::default()
    }

    /// Provision a subscriber (SIM issuance).
    pub fn provision(&mut self, supi: Supi, k: u64, tier: SubscriptionTier) {
        self.subs.insert(
            supi,
            Subscription {
                supi,
                k,
                tier,
                sqn: 0,
            },
        );
    }

    /// Allow roaming from a partner PLMN.
    pub fn add_roaming_partner(&mut self, plmn: PlmnId) {
        self.roaming_partners.push(plmn);
    }

    /// Number of provisioned subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subs.len()
    }

    /// Subscription lookup (no key material exposed).
    pub fn subscription(&self, supi: Supi) -> Option<(Supi, SubscriptionTier)> {
        self.subs.get(&supi).map(|s| (s.supi, s.tier))
    }

    /// P3 — generate a home-environment authentication vector for a
    /// registration arriving via `serving_plmn`. Advances the SQN.
    pub fn generate_he_av(
        &mut self,
        supi: Supi,
        serving_plmn: PlmnId,
        rand: u64,
    ) -> Result<(AuthVector, u64), UdmError> {
        let allowed = {
            let sub = self.subs.get(&supi).ok_or(UdmError::UnknownSubscriber)?;
            sub.supi.plmn() == serving_plmn || self.roaming_partners.contains(&serving_plmn)
        };
        if !allowed {
            return Err(UdmError::RoamingNotAllowed);
        }
        let sub = self.subs.get_mut(&supi).expect("checked above");
        sub.sqn += 1;
        let av = generate_av(sub.k, rand, sub.sqn);
        Ok((av, sub.sqn))
    }

    /// The UE-side key for test fixtures (in reality this lives only in
    /// the SIM; exposed here for building UE simulators).
    pub fn sim_key_for_tests(&self, supi: Supi) -> Option<u64> {
        self.subs.get(&supi).map(|s| s.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::{ue_respond, verify_response};

    fn plmn() -> PlmnId {
        PlmnId::new(460, 1)
    }

    fn udm_with_sub(msin: u64) -> (Udm, Supi) {
        let mut u = Udm::new();
        let supi = Supi::new(plmn(), msin);
        u.provision(supi, 0x6B65_79AA ^ msin, SubscriptionTier::Consumer);
        (u, supi)
    }

    #[test]
    fn av_generation_and_full_aka() {
        let (mut u, supi) = udm_with_sub(1);
        let k = u.sim_key_for_tests(supi).unwrap();
        let (av, sqn) = u.generate_he_av(supi, plmn(), 0xAA).unwrap();
        let res = ue_respond(k, av.rand, av.autn, sqn).expect("genuine");
        assert!(verify_response(&av, res));
    }

    #[test]
    fn sqn_advances_per_av() {
        let (mut u, supi) = udm_with_sub(2);
        let (_, s1) = u.generate_he_av(supi, plmn(), 1).unwrap();
        let (_, s2) = u.generate_he_av(supi, plmn(), 2).unwrap();
        assert_eq!(s2, s1 + 1);
    }

    #[test]
    fn unknown_subscriber_rejected() {
        let (mut u, _) = udm_with_sub(3);
        let ghost = Supi::new(plmn(), 999_999);
        assert_eq!(
            u.generate_he_av(ghost, plmn(), 1).unwrap_err(),
            UdmError::UnknownSubscriber
        );
    }

    #[test]
    fn roaming_control() {
        let (mut u, supi) = udm_with_sub(4);
        let foreign = PlmnId::new(310, 260);
        assert_eq!(
            u.generate_he_av(supi, foreign, 1).unwrap_err(),
            UdmError::RoamingNotAllowed
        );
        u.add_roaming_partner(foreign);
        assert!(u.generate_he_av(supi, foreign, 1).is_ok());
    }

    #[test]
    fn subscription_lookup_hides_key() {
        let (u, supi) = udm_with_sub(5);
        let (s, tier) = u.subscription(supi).unwrap();
        assert_eq!(s, supi);
        assert_eq!(tier, SubscriptionTier::Consumer);
        assert_eq!(u.subscriber_count(), 1);
    }
}
