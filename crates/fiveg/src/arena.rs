//! A reusable buffer arena for NAS/NGAP message building.
//!
//! Encoding a signaling message with [`NasMessage::encode`] /
//! [`NgapMessage::encode`] allocates a fresh `Vec<u8>` per call. On the
//! hot paths that rebuild the same handful of messages for every
//! procedure run — the satellite proxy re-encoding the piggybacked PDU
//! session request for each establishment, sweep engines replaying
//! Figure 9 exchanges millions of times — that per-message allocation
//! dominates the codec cost.
//!
//! [`MessageArena`] amortizes it: the arena owns a pool of byte
//! buffers, [`MessageArena::encode_nas`] / [`encode_ngap`] write into
//! the next free buffer (via [`NasMessage::encode_into`] /
//! [`NgapMessage::encode_into`]) and hand back a [`BufId`] ticket, and
//! [`MessageArena::reset`] — called once per procedure run — returns
//! every buffer to the pool without freeing its capacity. After the
//! first run through a procedure the arena allocates nothing.
//!
//! The encoded bytes are identical to the allocating `encode()` path
//! (pinned by tests here and exercised byte-for-byte by the satellite
//! proxy's encode→decode round-trip), so swapping the arena in changes
//! no experiment output.
//!
//! [`encode_ngap`]: MessageArena::encode_ngap

use crate::nas::NasMessage;
use crate::ngap::NgapMessage;

/// Ticket for a buffer checked out of a [`MessageArena`]. Valid until
/// the next [`MessageArena::reset`]; redeem with
/// [`MessageArena::bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufId(usize);

/// Pool of reusable encode buffers, reset once per procedure run.
#[derive(Debug, Default)]
pub struct MessageArena {
    /// Every buffer ever allocated; `bufs[..in_use]` are checked out.
    bufs: Vec<Vec<u8>>,
    in_use: usize,
    /// Most buffers simultaneously checked out across all runs.
    high_water: usize,
}

impl MessageArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out a cleared buffer (reusing pooled capacity if any).
    pub fn acquire(&mut self) -> BufId {
        if self.in_use == self.bufs.len() {
            self.bufs.push(Vec::new());
        }
        let id = BufId(self.in_use);
        self.bufs[id.0].clear();
        self.in_use += 1;
        self.high_water = self.high_water.max(self.in_use);
        id
    }

    /// Encode `m` into a pooled buffer; same bytes as
    /// [`NasMessage::encode`] without the allocation.
    pub fn encode_nas(&mut self, m: &NasMessage) -> BufId {
        let id = self.acquire();
        m.encode_into(&mut self.bufs[id.0]);
        id
    }

    /// Encode `m` into a pooled buffer; same bytes as
    /// [`NgapMessage::encode`] without the allocation.
    pub fn encode_ngap(&mut self, m: &NgapMessage) -> BufId {
        let id = self.acquire();
        m.encode_into(&mut self.bufs[id.0]);
        id
    }

    /// The bytes behind a ticket from this run.
    pub fn bytes(&self, id: BufId) -> &[u8] {
        assert!(id.0 < self.in_use, "BufId from before the last reset");
        &self.bufs[id.0]
    }

    /// Mutable access to a checked-out buffer (for callers that build
    /// bytes by hand rather than through a codec).
    pub fn bytes_mut(&mut self, id: BufId) -> &mut Vec<u8> {
        assert!(id.0 < self.in_use, "BufId from before the last reset");
        &mut self.bufs[id.0]
    }

    /// End of a procedure run: every buffer returns to the pool,
    /// capacity intact. Outstanding [`BufId`]s are invalidated.
    pub fn reset(&mut self) {
        self.in_use = 0;
    }

    /// Buffers currently checked out.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Total buffers the arena has ever allocated. Flat across repeated
    /// identical runs — that is the pooling guarantee.
    pub fn allocated(&self) -> usize {
        self.bufs.len()
    }

    /// Most buffers simultaneously checked out across all runs.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nas::{IeTag, NasMessageType};
    use crate::ngap::{ie, NgapProcedure};

    fn nas_sample() -> NasMessage {
        NasMessage::new(NasMessageType::PduSessionEstablishmentRequest)
            .with_ie(IeTag::StateReplica, vec![0xAB; 180])
            .with_ie(IeTag::DhPublic, 7u64.to_be_bytes().to_vec())
    }

    fn ngap_sample() -> NgapMessage {
        NgapMessage::new(NgapProcedure::PathSwitchRequest)
            .with_ie(ie::RAN_UE_NGAP_ID, vec![0, 0, 0, 9])
            .with_ie(ie::SECURITY_CONTEXT, vec![3; 40])
    }

    #[test]
    fn arena_bytes_match_allocating_encode() {
        let mut a = MessageArena::new();
        let nas = nas_sample();
        let ngap = ngap_sample();
        let n = a.encode_nas(&nas);
        let g = a.encode_ngap(&ngap);
        assert_eq!(a.bytes(n), nas.encode().as_slice());
        assert_eq!(a.bytes(g), ngap.encode().as_slice());
        // Two live tickets coexist without clobbering each other.
        assert_eq!(a.in_use(), 2);
    }

    #[test]
    fn repeated_runs_allocate_nothing_new() {
        let mut a = MessageArena::new();
        let nas = nas_sample();
        let ngap = ngap_sample();
        for _ in 0..100 {
            a.reset();
            let n = a.encode_nas(&nas);
            let g = a.encode_ngap(&ngap);
            assert_eq!(a.bytes(n).len(), nas.wire_len());
            assert!(!a.bytes(g).is_empty());
        }
        assert_eq!(a.allocated(), 2, "pool is flat after warm-up");
        assert_eq!(a.high_water(), 2);
    }

    #[test]
    fn reset_returns_buffers_and_reuses_capacity() {
        let mut a = MessageArena::new();
        let id = a.encode_nas(&nas_sample());
        let cap_ptr = a.bytes(id).as_ptr();
        a.reset();
        assert_eq!(a.in_use(), 0);
        let id2 = a.encode_nas(&nas_sample());
        assert_eq!(a.bytes(id2).as_ptr(), cap_ptr, "same backing buffer");
    }

    #[test]
    #[should_panic(expected = "before the last reset")]
    fn stale_ticket_panics() {
        let mut a = MessageArena::new();
        let id = a.encode_nas(&nas_sample());
        a.reset();
        let _ = a.bytes(id);
    }

    #[test]
    fn bytes_mut_supports_hand_built_messages() {
        let mut a = MessageArena::new();
        let id = a.acquire();
        a.bytes_mut(id).extend_from_slice(b"raw");
        assert_eq!(a.bytes(id), b"raw");
    }
}
