//! The AMF as an explicit state machine: UE registration contexts,
//! GUTI allocation, tracking-area management, and the inter-AMF context
//! transfer of C4 (Fig. 9d).
//!
//! This is the stateful heart of the paper's problem statement: every
//! registered UE leaves a context *here*, and when the serving AMF
//! changes — which, with satellite-bound tracking areas, happens for
//! every static UE every transit — that context must be migrated
//! (P16 "UE context transfer") and the old copy deleted.

use crate::ids::{Guti, PlmnId, Supi};
use crate::state::{SecurityState, SessionState};
use sc_obs::Recorder;
use std::collections::HashMap;

/// Registration state of one UE at an AMF (TS 23.501 RM/CM states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmState {
    /// Registered and reachable.
    RegisteredConnected,
    /// Registered, radio released (paging needed for downlink).
    RegisteredIdle,
}

/// A UE context held by an AMF. All-scalar and `Copy`: the context
/// transfer of C4 moves it by value, no heap traffic.
#[derive(Debug, Clone, Copy)]
pub struct UeContext {
    pub supi: Supi,
    pub guti: Guti,
    pub rm_state: RmState,
    /// Current tracking area the UE registered in.
    pub tracking_area: u32,
    /// The security context (S5) — what leaks when this AMF's node is
    /// compromised.
    pub security: SecurityState,
}

/// Errors from AMF operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmfError {
    /// No context for this UE.
    UnknownUe,
    /// Context transfer requested for a UE this AMF does not hold.
    TransferUnknownUe,
}

impl std::fmt::Display for AmfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmfError::UnknownUe => f.write_str("unknown UE"),
            AmfError::TransferUnknownUe => f.write_str("context transfer for unknown UE"),
        }
    }
}

impl std::error::Error for AmfError {}

/// An Access and Mobility Management Function instance.
#[derive(Debug, Clone)]
pub struct Amf {
    /// This AMF's identifier (baked into allocated GUTIs).
    pub amf_id: u32,
    plmn: PlmnId,
    // sc-audit: allow(stateful, reason = "legacy stateful AMF baseline — the per-UE S1/S5 store the paper's stateless design eliminates (§3.2)")
    contexts: HashMap<Supi, UeContext>,
    next_tmsi: u32,
    /// Telemetry (disabled by default): `fiveg.amf.*` counters and the
    /// held-context gauge — the per-procedure accounting behind the
    /// Fig. 10 signaling-storm aggregates.
    obs: Recorder,
}

impl Amf {
    pub fn new(amf_id: u32, plmn: PlmnId) -> Self {
        Self {
            amf_id,
            plmn,
            contexts: HashMap::new(),
            next_tmsi: 1,
            obs: Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder; subsequent operations count under
    /// `fiveg.amf.*` and maintain the `fiveg.amf.contexts` gauge.
    pub fn attach_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    fn gauge_contexts(&self) {
        self.obs
            .set_gauge("fiveg.amf.contexts", self.contexts.len() as f64);
    }

    /// Number of held UE contexts (the hijack-exposure surface).
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// C1 — register a UE: create the context, allocate a fresh GUTI
    /// ("update S1 (5G-GUTI)" in Fig. 9a P5).
    pub fn register(&mut self, session: &SessionState, tracking_area: u32) -> Guti {
        let guti = self.allocate_guti();
        self.contexts.insert(
            session.id.supi,
            UeContext {
                supi: session.id.supi,
                guti,
                rm_state: RmState::RegisteredConnected,
                tracking_area,
                security: session.security,
            },
        );
        self.obs.inc("fiveg.amf.registrations", 1);
        self.gauge_contexts();
        guti
    }

    fn allocate_guti(&mut self) -> Guti {
        let tmsi = self.next_tmsi;
        self.next_tmsi = self.next_tmsi.wrapping_add(1);
        Guti::new(self.plmn, self.amf_id, tmsi)
    }

    /// Connection release (RRC inactivity): RM stays registered, CM
    /// goes idle.
    pub fn release(&mut self, supi: Supi) -> Result<(), AmfError> {
        let ctx = self.contexts.get_mut(&supi).ok_or(AmfError::UnknownUe)?;
        ctx.rm_state = RmState::RegisteredIdle;
        self.obs.inc("fiveg.amf.releases", 1);
        Ok(())
    }

    /// Service request: idle → connected.
    pub fn service_request(&mut self, supi: Supi) -> Result<(), AmfError> {
        let ctx = self.contexts.get_mut(&supi).ok_or(AmfError::UnknownUe)?;
        ctx.rm_state = RmState::RegisteredConnected;
        self.obs.inc("fiveg.amf.service_requests", 1);
        Ok(())
    }

    /// Does this UE need paging for downlink data?
    pub fn needs_paging(&self, supi: Supi) -> Result<bool, AmfError> {
        Ok(self
            .contexts
            .get(&supi)
            .ok_or(AmfError::UnknownUe)?
            .rm_state
            == RmState::RegisteredIdle)
    }

    /// P16 — outgoing side of the inter-AMF context transfer: hand the
    /// context to the new AMF and delete the local copy ("after which
    /// the old AMF deletes the states", §3.2).
    pub fn transfer_out(&mut self, supi: Supi) -> Result<UeContext, AmfError> {
        let ctx = self
            .contexts
            .remove(&supi)
            .ok_or(AmfError::TransferUnknownUe)?;
        self.obs.inc("fiveg.amf.transfers_out", 1);
        self.gauge_contexts();
        Ok(ctx)
    }

    /// P16 — incoming side: adopt the context, re-allocate the GUTI
    /// under this AMF's identity, update the tracking area.
    pub fn transfer_in(&mut self, mut ctx: UeContext, new_tracking_area: u32) -> Guti {
        let guti = self.allocate_guti();
        ctx.guti = guti;
        ctx.tracking_area = new_tracking_area;
        self.contexts.insert(ctx.supi, ctx);
        self.obs.inc("fiveg.amf.transfers_in", 1);
        self.gauge_contexts();
        guti
    }

    /// Look up a context.
    pub fn context(&self, supi: Supi) -> Option<&UeContext> {
        self.contexts.get(&supi)
    }

    /// All security contexts a hijacker of this AMF's node can read,
    /// in SUPI order (deterministic emission).
    pub fn security_exposure(&self) -> Vec<(Supi, &SecurityState)> {
        let mut v: Vec<(Supi, &SecurityState)> = self
            .contexts
            .iter()
            .map(|(s, c)| (*s, &c.security))
            .collect();
        v.sort_unstable_by_key(|(s, _)| *s);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests compose with `?` (`AmfError` and missing-context strings
    /// both box) instead of `unwrap()` — see the R3 ratchet.
    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn amf(id: u32) -> Amf {
        Amf::new(id, PlmnId::new(460, 1))
    }

    fn register_one(a: &mut Amf, msin: u64, ta: u32) -> SessionState {
        let s = SessionState::sample(msin);
        a.register(&s, ta);
        s
    }

    #[test]
    fn registration_creates_context_with_fresh_guti() -> TestResult {
        let mut a = amf(1);
        let s = register_one(&mut a, 5, 10);
        let ctx = *a.context(s.id.supi).ok_or("no context")?;
        assert_eq!(ctx.rm_state, RmState::RegisteredConnected);
        assert_eq!(ctx.tracking_area, 10);
        assert_eq!(ctx.guti.amf_id, 1);
        // Distinct GUTIs per registration.
        let s2 = register_one(&mut a, 6, 10);
        let ctx2 = a.context(s2.id.supi).ok_or("no second context")?;
        assert_ne!(ctx2.guti, ctx.guti);
        Ok(())
    }

    #[test]
    fn idle_connected_cycle_and_paging() -> TestResult {
        let mut a = amf(1);
        let s = register_one(&mut a, 7, 3);
        assert!(!a.needs_paging(s.id.supi)?);
        a.release(s.id.supi)?;
        assert!(a.needs_paging(s.id.supi)?);
        a.service_request(s.id.supi)?;
        assert!(!a.needs_paging(s.id.supi)?);
        Ok(())
    }

    #[test]
    fn context_transfer_moves_and_deletes() -> TestResult {
        let mut old = amf(1);
        let mut new = amf(2);
        let s = register_one(&mut old, 8, 3);
        let old_guti = old.context(s.id.supi).ok_or("no context")?.guti;

        let ctx = old.transfer_out(s.id.supi)?;
        assert_eq!(old.context_count(), 0, "old AMF deleted the state");
        let new_guti = new.transfer_in(ctx, 42);
        assert_ne!(new_guti, old_guti, "GUTI re-allocated by new AMF");
        let ctx2 = new.context(s.id.supi).ok_or("context not adopted")?;
        assert_eq!(ctx2.tracking_area, 42);
        // Security context followed the UE (this is the S5 migration the
        // paper worries about).
        assert_eq!(ctx2.security, s.security);
        Ok(())
    }

    #[test]
    fn satellite_sweep_storm_in_miniature() -> TestResult {
        // 100 static UEs, a sweep every "transit": every context moves
        // AMF→AMF each time. Count the migrations a stateful design pays.
        let mut amfs: Vec<Amf> = (0..4).map(amf).collect();
        let mut supis = Vec::new();
        for i in 0..100 {
            let s = register_one(&mut amfs[0], i, 0);
            supis.push(s.id.supi);
        }
        let mut migrations = 0;
        for sweep in 1..4usize {
            for supi in &supis {
                let ctx = amfs[sweep - 1].transfer_out(*supi)?;
                amfs[sweep].transfer_in(ctx, sweep as u32);
                migrations += 1;
            }
        }
        assert_eq!(migrations, 300);
        assert_eq!(amfs[3].context_count(), 100);
        assert_eq!(amfs[0].context_count() + amfs[1].context_count() + amfs[2].context_count(), 0);
        Ok(())
    }

    #[test]
    fn recorder_counts_lifecycle_and_gauges_contexts() -> TestResult {
        let rec = Recorder::new();
        let mut a = amf(1);
        a.attach_recorder(rec.clone());
        let s = register_one(&mut a, 5, 10);
        a.release(s.id.supi)?;
        a.service_request(s.id.supi)?;
        let ctx = a.transfer_out(s.id.supi)?;
        let mut b = amf(2);
        b.attach_recorder(rec.clone());
        b.transfer_in(ctx, 11);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("fiveg.amf.registrations"), 1);
        assert_eq!(snap.counter("fiveg.amf.releases"), 1);
        assert_eq!(snap.counter("fiveg.amf.service_requests"), 1);
        assert_eq!(snap.counter("fiveg.amf.transfers_out"), 1);
        assert_eq!(snap.counter("fiveg.amf.transfers_in"), 1);
        assert_eq!(snap.gauge("fiveg.amf.contexts"), Some(1.0));
        Ok(())
    }

    #[test]
    fn exposure_equals_held_contexts() {
        let mut a = amf(1);
        for i in 0..10 {
            register_one(&mut a, 100 + i, 0);
        }
        assert_eq!(a.security_exposure().len(), 10);
    }

    #[test]
    fn unknown_ue_errors() {
        let mut a = amf(1);
        let ghost = Supi::new(PlmnId::new(460, 1), 999);
        assert_eq!(a.release(ghost).unwrap_err(), AmfError::UnknownUe);
        assert_eq!(a.transfer_out(ghost).unwrap_err(), AmfError::TransferUnknownUe);
        assert!(a.context(ghost).is_none());
    }
}
