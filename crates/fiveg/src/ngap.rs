//! NGAP-style codec: the N2 messages between RAN and AMF.
//!
//! Where [`crate::nas`] encodes the UE↔core messages, this module
//! encodes the RAN↔AMF control messages the handover and path-switch
//! procedures exchange (Fig. 9c P13/P14): a procedure code, criticality,
//! and length-prefixed IEs keyed by integer ids — the shape of
//! ASN.1-PER NGAP, flattened to a deterministic binary layout.

/// NGAP procedure codes (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NgapProcedure {
    InitialUeMessage,
    DownlinkNasTransport,
    UplinkNasTransport,
    InitialContextSetup,
    PathSwitchRequest,
    PathSwitchRequestAck,
    HandoverRequired,
    HandoverRequest,
    UeContextRelease,
    Paging,
}

impl NgapProcedure {
    fn to_byte(self) -> u8 {
        match self {
            NgapProcedure::InitialUeMessage => 15,
            NgapProcedure::DownlinkNasTransport => 4,
            NgapProcedure::UplinkNasTransport => 46,
            NgapProcedure::InitialContextSetup => 14,
            NgapProcedure::PathSwitchRequest => 57,
            NgapProcedure::PathSwitchRequestAck => 58,
            NgapProcedure::HandoverRequired => 12,
            NgapProcedure::HandoverRequest => 13,
            NgapProcedure::UeContextRelease => 41,
            NgapProcedure::Paging => 24,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            15 => NgapProcedure::InitialUeMessage,
            4 => NgapProcedure::DownlinkNasTransport,
            46 => NgapProcedure::UplinkNasTransport,
            14 => NgapProcedure::InitialContextSetup,
            57 => NgapProcedure::PathSwitchRequest,
            58 => NgapProcedure::PathSwitchRequestAck,
            12 => NgapProcedure::HandoverRequired,
            13 => NgapProcedure::HandoverRequest,
            41 => NgapProcedure::UeContextRelease,
            24 => NgapProcedure::Paging,
            _ => return None,
        })
    }
}

/// IE ids (subset).
pub mod ie {
    /// AMF-assigned UE id on N2.
    pub const AMF_UE_NGAP_ID: u16 = 10;
    /// RAN-assigned UE id on N2.
    pub const RAN_UE_NGAP_ID: u16 = 85;
    /// Encapsulated NAS PDU.
    pub const NAS_PDU: u16 = 38;
    /// PDU session resource list.
    pub const PDU_SESSION_LIST: u16 = 75;
    /// Target cell / user location.
    pub const USER_LOCATION: u16 = 121;
    /// Security context (the S5 payload of path switches).
    pub const SECURITY_CONTEXT: u16 = 93;
}

/// An NGAP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NgapMessage {
    pub procedure: NgapProcedure,
    /// (IE id, bytes), ordered.
    pub ies: Vec<(u16, Vec<u8>)>,
}

/// Decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NgapDecodeError {
    Truncated,
    BadProcedure,
}

impl NgapMessage {
    pub fn new(procedure: NgapProcedure) -> Self {
        Self {
            procedure,
            ies: Vec::new(),
        }
    }

    pub fn with_ie(mut self, id: u16, value: Vec<u8>) -> Self {
        assert!(value.len() <= u16::MAX as usize);
        self.ies.push((id, value));
        self
    }

    /// First IE with the given id.
    pub fn ie(&self, id: u16) -> Option<&[u8]> {
        self.ies
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, v)| v.as_slice())
    }

    /// Encode: `proc(1) n_ies(1) [id(2BE) len(2BE) value…]*`.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        self.encode_into(&mut b);
        b
    }

    /// Encode into a caller-supplied buffer (cleared first) — the
    /// allocation-free variant behind [`crate::arena::MessageArena`].
    pub fn encode_into(&self, b: &mut Vec<u8>) {
        b.clear();
        b.reserve(2 + self.ies.iter().map(|(_, v)| 4 + v.len()).sum::<usize>());
        b.push(self.procedure.to_byte());
        b.push(self.ies.len() as u8);
        for (id, v) in &self.ies {
            b.extend_from_slice(&id.to_be_bytes());
            b.extend_from_slice(&(v.len() as u16).to_be_bytes());
            b.extend_from_slice(v);
        }
    }

    /// Decode with strict length validation.
    pub fn decode(b: &[u8]) -> Result<Self, NgapDecodeError> {
        if b.len() < 2 {
            return Err(NgapDecodeError::Truncated);
        }
        let procedure =
            NgapProcedure::from_byte(b[0]).ok_or(NgapDecodeError::BadProcedure)?;
        let n = b[1] as usize;
        let mut ies = Vec::with_capacity(n);
        let mut i = 2;
        for _ in 0..n {
            if i + 4 > b.len() {
                return Err(NgapDecodeError::Truncated);
            }
            let id = u16::from_be_bytes([b[i], b[i + 1]]);
            let len = u16::from_be_bytes([b[i + 2], b[i + 3]]) as usize;
            i += 4;
            if i + len > b.len() {
                return Err(NgapDecodeError::Truncated);
            }
            ies.push((id, b[i..i + len].to_vec()));
            i += len;
        }
        if i != b.len() {
            return Err(NgapDecodeError::Truncated); // trailing bytes
        }
        Ok(Self { procedure, ies })
    }
}

/// Build the P13 path-switch request of Fig. 9c: the target RAN reports
/// the UE's new location and relays the security context.
pub fn path_switch_request(
    ran_ue_id: u64,
    user_location: &[u8],
    security_ctx: &[u8],
) -> NgapMessage {
    NgapMessage::new(NgapProcedure::PathSwitchRequest)
        .with_ie(ie::RAN_UE_NGAP_ID, ran_ue_id.to_be_bytes().to_vec())
        .with_ie(ie::USER_LOCATION, user_location.to_vec())
        .with_ie(ie::SECURITY_CONTEXT, security_ctx.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = NgapMessage::new(NgapProcedure::InitialUeMessage)
            .with_ie(ie::RAN_UE_NGAP_ID, vec![0, 0, 0, 7])
            .with_ie(ie::NAS_PDU, vec![0x7E, 0x41, 1, 2, 3]);
        assert_eq!(NgapMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn all_procedures_roundtrip() {
        for p in [
            NgapProcedure::InitialUeMessage,
            NgapProcedure::DownlinkNasTransport,
            NgapProcedure::UplinkNasTransport,
            NgapProcedure::InitialContextSetup,
            NgapProcedure::PathSwitchRequest,
            NgapProcedure::PathSwitchRequestAck,
            NgapProcedure::HandoverRequired,
            NgapProcedure::HandoverRequest,
            NgapProcedure::UeContextRelease,
            NgapProcedure::Paging,
        ] {
            let m = NgapMessage::new(p);
            assert_eq!(NgapMessage::decode(&m.encode()).unwrap().procedure, p);
        }
    }

    #[test]
    fn nas_pdu_nesting() {
        // An NGAP transport carrying a NAS message: both layers decode.
        let nas = crate::nas::NasMessage::new(crate::nas::NasMessageType::ServiceRequest)
            .with_ie(crate::nas::IeTag::MobileIdentity, vec![1, 2, 3]);
        let ngap = NgapMessage::new(NgapProcedure::UplinkNasTransport)
            .with_ie(ie::NAS_PDU, nas.encode());
        let d = NgapMessage::decode(&ngap.encode()).unwrap();
        let inner = crate::nas::NasMessage::decode(d.ie(ie::NAS_PDU).unwrap()).unwrap();
        assert_eq!(inner, nas);
    }

    #[test]
    fn path_switch_carries_security_context() {
        let m = path_switch_request(99, b"cell-12-7", b"s5-context-bytes");
        let d = NgapMessage::decode(&m.encode()).unwrap();
        assert_eq!(d.procedure, NgapProcedure::PathSwitchRequest);
        assert_eq!(d.ie(ie::SECURITY_CONTEXT).unwrap(), b"s5-context-bytes");
        assert_eq!(d.ie(ie::USER_LOCATION).unwrap(), b"cell-12-7");
    }

    #[test]
    fn malformed_rejected() {
        let m = NgapMessage::new(NgapProcedure::Paging).with_ie(ie::NAS_PDU, vec![1; 10]);
        let b = m.encode();
        for cut in [0, 1, 3, 5, b.len() - 1] {
            assert!(NgapMessage::decode(&b[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = b.clone();
        trailing.push(0);
        assert!(NgapMessage::decode(&trailing).is_err());
        let mut bad_proc = b;
        bad_proc[0] = 0xFF;
        assert_eq!(
            NgapMessage::decode(&bad_proc).unwrap_err(),
            NgapDecodeError::BadProcedure
        );
    }
}
