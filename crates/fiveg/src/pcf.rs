//! The PCF: policy and charging control.
//!
//! Maps subscription tiers to QoS/billing policies at session
//! establishment (Fig. 9 P4 "policy establishment/modification") and
//! issues dynamic policy updates — the "unlimited data speed for the
//! first 15 GB, and throttled to 128 kbps afterward" control the paper
//! uses to motivate home-controlled state updates (§4.4).

use crate::state::{BillingState, QosState};
use crate::udm::SubscriptionTier;

/// A policy decision: the QoS + billing states to install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyDecision {
    pub qos: QosState,
    pub billing: BillingState,
}

/// The Policy and Charging Function.
#[derive(Debug, Clone, Default)]
pub struct Pcf {
    /// Network-wide congestion multiplier applied to AMBRs (1.0 = none).
    congestion_factor_percent: u32,
}

impl Pcf {
    pub fn new() -> Self {
        Self {
            congestion_factor_percent: 100,
        }
    }

    /// Apply a network-wide congestion policy: scale all AMBRs to
    /// `percent` of nominal (dynamic policy modification).
    pub fn set_congestion_percent(&mut self, percent: u32) {
        assert!(percent > 0 && percent <= 100);
        self.congestion_factor_percent = percent;
    }

    /// P4 — the policy decision for a subscription tier.
    pub fn decide(&self, tier: SubscriptionTier) -> PolicyDecision {
        let (qi, priority, ambr_kbps, gbr_down, quota_gb, post_quota_kbps) = match tier {
            SubscriptionTier::Iot => (82, 12, 64, 0, 1, 8),
            SubscriptionTier::Consumer => (9, 8, 100_000, 0, 15, 128),
            SubscriptionTier::Enterprise => (3, 2, 500_000, 50_000, 1000, 10_000),
        };
        let ambr = ambr_kbps * self.congestion_factor_percent / 100;
        PolicyDecision {
            qos: QosState {
                qi,
                priority,
                gbr_down_kbps: gbr_down,
                gbr_up_kbps: gbr_down / 2,
                ambr_kbps: ambr.max(1),
                forwarding_rules: 2,
            },
            billing: BillingState {
                report_threshold_bytes: 1 << 30,
                used_bytes: 0,
                post_quota_kbps,
                quota_bytes: quota_gb << 30,
            },
        }
    }

    /// The throttled post-quota policy for a session that exceeded its
    /// quota: AMBR drops to the throttle rate.
    pub fn post_quota(&self, decision: &PolicyDecision) -> PolicyDecision {
        let mut d = *decision;
        d.qos.ambr_kbps = d.billing.post_quota_kbps;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_ordered_by_capability() {
        let pcf = Pcf::new();
        let iot = pcf.decide(SubscriptionTier::Iot);
        let consumer = pcf.decide(SubscriptionTier::Consumer);
        let ent = pcf.decide(SubscriptionTier::Enterprise);
        assert!(iot.qos.ambr_kbps < consumer.qos.ambr_kbps);
        assert!(consumer.qos.ambr_kbps < ent.qos.ambr_kbps);
        // Priority: smaller = higher.
        assert!(ent.qos.priority < consumer.qos.priority);
        // Only enterprise gets GBR.
        assert_eq!(iot.qos.gbr_down_kbps, 0);
        assert_eq!(consumer.qos.gbr_down_kbps, 0);
        assert!(ent.qos.gbr_down_kbps > 0);
    }

    #[test]
    fn consumer_policy_matches_paper_example() {
        // "unlimited data speed for the first 15GB data, and throttled
        // to 128Kbps afterward".
        let pcf = Pcf::new();
        let d = pcf.decide(SubscriptionTier::Consumer);
        assert_eq!(d.billing.quota_bytes, 15 << 30);
        assert_eq!(d.billing.post_quota_kbps, 128);
        let throttled = pcf.post_quota(&d);
        assert_eq!(throttled.qos.ambr_kbps, 128);
    }

    #[test]
    fn congestion_scales_ambr() {
        let mut pcf = Pcf::new();
        let nominal = pcf.decide(SubscriptionTier::Consumer).qos.ambr_kbps;
        pcf.set_congestion_percent(50);
        let congested = pcf.decide(SubscriptionTier::Consumer).qos.ambr_kbps;
        assert_eq!(congested, nominal / 2);
    }

    #[test]
    #[should_panic]
    fn zero_congestion_invalid() {
        Pcf::new().set_congestion_percent(0);
    }

    #[test]
    fn decisions_deterministic() {
        let pcf = Pcf::new();
        assert_eq!(
            pcf.decide(SubscriptionTier::Iot),
            pcf.decide(SubscriptionTier::Iot)
        );
    }
}
