//! The 5G key hierarchy and AKA flow (the S5 machinery of §3.1).
//!
//! Legacy 5G security "relies on symmetric key-based shared secret
//! states" (§4.4): the permanent key K in the SIM and UDM derives, step
//! by step, every key the serving network uses. This module implements
//! that derivation chain —
//!
//! ```text
//! K ──► CK‖IK ──► K_AUSF ──► K_SEAF ──► K_AMF ──► K_NAS  (NAS ciphering)
//!                                        └──────► K_gNB  (radio keys)
//! ```
//!
//! — plus authentication-vector generation and verification (the 5G-AKA
//! challenge/response of Fig. 9a P3). The derivation functions are the
//! workspace keyed hash (simulation boundary: not 3GPP KDFs, but the
//! *structure* — who can derive what from what — is exactly the
//! standard's, which is what the leakage analysis consumes: leaking
//! K_gNB exposes one radio session; leaking K exposes everything).

use sc_crypto::field::keyed_hash;

/// Derivation-context labels (stand-ins for the 3GPP FC values).
mod label {
    pub const CK_IK: &[u8] = b"5g-ck-ik";
    pub const K_AUSF: &[u8] = b"5g-k-ausf";
    pub const K_SEAF: &[u8] = b"5g-k-seaf";
    pub const K_AMF: &[u8] = b"5g-k-amf";
    pub const K_NAS: &[u8] = b"5g-k-nas";
    pub const K_GNB: &[u8] = b"5g-k-gnb";
    pub const RES: &[u8] = b"5g-res";
    pub const AUTN: &[u8] = b"5g-autn";
}

fn kdf(key: u64, label: &[u8], ctx: u64) -> u64 {
    let mut buf = Vec::with_capacity(label.len() + 8);
    buf.extend_from_slice(label);
    buf.extend_from_slice(&ctx.to_le_bytes());
    keyed_hash(key, &buf)
}

/// The derived key set for one registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyHierarchy {
    pub k_ausf: u64,
    pub k_seaf: u64,
    pub k_amf: u64,
    pub k_nas: u64,
    pub k_gnb: u64,
}

impl KeyHierarchy {
    /// Derive the full chain from the permanent key `k`, the random
    /// challenge `rand`, and the serving-network identifier `snid`.
    pub fn derive(k: u64, rand: u64, snid: u64) -> Self {
        let ck_ik = kdf(k, label::CK_IK, rand);
        let k_ausf = kdf(ck_ik, label::K_AUSF, snid);
        let k_seaf = kdf(k_ausf, label::K_SEAF, snid);
        let k_amf = kdf(k_seaf, label::K_AMF, 0);
        Self {
            k_ausf,
            k_seaf,
            k_amf,
            k_nas: kdf(k_amf, label::K_NAS, 0),
            k_gnb: kdf(k_amf, label::K_GNB, 0),
        }
    }
}

/// A 5G authentication vector, as produced by the UDM/AUSF (Fig. 9a:
/// "create S5 (5G HE AV)" / "create S5 (5G SE AV)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthVector {
    /// Random challenge.
    pub rand: u64,
    /// Network authentication token (proves the challenge came from a
    /// network that knows K).
    pub autn: u64,
    /// Expected UE response.
    pub xres: u64,
}

/// Home-side generation of an authentication vector.
pub fn generate_av(k: u64, rand: u64, sqn: u64) -> AuthVector {
    AuthVector {
        rand,
        autn: kdf(k, label::AUTN, rand ^ sqn),
        xres: kdf(k, label::RES, rand),
    }
}

/// UE-side of 5G-AKA: verify the network token, compute the response.
/// Returns `None` when AUTN fails (a fake base station that does not
/// know K cannot produce a valid token).
pub fn ue_respond(k: u64, rand: u64, autn: u64, sqn: u64) -> Option<u64> {
    if kdf(k, label::AUTN, rand ^ sqn) != autn {
        return None;
    }
    Some(kdf(k, label::RES, rand))
}

/// Serving-network-side check of the UE response.
pub fn verify_response(av: &AuthVector, res: u64) -> bool {
    av.xres == res
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: u64 = 0x5EC2E7_5EC2E7;
    const SNID: u64 = 46001;

    #[test]
    fn full_aka_roundtrip() {
        let av = generate_av(K, 0xABCD, 7);
        let res = ue_respond(K, av.rand, av.autn, 7).expect("genuine network");
        assert!(verify_response(&av, res));
    }

    #[test]
    fn fake_network_rejected_by_ue() {
        // Attacker without K guesses an AUTN.
        assert!(ue_respond(K, 0xABCD, 0xDEAD_BEEF, 7).is_none());
    }

    #[test]
    fn wrong_ue_key_fails_verification() {
        let av = generate_av(K, 0xABCD, 7);
        // A UE with a different SIM produces a different response…
        let res = kdf(K ^ 1, label::RES, av.rand);
        assert!(!verify_response(&av, res));
    }

    #[test]
    fn sqn_mismatch_detected() {
        // Replaying an old AV with a stale sequence number fails.
        let av = generate_av(K, 0xABCD, 7);
        assert!(ue_respond(K, av.rand, av.autn, 8).is_none());
    }

    #[test]
    fn hierarchy_deterministic_and_chain_structured() {
        let h1 = KeyHierarchy::derive(K, 0x1111, SNID);
        let h2 = KeyHierarchy::derive(K, 0x1111, SNID);
        assert_eq!(h1, h2);
        // Distinct keys at every level.
        let keys = [h1.k_ausf, h1.k_seaf, h1.k_amf, h1.k_nas, h1.k_gnb];
        let mut dedup = keys.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }

    #[test]
    fn fresh_rand_fresh_session_keys() {
        let a = KeyHierarchy::derive(K, 1, SNID);
        let b = KeyHierarchy::derive(K, 2, SNID);
        assert_ne!(a.k_gnb, b.k_gnb);
        assert_ne!(a.k_nas, b.k_nas);
    }

    #[test]
    fn serving_network_binding() {
        // The same UE registering via a different serving network gets
        // different keys (roaming separation).
        let a = KeyHierarchy::derive(K, 1, 46001);
        let b = KeyHierarchy::derive(K, 1, 310_260);
        assert_ne!(a.k_seaf, b.k_seaf);
    }

    #[test]
    fn downstream_leak_does_not_expose_upstream() {
        // Structural property: K_gNB is a one-way derivation from K_AMF;
        // equal gNB keys would require equal AMF keys. We check that
        // deriving "upward" is not possible through the public API —
        // i.e. nothing in `KeyHierarchy` exposes K or CK/IK.
        let h = KeyHierarchy::derive(K, 3, SNID);
        // Best an attacker can do with k_gnb is derive *from* it:
        let forged = kdf(h.k_gnb, label::K_AMF, 0);
        assert_ne!(forged, h.k_amf);
    }
}
