//! Satellite hardware profiles and the per-NF CPU cost model (Fig. 7/8).
//!
//! The paper prototypes on two hardware platforms used by real 5G LEO
//! satellites:
//!
//! * **Hardware 1** — Raspberry Pi 4, as flown on the Baoyun satellite,
//! * **Hardware 2** — a Xeon E5-2630 workstation, comparable to the
//!   Hewlett Packard Enterprise EL8000 flown by OrbitsEdge.
//!
//! Substitution (DESIGN.md §3): we model each network function's
//! per-message service time and derive CPU% and queueing latency from
//! offered load. Service times are calibrated so the curve *shapes* match
//! Figure 7 (Pi saturates near ~250 registrations/s with AUSF/DB/AMF
//! dominating) and Figure 8 (latency knee, then near-linear growth).

use crate::messages::Procedure;
use crate::nf::{FunctionSplit, NetworkFunction, Placement};
use sc_netsim::queueing::MM1Model;

/// A satellite compute platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HardwareProfile {
    /// Raspberry Pi 4 (Baoyun-class).
    RaspberryPi4,
    /// Xeon E5-2630 workstation (OrbitsEdge-class).
    XeonWorkstation,
}

impl HardwareProfile {
    pub fn name(self) -> &'static str {
        match self {
            HardwareProfile::RaspberryPi4 => "Hardware 1 (Raspberry Pi 4)",
            HardwareProfile::XeonWorkstation => "Hardware 2 (Xeon E5-2630)",
        }
    }

    /// Relative speed multiplier versus the Pi.
    pub fn speedup(self) -> f64 {
        match self {
            HardwareProfile::RaspberryPi4 => 1.0,
            HardwareProfile::XeonWorkstation => 3.2,
        }
    }

    /// Both profiles, in the paper's order.
    pub const ALL: [HardwareProfile; 2] = [
        HardwareProfile::RaspberryPi4,
        HardwareProfile::XeonWorkstation,
    ];
}

/// Per-NF, per-message service times (milliseconds on the Pi).
#[derive(Debug, Clone, Copy)]
pub struct NfCostTable {
    hardware: HardwareProfile,
}

impl NfCostTable {
    pub fn new(hardware: HardwareProfile) -> Self {
        Self { hardware }
    }

    pub fn hardware(self) -> HardwareProfile {
        self.hardware
    }

    /// Service time for one message at network function `f`,
    /// milliseconds.
    ///
    /// Pi-baseline values: signing/crypto-heavy functions (AUSF) and the
    /// state store (DB) dominate, matching the Fig. 7 stacking where
    /// AUSF/DB/AMF are the tallest bands.
    pub fn service_ms(self, f: NetworkFunction) -> f64 {
        let base = match f {
            NetworkFunction::Ran => 0.25,
            NetworkFunction::Amf => 0.70,
            NetworkFunction::Smf => 0.55,
            NetworkFunction::Upf => 0.30,
            NetworkFunction::Ausf => 1.10, // AKA crypto
            NetworkFunction::Udm => 0.60,
            NetworkFunction::Pcf => 0.45,
            NetworkFunction::Db => 0.90, // UDSF lookups (paper notes it is slow)
        };
        base / self.hardware.speedup()
    }

    /// Total satellite-side service time for one run of `proc` under
    /// `split` (ms): the sum over messages processed by NFs placed on the
    /// satellite. Every procedure also pays the RAN cost for UE-facing
    /// messages when the RAN is in space.
    pub fn satellite_ms_per_procedure(self, proc: &Procedure, split: &FunctionSplit) -> f64 {
        proc.steps
            .iter()
            .filter_map(|s| s.to.nf())
            .filter(|f| split.placement(*f) == Placement::Satellite)
            .map(|f| self.service_ms(f))
            .sum()
    }

    /// Per-NF satellite CPU percentages at `rate` procedures/second
    /// (the stacked bands of Figure 7). Returns `(nf, cpu_percent)`
    /// pairs for satellite-resident functions, uncapped sum may exceed
    /// 100 (overload).
    pub fn cpu_breakdown(
        self,
        proc: &Procedure,
        split: &FunctionSplit,
        rate_per_s: f64,
    ) -> Vec<(NetworkFunction, f64)> {
        let mut acc: Vec<(NetworkFunction, f64)> = Vec::new();
        for s in proc.steps {
            let Some(f) = s.to.nf() else { continue };
            if split.placement(f) != Placement::Satellite {
                continue;
            }
            let ms = self.service_ms(f);
            let pct = rate_per_s * ms / 1000.0 * 100.0;
            match acc.iter_mut().find(|(g, _)| *g == f) {
                Some((_, p)) => *p += pct,
                None => acc.push((f, pct)),
            }
        }
        acc.sort_by_key(|(f, _)| NetworkFunction::ALL.iter().position(|x| x == f));
        acc
    }

    /// Total satellite CPU% at `rate` procedures/s (capped at 100).
    pub fn cpu_total(self, proc: &Procedure, split: &FunctionSplit, rate_per_s: f64) -> f64 {
        let raw: f64 = self
            .cpu_breakdown(proc, split, rate_per_s)
            .iter()
            .map(|(_, p)| p)
            .sum();
        raw.min(100.0)
    }

    /// An M/M/1 latency model for the satellite stage of `proc` under
    /// `split` (used for the Fig. 8/17 latency-vs-load curves).
    pub fn latency_model(self, proc: &Procedure, split: &FunctionSplit) -> Option<MM1Model> {
        let ms = self.satellite_ms_per_procedure(proc, split);
        if ms <= 0.0 {
            return None; // nothing runs on the satellite
        }
        Some(MM1Model::from_service_time(ms / 1000.0, 10.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::ProcedureKind;
    use crate::nf::SplitOption;

    #[test]
    fn xeon_faster_than_pi() {
        let pi = NfCostTable::new(HardwareProfile::RaspberryPi4);
        let xeon = NfCostTable::new(HardwareProfile::XeonWorkstation);
        for f in NetworkFunction::ALL {
            assert!(xeon.service_ms(f) < pi.service_ms(f), "{f:?}");
        }
    }

    #[test]
    fn option4_saturates_pi_at_figure7_scale() {
        // Fig. 7a: with all functions in space, the Pi approaches 100%
        // CPU in the low hundreds of registrations/s.
        let pi = NfCostTable::new(HardwareProfile::RaspberryPi4);
        let c1 = Procedure::build(ProcedureKind::InitialRegistration);
        let split = SplitOption::AllFunctions.split();
        let at_50 = pi.cpu_total(&c1, &split, 50.0);
        let at_250 = pi.cpu_total(&c1, &split, 250.0);
        assert!(at_50 > 20.0 && at_50 < 80.0, "{at_50}");
        assert!(at_250 >= 99.9, "{at_250}");
    }

    #[test]
    fn radio_only_satellite_cpu_negligible() {
        let pi = NfCostTable::new(HardwareProfile::RaspberryPi4);
        let c1 = Procedure::build(ProcedureKind::InitialRegistration);
        let split = SplitOption::RadioOnly.split();
        // RAN-only processing stays cheap even at high rates.
        assert!(pi.cpu_total(&c1, &split, 250.0) < 40.0);
    }

    #[test]
    fn breakdown_sums_to_total_below_cap() {
        let pi = NfCostTable::new(HardwareProfile::RaspberryPi4);
        let c2 = Procedure::build(ProcedureKind::SessionEstablishment);
        let split = SplitOption::SessionMobility.split();
        let parts: f64 = pi
            .cpu_breakdown(&c2, &split, 40.0)
            .iter()
            .map(|(_, p)| p)
            .sum();
        let total = pi.cpu_total(&c2, &split, 40.0);
        assert!((parts - total).abs() < 1e-9, "{parts} vs {total}");
    }

    #[test]
    fn ausf_dominates_option4_breakdown() {
        // Fig. 7 stacking: AUSF (AKA crypto) is among the largest bands
        // for initial registrations.
        let pi = NfCostTable::new(HardwareProfile::RaspberryPi4);
        let c1 = Procedure::build(ProcedureKind::InitialRegistration);
        let split = SplitOption::AllFunctions.split();
        let breakdown = pi.cpu_breakdown(&c1, &split, 100.0);
        let ausf = breakdown
            .iter()
            .find(|(f, _)| *f == NetworkFunction::Ausf)
            .map(|(_, p)| *p)
            .unwrap();
        let upf = breakdown
            .iter()
            .find(|(f, _)| *f == NetworkFunction::Upf)
            .map(|(_, p)| *p)
            .unwrap();
        assert!(ausf > upf, "ausf {ausf} upf {upf}");
    }

    #[test]
    fn latency_model_none_when_nothing_in_space() {
        let pi = NfCostTable::new(HardwareProfile::RaspberryPi4);
        let c2 = Procedure::build(ProcedureKind::SessionEstablishment);
        let all_ground = FunctionSplit::all_ground();
        assert!(pi.latency_model(&c2, &all_ground).is_none());
        let sat = SplitOption::SessionMobility.split();
        let m = pi.latency_model(&c2, &sat).unwrap();
        assert!(m.service_rate > 0.0);
    }

    #[test]
    fn latency_knee_matches_figure8_shape() {
        // Fig. 8a: hardware 1 latency grows by orders of magnitude from
        // 10/s to 500/s.
        let pi = NfCostTable::new(HardwareProfile::RaspberryPi4);
        let c1 = Procedure::build(ProcedureKind::InitialRegistration);
        let split = SplitOption::AllFunctions.split();
        let m = pi.latency_model(&c1, &split).unwrap();
        let low = m.sojourn_s(10.0);
        let high = m.sojourn_s(500.0);
        assert!(high / low > 50.0, "low {low} high {high}");
    }
}
