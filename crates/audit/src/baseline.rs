//! The R3 ratchet file: per-crate panic-hygiene counters checked into
//! the repo as `audit.baseline.toml`. The format is a tiny TOML subset
//! (`[section]`, `key = integer`, `#` comments) parsed by hand so the
//! auditor stays dependency-free.
//!
//! The ratchet direction: current counts may be **at or below** the
//! baseline, never above. Dropping below prints a nudge to regenerate
//! (`sc-audit --update-baseline`) so the ceiling follows the progress
//! down.

use crate::rules::PanicCounts;
use std::collections::BTreeMap;

/// Baseline counters keyed by crate directory name (`fiveg`, `emu`, …).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub crates: BTreeMap<String, PanicCounts>,
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Baseline {
    /// Parse the TOML-subset text.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut out = Baseline::default();
        let mut current: Option<String> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unterminated section header `{line}`"),
                    });
                };
                let name = name.trim().to_string();
                out.crates.entry(name.clone()).or_default();
                current = Some(name);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let Some(section) = current.as_ref() else {
                return Err(ParseError {
                    line: lineno,
                    message: "key before any [crate] section".into(),
                });
            };
            let value: u32 = value.trim().parse().map_err(|_| ParseError {
                line: lineno,
                message: format!("`{}` is not a non-negative integer", value.trim()),
            })?;
            let c = out.crates.get_mut(section).expect("section inserted above");
            match key.trim() {
                "unwrap" => c.unwrap = value,
                "expect" => c.expect = value,
                "panic" => c.panic = value,
                "unsafe" => c.r#unsafe = value,
                other => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown counter `{other}`"),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Render back to the canonical checked-in form.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "# Panic-hygiene ratchet for sc-audit (rule R3). Counts are per crate\n\
             # directory under crates/ and may only go DOWN over time; regenerate\n\
             # after genuine reductions with: cargo run -p sc-audit -- --update-baseline\n",
        );
        for (name, c) in &self.crates {
            s.push_str(&format!(
                "\n[{name}]\nunwrap = {}\nexpect = {}\npanic = {}\nunsafe = {}\n",
                c.unwrap, c.expect, c.panic, c.r#unsafe
            ));
        }
        s
    }

    /// Build from measured counts.
    pub fn from_counts(counts: &BTreeMap<String, PanicCounts>) -> Self {
        Self {
            crates: counts.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut counts = BTreeMap::new();
        counts.insert(
            "fiveg".to_string(),
            PanicCounts {
                unwrap: 12,
                expect: 3,
                panic: 1,
                r#unsafe: 0,
            },
        );
        counts.insert("emu".to_string(), PanicCounts::default());
        let b = Baseline::from_counts(&counts);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn comments_and_blank_lines_ok() {
        let b = Baseline::parse("# header\n\n[geo]\nunwrap = 4\n# trailing\n").unwrap();
        assert_eq!(b.crates["geo"].unwrap, 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Baseline::parse("unwrap = 1\n").is_err(), "key before section");
        assert!(Baseline::parse("[x]\nunwrap = -1\n").is_err(), "negative");
        assert!(Baseline::parse("[x]\nwat = 1\n").is_err(), "unknown key");
        assert!(Baseline::parse("[x\n").is_err(), "unterminated header");
    }
}
