//! The ratchet file: per-crate counters checked into the repo as
//! `audit.baseline.toml`. The format is a tiny TOML subset
//! (`[section]`, `key = integer`, `#` comments) parsed by hand so the
//! auditor stays dependency-free.
//!
//! **v1** carried the R3 panic-hygiene counters (`unwrap`/`expect`/
//! `panic`/`unsafe`). **v2** adds per-crate `r4`/`r5` finding ceilings
//! for the dataflow rules in [`crate::flow`] — absent keys parse as 0,
//! so every v1 file is a valid v2 file that pins R4/R5 at zero (the
//! desired steady state).
//!
//! The ratchet direction: current counts may be **at or below** the
//! baseline, never above. Dropping below prints a nudge to regenerate
//! (`sc-audit --update-baseline`) so the ceiling follows the progress
//! down.

use crate::rules::PanicCounts;
use std::collections::BTreeMap;

/// Per-crate ceilings for the R4/R5 dataflow findings (baseline v2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowCounts {
    pub r4: u32,
    pub r5: u32,
}

/// Baseline counters keyed by crate directory name (`fiveg`, `emu`, …).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub crates: BTreeMap<String, PanicCounts>,
    /// R4/R5 ceilings. Crates present in `crates` but absent here pin
    /// at zero (v1 files, and the common case).
    pub flow: BTreeMap<String, FlowCounts>,
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Baseline {
    /// Parse the TOML-subset text.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut out = Baseline::default();
        let mut current: Option<String> = None;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unterminated section header `{line}`"),
                    });
                };
                let name = name.trim().to_string();
                out.crates.entry(name.clone()).or_default();
                current = Some(name);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let Some(section) = current.as_ref() else {
                return Err(ParseError {
                    line: lineno,
                    message: "key before any [crate] section".into(),
                });
            };
            let value: u32 = value.trim().parse().map_err(|_| ParseError {
                line: lineno,
                message: format!("`{}` is not a non-negative integer", value.trim()),
            })?;
            let c = out.crates.get_mut(section).expect("section inserted above");
            match key.trim() {
                "unwrap" => c.unwrap = value,
                "expect" => c.expect = value,
                "panic" => c.panic = value,
                "unsafe" => c.r#unsafe = value,
                // Zero is the default; storing it would only make the
                // in-memory form depend on whether the file spelled
                // the zeros out (breaking render/parse roundtrips).
                "r4" if value > 0 => out.flow.entry(section.clone()).or_default().r4 = value,
                "r5" if value > 0 => out.flow.entry(section.clone()).or_default().r5 = value,
                "r4" | "r5" => {}
                other => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("unknown counter `{other}`"),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Render back to the canonical checked-in form (v2: `r4`/`r5`
    /// ceilings are always written, normally as zeros).
    pub fn render(&self) -> String {
        let mut s = String::from(
            "# Ratchet file for sc-audit. Counts are per crate directory under\n\
             # crates/ and may only go DOWN over time; regenerate after genuine\n\
             # reductions with: cargo run -p sc-audit -- --update-baseline\n\
             # unwrap/expect/panic/unsafe: R3 panic hygiene.\n\
             # r4/r5: unsuppressed state-flow / parallel-determinism findings\n\
             # (baseline v2); the steady state is zero everywhere.\n",
        );
        for (name, c) in &self.crates {
            let f = self.flow.get(name).copied().unwrap_or_default();
            s.push_str(&format!(
                "\n[{name}]\nunwrap = {}\nexpect = {}\npanic = {}\nunsafe = {}\nr4 = {}\nr5 = {}\n",
                c.unwrap, c.expect, c.panic, c.r#unsafe, f.r4, f.r5
            ));
        }
        s
    }

    /// Build from measured counts (R4/R5 ceilings default to zero).
    pub fn from_counts(counts: &BTreeMap<String, PanicCounts>) -> Self {
        Self {
            crates: counts.clone(),
            flow: BTreeMap::new(),
        }
    }

    /// Build from measured counts plus measured flow findings.
    pub fn from_measurements(
        counts: &BTreeMap<String, PanicCounts>,
        flow: &BTreeMap<String, FlowCounts>,
    ) -> Self {
        Self {
            crates: counts.clone(),
            flow: flow.iter().filter(|(_, f)| f.r4 > 0 || f.r5 > 0).map(|(k, f)| (k.clone(), *f)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut counts = BTreeMap::new();
        counts.insert(
            "fiveg".to_string(),
            PanicCounts {
                unwrap: 12,
                expect: 3,
                panic: 1,
                r#unsafe: 0,
            },
        );
        counts.insert("emu".to_string(), PanicCounts::default());
        let b = Baseline::from_counts(&counts);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn comments_and_blank_lines_ok() {
        let b = Baseline::parse("# header\n\n[geo]\nunwrap = 4\n# trailing\n").unwrap();
        assert_eq!(b.crates["geo"].unwrap, 4);
    }

    #[test]
    fn v2_flow_ceilings_parse_and_default_to_zero() {
        let b = Baseline::parse("[spacecore]\nunwrap = 3\nr4 = 2\nr5 = 0\n[emu]\nunwrap = 1\n").unwrap();
        assert_eq!(b.flow["spacecore"].r4, 2);
        assert_eq!(b.flow["spacecore"].r5, 0);
        assert!(!b.flow.contains_key("emu"), "absent keys pin at zero");
        // v1 files (no r4/r5 at all) are valid v2 files.
        let v1 = Baseline::parse("[fiveg]\nunwrap = 9\n").unwrap();
        assert!(v1.flow.is_empty());
    }

    #[test]
    fn v2_roundtrip_with_flow() {
        let mut counts = BTreeMap::new();
        counts.insert("spacecore".to_string(), PanicCounts::default());
        let mut flow = BTreeMap::new();
        flow.insert("spacecore".to_string(), FlowCounts { r4: 1, r5: 0 });
        let b = Baseline::from_measurements(&counts, &flow);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
        assert!(b.render().contains("r4 = 1"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Baseline::parse("unwrap = 1\n").is_err(), "key before section");
        assert!(Baseline::parse("[x]\nunwrap = -1\n").is_err(), "negative");
        assert!(Baseline::parse("[x]\nwat = 1\n").is_err(), "unknown key");
        assert!(Baseline::parse("[x\n").is_err(), "unterminated header");
    }
}
