//! The workspace symbol table: every type and fn declaration from every
//! parsed file, merged by name across crates, plus a lightweight call
//! graph extracted from fn body token ranges.
//!
//! This is deliberately a *name*-level table, not a path-resolved one:
//! `use` renames and module paths are ignored, and a name declared in
//! two crates gets both declarations. For the R4 question — "does this
//! type transitively embed a per-UE key?" — merging by final name is
//! conservative in the right direction (a false merge can only create a
//! finding that a human reviews, never hide one), and it is what keeps
//! the analyzer ~hundreds of lines instead of a resolver.

use crate::ast::{Ast, Field, ItemKind, TypeExpr};
use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One type declaration (alias, struct, or enum) with its location.
#[derive(Debug, Clone)]
pub struct TypeDecl {
    /// Workspace-relative file path.
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Declared under `mod tests` / `#[cfg(test)]`.
    pub in_tests: bool,
    pub kind: TypeDeclKind,
}

#[derive(Debug, Clone)]
pub enum TypeDeclKind {
    Alias(TypeExpr),
    Struct(Vec<Field>),
    Enum(Vec<Field>),
}

/// One fn declaration with its extracted body facts.
#[derive(Debug, Clone)]
pub struct FnDecl {
    pub file: String,
    pub name: String,
    /// `impl`/`trait` self type, when any.
    pub self_ty: Option<String>,
    pub line: u32,
    pub col: u32,
    pub in_tests: bool,
    /// Names invoked as calls in the body: `name(…)` and `.name(…)`.
    pub calls: BTreeSet<String>,
    /// Fields of `self` this fn mutates (`self.f.insert(…)`, `self.f = …`).
    pub mutated_fields: BTreeSet<String>,
}

/// The merged workspace table.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Type declarations by (final-segment) name. Multiple declarations
    /// of the same name coexist; analyses treat "any declaration
    /// matches" as a match (conservative merge).
    pub types: BTreeMap<String, Vec<TypeDecl>>,
    pub fns: Vec<FnDecl>,
}

/// Method names that mutate a collection/option in place — used to
/// detect `self.field.<mutator>(…)` retention writes for flow traces.
const MUTATORS: &[&str] = &[
    "insert", "push", "push_back", "push_front", "extend", "append", "entry", "remove",
    "clear", "retain", "get_or_insert_with", "replace",
];

/// Control-flow keywords that look like calls (`if (…)`, `while (…)`)
/// and must not enter the call graph.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "let", "else", "move", "in", "fn",
    "unsafe", "Some", "Ok", "Err", "None",
];

impl Symbols {
    /// Build the table from every parsed file. Items under test
    /// subtrees are kept (and marked) for fns — the call graph may pass
    /// through test helpers — but **excluded for types**, so a fixture
    /// type in a test mod can never launder per-UE state into a
    /// production finding.
    pub fn build<'a>(files: impl IntoIterator<Item = (&'a str, &'a Ast, &'a [Token])>) -> Self {
        let mut out = Symbols::default();
        for (rel, ast, toks) in files {
            for item in &ast.items {
                match &item.kind {
                    ItemKind::Alias { target } if !item.in_tests => {
                        out.types.entry(item.name.clone()).or_default().push(TypeDecl {
                            file: rel.to_string(),
                            line: item.line,
                            col: item.col,
                            in_tests: item.in_tests,
                            kind: TypeDeclKind::Alias(target.clone()),
                        });
                    }
                    ItemKind::Struct { fields } if !item.in_tests => {
                        out.types.entry(item.name.clone()).or_default().push(TypeDecl {
                            file: rel.to_string(),
                            line: item.line,
                            col: item.col,
                            in_tests: item.in_tests,
                            kind: TypeDeclKind::Struct(fields.clone()),
                        });
                    }
                    ItemKind::Enum { variants } if !item.in_tests => {
                        out.types.entry(item.name.clone()).or_default().push(TypeDecl {
                            file: rel.to_string(),
                            line: item.line,
                            col: item.col,
                            in_tests: item.in_tests,
                            kind: TypeDeclKind::Enum(variants.clone()),
                        });
                    }
                    ItemKind::Fn(f) => {
                        let (calls, mutated_fields) = match f.body {
                            Some((a, b)) => body_facts(&toks[a.min(toks.len())..b.min(toks.len())]),
                            None => (BTreeSet::new(), BTreeSet::new()),
                        };
                        out.fns.push(FnDecl {
                            file: rel.to_string(),
                            name: item.name.clone(),
                            self_ty: f.self_ty.clone(),
                            line: item.line,
                            col: item.col,
                            in_tests: item.in_tests,
                            calls,
                            mutated_fields,
                        });
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// All fns whose call set contains `callee` (reverse call edge).
    /// Deterministic: `fns` is in file/parse order.
    pub fn callers_of<'a>(&'a self, callee: &'a str) -> impl Iterator<Item = &'a FnDecl> + 'a {
        self.fns.iter().filter(move |f| f.calls.contains(callee))
    }

    /// Fns with a given self type that mutate a given field.
    pub fn mutators_of<'a>(
        &'a self,
        self_ty: &'a str,
        field: &'a str,
    ) -> impl Iterator<Item = &'a FnDecl> + 'a {
        self.fns.iter().filter(move |f| {
            f.self_ty.as_deref() == Some(self_ty) && f.mutated_fields.contains(field)
        })
    }
}

/// Extract (calls, mutated self-fields) from one body token slice.
fn body_facts(body: &[Token]) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut calls = BTreeSet::new();
    let mut mutated = BTreeSet::new();
    for (i, t) in body.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name (` — call or tuple-struct construction; both are edges
        // worth following. Exclude keywords and macro bangs.
        if body.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !NOT_CALLS.contains(&t.text.as_str())
        {
            calls.insert(t.text.clone());
        }
        // `self . f …` mutation patterns.
        if t.text == "self"
            && body.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && body.get(i + 2).is_some_and(|n| n.kind == TokenKind::Ident)
        {
            let field = &body[i + 2].text;
            // `self.f = …` (not `==`).
            if body.get(i + 3).is_some_and(|n| n.is_punct('='))
                && !body.get(i + 4).is_some_and(|n| n.is_punct('='))
            {
                mutated.insert(field.clone());
            }
            // `self.f.insert(…)` / `.push(…)` / …
            if body.get(i + 3).is_some_and(|n| n.is_punct('.'))
                && body
                    .get(i + 4)
                    .is_some_and(|n| MUTATORS.contains(&n.text.as_str()))
                && body.get(i + 5).is_some_and(|n| n.is_punct('('))
            {
                mutated.insert(field.clone());
            }
        }
    }
    (calls, mutated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn build_one(rel: &str, src: &str) -> Symbols {
        let lexed = lex(src);
        let ast = parse(&lexed, &|_| false);
        Symbols::build([(rel, &ast, lexed.tokens.as_slice())])
    }

    #[test]
    fn types_merge_and_test_types_are_excluded() {
        let src = "
            pub type SessionKey = Supi;
            struct Cache { seen: Vec<SessionKey> }
            #[cfg(test)]
            mod tests { struct Cache { evil: HashMap<Supi, u8> } }
        ";
        let s = build_one("crates/fiveg/src/x.rs", src);
        assert!(matches!(
            s.types["SessionKey"][0].kind,
            TypeDeclKind::Alias(_)
        ));
        assert_eq!(s.types["Cache"].len(), 1, "test-mod struct excluded");
    }

    #[test]
    fn call_graph_and_mutated_fields() {
        let src = "
            struct Cache { seen: Vec<u64>, n: u32 }
            impl Cache {
                fn note(&mut self, k: u64) { self.seen.push(k); self.n = self.n + 1; }
            }
            struct Sat { cache: Cache }
            impl Sat {
                fn handle(&mut self, k: u64) { if k > 0 { self.cache.note(k); } }
            }
            fn drive(s: &mut Sat) { s.handle(7); }
        ";
        let s = build_one("crates/spacecore/src/x.rs", src);
        let note = s
            .fns
            .iter()
            .find(|f| f.name == "note")
            .expect("note parsed");
        assert!(note.mutated_fields.contains("seen"));
        assert!(note.mutated_fields.contains("n"));
        assert_eq!(note.self_ty.as_deref(), Some("Cache"));
        let handle_callers: Vec<_> = s.callers_of("handle").map(|f| f.name.as_str()).collect();
        assert_eq!(handle_callers, vec!["drive"]);
        let note_callers: Vec<_> = s.callers_of("note").map(|f| f.name.as_str()).collect();
        assert_eq!(note_callers, vec!["handle"]);
        assert!(
            s.mutators_of("Cache", "seen").next().is_some(),
            "mutators_of finds note"
        );
        // `if k > 0 (…)`-style keywords never enter the call graph.
        let handle = s.fns.iter().find(|f| f.name == "handle").unwrap();
        assert!(!handle.calls.contains("if"));
    }
}
