//! `sc-audit` — the statelessness & determinism auditor for the
//! SpaceCore workspace (DESIGN.md "Enforced invariants").
//!
//! The paper's core claim — orbital network functions hold **no per-UE
//! state** (S1, S3–S5 live on the device; S2 compresses into a
//! geospatial address) — and PR 1's byte-identical-results guarantee
//! both rest on conventions that any future change can silently break.
//! This crate turns those conventions into a CI-failing check:
//!
//! * **R1 `stateful`** — no per-UE keyed collections in satellite-side
//!   modules without a written justification (token-level probe at the
//!   declaration site).
//! * **R2 `timing` / `rng` / `unordered` / `float-cmp`** — no wall
//!   clocks outside the reporters, no unseeded RNG, no hash-order
//!   leakage into results, `total_cmp` over `partial_cmp().unwrap()`.
//! * **R3 ratchet** — per-crate `unwrap`/`expect`/`panic!`/`unsafe`
//!   counts can only go down, pinned by `audit.baseline.toml`.
//! * **R4 `state-flow`** — the *semantic* statelessness prover: a
//!   zero-dep recursive-descent parser ([`parser`]) builds a
//!   lightweight AST ([`ast`]), a workspace symbol table with a call
//!   graph ([`symbols`]) merges it across crates, and the dataflow
//!   probe ([`flow`]) convicts any satellite-scope storage site whose
//!   type transitively embeds a per-UE key — through type aliases,
//!   newtype wrappers, generic instantiations, and cross-crate struct
//!   fields — with an `--explain`-able flow trace.
//! * **R5 `parallel`** — determinism of the `SC_EMU_THREADS` parallel
//!   sweep: closures spawned into `thread::scope`/`parallel_map*`
//!   regions must not mutate captured locals, take ad-hoc locks, or
//!   iterate hash-ordered collections.
//!
//! R4/R5 are gated by the baseline-v2 per-crate `r4`/`r5` ceilings
//! (normally zero), mirroring the R3 workflow. Machine-readable SARIF
//! 2.1.0 output is available via `--format json` ([`sarif`]).
//!
//! Run it with `scripts/audit.sh` (fatal) or `scripts/tier1.sh`
//! (warn-only). See the binary (`src/main.rs`) for the CLI.

pub mod ast;
pub mod baseline;
pub mod engine;
pub mod flow;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod symbols;

pub use baseline::Baseline;
pub use engine::{audit_sources, audit_workspace, Report};
pub use flow::{FlowFinding, FlowStep};
pub use rules::{Config, Finding};
