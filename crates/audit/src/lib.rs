//! `sc-audit` — the statelessness & determinism auditor for the
//! SpaceCore workspace (DESIGN.md "Enforced invariants").
//!
//! The paper's core claim — orbital network functions hold **no per-UE
//! state** (S1, S3–S5 live on the device; S2 compresses into a
//! geospatial address) — and PR 1's byte-identical-results guarantee
//! both rest on conventions that any future change can silently break.
//! This crate turns those conventions into a CI-failing check:
//!
//! * **R1 `stateful`** — no per-UE keyed collections in satellite-side
//!   modules without a written justification.
//! * **R2 `timing` / `rng` / `unordered` / `float-cmp`** — no wall
//!   clocks outside the reporters, no unseeded RNG, no hash-order
//!   leakage into results, `total_cmp` over `partial_cmp().unwrap()`.
//! * **R3 ratchet** — per-crate `unwrap`/`expect`/`panic!`/`unsafe`
//!   counts can only go down, pinned by `audit.baseline.toml`.
//!
//! Run it with `scripts/audit.sh` (fatal) or `scripts/tier1.sh`
//! (warn-only). See the binary (`src/main.rs`) for the CLI.

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use baseline::Baseline;
pub use engine::{audit_workspace, Report};
pub use rules::{Config, Finding};
