//! A hand-rolled, line/column-accurate Rust lexer — just enough for
//! `sc-audit`'s rule engine, and deliberately not `syn`: the auditor
//! must stay dependency-free so it builds before (and independently of)
//! everything it gates, per the vendored-offline build policy.
//!
//! The lexer understands the parts of the grammar that make naive
//! `grep`-style auditing wrong:
//!
//! * line comments, nested block comments (skipped, except that
//!   `sc-audit:` directives inside line comments are captured),
//! * string literals with escapes, raw strings `r#"…"#` with any number
//!   of `#`s, byte strings, char literals,
//! * the char-literal vs. lifetime ambiguity (`'a'` vs `'a`),
//! * numeric literals (so `1_000.partial` never splits oddly).
//!
//! Everything else is emitted as identifier or single-char punctuation
//! tokens carrying their 1-based line and column, which is all the rule
//! matchers need.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `unwrap`, `unsafe`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `<`, `(`, `!`, …).
    Punct,
    /// String / raw-string / byte-string literal (contents dropped).
    Str,
    /// Char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Numeric literal.
    Num,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Token text. For `Str`/`Char` literals this is empty — rules never
    /// look inside literals, which is precisely the false-positive class
    /// the lexer exists to kill.
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Is this a punctuation token with this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A `// sc-audit: allow(rule, reason = "…")` directive found in a
/// comment, recorded with the line it sits on. A directive suppresses
/// findings of `rule` on its own line (trailing-comment style) and on
/// the next line that holds any token (annotation-above style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// Rule key being allowed (`stateful`, `timing`, `rng`, `unordered`,
    /// `float-cmp`).
    pub rule: String,
    /// The mandatory human justification.
    pub reason: String,
    pub line: u32,
}

/// Lexer output: the token stream plus any audit directives.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub directives: Vec<AllowDirective>,
    /// Lines (1-based) on which at least one token starts — used to
    /// resolve "the next code line after a directive".
    pub token_lines: Vec<u32>,
}

/// Lex one source file.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
            _src: src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        if self.out.token_lines.last() != Some(&line) {
            self.out.token_lines.push(line);
        }
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.string_body('"');
                    self.push(TokenKind::Str, String::new(), line, col);
                }
                'r' | 'b' if self.raw_or_byte_string(line, col) => {}
                'b' if self.peek(1) == Some('\'') => {
                    // Byte-char literal `b'x'` / `b'\n'` — without this
                    // arm the `b` would leak as an identifier token.
                    self.bump(); // `b`
                    self.bump(); // opening `'`
                    self.string_body('\'');
                    self.push(TokenKind::Char, String::new(), line, col);
                }
                'r' if self.peek(1) == Some('#')
                    && self
                        .peek(2)
                        .is_some_and(|c| c == '_' || c.is_alphanumeric()) =>
                {
                    // Raw identifier `r#unsafe`: an ordinary name, not
                    // the keyword — keep the `r#` in the text so keyword
                    // matchers (R3's `unsafe` counter) never see it.
                    self.bump();
                    self.bump();
                    self.ident(line, col);
                    let t = self.out.tokens.last_mut().expect("ident just pushed");
                    t.text.insert_str(0, "r#");
                }
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if c == '_' || c.is_alphanumeric() => self.ident(line, col),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `rb`-less etc.
    /// Returns false (consuming nothing) when the `r`/`b` starts a plain
    /// identifier instead.
    fn raw_or_byte_string(&mut self, line: u32, col: u32) -> bool {
        // Look ahead without consuming: r…, b…, br…, rb is not a thing.
        let mut i = 1;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            i = 2;
        }
        // Count #s.
        let mut hashes = 0;
        while self.peek(i) == Some('#') {
            hashes += 1;
            i += 1;
        }
        if self.peek(i) != Some('"') {
            return false; // identifier like `radius` or `b` variable
        }
        // b"…" (no r): only valid with zero hashes and i == 1.
        let is_raw = self.peek(0) == Some('r') || self.peek(1) == Some('r');
        if !is_raw && hashes > 0 {
            return false;
        }
        // Consume prefix + hashes + opening quote.
        for _ in 0..=i {
            self.bump();
        }
        if is_raw {
            // Raw: no escapes; ends at `"` + same number of `#`s.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for _ in 0..hashes {
                        if self.peek(0) != Some('#') {
                            continue 'outer;
                        }
                        self.bump();
                    }
                    break;
                }
            }
        } else {
            self.string_body('"');
        }
        self.push(TokenKind::Str, String::new(), line, col);
        true
    }

    /// Consume a (non-raw) string/char body after the opening delimiter,
    /// honoring backslash escapes. The closing delimiter is consumed.
    fn string_body(&mut self, delim: char) {
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump(); // the escaped char, whatever it is
            } else if c == delim {
                break;
            }
        }
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // 'a' is a char, 'a (not followed by ') is a lifetime, '\n' is a
        // char, 'static is a lifetime.
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let is_lifetime = match (c1, c2) {
            (Some('\\'), _) => false,
            (Some(c), Some('\'')) if c != '\'' => false, // 'x'
            (Some(c), _) if c == '_' || c.is_alphanumeric() => true,
            _ => false,
        };
        self.bump(); // the opening '
        if is_lifetime {
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, name, line, col);
        } else {
            self.string_body('\'');
            self.push(TokenKind::Char, String::new(), line, col);
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `1..n` and `v.iter()` don't.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut body = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            body.push(c);
            self.bump();
        }
        if let Some(d) = parse_directive(&body, line) {
            self.out.directives.push(d);
        }
    }

    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }
}

/// Parse `sc-audit: allow(rule, reason = "…")` out of a line-comment
/// body. Whitespace is flexible; the reason string is mandatory — an
/// allow without a written justification is ignored (and the rule will
/// still fire, which is the point).
fn parse_directive(comment: &str, line: u32) -> Option<AllowDirective> {
    let rest = comment.trim_start_matches('/').trim_start();
    let rest = rest.strip_prefix("sc-audit:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (rule, tail) = match inner.find(',') {
        Some(i) => (&inner[..i], &inner[i + 1..]),
        None => return None, // reason is not optional
    };
    let rule = rule.trim().to_string();
    let tail = tail.trim();
    let tail = tail.strip_prefix("reason")?.trim_start();
    let tail = tail.strip_prefix('=')?.trim_start();
    let tail = tail.strip_prefix('"')?;
    let end = tail.rfind('"')?;
    let reason = tail[..end].to_string();
    if rule.is_empty() || reason.is_empty() {
        return None;
    }
    Some(AllowDirective { rule, reason, line })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let src = r#"let msg = "call unwrap() on HashMap<Supi, _>";"#;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "msg"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"Instant::now() "quoted" inside"#; let x = 1;"###;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "x"]);
    }

    #[test]
    fn line_and_block_comments_are_skipped() {
        let src = "// thread_rng() here\n/* SystemTime::now()\n /* nested unwrap() */ */\nfn f() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\''; let d = 'x'; }";
        let l = lex(src);
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn positions_are_line_col_accurate() {
        let src = "fn main() {\n    x.unwrap();\n}";
        let l = lex(src);
        let unwrap = l.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
    }

    #[test]
    fn directive_parses_with_reason() {
        let src = "// sc-audit: allow(stateful, reason = \"ephemeral radio state\")\nmap: HashMap<Supi, u8>,";
        let l = lex(src);
        assert_eq!(l.directives.len(), 1);
        assert_eq!(l.directives[0].rule, "stateful");
        assert_eq!(l.directives[0].reason, "ephemeral radio state");
        assert_eq!(l.directives[0].line, 1);
    }

    #[test]
    fn directive_without_reason_is_ignored() {
        let src = "// sc-audit: allow(stateful)\nx";
        assert!(lex(src).directives.is_empty());
    }

    #[test]
    fn numbers_do_not_merge_with_method_calls() {
        let src = "let x = 1_000.5; let r = 0..n; v.iter();";
        let l = lex(src);
        assert!(l.tokens.iter().any(|t| t.kind == TokenKind::Num && t.text == "1_000.5"));
        assert!(l.tokens.iter().any(|t| t.is_ident("iter")));
    }
}
