//! SARIF 2.1.0 output (`sc-audit --format json`), hand-rolled so the
//! auditor stays dependency-free. The subset emitted — tool driver with
//! rule metadata, `results` with physical locations, `codeFlows` for
//! the R4/R5 traces — is what CI annotators and SARIF viewers consume.
//! Ordering is deterministic: results arrive pre-sorted from the
//! engine, rules are listed in id order, and every map key is emitted
//! in a fixed sequence, so two identical audits produce byte-identical
//! artifacts (the repo's diffable-telemetry discipline applies to the
//! auditor too).

use crate::engine::Report;
use crate::flow::FlowFinding;
use crate::rules::Finding;

/// The rule catalog, in id order, as (id, short description).
const RULES: &[(&str, &str)] = &[
    (
        "R1-stateful",
        "Per-UE keyed or lock-wrapped growable collections are forbidden in satellite-side modules (paper claim S1-S5: no per-UE state on the satellite).",
    ),
    (
        "R2-float-cmp",
        "partial_cmp().unwrap() panics on NaN; use total_cmp for a deterministic total order.",
    ),
    (
        "R2-rng",
        "Unseeded randomness breaks replayable runs; seed explicitly (StdRng::seed_from_u64).",
    ),
    (
        "R2-timing",
        "Wall-clock reads outside the timing allowlist break byte-identical results.",
    ),
    (
        "R2-unordered",
        "Iteration over hash-ordered collections can leak nondeterministic order into results.",
    ),
    (
        "R3-ratchet",
        "Per-crate unwrap/expect/panic!/unsafe counts may only decrease (audit.baseline.toml).",
    ),
    (
        "R4-state-flow",
        "Dataflow statelessness: no satellite-scope storage site may transitively retain a value embedding a per-UE key (through aliases, generics, struct fields, crates).",
    ),
    (
        "R5-parallel",
        "Parallel-determinism: closures in the SC_EMU_THREADS sweep must not mutate captures, take ad-hoc locks, or iterate hash-ordered collections.",
    ),
];

/// Render the whole report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report, warn_only: bool) -> String {
    let level = if warn_only { "warning" } else { "error" };
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"sc-audit\",\n");
    out.push_str(&format!(
        "          \"version\": {},\n",
        json_str(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
            json_str(id),
            json_str(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");

    let mut results: Vec<String> = Vec::new();
    for f in &report.findings {
        results.push(token_result(f, level));
    }
    for f in &report.flow {
        results.push(flow_result(f, level));
    }
    for r in &report.ratchet {
        results.push(format!(
            "{{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
             \"locations\": [{}]}}",
            json_str(ratchet_rule(r.counter)),
            json_str(level),
            json_str(&format!(
                "crates/{}: {} count {} exceeds baseline {}",
                r.krate, r.counter, r.current, r.baseline
            )),
            location("audit.baseline.toml", 1, 1),
        ));
    }
    for (i, r) in results.iter().enumerate() {
        out.push_str("        ");
        out.push_str(r);
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn ratchet_rule(counter: &str) -> &'static str {
    match counter {
        "r4" => "R4-state-flow",
        "r5" => "R5-parallel",
        _ => "R3-ratchet",
    }
}

fn token_result(f: &Finding, level: &str) -> String {
    format!(
        "{{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
         \"locations\": [{}]}}",
        json_str(f.rule),
        json_str(level),
        json_str(&f.message),
        location(&f.file, f.line, f.col),
    )
}

fn flow_result(f: &FlowFinding, level: &str) -> String {
    let mut s = format!(
        "{{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
         \"locations\": [{}]",
        json_str(f.rule),
        json_str(level),
        json_str(&f.message),
        location(&f.file, f.line, f.col),
    );
    if !f.trace.is_empty() {
        s.push_str(", \"codeFlows\": [{\"threadFlows\": [{\"locations\": [");
        for (i, step) in f.trace.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"location\": {{\"physicalLocation\": {}, \"message\": {{\"text\": {}}}}}}}",
                physical(&step.file, step.line, step.col),
                json_str(&step.note),
            ));
        }
        s.push_str("]}]}]");
    }
    s.push('}');
    s
}

fn location(file: &str, line: u32, col: u32) -> String {
    format!("{{\"physicalLocation\": {}}}", physical(file, line, col))
}

fn physical(file: &str, line: u32, col: u32) -> String {
    format!(
        "{{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}",
        json_str(file),
        line.max(1),
        col.max(1)
    )
}

/// Minimal JSON string encoder.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowFinding, FlowStep};

    #[test]
    fn escapes_and_structure() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let mut report = Report::default();
        report.findings.push(Finding {
            file: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            rule: "R1-stateful",
            message: "per-UE keyed collection `HashMap<Supi, …>`".into(),
        });
        report.flow.push(FlowFinding {
            file: "crates/x/src/a.rs".into(),
            line: 9,
            col: 5,
            rule: "R4-state-flow",
            message: "field retains per-UE state".into(),
            trace: vec![FlowStep {
                file: "crates/x/src/b.rs".into(),
                line: 1,
                col: 1,
                note: "type alias `K` = `Supi`".into(),
            }],
        });
        let sarif = to_sarif(&report, false);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"ruleId\": \"R4-state-flow\""));
        assert!(sarif.contains("\"codeFlows\""));
        assert!(sarif.contains("\"startLine\": 9"));
        assert!(sarif.contains("type alias `K`"));
        // Deterministic: same input, same bytes.
        assert_eq!(sarif, to_sarif(&report, false));
        // warn-only demotes severity.
        assert!(to_sarif(&report, true).contains("\"level\": \"warning\""));
    }
}
