//! Workspace walker and ratchet comparison: ties the lexer, the rules,
//! and the baseline together into the `sc-audit` verdict.

use crate::baseline::Baseline;
use crate::lexer;
use crate::rules::{audit_tokens, Config, Finding, PanicCounts};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Everything one audit run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// R1/R2 findings (already annotation-filtered), in deterministic
    /// file/position order.
    pub findings: Vec<Finding>,
    /// Measured R3 counters per crate directory name.
    pub counts: BTreeMap<String, PanicCounts>,
    /// R3 ratchet violations (crate, counter, current, baseline).
    pub ratchet: Vec<RatchetViolation>,
    /// Crates now strictly below their baseline — candidates for
    /// `--update-baseline`.
    pub improvements: Vec<(String, &'static str, u32, u32)>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// One counter that exceeded its checked-in ceiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetViolation {
    pub krate: String,
    pub counter: &'static str,
    pub current: u32,
    pub baseline: u32,
}

impl std::fmt::Display for RatchetViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crates/{}: R3-ratchet {} count {} exceeds baseline {} — remove the new \
             site or (after review) regenerate with --update-baseline",
            self.krate, self.counter, self.current, self.baseline
        )
    }
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.ratchet.is_empty()
    }
}

/// Collect every `.rs` file under `<root>/crates`, skipping build
/// output and the auditor's own violation fixtures. Sorted for
/// deterministic output.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no crates/ directory", root.display()),
        ));
    }
    walk(&crates_dir, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // target/: build output. fixtures/: sc-audit's own test
            // inputs, which violate the rules on purpose.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (rule scopes and output
/// stay stable across platforms).
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.to_string_lossy().replace('\\', "/")
}

/// Crate directory name for a `crates/<name>/…` relative path.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

/// Audit a whole workspace rooted at `root` against `baseline`.
pub fn audit_workspace(root: &Path, baseline: &Baseline, cfg: &Config) -> io::Result<Report> {
    let mut report = Report::default();
    for file in collect_files(root)? {
        let src = fs::read_to_string(&file)?;
        let rel = rel_path(root, &file);
        audit_one(&rel, &src, cfg, &mut report);
    }
    compare_ratchet(baseline, &mut report);
    Ok(report)
}

/// Audit a single source string as if it lived at `rel` (used by the
/// fixture tests, and by `audit_workspace` for real files).
pub fn audit_one(rel: &str, src: &str, cfg: &Config, report: &mut Report) {
    let lexed = lexer::lex(src);
    let (findings, counts) = audit_tokens(rel, &lexed, cfg);
    report.findings.extend(findings);
    if let Some(krate) = crate_of(rel) {
        report
            .counts
            .entry(krate.to_string())
            .or_default()
            .add(&counts);
    }
    report.files_scanned += 1;
}

/// Fill in `report.ratchet` / `report.improvements` from the measured
/// counts. Crates absent from the baseline ratchet at zero.
pub fn compare_ratchet(baseline: &Baseline, report: &mut Report) {
    for (krate, counts) in &report.counts {
        let base = baseline.crates.get(krate).copied().unwrap_or_default();
        for (counter, cur, allowed) in [
            ("unwrap", counts.unwrap, base.unwrap),
            ("expect", counts.expect, base.expect),
            ("panic", counts.panic, base.panic),
            ("unsafe", counts.r#unsafe, base.r#unsafe),
        ] {
            if cur > allowed {
                report.ratchet.push(RatchetViolation {
                    krate: krate.clone(),
                    counter,
                    current: cur,
                    baseline: allowed,
                });
            } else if cur < allowed {
                report.improvements.push((krate.clone(), counter, cur, allowed));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_parses() {
        assert_eq!(crate_of("crates/fiveg/src/amf.rs"), Some("fiveg"));
        assert_eq!(crate_of("src/lib.rs"), None);
    }

    #[test]
    fn ratchet_flags_only_increases() {
        let mut report = Report::default();
        report.counts.insert(
            "fiveg".into(),
            PanicCounts {
                unwrap: 5,
                expect: 1,
                panic: 0,
                r#unsafe: 0,
            },
        );
        let mut counts = BTreeMap::new();
        counts.insert(
            "fiveg".into(),
            PanicCounts {
                unwrap: 4, // ratchet says 4, we measured 5 → violation
                expect: 2, // measured 1 < 2 → improvement
                panic: 0,
                r#unsafe: 0,
            },
        );
        compare_ratchet(&Baseline::from_counts(&counts), &mut report);
        assert_eq!(report.ratchet.len(), 1);
        assert_eq!(report.ratchet[0].counter, "unwrap");
        assert_eq!(report.improvements.len(), 1);
        assert_eq!(report.improvements[0].1, "expect");
    }

    #[test]
    fn unknown_crate_ratchets_at_zero() {
        let mut report = Report::default();
        report.counts.insert(
            "newcrate".into(),
            PanicCounts {
                unwrap: 1,
                ..Default::default()
            },
        );
        compare_ratchet(&Baseline::default(), &mut report);
        assert_eq!(report.ratchet.len(), 1);
        assert_eq!(report.ratchet[0].baseline, 0);
    }
}
