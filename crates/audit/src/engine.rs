//! Workspace walker and ratchet comparison: ties the lexer, the
//! parser, the symbol table, the rules, and the baseline together into
//! the `sc-audit` verdict.
//!
//! The run is two-pass. Pass 1 lexes every file, runs the token rules
//! (R1–R3), and parses each token stream into its AST. Pass 2 merges
//! the ASTs into a workspace [`Symbols`] table and runs the dataflow
//! rules (R4/R5 in [`crate::flow`]) — which is what lets a type alias
//! declared in `sc-fiveg` convict a struct field in `sc-spacecore`.

use crate::baseline::{Baseline, FlowCounts};
use crate::flow::{self, FileUnit, FlowFinding};
use crate::lexer;
use crate::parser;
use crate::rules::{self, audit_tokens, Config, Finding, PanicCounts};
use crate::symbols::Symbols;
use std::collections::{BTreeMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Everything one audit run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// R1/R2 findings (already annotation-filtered), in deterministic
    /// file/position order.
    pub findings: Vec<Finding>,
    /// R4/R5 dataflow findings (annotation-filtered, sorted). These are
    /// gated by the baseline-v2 ratchet rather than failing directly,
    /// mirroring R3: the checked-in `r4`/`r5` ceilings (normally zero)
    /// decide pass/fail, so a grandfathered finding is visible but
    /// non-fatal until its ceiling ratchets down.
    pub flow: Vec<FlowFinding>,
    /// Measured R3 counters per crate directory name.
    pub counts: BTreeMap<String, PanicCounts>,
    /// Measured R4/R5 finding counts per crate directory name.
    pub flow_counts: BTreeMap<String, FlowCounts>,
    /// Ratchet violations (crate, counter, current, baseline) — R3
    /// counters plus the v2 `r4`/`r5` ceilings.
    pub ratchet: Vec<RatchetViolation>,
    /// Crates now strictly below their baseline — candidates for
    /// `--update-baseline`.
    pub improvements: Vec<(String, &'static str, u32, u32)>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// One counter that exceeded its checked-in ceiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetViolation {
    pub krate: String,
    pub counter: &'static str,
    pub current: u32,
    pub baseline: u32,
}

impl RatchetViolation {
    /// The rule family this counter ratchets (`r4`/`r5` → the dataflow
    /// rules; everything else is R3 panic hygiene).
    pub fn rule_label(&self) -> &'static str {
        match self.counter {
            "r4" => "R4-state-flow",
            "r5" => "R5-parallel",
            _ => "R3-ratchet",
        }
    }
}

impl std::fmt::Display for RatchetViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crates/{}: {} {} count {} exceeds baseline {} — remove the new \
             site or (after review) regenerate with --update-baseline",
            self.krate,
            self.rule_label(),
            self.counter,
            self.current,
            self.baseline
        )
    }
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.ratchet.is_empty()
    }
}

/// Collect every `.rs` file under `<root>/crates`, skipping build
/// output and the auditor's own violation fixtures. Sorted for
/// deterministic output.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no crates/ directory", root.display()),
        ));
    }
    walk(&crates_dir, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // target/: build output. fixtures/: sc-audit's own test
            // inputs, which violate the rules on purpose.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (rule scopes and output
/// stay stable across platforms).
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.to_string_lossy().replace('\\', "/")
}

/// Crate directory name for a `crates/<name>/…` relative path.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

/// Audit a whole workspace rooted at `root` against `baseline`.
pub fn audit_workspace(root: &Path, baseline: &Baseline, cfg: &Config) -> io::Result<Report> {
    let mut sources = Vec::new();
    for file in collect_files(root)? {
        let src = fs::read_to_string(&file)?;
        sources.push((rel_path(root, &file), src));
    }
    Ok(audit_sources(&sources, baseline, cfg))
}

/// Audit a set of (relative-path, source) pairs as one mini-workspace:
/// the full two-pass pipeline including the cross-file R4/R5 dataflow
/// rules. `audit_workspace` is this plus the directory walk; the
/// fixture tests call it directly with in-memory corpora.
pub fn audit_sources(sources: &[(String, String)], baseline: &Baseline, cfg: &Config) -> Report {
    let mut report = Report::default();
    let mut units: Vec<FileUnit> = Vec::new();
    // (file, line) sites where R1's token probes fired *before* allow
    // suppression — R4 skips these (one defect, one rule, and an
    // allow(stateful) on the line must not resurface as an R4).
    let mut r1_sites: HashSet<(String, u32)> = HashSet::new();

    for (rel, src) in sources {
        let lexed = lexer::lex(src);
        let (findings, counts) = audit_tokens(rel, &lexed, cfg);
        report.findings.extend(findings);
        if let Some(krate) = crate_of(rel) {
            report
                .counts
                .entry(krate.to_string())
                .or_default()
                .add(&counts);
        }
        report.files_scanned += 1;

        let mut raw = Vec::new();
        rules::rule_stateful(rel, &lexed, cfg, &mut raw);
        rules::rule_retained_lock(rel, &lexed, cfg, &mut raw);
        for f in raw {
            r1_sites.insert((rel.clone(), f.line));
        }

        // Fields under an allow(stateful|state-flow) are excused in the
        // AST so containers of justified stores don't cascade-fire R4.
        let excuse = |line: u32| {
            rules::is_allowed(&lexed, "stateful", line)
                || rules::is_allowed(&lexed, "state-flow", line)
        };
        let ast = parser::parse(&lexed, &excuse);
        units.push(FileUnit {
            rel: rel.clone(),
            lexed,
            ast,
        });
    }

    let symbols = Symbols::build(
        units
            .iter()
            .map(|u| (u.rel.as_str(), &u.ast, u.lexed.tokens.as_slice())),
    );
    let mut flow_findings = flow::rule_state_flow(&units, &symbols, cfg, &r1_sites);
    flow_findings.extend(flow::rule_parallel(&units, cfg));
    flow_findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    for f in &flow_findings {
        if let Some(krate) = crate_of(&f.file) {
            let e = report.flow_counts.entry(krate.to_string()).or_default();
            if f.rule.starts_with("R4") {
                e.r4 += 1;
            } else {
                e.r5 += 1;
            }
        }
    }
    report.flow = flow_findings;
    compare_ratchet(baseline, &mut report);
    report
}

/// Audit a single source string as if it lived at `rel`: token rules
/// (R1–R3) only — the dataflow rules need the whole workspace, use
/// [`audit_sources`] for those.
pub fn audit_one(rel: &str, src: &str, cfg: &Config, report: &mut Report) {
    let lexed = lexer::lex(src);
    let (findings, counts) = audit_tokens(rel, &lexed, cfg);
    report.findings.extend(findings);
    if let Some(krate) = crate_of(rel) {
        report
            .counts
            .entry(krate.to_string())
            .or_default()
            .add(&counts);
    }
    report.files_scanned += 1;
}

/// Fill in `report.ratchet` / `report.improvements` from the measured
/// counts. Crates absent from the baseline ratchet at zero — for the
/// R3 counters and for the v2 `r4`/`r5` ceilings alike.
pub fn compare_ratchet(baseline: &Baseline, report: &mut Report) {
    for (krate, counts) in &report.counts {
        let base = baseline.crates.get(krate).copied().unwrap_or_default();
        for (counter, cur, allowed) in [
            ("unwrap", counts.unwrap, base.unwrap),
            ("expect", counts.expect, base.expect),
            ("panic", counts.panic, base.panic),
            ("unsafe", counts.r#unsafe, base.r#unsafe),
        ] {
            if cur > allowed {
                report.ratchet.push(RatchetViolation {
                    krate: krate.clone(),
                    counter,
                    current: cur,
                    baseline: allowed,
                });
            } else if cur < allowed {
                report.improvements.push((krate.clone(), counter, cur, allowed));
            }
        }
    }
    // v2: flow-finding ceilings, over the union of measured and
    // baselined crates (a crate can improve to zero findings and then
    // vanish from `flow_counts`).
    let crates: std::collections::BTreeSet<&String> = report
        .flow_counts
        .keys()
        .chain(baseline.flow.keys())
        .collect();
    for krate in crates {
        let cur = report.flow_counts.get(krate).copied().unwrap_or_default();
        let base = baseline.flow.get(krate).copied().unwrap_or_default();
        for (counter, cur, allowed) in [("r4", cur.r4, base.r4), ("r5", cur.r5, base.r5)] {
            if cur > allowed {
                report.ratchet.push(RatchetViolation {
                    krate: krate.clone(),
                    counter,
                    current: cur,
                    baseline: allowed,
                });
            } else if cur < allowed {
                report.improvements.push((krate.clone(), counter, cur, allowed));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_parses() {
        assert_eq!(crate_of("crates/fiveg/src/amf.rs"), Some("fiveg"));
        assert_eq!(crate_of("src/lib.rs"), None);
    }

    #[test]
    fn ratchet_flags_only_increases() {
        let mut report = Report::default();
        report.counts.insert(
            "fiveg".into(),
            PanicCounts {
                unwrap: 5,
                expect: 1,
                panic: 0,
                r#unsafe: 0,
            },
        );
        let mut counts = BTreeMap::new();
        counts.insert(
            "fiveg".into(),
            PanicCounts {
                unwrap: 4, // ratchet says 4, we measured 5 → violation
                expect: 2, // measured 1 < 2 → improvement
                panic: 0,
                r#unsafe: 0,
            },
        );
        compare_ratchet(&Baseline::from_counts(&counts), &mut report);
        assert_eq!(report.ratchet.len(), 1);
        assert_eq!(report.ratchet[0].counter, "unwrap");
        assert_eq!(report.improvements.len(), 1);
        assert_eq!(report.improvements[0].1, "expect");
    }

    #[test]
    fn unknown_crate_ratchets_at_zero() {
        let mut report = Report::default();
        report.counts.insert(
            "newcrate".into(),
            PanicCounts {
                unwrap: 1,
                ..Default::default()
            },
        );
        compare_ratchet(&Baseline::default(), &mut report);
        assert_eq!(report.ratchet.len(), 1);
        assert_eq!(report.ratchet[0].baseline, 0);
    }
}
