//! A zero-dependency recursive-descent parser over the [`crate::lexer`]
//! token stream, producing the item-level AST in [`crate::ast`].
//!
//! Design rule: **total, never wrong about positions**. The parser
//! understands items (type aliases, structs, enums, statics/consts,
//! fns, impl/trait/mod blocks) and type expressions; everything else —
//! expression bodies, attributes, macros, where clauses — is skipped
//! with balanced delimiters. An unrecognized construct therefore costs
//! recall (no finding), never a spurious finding or a crash, which is
//! the right failure mode for a CI gate.

use crate::ast::{Ast, Field, FnItem, Item, ItemKind, TypeExpr};
use crate::lexer::{Lexed, Token, TokenKind};

/// Parse one lexed file. `excuse` reports whether a field declared on a
/// given line is covered by a `stateful`/`state-flow` allow directive
/// (resolved against the same file's directives by the caller).
pub fn parse(lexed: &Lexed, excuse: &dyn Fn(u32) -> bool) -> Ast {
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
        out: Ast::default(),
        excuse,
    };
    p.items(None, false, usize::MAX);
    p.out
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    out: Ast,
    excuse: &'a dyn Fn(u32) -> bool,
}

/// Keywords that can prefix an item before its defining keyword.
const MODIFIERS: &[&str] = &["pub", "const", "unsafe", "async", "extern", "default"];

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek().is_some_and(|t| t.is_punct(c))
    }

    /// Skip a balanced region opened by the punct at the current
    /// position (`{`/`(`/`[`/`<`), leaving `pos` one past the closer.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0i32;
        while let Some(t) = self.bump() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Skip to the next `;` at zero bracket depth (static/const
    /// initializers, use decls, …). Consumes the `;`.
    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.bump() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    ";" if depth <= 0 => return,
                    _ => {}
                }
            }
        }
    }

    /// Skip attributes `#[…]` / `#![…]` and item modifiers, returning
    /// whether any attribute mentioned `cfg(test)`.
    fn skip_attrs_and_modifiers(&mut self) -> bool {
        let mut cfg_test = false;
        loop {
            if self.at_punct('#') {
                self.bump();
                if self.at_punct('!') {
                    self.bump();
                }
                if self.at_punct('[') {
                    let start = self.pos;
                    self.skip_balanced('[', ']');
                    let body = &self.toks[start..self.pos];
                    if body.iter().any(|t| t.is_ident("cfg"))
                        && body.iter().any(|t| t.is_ident("test"))
                    {
                        cfg_test = true;
                    }
                }
                continue;
            }
            // `pub` may carry `(crate)` / `(in path)`.
            if self.at_ident("pub") {
                self.bump();
                if self.at_punct('(') {
                    self.skip_balanced('(', ')');
                }
                continue;
            }
            // `const` only counts as a modifier before `fn` (else it
            // introduces a const item, handled by the caller).
            if self.at_ident("const") && self.toks.get(self.pos + 1).is_some_and(|t| t.is_ident("fn"))
            {
                self.bump();
                continue;
            }
            if MODIFIERS[2..].iter().any(|m| self.at_ident(m)) {
                // unsafe / async / extern / default
                let was_extern = self.at_ident("extern");
                self.bump();
                if was_extern && self.peek().is_some_and(|t| t.kind == TokenKind::Str) {
                    self.bump(); // the ABI string
                }
                continue;
            }
            return cfg_test;
        }
    }

    /// Parse items until the closing `}` of the enclosing block (or
    /// EOF). `end` is a token-index fence for safety.
    fn items(&mut self, self_ty: Option<&str>, in_tests: bool, end: usize) {
        while self.pos < end && self.pos < self.toks.len() {
            if self.at_punct('}') {
                self.bump();
                return;
            }
            let cfg_test = self.skip_attrs_and_modifiers();
            let in_tests = in_tests || cfg_test;
            let Some(t) = self.peek() else { return };
            let (line, col) = (t.line, t.col);
            match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, "type") => self.type_alias(line, col, in_tests),
                (TokenKind::Ident, "struct") => self.struct_item(line, col, in_tests),
                (TokenKind::Ident, "enum") => self.enum_item(line, col, in_tests),
                (TokenKind::Ident, "static") | (TokenKind::Ident, "const") => {
                    self.static_item(line, col, in_tests)
                }
                (TokenKind::Ident, "fn") => self.fn_item(self_ty, line, col, in_tests),
                (TokenKind::Ident, "impl") => self.impl_block(in_tests),
                (TokenKind::Ident, "trait") => self.trait_block(in_tests),
                (TokenKind::Ident, "mod") => self.mod_block(self_ty, in_tests),
                (TokenKind::Ident, "use") | (TokenKind::Ident, "macro_rules") => {
                    // `use path::{a, b};` — braces before the semi;
                    // `macro_rules! name { … }` — a brace body, no semi.
                    self.bump();
                    if self.at_punct('!') {
                        self.bump();
                        self.bump(); // macro name
                        while let Some(t) = self.peek() {
                            if t.is_punct('{') {
                                self.skip_balanced('{', '}');
                                break;
                            }
                            if t.is_punct(';') {
                                self.bump();
                                break;
                            }
                            self.bump();
                        }
                    } else {
                        self.skip_to_semi();
                    }
                }
                (TokenKind::Punct, "{") => self.skip_balanced('{', '}'),
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// `type Name<…>? = Target;` (associated `type Name;` in traits is
    /// skipped).
    fn type_alias(&mut self, line: u32, col: u32, in_tests: bool) {
        self.bump(); // `type`
        let Some(name) = self.ident_text() else {
            self.skip_to_semi();
            return;
        };
        if self.at_punct('<') {
            self.skip_balanced('<', '>');
        }
        // Bounds (`type X: Bound;`) or bodyless associated type.
        if !self.at_punct('=') {
            self.skip_to_semi();
            return;
        }
        self.bump(); // `=`
        let target = self.type_expr();
        self.skip_to_semi();
        self.out.items.push(Item {
            name,
            line,
            col,
            in_tests,
            kind: ItemKind::Alias { target },
        });
    }

    fn struct_item(&mut self, line: u32, col: u32, in_tests: bool) {
        self.bump(); // `struct`
        let Some(name) = self.ident_text() else { return };
        if self.at_punct('<') {
            self.skip_balanced('<', '>');
        }
        let mut fields = Vec::new();
        if self.at_punct('(') {
            // Tuple struct: `struct Name(pub T, U);`
            let close = self.matching(self.pos, '(', ')');
            self.bump(); // `(`
            let mut idx = 0usize;
            while self.pos < close {
                self.skip_attrs_and_modifiers();
                if self.at_punct(')') {
                    break;
                }
                let (fl, fc) = self
                    .peek()
                    .map(|t| (t.line, t.col))
                    .unwrap_or((line, col));
                let ty = self.type_expr();
                fields.push(Field {
                    name: idx.to_string(),
                    excused: (self.excuse)(fl),
                    ty,
                    line: fl,
                    col: fc,
                });
                idx += 1;
                if self.at_punct(',') {
                    self.bump();
                }
            }
            self.pos = close + 1;
            self.skip_to_semi();
        } else if self.at_punct('{') {
            let close = self.matching(self.pos, '{', '}');
            self.bump(); // `{`
            while self.pos < close {
                self.skip_attrs_and_modifiers();
                if self.at_punct('}') {
                    break;
                }
                let Some(fname) = self.ident_text() else { break };
                let (fl, fc) = (self.toks[self.pos - 1].line, self.toks[self.pos - 1].col);
                if !self.at_punct(':') {
                    break; // malformed; bail on this struct body
                }
                self.bump(); // `:`
                let ty = self.type_expr();
                fields.push(Field {
                    name: fname,
                    excused: (self.excuse)(fl),
                    ty,
                    line: fl,
                    col: fc,
                });
                if self.at_punct(',') {
                    self.bump();
                }
            }
            self.pos = close + 1;
        } else {
            // Unit struct `struct Name;`
            self.skip_to_semi();
        }
        self.out.items.push(Item {
            name,
            line,
            col,
            in_tests,
            kind: ItemKind::Struct { fields },
        });
    }

    fn enum_item(&mut self, line: u32, col: u32, in_tests: bool) {
        self.bump(); // `enum`
        let Some(name) = self.ident_text() else { return };
        if self.at_punct('<') {
            self.skip_balanced('<', '>');
        }
        let mut variants = Vec::new();
        if self.at_punct('{') {
            let close = self.matching(self.pos, '{', '}');
            self.bump();
            while self.pos < close {
                self.skip_attrs_and_modifiers();
                if self.at_punct('}') {
                    break;
                }
                let Some(vname) = self.ident_text() else { break };
                let (vl, vc) = (self.toks[self.pos - 1].line, self.toks[self.pos - 1].col);
                let mut payload = TypeExpr {
                    head: "(tuple)".into(),
                    args: Vec::new(),
                    line: vl,
                    col: vc,
                };
                if self.at_punct('(') {
                    let pclose = self.matching(self.pos, '(', ')');
                    self.bump();
                    while self.pos < pclose {
                        if self.at_punct(')') {
                            break;
                        }
                        payload.args.push(self.type_expr());
                        if self.at_punct(',') {
                            self.bump();
                        }
                    }
                    self.pos = pclose + 1;
                } else if self.at_punct('{') {
                    let pclose = self.matching(self.pos, '{', '}');
                    self.bump();
                    while self.pos < pclose {
                        self.skip_attrs_and_modifiers();
                        if self.at_punct('}') {
                            break;
                        }
                        if self.ident_text().is_none() {
                            break;
                        }
                        if self.at_punct(':') {
                            self.bump();
                            payload.args.push(self.type_expr());
                        }
                        if self.at_punct(',') {
                            self.bump();
                        }
                    }
                    self.pos = pclose + 1;
                }
                if self.at_punct('=') {
                    // Discriminant: skip the expression to `,` / `}`.
                    while let Some(t) = self.peek() {
                        if t.is_punct(',') || t.is_punct('}') {
                            break;
                        }
                        self.bump();
                    }
                }
                variants.push(Field {
                    name: vname,
                    ty: payload,
                    line: vl,
                    col: vc,
                    excused: (self.excuse)(vl),
                });
                if self.at_punct(',') {
                    self.bump();
                }
            }
            self.pos = close + 1;
        }
        self.out.items.push(Item {
            name,
            line,
            col,
            in_tests,
            kind: ItemKind::Enum { variants },
        });
    }

    /// `static NAME: Ty = …;` / `const NAME: Ty = …;`
    fn static_item(&mut self, line: u32, col: u32, in_tests: bool) {
        self.bump(); // `static` / `const`
        if self.at_ident("mut") {
            self.bump();
        }
        let Some(name) = self.ident_text() else {
            self.skip_to_semi();
            return;
        };
        if !self.at_punct(':') {
            self.skip_to_semi(); // `const _: () = …` etc. degrade fine
            return;
        }
        self.bump();
        let ty = self.type_expr();
        self.skip_to_semi();
        self.out.items.push(Item {
            name,
            line,
            col,
            in_tests,
            kind: ItemKind::Static { ty },
        });
    }

    fn fn_item(&mut self, self_ty: Option<&str>, line: u32, col: u32, in_tests: bool) {
        self.bump(); // `fn`
        let Some(name) = self.ident_text() else { return };
        if self.at_punct('<') {
            self.skip_balanced('<', '>');
        }
        let mut params = Vec::new();
        if self.at_punct('(') {
            let close = self.matching(self.pos, '(', ')');
            self.bump();
            while self.pos < close {
                self.skip_attrs_and_modifiers();
                if self.at_punct(')') {
                    break;
                }
                // Receiver forms: `self`, `&self`, `&'a mut self`.
                let save = self.pos;
                while self.pos < close
                    && self.peek().is_some_and(|t| {
                        t.is_punct('&')
                            || t.kind == TokenKind::Lifetime
                            || t.is_ident("mut")
                    })
                {
                    self.bump();
                }
                if self.at_ident("self") {
                    self.bump();
                    if self.at_punct(',') {
                        self.bump();
                    }
                    continue;
                }
                self.pos = save;
                // Pattern: plain ident, `mut ident`, or anything more
                // complex (tuple/struct patterns) — skip to the `:`.
                if self.at_ident("mut") {
                    self.bump();
                }
                let pname = if self.peek().is_some_and(|t| t.kind == TokenKind::Ident)
                    && self.toks.get(self.pos + 1).is_some_and(|t| t.is_punct(':'))
                {
                    self.ident_text().unwrap_or_default()
                } else {
                    // Complex pattern: scan to `:` at depth 0 within the
                    // parameter list.
                    let mut depth = 0i32;
                    while self.pos < close {
                        let Some(t) = self.peek() else { break };
                        match t.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            ":" if depth == 0 => break,
                            "," if depth == 0 => break,
                            _ => {}
                        }
                        self.bump();
                    }
                    String::new()
                };
                if self.at_punct(':') {
                    self.bump();
                    let ty = self.type_expr();
                    params.push((pname, ty));
                }
                // Advance over a trailing `,` (or stray tokens up to it).
                let mut depth = 0i32;
                while self.pos < close {
                    let Some(t) = self.peek() else { break };
                    match t.text.as_str() {
                        "(" | "[" | "<" => depth += 1,
                        ")" | "]" | ">" => depth -= 1,
                        "," if depth <= 0 => {
                            self.bump();
                            break;
                        }
                        _ => {}
                    }
                    self.bump();
                }
            }
            self.pos = close + 1;
        }
        // Return type.
        let mut ret = None;
        if self.at_punct('-') && self.toks.get(self.pos + 1).is_some_and(|t| t.is_punct('>')) {
            self.bump();
            self.bump();
            ret = Some(self.type_expr());
        }
        // Where clause: scan to the body `{` or a `;` at depth 0.
        let mut body = None;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                ";" if depth <= 0 => {
                    self.bump();
                    break;
                }
                "{" if depth <= 0 => {
                    let start = self.pos;
                    self.skip_balanced('{', '}');
                    body = Some((start, self.pos));
                    break;
                }
                _ => {}
            }
            if t.kind != TokenKind::Punct {
                depth = depth.max(0); // idents never change depth
            }
            self.bump();
        }
        self.out.items.push(Item {
            name,
            line,
            col,
            in_tests,
            kind: ItemKind::Fn(FnItem {
                self_ty: self_ty.map(str::to_string),
                params,
                ret,
                body,
            }),
        });
    }

    /// `impl<…>? Type {` / `impl<…>? Trait for Type {` — parse the
    /// block's items with `self_ty` set to the implemented type's head.
    fn impl_block(&mut self, in_tests: bool) {
        self.bump(); // `impl`
        if self.at_punct('<') {
            self.skip_balanced('<', '>');
        }
        let first = self.type_expr();
        let self_head = if self.at_ident("for") {
            self.bump();
            self.type_expr().head
        } else {
            first.head
        };
        // Where clause → `{`.
        while let Some(t) = self.peek() {
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') {
                self.bump();
                return;
            }
            self.bump();
        }
        if self.at_punct('{') {
            let close = self.matching(self.pos, '{', '}');
            self.bump();
            self.items(Some(&self_head), in_tests, close);
            self.pos = self.pos.max(close + 1);
        }
    }

    /// `trait Name {…}` — default method bodies are parsed as fns with
    /// the trait as their self type.
    fn trait_block(&mut self, in_tests: bool) {
        self.bump(); // `trait`
        let Some(name) = self.ident_text() else { return };
        while let Some(t) = self.peek() {
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') {
                self.bump();
                return;
            }
            self.bump();
        }
        if self.at_punct('{') {
            let close = self.matching(self.pos, '{', '}');
            self.bump();
            self.items(Some(&name), in_tests, close);
            self.pos = self.pos.max(close + 1);
        }
    }

    fn mod_block(&mut self, self_ty: Option<&str>, in_tests: bool) {
        self.bump(); // `mod`
        let name = self.ident_text().unwrap_or_default();
        let in_tests = in_tests || name == "tests" || name == "test";
        if self.at_punct(';') {
            self.bump();
            return;
        }
        if self.at_punct('{') {
            let close = self.matching(self.pos, '{', '}');
            self.bump();
            self.items(self_ty, in_tests, close);
            self.pos = self.pos.max(close + 1);
        }
    }

    /// Consume one identifier token, returning its text.
    fn ident_text(&mut self) -> Option<String> {
        if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
            let t = self.bump().map(|t| t.text.clone());
            t
        } else {
            None
        }
    }

    /// Index of the token closing the balanced region opened at `open_at`
    /// (which must hold the opening punct). Falls back to the last token.
    fn matching(&self, open_at: usize, open: char, close: char) -> usize {
        let mut depth = 0i32;
        for (i, t) in self.toks.iter().enumerate().skip(open_at) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.toks.len().saturating_sub(1)
    }

    /// Parse a type expression at the current position. Total: consumes
    /// at least the tokens that structurally belong to one type, and
    /// produces *something* for every input.
    fn type_expr(&mut self) -> TypeExpr {
        // Strip reference/pointer sigils, lifetimes, and qualifiers.
        while let Some(t) = self.peek() {
            if t.is_punct('&')
                || t.is_punct('*')
                || t.kind == TokenKind::Lifetime
                || t.is_ident("mut")
                || t.is_ident("dyn")
                || t.is_ident("impl")
                || t.is_ident("const")
            {
                self.bump();
            } else {
                break;
            }
        }
        let Some(t) = self.peek() else {
            return TypeExpr::default();
        };
        let (line, col) = (t.line, t.col);

        // Tuple `(A, B)` — also covers parenthesized types `(A)`.
        if t.is_punct('(') {
            let close = self.matching(self.pos, '(', ')');
            self.bump();
            let mut out = TypeExpr {
                head: "(tuple)".into(),
                args: Vec::new(),
                line,
                col,
            };
            while self.pos < close {
                if self.at_punct(')') {
                    break;
                }
                out.args.push(self.type_expr());
                if self.at_punct(',') {
                    self.bump();
                } else if self.pos < close && !self.at_punct(')') {
                    self.bump(); // stray token inside tuple — stay total
                }
            }
            self.pos = close + 1;
            return out;
        }

        // Array / slice `[T; N]` / `[T]`.
        if t.is_punct('[') {
            let close = self.matching(self.pos, '[', ']');
            self.bump();
            let inner = self.type_expr();
            self.pos = close + 1;
            return TypeExpr {
                head: "[array]".into(),
                args: vec![inner],
                line,
                col,
            };
        }

        // `fn(...) -> R` pointer type.
        if t.is_ident("fn") || t.is_ident("Fn") || t.is_ident("FnMut") || t.is_ident("FnOnce") {
            let head = t.text.clone();
            self.bump();
            let mut out = TypeExpr {
                head,
                args: Vec::new(),
                line,
                col,
            };
            if self.at_punct('(') {
                let close = self.matching(self.pos, '(', ')');
                self.bump();
                while self.pos < close {
                    if self.at_punct(')') {
                        break;
                    }
                    out.args.push(self.type_expr());
                    // Separator comma, or one recovery bump so a
                    // construct type_expr didn't consume can't stall us.
                    if self.at_punct(',') || self.pos < close {
                        self.bump();
                    }
                }
                self.pos = close + 1;
            }
            if self.at_punct('-') && self.toks.get(self.pos + 1).is_some_and(|x| x.is_punct('>')) {
                self.bump();
                self.bump();
                out.args.push(self.type_expr());
            }
            return out;
        }

        if t.kind != TokenKind::Ident {
            // `!` (never), `_`, or something we don't model.
            let head = t.text.clone();
            self.bump();
            return TypeExpr {
                head,
                args: Vec::new(),
                line,
                col,
            };
        }

        // Path: `a::b::C` — keep the final segment as head.
        let mut head = t.text.clone();
        let (mut hline, mut hcol) = (line, col);
        self.bump();
        while self.at_punct(':')
            && self.toks.get(self.pos + 1).is_some_and(|x| x.is_punct(':'))
            && self
                .toks
                .get(self.pos + 2)
                .is_some_and(|x| x.kind == TokenKind::Ident)
        {
            self.bump();
            self.bump();
            let seg = self.toks[self.pos].clone();
            head = seg.text.clone();
            hline = seg.line;
            hcol = seg.col;
            self.bump();
        }
        let mut out = TypeExpr {
            head,
            args: Vec::new(),
            line: hline,
            col: hcol,
        };

        // Generic arguments.
        if self.at_punct('<') {
            let close = self.matching(self.pos, '<', '>');
            self.bump();
            while self.pos < close {
                let Some(t) = self.peek() else { break };
                if t.is_punct('>') {
                    break;
                }
                if t.kind == TokenKind::Lifetime {
                    self.bump();
                } else if t.kind == TokenKind::Num {
                    self.bump(); // const-generic literal
                } else if t.kind == TokenKind::Ident
                    && self.toks.get(self.pos + 1).is_some_and(|x| x.is_punct('='))
                {
                    // Associated binding `Item = T`: keep the rhs type.
                    self.bump();
                    self.bump();
                    out.args.push(self.type_expr());
                } else if t.is_punct(',') {
                    self.bump();
                } else if t.is_punct('{') {
                    self.skip_balanced('{', '}'); // const-generic block
                } else {
                    out.args.push(self.type_expr());
                }
            }
            self.pos = close + 1;
        }
        // `Result<T, E>`-style trailing `+ Bound` in trait objects: skip
        // bounds so the next field/param parse starts clean.
        while self.at_punct('+') {
            self.bump();
            if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                self.bump();
            } else if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                self.type_expr();
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src), &|_| false)
    }

    fn find<'a>(ast: &'a Ast, name: &str) -> &'a Item {
        ast.items
            .iter()
            .find(|i| i.name == name)
            .unwrap_or_else(|| panic!("item `{name}` not parsed"))
    }

    #[test]
    fn alias_struct_enum_static_parse() {
        let src = "
            pub type SessionKey = Supi;
            pub struct Tracked { pub supi: Supi, rtt: f64 }
            struct Newtype(pub Supi);
            enum E { A, B(Supi), C { g: Guti } }
            static TABLE: [Step; 4] = [];
            const LIMIT: usize = 9;
        ";
        let ast = parse_src(src);
        match &find(&ast, "SessionKey").kind {
            ItemKind::Alias { target } => assert_eq!(target.render(), "Supi"),
            k => panic!("{k:?}"),
        }
        match &find(&ast, "Tracked").kind {
            ItemKind::Struct { fields } => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].name, "supi");
                assert_eq!(fields[0].ty.render(), "Supi");
            }
            k => panic!("{k:?}"),
        }
        match &find(&ast, "Newtype").kind {
            ItemKind::Struct { fields } => {
                assert_eq!(fields[0].name, "0");
                assert_eq!(fields[0].ty.render(), "Supi");
            }
            k => panic!("{k:?}"),
        }
        match &find(&ast, "E").kind {
            ItemKind::Enum { variants } => {
                assert_eq!(variants.len(), 3);
                assert!(variants[1].ty.mentions("Supi"));
                assert!(variants[2].ty.mentions("Guti"));
            }
            k => panic!("{k:?}"),
        }
        match &find(&ast, "TABLE").kind {
            ItemKind::Static { ty } => assert!(ty.mentions("Step")),
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn generics_paths_and_wrappers() {
        let src = "struct S { m: std::collections::HashMap<CellId, Vec<Supi>>, o: Option<&'static str>, t: (Supi, u32), }";
        let ast = parse_src(src);
        match &find(&ast, "S").kind {
            ItemKind::Struct { fields } => {
                assert_eq!(fields[0].ty.render(), "HashMap<CellId, Vec<Supi>>");
                assert_eq!(fields[1].ty.head, "Option");
                assert_eq!(fields[2].ty.render(), "(Supi, u32)");
            }
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn impl_methods_carry_self_ty_and_body_ranges() {
        let src = "
            struct Cache { n: u32 }
            impl Cache {
                pub fn bump(&mut self, by: u32) -> u32 { self.n += by; self.n }
            }
            impl Default for Cache { fn default() -> Self { Cache { n: 0 } } }
            fn free(x: u64) {}
        ";
        let ast = parse_src(src);
        let fns: Vec<_> = ast.fns().collect();
        assert_eq!(fns.len(), 3);
        let bump = fns.iter().find(|(i, _)| i.name == "bump").expect("bump");
        assert_eq!(bump.1.self_ty.as_deref(), Some("Cache"));
        assert_eq!(bump.1.params.len(), 1);
        assert_eq!(bump.1.params[0].0, "by");
        assert!(bump.1.body.is_some());
        let default = fns.iter().find(|(i, _)| i.name == "default").expect("default");
        assert_eq!(default.1.self_ty.as_deref(), Some("Cache"));
        let free = fns.iter().find(|(i, _)| i.name == "free").expect("free");
        assert!(free.1.self_ty.is_none());
        assert_eq!(free.1.params[0].0, "x");
    }

    #[test]
    fn test_mods_and_cfg_test_are_marked() {
        let src = "
            struct Live { x: u32 }
            #[cfg(test)]
            mod tests {
                struct Harness { m: HashMap<Supi, u8> }
                fn run() {}
            }
        ";
        let ast = parse_src(src);
        assert!(!find(&ast, "Live").in_tests);
        assert!(find(&ast, "Harness").in_tests);
        assert!(find(&ast, "run").in_tests);
    }

    #[test]
    fn where_clauses_and_trait_defaults_do_not_derail() {
        let src = "
            pub fn pmap<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
            where T: Send, R: Send, F: Fn(T) -> R + Sync,
            { items.into_iter().map(f).collect() }
            trait Probe { fn hit(&self) -> bool { true } fn req(&self); }
            struct After { y: Vec<Supi> }
        ";
        let ast = parse_src(src);
        assert!(!find(&ast, "pmap").in_tests);
        let hit = ast.fns().find(|(i, _)| i.name == "hit").expect("hit");
        assert_eq!(hit.1.self_ty.as_deref(), Some("Probe"));
        assert!(hit.1.body.is_some());
        let req = ast.fns().find(|(i, _)| i.name == "req").expect("req");
        assert!(req.1.body.is_none());
        // The item *after* the generic fn still parses — the where
        // clause and trait block were skipped with balance intact.
        assert!(find(&ast, "After").kind_is_struct_with_supi());
    }

    impl ItemKind {
        fn is_struct_with_supi(&self) -> bool {
            matches!(self, ItemKind::Struct { fields } if fields.iter().any(|f| f.ty.mentions("Supi")))
        }
    }

    impl Item {
        fn kind_is_struct_with_supi(&self) -> bool {
            self.kind.is_struct_with_supi()
        }
    }

    #[test]
    fn excused_fields_are_marked() {
        let src = "struct S {\n    a: HashMap<Supi, u8>,\n    b: u32,\n}";
        let ast = parse(&lex(src), &|line| line == 2);
        match &find(&ast, "S").kind {
            ItemKind::Struct { fields } => {
                assert!(fields[0].excused);
                assert!(!fields[1].excused);
            }
            k => panic!("{k:?}"),
        }
    }
}
