//! The lightweight AST produced by [`crate::parser`]: just enough
//! item-level structure for the R4/R5 dataflow rules — type aliases,
//! struct/enum shapes, function signatures with body token ranges, and
//! statics — without becoming a real Rust front-end. Expression-level
//! analysis stays on the token stream (the parser records body *ranges*
//! and [`crate::flow`] scans inside them), which keeps the parser small
//! and total: anything it does not understand it skips with balanced
//! delimiters, so a new syntax form degrades to "no finding", never to
//! a parse abort.

/// A structural type expression: a head name plus generic arguments.
///
/// References, lifetimes, `mut`, `dyn`/`impl` are stripped; paths keep
/// only their final segment (`std::collections::HashMap` → `HashMap`);
/// tuples use the sentinel head `"(tuple)"`, arrays/slices `"[array]"`,
/// and function pointers `"fn"`. This loses enough precision to stay
/// simple and keeps enough to answer the one question R4 asks: which
/// named types does this type reach?
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypeExpr {
    pub head: String,
    pub args: Vec<TypeExpr>,
    /// Source position of the head token (1-based line/col).
    pub line: u32,
    pub col: u32,
}

impl TypeExpr {
    pub fn leaf(head: &str, line: u32, col: u32) -> Self {
        Self {
            head: head.to_string(),
            args: Vec::new(),
            line,
            col,
        }
    }

    /// Does this type expression mention `name` anywhere (head or any
    /// argument, recursively)?
    pub fn mentions(&self, name: &str) -> bool {
        self.head == name || self.args.iter().any(|a| a.mentions(name))
    }

    /// Render for messages: `HashMap<CellId, Vec<Supi>>`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s);
        s
    }

    fn render_into(&self, s: &mut String) {
        match self.head.as_str() {
            "(tuple)" => {
                s.push('(');
                for (i, a) in self.args.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    a.render_into(s);
                }
                s.push(')');
            }
            "[array]" => {
                s.push('[');
                if let Some(a) = self.args.first() {
                    a.render_into(s);
                }
                s.push(']');
            }
            _ => {
                s.push_str(&self.head);
                if !self.args.is_empty() {
                    s.push('<');
                    for (i, a) in self.args.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        a.render_into(s);
                    }
                    s.push('>');
                }
            }
        }
    }
}

/// A named field of a struct (or, reusing the shape, an enum variant's
/// payload — the variant name with its payload types as a tuple).
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    pub ty: TypeExpr,
    pub line: u32,
    pub col: u32,
    /// Covered by a `// sc-audit: allow(stateful|state-flow, …)`
    /// directive: the justification excuses the store *and* everything
    /// that transitively contains it, so excused fields are invisible to
    /// the R4 embeds/retains computation (otherwise every container of
    /// an allowed store would re-fire the rule one level up).
    pub excused: bool,
}

/// What kind of item this is.
#[derive(Debug, Clone)]
pub enum ItemKind {
    /// `type Name = Target;`
    Alias { target: TypeExpr },
    /// `struct Name { fields }` / `struct Name(T, U);` (tuple fields
    /// are named `"0"`, `"1"`, …).
    Struct { fields: Vec<Field> },
    /// `enum Name { V, V(T), V { f: T } }` — one [`Field`] per variant,
    /// payload types flattened into a tuple.
    Enum { variants: Vec<Field> },
    /// `static NAME: Ty = …;` or `const NAME: Ty = …;`
    Static { ty: TypeExpr },
    /// `fn name(params) -> ret { body }`
    Fn(FnItem),
}

/// A function item (free, inherent, trait-default).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The `impl`/`trait` self type, when the fn lives inside one.
    pub self_ty: Option<String>,
    /// Named parameters with their types (`self` receivers omitted).
    pub params: Vec<(String, TypeExpr)>,
    pub ret: Option<TypeExpr>,
    /// Half-open token-index range of the body, `{` .. one past `}`,
    /// into the file's token stream. `None` for bodyless (trait
    /// required / extern) fns.
    pub body: Option<(usize, usize)>,
}

/// One parsed item with its source position.
#[derive(Debug, Clone)]
pub struct Item {
    pub name: String,
    pub line: u32,
    pub col: u32,
    /// Item sits under a `mod tests`/`#[cfg(test)]` subtree: R4/R5 skip
    /// it (test harnesses intentionally build legacy stateful scenery).
    pub in_tests: bool,
    pub kind: ItemKind,
}

/// A parsed file: the flat item list (impl/mod nesting flattened, with
/// fns carrying their `self_ty`).
#[derive(Debug, Clone, Default)]
pub struct Ast {
    pub items: Vec<Item>,
}

impl Ast {
    /// Iterate fn items with their names.
    pub fn fns(&self) -> impl Iterator<Item = (&Item, &FnItem)> {
        self.items.iter().filter_map(|i| match &i.kind {
            ItemKind::Fn(f) => Some((i, f)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_roundtrips_common_shapes() {
        let supi = TypeExpr::leaf("Supi", 1, 1);
        let vec = TypeExpr {
            head: "Vec".into(),
            args: vec![supi.clone()],
            line: 1,
            col: 1,
        };
        let map = TypeExpr {
            head: "HashMap".into(),
            args: vec![TypeExpr::leaf("CellId", 1, 1), vec],
            line: 1,
            col: 1,
        };
        assert_eq!(map.render(), "HashMap<CellId, Vec<Supi>>");
        assert!(map.mentions("Supi"));
        assert!(!map.mentions("Guti"));
        let tup = TypeExpr {
            head: "(tuple)".into(),
            args: vec![supi, TypeExpr::leaf("u32", 1, 1)],
            line: 1,
            col: 1,
        };
        assert_eq!(tup.render(), "(Supi, u32)");
    }
}
