//! CLI for the workspace auditor. See `--help` for usage; the library
//! half lives in `sc_audit` so tests can drive the same engine.

use sc_audit::baseline::Baseline;
use sc_audit::engine::audit_workspace;
use sc_audit::rules::Config;
use sc_audit::sarif;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
sc-audit — statelessness & determinism auditor for the SpaceCore workspace

USAGE:
    sc-audit [OPTIONS]

OPTIONS:
    --root <PATH>        Workspace root (default: nearest ancestor of the
                         current directory containing crates/)
    --baseline <PATH>    Ratchet file (default: <root>/audit.baseline.toml)
    --update-baseline    Rewrite the ratchet file from current counts
                         (including the v2 r4/r5 finding ceilings)
    --warn-only          Print findings but always exit 0 (tier-1 mode)
    --counts             Also print the per-crate R3 counters
    --format <FMT>       Output format: text (default) or json (SARIF 2.1.0)
    --explain            With text output, print the R4/R5 flow trace
                         under each dataflow finding
    -h, --help           This help

EXIT STATUS:
    0  clean (or --warn-only / baseline updated)
    1  rule violations or ratchet regressions
    2  usage or I/O error
";

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    warn_only: bool,
    counts: bool,
    json: bool,
    explain: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        update_baseline: false,
        warn_only: false,
        counts: false,
        json: false,
        explain: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = Some(it.next().ok_or("--root needs a path")?.into()),
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a path")?.into())
            }
            "--update-baseline" => args.update_baseline = true,
            "--warn-only" => args.warn_only = true,
            "--counts" => args.counts = true,
            "--format" => match it.next().as_deref() {
                Some("text") => args.json = false,
                Some("json") => args.json = true,
                Some(other) => return Err(format!("--format must be text or json, got `{other}`")),
                None => return Err("--format needs text or json".into()),
            },
            "--explain" => args.explain = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Walk up from the current directory to the first ancestor containing
/// `crates/` (so the tool works from any workspace subdirectory).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sc-audit: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = args.root.or_else(find_root) else {
        eprintln!("sc-audit: no crates/ directory found here or above (try --root)");
        return ExitCode::from(2);
    };
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("audit.baseline.toml"));

    let baseline = if baseline_path.exists() {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sc-audit: reading {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("sc-audit: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let report = match audit_workspace(&root, &baseline, &Config::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sc-audit: {e}");
            return ExitCode::from(2);
        }
    };

    if args.update_baseline {
        let fresh = Baseline::from_measurements(&report.counts, &report.flow_counts);
        if let Err(e) = std::fs::write(&baseline_path, fresh.render()) {
            eprintln!("sc-audit: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "sc-audit: wrote {} ({} crates)",
            baseline_path.display(),
            fresh.crates.len()
        );
    }

    if args.json {
        print!("{}", sarif::to_sarif(&report, args.warn_only));
    } else {
        if args.counts {
            for (krate, c) in &report.counts {
                let f = report.flow_counts.get(krate).copied().unwrap_or_default();
                println!(
                    "crates/{krate}: unwrap={} expect={} panic={} unsafe={} r4={} r5={}",
                    c.unwrap, c.expect, c.panic, c.r#unsafe, f.r4, f.r5
                );
            }
        }
        for f in &report.findings {
            println!("{f}");
        }
        for f in &report.flow {
            println!("{f}");
            if args.explain {
                for step in &f.trace {
                    println!("    ↳ {}:{}:{} {}", step.file, step.line, step.col, step.note);
                }
            }
        }
        if !args.update_baseline {
            for r in &report.ratchet {
                println!("{r}");
            }
            for (krate, counter, cur, base) in &report.improvements {
                eprintln!(
                    "sc-audit: note: crates/{krate} {counter} improved ({cur} < baseline {base}); \
                     run --update-baseline to lock it in"
                );
            }
        }
    }

    // R1/R2 findings are fatal directly; R4/R5 findings gate through
    // the baseline-v2 ratchet (so grandfathered ceilings behave exactly
    // like the R3 workflow).
    let ratchet_fails = if args.update_baseline { 0 } else { report.ratchet.len() };
    let violations = report.findings.len() + ratchet_fails;
    eprintln!(
        "sc-audit: {} files scanned, {} finding(s), {} dataflow finding(s), {} ratchet regression(s)",
        report.files_scanned,
        report.findings.len(),
        report.flow.len(),
        ratchet_fails
    );
    if violations == 0 || args.warn_only {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
