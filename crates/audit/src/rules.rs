//! The rule families enforced by `sc-audit`, expressed over the token
//! stream of [`crate::lexer`]:
//!
//! * **R1 `stateful`** — per-UE keyed collections (`HashMap`/`BTreeMap`
//!   keyed by `Supi`, `Imsi`, `UeId`, `Suci`, `Guti`, `Tmsi`) are
//!   forbidden in satellite-side modules unless carrying an explicit
//!   `// sc-audit: allow(stateful, reason = "…")` justification. This is
//!   the paper's S1–S5 claim (no per-UE state on the satellite) as a
//!   mechanical check. A second probe flags *retained lock-wrapped
//!   collections* (`Mutex<Vec<…>>`, `RwLock<HashMap<…>>`, …) — ad-hoc
//!   shared-mutable buffers that tend to grow into session state. The
//!   arena API is the sanctioned way to pool encode buffers: types in
//!   [`Config::pool_types`] (`MessageArena`, `BufId`) hold recycled,
//!   content-free scratch space keyed by handle, never by subscriber, so
//!   `Mutex<MessageArena>` (and pools of `BufId` handles) are exempt.
//! * **R2 `timing`/`rng`/`unordered`/`float-cmp`** — determinism: no
//!   wall-clock reads outside the timing allowlist, no unseeded RNG, no
//!   direct iteration of hash-ordered collections into emitted results,
//!   no `partial_cmp(..).unwrap()` (use `total_cmp`).
//! * **R3 ratchet** — per-crate counts of `unwrap()` / `expect(` /
//!   `panic!` / `unsafe`, compared against `audit.baseline.toml` by the
//!   engine (counting happens here, comparison in [`crate::engine`]).

use crate::lexer::{Lexed, Token, TokenKind};

/// A single rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Rule id, e.g. `R1-stateful`.
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{} {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Per-crate panic-hygiene counters (the R3 ratchet quantities).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PanicCounts {
    pub unwrap: u32,
    pub expect: u32,
    pub panic: u32,
    pub r#unsafe: u32,
}

impl PanicCounts {
    pub fn total(&self) -> u32 {
        self.unwrap + self.expect + self.panic + self.r#unsafe
    }

    pub fn add(&mut self, o: &PanicCounts) {
        self.unwrap += o.unwrap;
        self.expect += o.expect;
        self.panic += o.panic;
        self.r#unsafe += o.r#unsafe;
    }
}

/// Static rule configuration. The defaults encode this repository's
/// layout; tests override them to point at fixtures.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes where R1 (per-UE keyed collections) applies: the
    /// satellite-side modules and the 5G NF hot paths. The sc-obs
    /// windowed-series buffers inside this scope are fine by
    /// construction — dense window-indexed `Vec`s keyed by sim-time
    /// window, never by subscriber identity — so R1's per-UE-key probe
    /// does not (and must not) fire on the series API.
    pub stateful_scope: Vec<String>,
    /// Files (or path prefixes) allowed to read wall clocks: the two
    /// wall-clock reporters and the benchmark harness.
    pub timing_allowlist: Vec<String>,
    /// Path prefixes where R5 (parallel-determinism) applies: the
    /// emulator's deterministic parallel sweep engine and its callers.
    pub parallel_scope: Vec<String>,
    /// Type names treated as per-UE keys.
    pub per_ue_keys: Vec<String>,
    /// Pooled-buffer types from the message arena API. These hold
    /// recycled scratch space addressed by handle (`BufId`), never by
    /// subscriber identity, so lock-wrapping them on the satellite is
    /// not retained per-UE state and R1's retained-lock probe skips
    /// them.
    pub pool_types: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            stateful_scope: vec![
                "crates/spacecore/src/".into(),
                "crates/fiveg/src/".into(),
                "crates/obs/src/".into(),
            ],
            timing_allowlist: vec![
                "crates/emu/src/fig18.rs".into(),
                "crates/emu/src/report.rs".into(),
                "crates/bench/".into(),
            ],
            parallel_scope: vec!["crates/emu/src/".into()],
            per_ue_keys: ["Supi", "Imsi", "UeId", "Suci", "Guti", "Tmsi"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            pool_types: ["MessageArena", "BufId"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

/// Iterator-chain methods whose result does not depend on hash-map
/// iteration order, and type names that restore a total order; their
/// presence in the same statement suppresses R2-unordered (and R5's
/// hash-iteration probe in [`crate::flow`]).
pub(crate) const ORDER_INSENSITIVE: &[&str] = &[
    "sum", "count", "len", "is_empty", "min", "max", "min_by", "max_by", "min_by_key",
    "max_by_key", "all", "any", "contains", "contains_key", "sort", "sort_by", "sort_unstable",
    "sort_by_key", "sort_unstable_by", "sort_unstable_by_key", "BTreeMap", "BTreeSet",
];

/// Audit one file's token stream. `rel_path` is workspace-relative with
/// forward slashes (it selects which rules apply). Returns the findings
/// and the file's R3 counters.
pub fn audit_tokens(rel_path: &str, lexed: &Lexed, cfg: &Config) -> (Vec<Finding>, PanicCounts) {
    let mut findings = Vec::new();
    let toks = &lexed.tokens;

    rule_stateful(rel_path, lexed, cfg, &mut findings);
    rule_retained_lock(rel_path, lexed, cfg, &mut findings);
    rule_timing(rel_path, lexed, cfg, &mut findings);
    rule_rng(rel_path, lexed, &mut findings);
    rule_float_cmp(rel_path, lexed, &mut findings);
    rule_unordered(rel_path, lexed, &mut findings);

    // R3 — counting only; ratcheting against the baseline happens at
    // workspace level.
    let mut counts = PanicCounts::default();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        match t.text.as_str() {
            "unwrap" if prev_dot && next_paren => counts.unwrap += 1,
            "expect" if prev_dot && next_paren => counts.expect += 1,
            "panic" if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) => counts.panic += 1,
            "unsafe" => counts.r#unsafe += 1,
            _ => {}
        }
    }

    // Apply `sc-audit: allow(rule, reason = …)` suppressions.
    findings.retain(|f| !is_allowed(lexed, rule_key(f.rule), f.line));
    (findings, counts)
}

/// Map a rule id to its allow()-directive key.
fn rule_key(rule: &str) -> &str {
    rule.split_once('-').map_or(rule, |(_, k)| k)
}

/// Is a finding of `key` on `line` covered by a directive? A directive
/// covers its own line (trailing comment) and the next line that holds
/// any token (annotation-above).
pub(crate) fn is_allowed(lexed: &Lexed, key: &str, line: u32) -> bool {
    lexed.directives.iter().any(|d| {
        d.rule == key
            && (d.line == line
                || lexed
                    .token_lines
                    .iter()
                    .find(|&&l| l > d.line)
                    .is_some_and(|&l| l == line))
    })
}

pub(crate) fn path_matches(rel_path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| rel_path.starts_with(p.as_str()))
}

/// R1 — per-UE keyed collection type mentions in satellite-side scope.
/// `pub(crate)`: the engine re-runs this pre-suppression to compute the
/// sites R4 must not double-report.
pub(crate) fn rule_stateful(rel_path: &str, lexed: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    if !path_matches(rel_path, &cfg.stateful_scope) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("BTreeMap")) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        if !next.is_punct('<') {
            continue;
        }
        // Collect identifiers in the key position: everything from the
        // `<` to the first `,` at angle depth 1 / paren depth 0.
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut key_idents: Vec<&Token> = Vec::new();
        for tk in &toks[i + 1..] {
            match tk.kind {
                TokenKind::Punct => match tk.text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            break;
                        }
                    }
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "," if angle == 1 && paren == 0 => break,
                    ";" => break, // malformed / end of item
                    _ => {}
                },
                TokenKind::Ident
                    if angle >= 1 => {
                        key_idents.push(tk);
                    }
                _ => {}
            }
        }
        if let Some(k) = key_idents
            .iter()
            .find(|k| cfg.per_ue_keys.iter().any(|p| p == &k.text))
        {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                rule: "R1-stateful",
                message: format!(
                    "per-UE keyed collection `{}<{}, …>` in satellite-side module; \
                     delegate this state to the UE (S1/S3–S5) or annotate with \
                     `// sc-audit: allow(stateful, reason = \"…\")`",
                    t.text, k.text
                ),
            });
        }
    }
}

/// Growable collection types whose presence inside a lock wrapper marks
/// retained mutable state (as opposed to, say, `Mutex<SuffixAllocator>`
/// or a telemetry handle, which hold fixed-shape internals).
const GROWABLE: &[&str] = &[
    "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Vec", "VecDeque", "String",
];

/// R1 (retained-lock probe) — lock-wrapped growable collections in
/// satellite-side scope. A `Mutex<Vec<u8>>` scratch buffer is how per-UE
/// state sneaks back in by accretion; the arena API is the sanctioned
/// pool (see [`Config::pool_types`]). Skips wrappers that
///
/// * mention a pool type (`Mutex<MessageArena>`, `Mutex<Vec<BufId>>`) —
///   recycled handle-addressed scratch, not session state, or
/// * mention a per-UE key — the keyed-map probe already reports those
///   with the sharper message.
pub(crate) fn rule_retained_lock(rel_path: &str, lexed: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    if !path_matches(rel_path, &cfg.stateful_scope) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("Mutex") || t.is_ident("RwLock") || t.is_ident("RefCell")) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('<')) {
            continue; // `Mutex::new(…)` expression etc. — type uses only
        }
        // Collect identifiers in the balanced angle region.
        let mut angle = 0i32;
        let mut inner: Vec<&Token> = Vec::new();
        for tk in &toks[i + 1..] {
            match tk.kind {
                TokenKind::Punct => match tk.text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            break;
                        }
                    }
                    ";" => break, // malformed / end of item
                    _ => {}
                },
                TokenKind::Ident if angle >= 1 => inner.push(tk),
                _ => {}
            }
        }
        let mentions = |names: &[String]| {
            inner
                .iter()
                .any(|k| names.iter().any(|n| n == &k.text))
        };
        if mentions(&cfg.pool_types) || mentions(&cfg.per_ue_keys) {
            continue;
        }
        if !inner
            .iter()
            .any(|k| GROWABLE.contains(&k.text.as_str()))
        {
            continue;
        }
        out.push(Finding {
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            rule: "R1-stateful",
            message: format!(
                "lock-wrapped growable collection `{}<…>` retained in satellite-side \
                 module; pool scratch buffers through the arena API (`MessageArena`/\
                 `BufId`) or annotate with `// sc-audit: allow(stateful, reason = \"…\")`",
                t.text
            ),
        });
    }
}

/// R2 — wall-clock reads outside the timing allowlist.
fn rule_timing(rel_path: &str, lexed: &Lexed, cfg: &Config, out: &mut Vec<Finding>) {
    if path_matches(rel_path, &cfg.timing_allowlist) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("Instant") || t.is_ident("SystemTime")) {
            continue;
        }
        if toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 3).is_some_and(|a| a.is_ident("now"))
        {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                rule: "R2-timing",
                message: format!(
                    "`{}::now()` outside the timing allowlist breaks byte-identical \
                     results; thread simulated time through instead (telemetry \
                     belongs in sc-obs, whose `Recorder::event`, histograms, \
                     `span_open`/`span_close` spans, and the windowed \
                     `series_inc`/`series_gauge` time-series all take sim-time, \
                     never wall-clock)",
                    t.text
                ),
            });
        }
    }
}

/// R2 — unseeded randomness.
fn rule_rng(rel_path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for t in &lexed.tokens {
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("OsRng") {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                rule: "R2-rng",
                message: format!(
                    "`{}` is unseeded; use `StdRng::seed_from_u64` so runs replay",
                    t.text
                ),
            });
        }
    }
}

/// R2 — `partial_cmp(..).unwrap()/expect(..)`: panics on NaN and reads
/// worse than `total_cmp`.
fn rule_float_cmp(rel_path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("partial_cmp") {
            continue;
        }
        // Skip over the balanced argument list, if any.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|a| a.is_punct('(')) {
            let mut depth = 0i32;
            while let Some(tk) = toks.get(j) {
                if tk.is_punct('(') {
                    depth += 1;
                } else if tk.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        } else {
            continue; // `fn partial_cmp` definition etc.
        }
        if toks.get(j).is_some_and(|a| a.is_punct('.'))
            && toks
                .get(j + 1)
                .is_some_and(|a| a.is_ident("unwrap") || a.is_ident("expect"))
        {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                col: t.col,
                rule: "R2-float-cmp",
                message: "`partial_cmp(..).unwrap()` panics on NaN; use `total_cmp`".into(),
            });
        }
    }
}

/// Identifiers declared in this token stream with a `HashMap`/`HashSet`
/// type — `let [mut] name = … HashMap::new()` bindings and
/// `name: …HashMap<…` field/param annotations. Sorted and deduped for
/// `binary_search`. Shared by R2-unordered and R5's hash-iteration
/// probe in [`crate::flow`].
pub(crate) fn hash_typed_names(toks: &[Token]) -> Vec<String> {
    let mut hashed: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "let" {
            // let [mut] name … = … HashMap::new() / HashSet::new() …;
            let mut j = i + 1;
            if toks.get(j).is_some_and(|a| a.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|a| a.kind == TokenKind::Ident) else {
                continue;
            };
            for tk in &toks[j..] {
                if tk.is_punct(';') {
                    break;
                }
                if tk.is_ident("HashMap") || tk.is_ident("HashSet") {
                    hashed.push(name.text.clone());
                    break;
                }
            }
        } else if toks.get(i + 1).is_some_and(|a| a.is_punct(':')) {
            // name: …HashMap<…  (struct field or parameter; look a few
            // tokens ahead so `Mutex<HashMap<…>>` still matches).
            let window = toks.iter().skip(i + 2).take(8);
            let mut depth_break = false;
            for tk in window {
                if tk.is_punct(';') || tk.is_punct('{') {
                    depth_break = true;
                }
                if depth_break {
                    break;
                }
                if tk.is_ident("HashMap") || tk.is_ident("HashSet") {
                    hashed.push(t.text.clone());
                    break;
                }
            }
        }
    }
    hashed.sort_unstable();
    hashed.dedup();
    hashed
}

/// R2 — iteration over hash-ordered collections whose order can leak
/// into emitted results.
///
/// Heuristic, deliberately simple: identifiers declared in this file
/// with a `HashMap`/`HashSet` type (field/param/let annotations, or
/// `= HashMap::new()`) are tracked; `x.iter()`, `x.keys()`,
/// `x.values()`, `x.drain()`, `x.into_iter()` and `for … in … x` over a
/// tracked name are flagged — also through a `.lock()`/`.borrow()`/
/// `.read()` guard — unless either
///
/// * the surrounding statement contains an order-insensitive sink
///   (`sum`, `len`, `sort*`, a B-tree collection, …), or
/// * the iteration feeds a `let`-bound collection that is later sorted
///   (`let mut v = m.iter()…collect(); v.sort_by(…)` — the repo's
///   standard collect-then-sort emission idiom).
///
/// Escape hatch: `// sc-audit: allow(unordered, reason = "…")`.
fn rule_unordered(rel_path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;

    // Pass 1 — collect hash-typed identifiers.
    let hashed = hash_typed_names(toks);
    if hashed.is_empty() {
        return;
    }

    // Pass 2 — flag order-sensitive uses.
    const ITER_METHODS: &[&str] = &["iter", "keys", "values", "into_iter", "iter_mut", "values_mut", "drain"];
    for (i, t) in toks.iter().enumerate() {
        let is_tracked = t.kind == TokenKind::Ident && hashed.binary_search(&t.text).is_ok();
        if !is_tracked {
            continue;
        }
        let direct_iter = {
            // Walk `name(.lock())*.<method>`, skipping guard adapters.
            let mut j = i + 1;
            loop {
                if !toks.get(j).is_some_and(|a| a.is_punct('.')) {
                    break false;
                }
                let Some(m) = toks.get(j + 1) else { break false };
                if ITER_METHODS.iter().any(|it| m.is_ident(it)) {
                    break true;
                }
                let is_guard = ["lock", "borrow", "read"].iter().any(|g| m.is_ident(g))
                    && toks.get(j + 2).is_some_and(|a| a.is_punct('('))
                    && toks.get(j + 3).is_some_and(|a| a.is_punct(')'));
                if !is_guard {
                    break false;
                }
                j += 4;
            }
        };
        // `for k in &name {` / `for (k, v) in name.iter() {` — the
        // method-call form is covered by `direct_iter`; the borrow form
        // needs the loop check.
        let in_for_header = {
            let mut found = false;
            for back in (0..i).rev() {
                let tk = &toks[back];
                if tk.is_punct('{') || tk.is_punct(';') || tk.is_punct('}') {
                    break;
                }
                if tk.is_ident("for") {
                    // Ensure there's an `in` between `for` and us.
                    found = toks[back..i].iter().any(|x| x.is_ident("in"));
                    break;
                }
            }
            found && toks.get(i + 1).is_some_and(|a| a.is_punct('{') || a.is_punct('.'))
        };
        if !direct_iter && !in_for_header {
            continue;
        }
        // Statement window: previous ; { } to next ; or block open.
        let start = (0..i)
            .rev()
            .find(|&k| {
                let tk = &toks[k];
                tk.is_punct(';') || tk.is_punct('{') || tk.is_punct('}')
            })
            .map_or(0, |k| k + 1);
        let mut end = i;
        for (k, tk) in toks.iter().enumerate().skip(i) {
            end = k;
            if tk.is_punct(';') || tk.is_punct('{') {
                break;
            }
        }
        let sanctioned = toks[start..=end].iter().any(|tk| {
            tk.kind == TokenKind::Ident && ORDER_INSENSITIVE.contains(&tk.text.as_str())
        });
        if sanctioned {
            continue;
        }
        // Collect-then-sort idiom: the statement is `let [mut] v = …;`
        // and `v.sort*` appears later in the file.
        if toks[start].is_ident("let") {
            let mut b = start + 1;
            if toks.get(b).is_some_and(|a| a.is_ident("mut")) {
                b += 1;
            }
            if let Some(bound) = toks.get(b).filter(|a| a.kind == TokenKind::Ident) {
                let sorted_later = toks.windows(3).skip(end).any(|w| {
                    w[0].is_ident(&bound.text)
                        && w[1].is_punct('.')
                        && w[2].kind == TokenKind::Ident
                        && w[2].text.starts_with("sort")
                });
                if sorted_later {
                    continue;
                }
            }
        }
        out.push(Finding {
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            rule: "R2-unordered",
            message: format!(
                "iteration over hash-ordered `{}` can leak nondeterministic order into \
                 results; sort before emitting, use a BTree collection, or annotate \
                 `// sc-audit: allow(unordered, reason = \"…\")`",
                t.text
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> (Vec<Finding>, PanicCounts) {
        audit_tokens(path, &lex(src), &Config::default())
    }

    const SAT: &str = "crates/spacecore/src/satellite.rs";

    #[test]
    fn per_ue_hashmap_field_flagged_in_scope() {
        let src = "struct S { active: Mutex<HashMap<Supi, ActiveSession>>, }";
        let (f, _) = run(SAT, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "R1-stateful");
    }

    #[test]
    fn tuple_key_flagged() {
        let src = "struct S { sessions: HashMap<(Supi, SessionId), PduSession>, }";
        let (f, _) = run("crates/fiveg/src/smf.rs", src);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn non_ue_key_ok_and_out_of_scope_ok() {
        let (f, _) = run(SAT, "struct S { per_anchor: HashMap<u32, u32>, }");
        assert!(f.is_empty());
        let (f, _) = run(
            "crates/emu/src/fig05.rs",
            "struct S { m: HashMap<Supi, u8>, }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = "struct S {\n    // sc-audit: allow(stateful, reason = \"ephemeral\")\n    active: HashMap<Supi, u8>,\n}";
        let (f, _) = run(SAT, src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn arena_pool_exempt_from_retained_lock() {
        // The arena API is the sanctioned pool: a locked `MessageArena`
        // (or a pool of `BufId` handles) is recycled scratch space, not
        // per-UE state.
        let src = "struct S {\n    arena: parking_lot::Mutex<sc_fiveg::arena::MessageArena>,\n    handles: Mutex<Vec<arena::BufId>>,\n}";
        let (f, _) = run(SAT, src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn adhoc_locked_buffer_flagged() {
        let src = "struct S { scratch: Mutex<Vec<Vec<u8>>>, }";
        let (f, _) = run(SAT, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "R1-stateful");
        assert!(f[0].message.contains("MessageArena"), "{}", f[0].message);
        // Out of satellite scope: fine.
        let (f, _) = run("crates/emu/src/fig05.rs", src);
        assert!(f.is_empty(), "{f:?}");
        // Annotated: suppressed.
        let src = "struct S {\n    // sc-audit: allow(stateful, reason = \"bounded reorder window\")\n    scratch: Mutex<Vec<Vec<u8>>>,\n}";
        let (f, _) = run(SAT, src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn per_ue_locked_map_reported_once_by_keyed_probe() {
        // `Mutex<HashMap<Supi, …>>` is the keyed-map probe's finding;
        // the retained-lock probe must not double-report it.
        let src = "struct S { active: Mutex<HashMap<Supi, ActiveSession>>, }";
        let (f, _) = run(SAT, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("per-UE keyed collection"), "{}", f[0].message);
    }

    #[test]
    fn instant_now_flagged_outside_allowlist() {
        let (f, _) = run(SAT, "fn f() { let t = Instant::now(); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "R2-timing");
        let (f, _) = run("crates/emu/src/fig18.rs", "fn f() { let t = Instant::now(); }");
        assert!(f.is_empty());
    }

    #[test]
    fn obs_crate_is_not_timing_allowlisted() {
        // sc-obs records sim-time only: a wall-clock read inside it is a
        // bug, not a telemetry feature.
        let (f, _) = run("crates/obs/src/recorder.rs", "fn f() { let t = Instant::now(); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "R2-timing");
        assert!(f[0].message.contains("sc-obs"), "{}", f[0].message);
    }

    #[test]
    fn obs_crate_is_in_stateful_scope() {
        // A per-UE keyed map inside the observability layer would smuggle
        // session state out of the stateless core — R1 watches for it.
        let src = "struct S { m: HashMap<Supi, u64>, }";
        let (f, _) = run("crates/obs/src/recorder.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "R1-stateful");
    }

    #[test]
    fn partial_cmp_unwrap_flagged() {
        let (f, _) = run(SAT, "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "R2-float-cmp");
        // total_cmp and unwrap_or are fine.
        let (f, _) = run(SAT, "fn f() { v.sort_by(|a, b| a.total_cmp(b)); x.partial_cmp(y).unwrap_or(Less); }");
        assert!(f.is_empty());
    }

    #[test]
    fn unordered_iteration_flagged_unless_sorted() {
        let src = "struct S { m: HashMap<u32, f64>, }\nfn f(s: &S) -> Vec<u32> { s.m.keys().copied().collect() }";
        let (f, _) = run(SAT, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "R2-unordered");
        let src = "struct S { m: HashMap<u32, f64>, }\nfn f(s: &S) -> f64 { s.m.values().sum() }";
        let (f, _) = run(SAT, src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn collect_then_sort_is_sanctioned() {
        let src = "struct S { m: HashMap<u32, f64>, }\nfn f(s: &S) -> Vec<u32> {\n    let mut v: Vec<u32> = s.m.keys().copied().collect();\n    v.sort_unstable();\n    v\n}";
        let (f, _) = run(SAT, src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn iteration_through_lock_guard_flagged() {
        let src = "struct S { m: Mutex<HashMap<u32, f64>>, }\nfn f(s: &S) -> Vec<u32> { s.m.lock().keys().copied().collect() }";
        let (f, _) = run(SAT, src);
        // Two findings: the retained-lock probe on the field, and the
        // unordered-iteration probe on the emission path under test.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == "R2-unordered"), "{f:?}");
    }

    #[test]
    fn for_loop_over_map_flagged() {
        let src = "fn f() {\n    let mut m = HashMap::new();\n    m.insert(1, 2);\n    for (k, v) in &m { emit(k, v); }\n}";
        let (f, _) = run(SAT, src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn panic_counts_ignore_strings_and_comments() {
        let src = "// unwrap() in a comment\nfn f() { x.unwrap(); y.expect(\"panic!(\"); let s = \"unsafe \"; }";
        let (_, c) = run(SAT, src);
        assert_eq!(c.unwrap, 1);
        assert_eq!(c.expect, 1);
        assert_eq!(c.panic, 0);
        assert_eq!(c.r#unsafe, 0);
    }

    #[test]
    fn unwrap_or_not_counted() {
        let (_, c) = run(SAT, "fn f() { x.unwrap_or(0); x.unwrap_or_default(); }");
        assert_eq!(c.unwrap, 0);
    }
}
