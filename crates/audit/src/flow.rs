//! The dataflow rule families layered on the AST + symbol table:
//!
//! * **R4 `state-flow`** — semantic statelessness. Where R1 pattern-
//!   matches `HashMap<Supi, …>` at the declaration site, R4 asks the
//!   *typed* question: does this satellite-scope storage site (struct
//!   field, enum payload, static, lock wrapper) transitively retain a
//!   value embedding a per-UE key — through type aliases, newtype
//!   wrappers, generic instantiations, and cross-crate struct fields?
//!   Findings carry a flow trace (retention site → embed chain → key
//!   declaration → mutating method → callers) for `--explain`.
//! * **R5 `parallel`** — determinism of the `SC_EMU_THREADS` parallel
//!   sweep: closures spawned into `thread::scope`/`parallel_map*`
//!   regions must not mutate captured locals, take ad-hoc locks, or
//!   iterate hash-ordered collections — any of which can reorder
//!   writes and break the byte-stable-results invariant.
//!
//! Both rules honor `// sc-audit: allow(...)` directives (R4 under the
//! `state-flow` *or* `stateful` key — a justified store excuses its
//! flow too; R5 under `parallel`), skip `#[cfg(test)]`/`mod tests`
//! items, and are ratcheted per crate by baseline v2 (see
//! [`crate::baseline`]).

use crate::ast::{Ast, ItemKind, TypeExpr};
use crate::lexer::{Lexed, Token, TokenKind};
use crate::rules::{hash_typed_names, is_allowed, path_matches, Config, ORDER_INSENSITIVE};
use crate::symbols::{Symbols, TypeDecl, TypeDeclKind};
use std::collections::HashSet;

/// One hop of a flow trace, printable as `file:line:col note`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStep {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub note: String,
}

/// An R4/R5 finding: position + message like [`crate::rules::Finding`],
/// plus the explaining trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowFinding {
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// `R4-state-flow` or `R5-parallel`.
    pub rule: &'static str,
    pub message: String,
    pub trace: Vec<FlowStep>,
}

impl std::fmt::Display for FlowFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{} {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// One parsed file, as assembled by the engine's first pass.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    pub lexed: Lexed,
    pub ast: Ast,
}

/// Collection heads that *retain* their elements for the life of the
/// container (growable, long-lived when stored in a field/static).
const COLLECTIONS: &[&str] = &[
    "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Vec", "VecDeque", "BinaryHeap",
];

/// Interior-mutability wrappers: holding one of these over an embedding
/// type is shared-mutable per-UE state.
const LOCKS: &[&str] = &["Mutex", "RwLock", "RefCell"];

/// Transparent wrappers the retention probe looks through.
const WRAPPERS: &[&str] = &["Option", "Box", "Arc", "Rc", "Cell"];

/// In-place mutators, for capture-mutation detection and flow traces.
const MUTATORS: &[&str] = &[
    "insert", "push", "push_back", "push_front", "extend", "append", "entry", "remove",
    "clear", "retain", "replace",
];

// ---------------------------------------------------------------------
// R4 — state-flow
// ---------------------------------------------------------------------

/// Run R4 over every unit in `cfg.stateful_scope`. `r1_sites` holds the
/// (file, line) positions where R1's token probes fired *before*
/// suppression — R4 skips those so one bad declaration is reported by
/// exactly one rule (the sharper, older one).
pub fn rule_state_flow(
    units: &[FileUnit],
    symbols: &Symbols,
    cfg: &Config,
    r1_sites: &HashSet<(String, u32)>,
) -> Vec<FlowFinding> {
    let mut az = Analyzer {
        symbols,
        cfg,
        visiting: Vec::new(),
    };
    let mut out = Vec::new();
    for unit in units {
        if !path_matches(&unit.rel, &cfg.stateful_scope) {
            continue;
        }
        for item in &unit.ast.items {
            if item.in_tests {
                continue;
            }
            match &item.kind {
                ItemKind::Struct { fields } => {
                    for f in fields.iter().filter(|f| !f.excused) {
                        if r1_sites.contains(&(unit.rel.clone(), f.line))
                            || r1_sites.contains(&(unit.rel.clone(), f.ty.line))
                        {
                            continue;
                        }
                        if let Some((why, chain)) = az.retains(&f.ty) {
                            let mut trace = vec![FlowStep {
                                file: unit.rel.clone(),
                                line: f.line,
                                col: f.col,
                                note: format!(
                                    "state retained in field `{}.{}: {}`",
                                    item.name,
                                    f.name,
                                    f.ty.render()
                                ),
                            }];
                            trace.extend(chain);
                            trace.extend(mutation_chain(symbols, &item.name, &f.name));
                            out.push(FlowFinding {
                                file: unit.rel.clone(),
                                line: f.line,
                                col: f.col,
                                rule: "R4-state-flow",
                                message: format!(
                                    "field `{}.{}: {}` retains per-UE state ({why}) in \
                                     satellite-side module; delegate to the UE (S1/S3–S5) \
                                     or annotate `// sc-audit: allow(state-flow, reason = \
                                     \"…\")` — run with --explain for the flow trace",
                                    item.name,
                                    f.name,
                                    f.ty.render()
                                ),
                                trace,
                            });
                        }
                    }
                }
                ItemKind::Enum { variants } => {
                    for v in variants.iter().filter(|v| !v.excused) {
                        if let Some((why, chain)) = az.retains(&v.ty) {
                            let mut trace = vec![FlowStep {
                                file: unit.rel.clone(),
                                line: v.line,
                                col: v.col,
                                note: format!(
                                    "state retained in variant `{}::{}`",
                                    item.name, v.name
                                ),
                            }];
                            trace.extend(chain);
                            out.push(FlowFinding {
                                file: unit.rel.clone(),
                                line: v.line,
                                col: v.col,
                                rule: "R4-state-flow",
                                message: format!(
                                    "enum variant `{}::{}` carries retained per-UE state \
                                     ({why}) in satellite-side module",
                                    item.name, v.name
                                ),
                                trace,
                            });
                        }
                    }
                }
                ItemKind::Static { ty } => {
                    // Bare `const KEY: Supi` is a copied constant, not
                    // retention — only retaining shapes fire here.
                    if r1_sites.contains(&(unit.rel.clone(), item.line)) {
                        continue;
                    }
                    if let Some((why, chain)) = az.retains(ty) {
                        let mut trace = vec![FlowStep {
                            file: unit.rel.clone(),
                            line: item.line,
                            col: item.col,
                            note: format!("state retained in static `{}`", item.name),
                        }];
                        trace.extend(chain);
                        out.push(FlowFinding {
                            file: unit.rel.clone(),
                            line: item.line,
                            col: item.col,
                            rule: "R4-state-flow",
                            message: format!(
                                "static `{}: {}` retains per-UE state ({why}); satellite \
                                 process lifetime is unbounded retention",
                                item.name,
                                ty.render()
                            ),
                            trace,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    // Apply allow directives: `state-flow`, or the R1 key `stateful` —
    // a justified store excuses the flow that fills it.
    out.retain(|f| {
        let unit = units.iter().find(|u| u.rel == f.file).expect("own unit");
        !is_allowed(&unit.lexed, "state-flow", f.line) && !is_allowed(&unit.lexed, "stateful", f.line)
    });
    out
}

/// Append the write-path trace: which method mutates `owner.field`, and
/// who calls it (two caller hops, deterministic first-match).
fn mutation_chain(symbols: &Symbols, owner: &str, field: &str) -> Vec<FlowStep> {
    let mut steps = Vec::new();
    let Some(m) = symbols.mutators_of(owner, field).next() else {
        return steps;
    };
    steps.push(FlowStep {
        file: m.file.clone(),
        line: m.line,
        col: m.col,
        note: format!("written by `{}::{}`", owner, m.name),
    });
    let mut current = m.name.clone();
    for _ in 0..2 {
        let Some(c) = symbols.callers_of(&current).find(|f| f.name != current) else {
            break;
        };
        let qualified = match &c.self_ty {
            Some(s) => format!("{}::{}", s, c.name),
            None => c.name.clone(),
        };
        steps.push(FlowStep {
            file: c.file.clone(),
            line: c.line,
            col: c.col,
            note: format!("reached from `{qualified}`"),
        });
        current = c.name.clone();
    }
    steps
}

/// The memo-free recursive core. Cycles are cut with `visiting`; the
/// workspace is small enough (and chains shallow enough) that a memo
/// table would be tuning, not necessity — see the audit.sh wall-clock
/// budget, which keeps this honest.
struct Analyzer<'a> {
    symbols: &'a Symbols,
    cfg: &'a Config,
    visiting: Vec<String>,
}

impl Analyzer<'_> {
    /// Does `ty` transitively embed a per-UE key? Returns the chain of
    /// hops (alias / field / variant, each with its decl site) ending
    /// at the key's own declaration.
    fn embeds(&mut self, ty: &TypeExpr) -> Option<Vec<FlowStep>> {
        if self.cfg.per_ue_keys.iter().any(|k| k == &ty.head) {
            let mut steps = Vec::new();
            if let Some(decl) = self.first_decl(&ty.head) {
                steps.push(FlowStep {
                    file: decl.file.clone(),
                    line: decl.line,
                    col: decl.col,
                    note: format!("per-UE key type `{}` declared here", ty.head),
                });
            }
            return Some(steps);
        }
        for arg in &ty.args {
            if let Some(chain) = self.embeds(arg) {
                return Some(chain);
            }
        }
        if self.visiting.iter().any(|v| v == &ty.head) {
            return None; // recursive type; already being checked above
        }
        self.visiting.push(ty.head.clone());
        let result = self.embeds_resolved(&ty.head);
        self.visiting.pop();
        result
    }

    /// Resolve `name` through the symbol table and recurse.
    fn embeds_resolved(&mut self, name: &str) -> Option<Vec<FlowStep>> {
        let decls = self.symbols.types.get(name)?.clone();
        for decl in &decls {
            match &decl.kind {
                TypeDeclKind::Alias(target) => {
                    if let Some(chain) = self.embeds(target) {
                        return Some(prepend(
                            decl,
                            format!("type alias `{name}` = `{}`", target.render()),
                            chain,
                        ));
                    }
                }
                TypeDeclKind::Struct(fields) => {
                    for f in fields.iter().filter(|f| !f.excused) {
                        if let Some(chain) = self.embeds(&f.ty) {
                            return Some(prepend_at(
                                decl,
                                f.line,
                                f.col,
                                format!("struct `{name}` field `{}`: `{}`", f.name, f.ty.render()),
                                chain,
                            ));
                        }
                    }
                }
                TypeDeclKind::Enum(variants) => {
                    for v in variants.iter().filter(|v| !v.excused) {
                        if let Some(chain) = self.embeds(&v.ty) {
                            return Some(prepend_at(
                                decl,
                                v.line,
                                v.col,
                                format!("enum `{name}` variant `{}` carries `{}`", v.name, v.ty.render()),
                                chain,
                            ));
                        }
                    }
                }
            }
        }
        None
    }

    /// Does `ty` *retain* per-UE state? (Embedding alone is not
    /// retention: `supi: Supi` on a request message is a value in
    /// flight. Retention is a growable collection, an interior-mutable
    /// wrapper, or a struct that itself retains.)
    fn retains(&mut self, ty: &TypeExpr) -> Option<(String, Vec<FlowStep>)> {
        if COLLECTIONS.contains(&ty.head.as_str()) {
            for arg in &ty.args {
                if let Some(chain) = self.embeds(arg) {
                    return Some((
                        format!("`{}` accumulates values embedding a per-UE key", ty.head),
                        chain,
                    ));
                }
            }
            return None;
        }
        if LOCKS.contains(&ty.head.as_str()) {
            // The arena pool types are recycled handle-addressed
            // scratch, sanctioned by R1 — same exemption here.
            if self.cfg.pool_types.iter().any(|p| ty.mentions(p)) {
                return None;
            }
            for arg in &ty.args {
                if let Some((why, chain)) = self.retains(arg) {
                    return Some((format!("lock-wrapped: {why}"), chain));
                }
                if let Some(chain) = self.embeds(arg) {
                    return Some((
                        format!("`{}` holds shared-mutable per-UE data", ty.head),
                        chain,
                    ));
                }
            }
            return None;
        }
        if WRAPPERS.contains(&ty.head.as_str()) {
            for arg in &ty.args {
                if let Some(found) = self.retains(arg) {
                    return Some(found);
                }
            }
            return None;
        }
        // Resolve the head: alias hop, or a struct/enum whose own
        // fields retain. In-scope declarations are skipped — they are
        // flagged at their *own* field declaration, so reporting the
        // outer use too would double-count one defect.
        if self.visiting.iter().any(|v| v == &ty.head) {
            return None;
        }
        self.visiting.push(ty.head.clone());
        let result = self.retains_resolved(&ty.head);
        self.visiting.pop();
        result
    }

    fn retains_resolved(&mut self, name: &str) -> Option<(String, Vec<FlowStep>)> {
        let decls = self.symbols.types.get(name)?.clone();
        for decl in &decls {
            match &decl.kind {
                TypeDeclKind::Alias(target) => {
                    if let Some((why, chain)) = self.retains(target) {
                        return Some((
                            why,
                            prepend(decl, format!("type alias `{name}` = `{}`", target.render()), chain),
                        ));
                    }
                }
                TypeDeclKind::Struct(fields) => {
                    if path_matches(&decl.file, &self.cfg.stateful_scope) {
                        continue; // flagged at its own field decl
                    }
                    for f in fields.iter().filter(|f| !f.excused) {
                        if let Some((why, chain)) = self.retains(&f.ty) {
                            return Some((
                                why,
                                prepend_at(
                                    decl,
                                    f.line,
                                    f.col,
                                    format!(
                                        "via struct `{name}` (defined outside satellite scope) \
                                         field `{}`: `{}`",
                                        f.name,
                                        f.ty.render()
                                    ),
                                    chain,
                                ),
                            ));
                        }
                    }
                }
                TypeDeclKind::Enum(variants) => {
                    if path_matches(&decl.file, &self.cfg.stateful_scope) {
                        continue;
                    }
                    for v in variants.iter().filter(|v| !v.excused) {
                        if let Some((why, chain)) = self.retains(&v.ty) {
                            return Some((
                                why,
                                prepend_at(
                                    decl,
                                    v.line,
                                    v.col,
                                    format!("via enum `{name}` variant `{}`", v.name),
                                    chain,
                                ),
                            ));
                        }
                    }
                }
            }
        }
        None
    }

    fn first_decl(&self, name: &str) -> Option<&TypeDecl> {
        self.symbols.types.get(name)?.first()
    }
}

fn prepend(decl: &TypeDecl, note: String, mut chain: Vec<FlowStep>) -> Vec<FlowStep> {
    chain.insert(
        0,
        FlowStep {
            file: decl.file.clone(),
            line: decl.line,
            col: decl.col,
            note,
        },
    );
    chain
}

fn prepend_at(decl: &TypeDecl, line: u32, col: u32, note: String, mut chain: Vec<FlowStep>) -> Vec<FlowStep> {
    chain.insert(
        0,
        FlowStep {
            file: decl.file.clone(),
            line,
            col,
            note,
        },
    );
    chain
}

// ---------------------------------------------------------------------
// R5 — parallel-determinism
// ---------------------------------------------------------------------

/// Run R5 over every unit in `cfg.parallel_scope` (the sc-emu sweep
/// engine and its callers).
pub fn rule_parallel(units: &[FileUnit], cfg: &Config) -> Vec<FlowFinding> {
    let mut out = Vec::new();
    for unit in units {
        if !path_matches(&unit.rel, &cfg.parallel_scope) {
            continue;
        }
        parallel_one(unit, &mut out);
    }
    out.retain(|f| {
        let unit = units.iter().find(|u| u.rel == f.file).expect("own unit");
        !is_allowed(&unit.lexed, "parallel", f.line)
    });
    out
}

fn parallel_one(unit: &FileUnit, out: &mut Vec<FlowFinding>) {
    let toks = &unit.lexed.tokens;
    let hashed = hash_typed_names(toks);
    // Token ranges of fn bodies under test subtrees: spawn sites inside
    // them are harness scenery, not sweep-engine code.
    let test_ranges: Vec<(usize, usize)> = unit
        .ast
        .fns()
        .filter(|(i, _)| i.in_tests)
        .filter_map(|(_, f)| f.body)
        .collect();
    let in_tests = |idx: usize| test_ranges.iter().any(|&(a, b)| a <= idx && idx < b);

    for (i, t) in toks.iter().enumerate() {
        let is_api =
            t.kind == TokenKind::Ident && (t.text == "spawn" || t.text.starts_with("parallel_map"));
        if !is_api || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) || in_tests(i) {
            continue;
        }
        let args_close = matching(toks, i + 1, "(", ")");
        let Some((params, body)) = closure_in(toks, i + 2, args_close) else {
            continue;
        };
        let spawn_step = FlowStep {
            file: unit.rel.clone(),
            line: t.line,
            col: t.col,
            note: format!("parallel closure passed to `{}` here", t.text),
        };

        // (a) captured `let mut` locals: declared before the spawn in
        // this file, not shadowed by the closure's own params/lets.
        let mut captured: Vec<(String, u32, u32)> = Vec::new();
        for j in 0..i {
            if toks[j].is_ident("let")
                && toks.get(j + 1).is_some_and(|n| n.is_ident("mut"))
                && toks.get(j + 2).is_some_and(|n| n.kind == TokenKind::Ident)
            {
                let n = &toks[j + 2];
                captured.retain(|(name, _, _)| name != &n.text);
                captured.push((n.text.clone(), n.line, n.col));
            }
        }
        let mut local: HashSet<&str> = params.iter().map(String::as_str).collect();
        for j in body.0..body.1 {
            if toks[j].is_ident("let") {
                let mut k = j + 1;
                if toks.get(k).is_some_and(|n| n.is_ident("mut")) {
                    k += 1;
                }
                if let Some(n) = toks.get(k).filter(|n| n.kind == TokenKind::Ident) {
                    local.insert(&n.text);
                }
            }
        }

        for j in body.0..body.1 {
            let tk = &toks[j];
            if tk.kind != TokenKind::Ident {
                continue;
            }
            let field_access = j > 0 && toks[j - 1].is_punct('.');

            // (a) mutation of a captured local.
            if !field_access && !local.contains(tk.text.as_str()) {
                if let Some((_, dl, dc)) = captured.iter().find(|(n, _, _)| n == &tk.text) {
                    if is_mutation(toks, j) {
                        out.push(FlowFinding {
                            file: unit.rel.clone(),
                            line: tk.line,
                            col: tk.col,
                            rule: "R5-parallel",
                            message: format!(
                                "parallel closure mutates captured `{}`; cross-thread write \
                                 order is nondeterministic under SC_EMU_THREADS — return the \
                                 value and aggregate through the slot-ordered results \
                                 protocol, or annotate `// sc-audit: allow(parallel, reason \
                                 = \"…\")`",
                                tk.text
                            ),
                            trace: vec![
                                spawn_step.clone(),
                                FlowStep {
                                    file: unit.rel.clone(),
                                    line: *dl,
                                    col: *dc,
                                    note: format!("captured binding `{}` declared here", tk.text),
                                },
                            ],
                        });
                    }
                }
            }

            // (b) ad-hoc shared-mutable access inside the closure.
            if field_access
                && (tk.text == "lock" || tk.text == "write" || tk.text == "borrow_mut")
                && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
            {
                out.push(FlowFinding {
                    file: unit.rel.clone(),
                    line: tk.line,
                    col: tk.col,
                    rule: "R5-parallel",
                    message: format!(
                        "`.{}()` on shared state inside a parallel closure; acquisition \
                         order varies across runs — writes must be slot-ordered and \
                         commutative to keep results byte-stable, or annotate \
                         `// sc-audit: allow(parallel, reason = \"…\")`",
                        tk.text
                    ),
                    trace: vec![spawn_step.clone()],
                });
            }

            // (c) hash-ordered iteration inside the closure.
            let is_hashed = hashed.binary_search(&tk.text).is_ok();
            if is_hashed && !field_access {
                let iterates = {
                    let m = toks.get(j + 1).zip(toks.get(j + 2));
                    let method_iter = m.is_some_and(|(d, n)| {
                        d.is_punct('.')
                            && ["iter", "keys", "values", "into_iter", "drain"]
                                .iter()
                                .any(|x| n.is_ident(x))
                    });
                    let for_in = (body.0..j).rev().take(6).any(|k| toks[k].is_ident("in"))
                        && (body.0..j).rev().take(8).any(|k| toks[k].is_ident("for"));
                    method_iter || for_in
                };
                if iterates {
                    let stmt_end = (j..body.1)
                        .find(|&k| toks[k].is_punct(';') || toks[k].is_punct('{'))
                        .unwrap_or(body.1 - 1);
                    let sanctioned = toks[j..=stmt_end].iter().any(|x| {
                        x.kind == TokenKind::Ident && ORDER_INSENSITIVE.contains(&x.text.as_str())
                    });
                    if !sanctioned {
                        out.push(FlowFinding {
                            file: unit.rel.clone(),
                            line: tk.line,
                            col: tk.col,
                            rule: "R5-parallel",
                            message: format!(
                                "hash-ordered iteration over `{}` inside a parallel closure; \
                                 per-thread order differences leak into results — sort first \
                                 or use a BTree collection",
                                tk.text
                            ),
                            trace: vec![spawn_step.clone()],
                        });
                    }
                }
            }
        }
    }
}

/// Is the identifier at `j` the target of a mutation (`x = …`, `x += …`,
/// `x.push(…)`)?
fn is_mutation(toks: &[Token], j: usize) -> bool {
    let Some(n1) = toks.get(j + 1) else { return false };
    if n1.is_punct('=') {
        // `=` but not `==` / `=>`.
        return !toks
            .get(j + 2)
            .is_some_and(|n| n.is_punct('=') || n.is_punct('>'));
    }
    if n1.kind == TokenKind::Punct
        && matches!(n1.text.as_str(), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
        && toks.get(j + 2).is_some_and(|n| n.is_punct('='))
    {
        return true;
    }
    n1.is_punct('.')
        && toks
            .get(j + 2)
            .is_some_and(|n| MUTATORS.contains(&n.text.as_str()))
        && toks.get(j + 3).is_some_and(|n| n.is_punct('('))
}

/// Find the first closure `|params| body` / `move || { body }` between
/// token indices `start` and `end`; returns its param names and the
/// half-open body range.
fn closure_in(toks: &[Token], start: usize, end: usize) -> Option<(Vec<String>, (usize, usize))> {
    let mut j = start;
    while j < end {
        if toks[j].is_punct('|') {
            break;
        }
        // Skip nested groups so `f(a[i], || …)` finds the closure.
        match toks[j].text.as_str() {
            "(" => j = matching(toks, j, "(", ")"),
            "[" => j = matching(toks, j, "[", "]"),
            "{" => j = matching(toks, j, "{", "}"),
            _ => {}
        }
        j += 1;
    }
    if j >= end {
        return None;
    }
    // Params up to the closing `|`.
    let mut params = Vec::new();
    let mut k = j + 1;
    while k < end && !toks[k].is_punct('|') {
        if toks[k].kind == TokenKind::Ident && !toks[k].is_ident("mut") {
            // First ident of each comma-separated pattern is the binding.
            if params.is_empty() || toks[k - 1].is_punct(',') || toks[k - 1].is_ident("mut") {
                params.push(toks[k].text.clone());
            }
        }
        k += 1;
    }
    if k >= end {
        return None;
    }
    let body_start = k + 1;
    let body_end = if toks.get(body_start).is_some_and(|t| t.is_punct('{')) {
        matching(toks, body_start, "{", "}") + 1
    } else {
        // Expression body: to the `,`/`)` closing this argument.
        let mut depth = 0i32;
        let mut e = body_start;
        while e < end {
            match toks[e].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth <= 0 => break,
                _ => {}
            }
            e += 1;
        }
        e
    };
    Some((params, (body_start, body_end.min(end + 1))))
}

/// Index of the token closing the balanced region opened at `open_at`.
fn matching(toks: &[Token], open_at: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open_at) {
        if t.kind == TokenKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn units(files: &[(&str, &str)]) -> Vec<FileUnit> {
        files
            .iter()
            .map(|(rel, src)| {
                let lexed = lex(src);
                let excuse = |line: u32| {
                    is_allowed(&lexed, "stateful", line) || is_allowed(&lexed, "state-flow", line)
                };
                let ast = parse(&lexed, &excuse);
                FileUnit {
                    rel: rel.to_string(),
                    lexed,
                    ast,
                }
            })
            .collect()
    }

    fn r4(files: &[(&str, &str)]) -> Vec<FlowFinding> {
        let us = units(files);
        let symbols = Symbols::build(
            us.iter()
                .map(|u| (u.rel.as_str(), &u.ast, u.lexed.tokens.as_slice())),
        );
        rule_state_flow(&us, &symbols, &Config::default(), &HashSet::new())
    }

    const IDS: (&str, &str) = (
        "crates/fiveg/src/ids.rs",
        "pub struct Supi(pub u64);\npub type SessionKey = Supi;\npub struct TrackedUe { pub supi: Supi, pub rtt: f64 }",
    );

    #[test]
    fn alias_laundered_key_is_caught_with_trace() {
        let f = r4(&[
            IDS,
            (
                "crates/spacecore/src/satcache.rs",
                "pub struct SessionCache { pub seen: HashSet<SessionKey> }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "R4-state-flow");
        assert_eq!((f[0].line, f[0].file.as_str()), (1, "crates/spacecore/src/satcache.rs"));
        let notes: Vec<_> = f[0].trace.iter().map(|s| s.note.as_str()).collect();
        assert!(notes.iter().any(|n| n.contains("type alias `SessionKey`")), "{notes:?}");
        assert!(notes.iter().any(|n| n.contains("per-UE key type `Supi`")), "{notes:?}");
    }

    #[test]
    fn field_embedded_key_through_cross_crate_struct() {
        let f = r4(&[
            IDS,
            (
                "crates/spacecore/src/satcache.rs",
                "pub struct SessionCache { pub recent: Vec<TrackedUe> }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0]
            .trace
            .iter()
            .any(|s| s.note.contains("struct `TrackedUe` field `supi`")), "{:?}", f[0].trace);
    }

    #[test]
    fn plain_value_fields_and_out_of_scope_are_negative() {
        let f = r4(&[
            IDS,
            (
                "crates/fiveg/src/msg.rs",
                "pub struct Register { pub supi: Supi, pub seq: u32 }",
            ),
            (
                "crates/emu/src/ground.rs",
                "pub struct GroundDb { pub all: Vec<TrackedUe> }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_and_excused_fields_suppress_including_containers() {
        let f = r4(&[
            IDS,
            (
                "crates/spacecore/src/satellite.rs",
                "pub struct Sat {\n    // sc-audit: allow(state-flow, reason = \"bounded LRU, evicted on handover\")\n    pub seen: HashSet<SessionKey>,\n}\npub struct Fleet { pub sats: Vec<Sat> }",
            ),
        ]);
        // The allowed field is suppressed AND `Vec<Sat>` does not
        // cascade-fire one level up (the field is excused in the table).
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn mutation_chain_appears_in_trace() {
        let f = r4(&[
            IDS,
            (
                "crates/spacecore/src/satcache.rs",
                "pub struct SessionCache { pub seen: HashSet<SessionKey> }\n\
                 impl SessionCache { pub fn note(&mut self, k: SessionKey) { self.seen.insert(k); } }\n\
                 pub struct Sat { pub cache: SessionCache }\n\
                 impl Sat { pub fn handle(&mut self, k: SessionKey) { self.cache.note(k); } }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        let notes: Vec<_> = f[0].trace.iter().map(|s| s.note.as_str()).collect();
        assert!(notes.iter().any(|n| n.contains("written by `SessionCache::note`")), "{notes:?}");
        assert!(notes.iter().any(|n| n.contains("reached from `Sat::handle`")), "{notes:?}");
    }

    fn r5(src: &str) -> Vec<FlowFinding> {
        let us = units(&[("crates/emu/src/par.rs", src)]);
        rule_parallel(&us, &Config::default())
    }

    #[test]
    fn captured_mut_flagged_param_and_local_ok() {
        let src = "
            fn sweep(s: &Scope) {
                let mut total = 0u64;
                s.spawn(move || {
                    let mut local = 0;
                    local += 1;
                    total += local;
                });
            }
        ";
        let f = r5(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "R5-parallel");
        assert!(f[0].message.contains("captured `total`"), "{}", f[0].message);
        assert!(f[0].trace.iter().any(|s| s.note.contains("declared here")));
    }

    #[test]
    fn lock_in_closure_flagged_and_allow_suppresses() {
        let src = "
            fn sweep(s: &Scope, shared: &Mutex<Vec<u8>>) {
                s.spawn(|| { shared.lock().push(1); });
            }
        ";
        let f = r5(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains(".lock()"), "{}", f[0].message);

        let src = "
            fn sweep(s: &Scope, shared: &Mutex<Vec<u8>>) {
                // sc-audit: allow(parallel, reason = \"slot-ordered; one writer per index\")
                s.spawn(|| { shared.lock().push(1); });
            }
        ";
        assert!(r5(src).is_empty());
    }

    #[test]
    fn hash_iteration_in_closure_flagged_unless_order_insensitive() {
        let src = "
            fn sweep(s: &Scope, m: &HashMap<u32, f64>) {
                let m: HashMap<u32, f64> = HashMap::new();
                s.spawn(|| { for (k, v) in &m { emit(k, v); } });
            }
        ";
        let f = r5(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("hash-ordered"), "{}", f[0].message);

        let src = "
            fn sweep(s: &Scope) {
                let m: HashMap<u32, f64> = HashMap::new();
                s.spawn(move || { let t: f64 = m.values().sum(); use_it(t); });
            }
        ";
        assert!(r5(src).is_empty());
    }

    #[test]
    fn spawn_in_test_mod_is_skipped() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn harness(s: &Scope, shared: &Mutex<Vec<u8>>) {
                    s.spawn(|| { shared.lock().push(1); });
                }
            }
        ";
        assert!(r5(src).is_empty());
    }
}
