//! Per-rule fixture tests: each file under `tests/fixtures/` violates
//! (or legitimately suppresses) exactly one rule. The engine walker
//! skips any directory named `fixtures`, so these sources are never
//! scanned as part of the real workspace — they are injected here at
//! hand-picked workspace-relative paths instead.

use sc_audit::baseline::Baseline;
use sc_audit::engine::{audit_one, compare_ratchet, Report};
use sc_audit::rules::Config;

/// Audit one fixture source as if it lived at `rel`.
fn audit_fixture(rel: &str, src: &str) -> Report {
    let mut report = Report::default();
    audit_one(rel, src, &Config::default(), &mut report);
    report
}

#[test]
fn per_ue_hashmap_in_satellite_module_is_flagged() {
    // Acceptance injection (a): a per-UE HashMap field appears in
    // spacecore::satellite.
    let src = include_str!("fixtures/stateful_satellite.rs");
    let report = audit_fixture("crates/spacecore/src/satellite.rs", src);
    assert!(!report.is_clean());
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "R1-stateful");
    assert!(f.message.contains("Supi"), "names the per-UE key: {}", f.message);
    // Line/column point at the HashMap token on the field.
    assert_eq!(f.line, 8);
}

#[test]
fn same_store_outside_stateful_scope_is_fine() {
    // The identical source in a ground-side crate is not R1's business.
    let src = include_str!("fixtures/stateful_satellite.rs");
    let report = audit_fixture("crates/dataset/src/population.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn annotated_store_with_reason_is_suppressed() {
    let src = include_str!("fixtures/allowed_stateful.rs");
    let report = audit_fixture("crates/spacecore/src/satellite.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn allow_without_reason_is_ignored() {
    let src = include_str!("fixtures/unreasoned_allow.rs");
    let report = audit_fixture("crates/spacecore/src/satellite.rs", src);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "R1-stateful");
}

#[test]
fn instant_now_outside_allowlist_is_flagged() {
    // Acceptance injection (b): `Instant::now()` appears outside the
    // timing allowlist.
    let src = include_str!("fixtures/timing_instant.rs");
    let report = audit_fixture("crates/netsim/src/des.rs", src);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "R2-timing");
}

#[test]
fn instant_now_inside_allowlist_is_fine() {
    let src = include_str!("fixtures/timing_instant.rs");
    for rel in [
        "crates/emu/src/fig18.rs",
        "crates/emu/src/report.rs",
        "crates/bench/benches/ablation_routing.rs",
    ] {
        let report = audit_fixture(rel, src);
        assert!(report.findings.is_empty(), "{rel}: {:?}", report.findings);
    }
}

#[test]
fn thread_rng_is_flagged_everywhere() {
    let src = include_str!("fixtures/rng_thread.rs");
    for rel in ["crates/emu/src/fig18.rs", "crates/orbit/src/passes.rs"] {
        let report = audit_fixture(rel, src);
        assert_eq!(report.findings.len(), 1, "{rel}");
        assert_eq!(report.findings[0].rule, "R2-rng");
    }
}

#[test]
fn partial_cmp_unwrap_is_flagged() {
    let src = include_str!("fixtures/float_cmp.rs");
    let report = audit_fixture("crates/emu/src/fig05.rs", src);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "R2-float-cmp");
    assert!(report.findings[0].message.contains("total_cmp"));
}

#[test]
fn hashmap_iteration_into_emitted_result_is_flagged() {
    let src = include_str!("fixtures/unordered_emit.rs");
    let report = audit_fixture("crates/emu/src/fig12.rs", src);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "R2-unordered");
}

#[test]
fn unwraps_beyond_ratchet_are_violations() {
    // Acceptance injection (c): three unwrap() sites land in a crate
    // whose baseline allows two.
    let src = include_str!("fixtures/panicky.rs");
    let mut report = audit_fixture("crates/spacecore/src/injected.rs", src);
    assert!(report.findings.is_empty(), "R1/R2 clean: {:?}", report.findings);

    let baseline = Baseline::parse("[spacecore]\nunwrap = 2\n").expect("literal baseline");
    compare_ratchet(&baseline, &mut report);
    assert_eq!(report.ratchet.len(), 1, "{:?}", report.ratchet);
    let v = &report.ratchet[0];
    assert_eq!((v.krate.as_str(), v.counter), ("spacecore", "unwrap"));
    assert_eq!((v.current, v.baseline), (3, 2));
    assert!(!report.is_clean());
}

#[test]
fn unwraps_at_or_below_ratchet_pass() {
    let src = include_str!("fixtures/panicky.rs");
    let mut report = audit_fixture("crates/spacecore/src/injected.rs", src);
    let baseline = Baseline::parse("[spacecore]\nunwrap = 3\n").expect("literal baseline");
    compare_ratchet(&baseline, &mut report);
    assert!(report.is_clean(), "{:?}", report.ratchet);
}

#[test]
fn finding_display_is_file_line_col_rule() {
    let src = include_str!("fixtures/timing_instant.rs");
    let report = audit_fixture("crates/netsim/src/des.rs", src);
    let line = report.findings[0].to_string();
    assert!(
        line.starts_with("crates/netsim/src/des.rs:5:"),
        "grep-able `file:line:col rule message` shape, got: {line}"
    );
    assert!(line.contains(" R2-timing "), "{line}");
}
