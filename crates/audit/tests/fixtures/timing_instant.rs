//! Fixture: wall-clock read outside the timing allowlist.
//! Audited as `crates/netsim/src/des.rs` — must trip R2-timing.

pub fn step_with_wallclock() -> std::time::Instant {
    std::time::Instant::now()
}
