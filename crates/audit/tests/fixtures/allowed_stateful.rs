//! Fixture: the same per-UE store as stateful_satellite.rs, but carrying
//! the annotation with a reason — must produce NO findings.

use std::collections::HashMap;

pub struct SatellitePayload {
    // sc-audit: allow(stateful, reason = "ephemeral radio state for active sessions only")
    contexts: HashMap<Supi, UeContext>,
}
