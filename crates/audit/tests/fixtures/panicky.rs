//! Fixture: three fresh `unwrap()` sites — enough to push any crate
//! past a zero (or freshly-regenerated) R3 ratchet.

pub fn triple(v: &[u32]) -> u32 {
    let a = v.first().unwrap();
    let b = v.last().unwrap();
    let c = v.get(1).unwrap();
    a + b + c
}
