//! Fixture: unseeded RNG. Must trip R2-rng anywhere in the workspace.

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}
