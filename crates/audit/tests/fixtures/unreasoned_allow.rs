//! Fixture: an allow directive WITHOUT a reason is ignored — the
//! finding must still fire.

use std::collections::HashMap;

pub struct SatellitePayload {
    // sc-audit: allow(stateful)
    contexts: HashMap<Supi, UeContext>,
}
