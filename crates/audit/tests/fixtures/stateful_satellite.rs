//! Fixture: a per-UE keyed collection in a satellite-side module.
//! Audited as `crates/spacecore/src/satellite.rs` — must trip R1-stateful.

use std::collections::HashMap;

pub struct SatellitePayload {
    /// A per-UE store on the spacecraft: exactly what the paper forbids.
    contexts: HashMap<Supi, UeContext>,
}
