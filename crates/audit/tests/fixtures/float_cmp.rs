//! Fixture: `partial_cmp(..).unwrap()` in a sort. Must trip R2-float-cmp.

pub fn rank(latencies: &mut Vec<f64>) {
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
