//! Fixture: aliases that launder (or don't) identity. Placed at
//! `crates/fiveg/src/alias.rs` in the mini-workspace.

use crate::ids::{CellId, Supi};

/// Looks innocent; IS the per-UE key. R4 must see through it.
pub type SessionKey = Supi;

/// A geospatial key alias — must stay negative.
pub type CellKey = CellId;
