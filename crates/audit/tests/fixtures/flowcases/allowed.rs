//! Fixture: a justified store, and the container cascade it must NOT
//! trigger. Placed at `crates/spacecore/src/allowed.rs`.

use std::collections::HashSet;

use sc_fiveg::alias::SessionKey;

pub struct PagingSat {
    // sc-audit: allow(state-flow, reason = "bounded paging dedup window, cleared every superframe")
    pub seen: HashSet<SessionKey>,
}

/// Holds `PagingSat` by value. The excused field above must not
/// resurface here as "Vec of a struct that embeds a key" — the written
/// justification covers the store *and* everything containing it.
pub struct Fleet {
    pub sats: Vec<PagingSat>,
}
