//! Fixture: a struct that embeds the per-UE key in a field. Placed at
//! `crates/fiveg/src/tracked.rs` in the mini-workspace — a *different
//! crate* from the retention site, so catching it requires the
//! cross-crate symbol table.

use crate::ids::Supi;

pub struct TrackedUe {
    pub supi: Supi,
    pub rtt_ms: f64,
}
