//! Fixture: the satellite-side cache R4 exists to convict. Placed at
//! `crates/spacecore/src/satcache.rs` in the mini-workspace. Three
//! seeded true positives (alias-laundered, cross-crate field-embedded,
//! nested-generic) and one known negative.

use std::collections::{HashMap, HashSet};

use sc_fiveg::alias::SessionKey;
use sc_fiveg::ids::{CellId, Supi};
use sc_fiveg::tracked::TrackedUe;

pub struct SessionCache {
    pub seen: HashSet<SessionKey>,
    pub recent: Vec<TrackedUe>,
    pub by_cell: HashMap<CellId, Vec<Supi>>,
    pub counts: HashMap<CellId, u64>,
}

impl SessionCache {
    pub fn note(&mut self, k: SessionKey) {
        self.seen.insert(k);
    }
}

pub struct Satellite {
    pub cache: SessionCache,
}

impl Satellite {
    pub fn handle(&mut self, k: SessionKey) {
        self.cache.note(k);
    }
}
