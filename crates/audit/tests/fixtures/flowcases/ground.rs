//! Fixture negative: ground-segment storage. Placed at
//! `crates/emu/src/ground.rs` — outside the satellite scope, where the
//! paper *expects* per-UE databases (the UDM's home network side).

use sc_fiveg::tracked::TrackedUe;

pub struct GroundDb {
    pub all: Vec<TrackedUe>,
}
