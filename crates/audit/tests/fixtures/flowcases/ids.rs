//! Fixture mirror of sc-fiveg's identifier newtypes. Placed at
//! `crates/fiveg/src/ids.rs` in the mini-workspace.

/// Subscription permanent identifier — THE per-UE key.
pub struct Supi(pub u64);

/// Geospatial cell identifier — satellite-scope, not per-UE.
pub struct CellId(pub u32);
