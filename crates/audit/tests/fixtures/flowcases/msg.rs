//! Fixture negative: per-UE identity as a value in flight. Placed at
//! `crates/fiveg/src/msg.rs`. A request *carries* a Supi; it does not
//! retain one — flagging this would make every NF message a finding.

use crate::ids::Supi;

pub struct RegistrationRequest {
    pub supi: Supi,
    pub seq: u32,
}

pub fn forward(msg: RegistrationRequest) -> Supi {
    msg.supi
}
