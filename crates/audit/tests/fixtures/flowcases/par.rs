//! Fixture: parallel closures for R5. Placed at `crates/emu/src/par.rs`
//! in the mini-workspace. Three seeded positives (captured-mut
//! mutation, ad-hoc lock, hash-ordered iteration) and a known-clean
//! closure.

use std::collections::HashMap;
use std::sync::Mutex;

pub struct Scope;

impl Scope {
    pub fn spawn<F: FnOnce()>(&self, f: F) {
        f();
    }
}

/// Positive (a): mutating a captured binding races worker order.
pub fn capture_mut(s: &Scope) -> u64 {
    let mut total = 0u64;
    s.spawn(|| {
        total += 1;
    });
    total
}

/// Positive (b): ad-hoc shared-mutable access inside the closure.
pub fn adhoc_lock(s: &Scope, shared: &Mutex<Vec<u8>>) {
    s.spawn(|| {
        if let Ok(mut g) = shared.lock() {
            g.push(1);
        }
    });
}

/// Positive (c): hash-ordered iteration inside the closure.
pub fn hash_iter(s: &Scope) {
    let m: HashMap<u32, u32> = HashMap::new();
    s.spawn(move || {
        for (k, v) in &m { // sc-audit: allow(unordered, reason = "fixture targets the R5 probe; R2 covers the sequential case")
            let _ = (k, v);
        }
    });
}

/// Negative: closure-local mutable state and an order-insensitive
/// reduction are both fine.
pub fn clean(s: &Scope) {
    let m: HashMap<u32, u32> = HashMap::new();
    s.spawn(move || {
        let mut local = 0u32;
        local += 1;
        let total: u32 = m.values().sum();
        let _ = (local, total);
    });
}
