//! Fixture: iterating a HashMap straight into an emitted result.
//! Must trip R2-unordered (no sort, no order-insensitive reduction).

use std::collections::HashMap;

pub fn emit(load: &HashMap<u32, u64>) -> Vec<(u32, u64)> {
    let out: Vec<(u32, u64)> = load.iter().map(|(k, v)| (*k, *v)).collect();
    out
}
