//! R4/R5 dataflow corpus tests over `tests/fixtures/flowcases/`.
//!
//! The corpus is a mini-workspace with seeded true positives
//! (alias-laundered key, cross-crate field-embedded key, nested
//! generic, captured-mut / ad-hoc-lock / hash-iteration closures) and
//! known negatives (message structs, ground-side storage, excused
//! stores). Library-level tests pin finding positions and flow-trace
//! content; binary-level tests pin the exit code, `--explain` output,
//! the SARIF artifact, and the baseline-v2 ratchet.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use sc_audit::baseline::Baseline;
use sc_audit::engine::{audit_sources, Report};
use sc_audit::rules::Config;

const IDS: &str = include_str!("fixtures/flowcases/ids.rs");
const ALIAS: &str = include_str!("fixtures/flowcases/alias.rs");
const TRACKED: &str = include_str!("fixtures/flowcases/tracked.rs");
const SATCACHE: &str = include_str!("fixtures/flowcases/satcache.rs");
const MSG: &str = include_str!("fixtures/flowcases/msg.rs");
const GROUND: &str = include_str!("fixtures/flowcases/ground.rs");
const ALLOWED: &str = include_str!("fixtures/flowcases/allowed.rs");
const PAR: &str = include_str!("fixtures/flowcases/par.rs");

const CORPUS: &[(&str, &str)] = &[
    ("crates/fiveg/src/ids.rs", IDS),
    ("crates/fiveg/src/alias.rs", ALIAS),
    ("crates/fiveg/src/tracked.rs", TRACKED),
    ("crates/fiveg/src/msg.rs", MSG),
    ("crates/spacecore/src/satcache.rs", SATCACHE),
    ("crates/spacecore/src/allowed.rs", ALLOWED),
    ("crates/emu/src/ground.rs", GROUND),
    ("crates/emu/src/par.rs", PAR),
];

fn corpus() -> Vec<(String, String)> {
    CORPUS
        .iter()
        .map(|(rel, src)| (rel.to_string(), src.to_string()))
        .collect()
}

fn audit_corpus() -> Report {
    audit_sources(&corpus(), &Baseline::default(), &Config::default())
}

/// 1-based line of the first source line containing `needle`, so the
/// assertions survive comment edits to the fixtures.
fn line_of(src: &str, needle: &str) -> u32 {
    src.lines()
        .position(|l| l.contains(needle))
        .map(|i| i as u32 + 1)
        .unwrap_or_else(|| panic!("fixture lost marker {needle:?}"))
}

#[test]
fn corpus_r4_convicts_exactly_the_three_seeded_stores() {
    let report = audit_corpus();
    let r4: Vec<_> = report
        .flow
        .iter()
        .filter(|f| f.rule == "R4-state-flow")
        .collect();
    assert_eq!(r4.len(), 3, "{r4:?}");
    for f in &r4 {
        assert_eq!(f.file, "crates/spacecore/src/satcache.rs", "{f}");
    }
    let lines: Vec<u32> = r4.iter().map(|f| f.line).collect();
    assert_eq!(
        lines,
        vec![
            line_of(SATCACHE, "pub seen:"),
            line_of(SATCACHE, "pub recent:"),
            line_of(SATCACHE, "pub by_cell:"),
        ],
        "{r4:?}"
    );
}

#[test]
fn alias_laundered_store_trace_walks_alias_to_key_decl() {
    let report = audit_corpus();
    let f = report
        .flow
        .iter()
        .find(|f| f.line == line_of(SATCACHE, "pub seen:"))
        .expect("seen finding");
    assert!(f.message.contains("SessionCache.seen"), "{}", f.message);
    let notes: Vec<&str> = f.trace.iter().map(|s| s.note.as_str()).collect();
    assert!(
        notes.iter().any(|n| n.contains("type alias `SessionKey` = `Supi`")),
        "{notes:?}"
    );
    let alias_step = f
        .trace
        .iter()
        .find(|s| s.note.contains("type alias `SessionKey`"))
        .unwrap();
    assert_eq!(alias_step.file, "crates/fiveg/src/alias.rs");
    assert_eq!(alias_step.line, line_of(ALIAS, "pub type SessionKey"));
    let key_step = f
        .trace
        .iter()
        .find(|s| s.note.contains("per-UE key type `Supi` declared here"))
        .expect("trace ends at the key declaration");
    assert_eq!(key_step.file, "crates/fiveg/src/ids.rs");
    assert_eq!(key_step.line, line_of(IDS, "pub struct Supi"));
}

#[test]
fn trace_includes_the_mutation_call_chain() {
    let report = audit_corpus();
    let f = report
        .flow
        .iter()
        .find(|f| f.line == line_of(SATCACHE, "pub seen:"))
        .expect("seen finding");
    let notes: Vec<&str> = f.trace.iter().map(|s| s.note.as_str()).collect();
    assert!(
        notes.iter().any(|n| n.contains("written by `SessionCache::note`")),
        "{notes:?}"
    );
    assert!(
        notes.iter().any(|n| n.contains("reached from `Satellite::handle`")),
        "{notes:?}"
    );
}

#[test]
fn cross_crate_field_embedding_is_traced_through_the_struct() {
    let report = audit_corpus();
    let f = report
        .flow
        .iter()
        .find(|f| f.line == line_of(SATCACHE, "pub recent:"))
        .expect("recent finding");
    let step = f
        .trace
        .iter()
        .find(|s| s.note.contains("struct `TrackedUe` field `supi`"))
        .unwrap_or_else(|| panic!("{:?}", f.trace));
    assert_eq!(step.file, "crates/fiveg/src/tracked.rs");
    assert_eq!(step.line, line_of(TRACKED, "pub supi:"));
}

#[test]
fn corpus_r5_convicts_exactly_the_three_seeded_closures() {
    let report = audit_corpus();
    let r5: Vec<_> = report
        .flow
        .iter()
        .filter(|f| f.rule == "R5-parallel")
        .collect();
    assert_eq!(r5.len(), 3, "{r5:?}");
    for f in &r5 {
        assert_eq!(f.file, "crates/emu/src/par.rs", "{f}");
    }

    let cap = r5
        .iter()
        .find(|f| f.line == line_of(PAR, "total += 1"))
        .expect("captured-mut finding");
    assert!(cap.message.contains("mutates captured `total`"), "{}", cap.message);
    assert!(
        cap.trace
            .iter()
            .any(|s| s.note.contains("captured binding `total` declared here")
                && s.line == line_of(PAR, "let mut total")),
        "{:?}",
        cap.trace
    );

    let lock = r5
        .iter()
        .find(|f| f.line == line_of(PAR, "shared.lock()"))
        .expect("ad-hoc lock finding");
    assert!(lock.message.contains("`.lock()` on shared state"), "{}", lock.message);

    let iter = r5
        .iter()
        .find(|f| f.line == line_of(PAR, "for (k, v) in &m"))
        .expect("hash-iteration finding");
    assert!(
        iter.message.contains("hash-ordered iteration over `m`"),
        "{}",
        iter.message
    );
}

#[test]
fn corpus_negatives_stay_negative() {
    let report = audit_corpus();
    // Token rules: the only candidate (hash iteration in par.rs) is
    // R2-allowed with a reason, so the corpus is token-clean.
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    // No dataflow finding outside the two seeded files.
    for f in &report.flow {
        assert!(
            f.file.ends_with("satcache.rs") || f.file.ends_with("par.rs"),
            "unexpected finding: {f}"
        );
    }
    // Specifically: messages in flight, ground-side storage, excused
    // stores, and containers of excused stores are all silent.
    let counts_line = line_of(SATCACHE, "pub counts:");
    assert!(
        report.flow.iter().all(|f| f.line != counts_line),
        "satellite-scope counters keyed by CellId are not per-UE state"
    );
}

#[test]
fn corpus_trips_the_flow_ratchet_against_a_zero_baseline() {
    let report = audit_corpus();
    let labels: Vec<_> = report
        .ratchet
        .iter()
        .map(|v| (v.krate.as_str(), v.counter, v.current, v.baseline))
        .collect();
    assert_eq!(
        labels,
        vec![("emu", "r5", 3, 0), ("spacecore", "r4", 3, 0)],
        "{:?}",
        report.ratchet
    );
}

// ---------------------------------------------------------------- binary

/// Materialize the corpus under `CARGO_TARGET_TMPDIR/<tag>` and return
/// the tree root; callers then invoke the binary repeatedly with
/// different flags against the same tree.
fn corpus_tree(tag: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(tag);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear previous run");
    }
    for (rel, src) in CORPUS {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("mkdir");
        fs::write(&path, src).expect("write fixture");
    }
    root
}

fn run_in(root: &Path, extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_sc-audit"))
        .arg("--root")
        .arg(root)
        .arg("--baseline")
        .arg(root.join("audit.baseline.toml"))
        .args(extra)
        .output()
        .expect("binary runs");
    let mut text = String::from_utf8_lossy(&out.stdout).into_owned();
    text.push_str(&String::from_utf8_lossy(&out.stderr));
    (out.status.code().expect("exit code"), text)
}

#[test]
fn binary_fails_on_corpus_and_explains_the_flow() {
    let root = corpus_tree("flow-explain");
    let (code, out) = run_in(&root, &["--explain"]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("R4-state-flow"), "{out}");
    assert!(out.contains("R5-parallel"), "{out}");
    assert!(out.contains("↳"), "--explain prints trace steps: {out}");
    assert!(out.contains("type alias `SessionKey` = `Supi`"), "{out}");
    assert!(out.contains("r4 count 3 exceeds baseline 0"), "{out}");
    assert!(out.contains("r5 count 3 exceeds baseline 0"), "{out}");
}

#[test]
fn binary_emits_sarif_with_code_flows() {
    let root = corpus_tree("flow-sarif");
    let (code, out) = run_in(&root, &["--format", "json"]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("\"version\": \"2.1.0\""), "{out}");
    assert!(out.contains("\"id\": \"R4-state-flow\""), "{out}");
    assert!(out.contains("\"id\": \"R5-parallel\""), "{out}");
    assert!(out.contains("\"codeFlows\""), "{out}");
    assert!(out.contains("SessionKey"), "traces survive into SARIF: {out}");
    // Emitting twice yields byte-identical artifacts (CI diff-ability).
    let (_, again) = run_in(&root, &["--format", "json"]);
    assert_eq!(out, again);
}

#[test]
fn baseline_v2_grandfathers_then_catches_a_regression() {
    let root = corpus_tree("flow-ratchet");

    // Grandfather the seeded corpus: --update-baseline records the
    // per-crate r4/r5 ceilings and exits clean.
    let (code, out) = run_in(&root, &["--update-baseline"]);
    assert_eq!(code, 0, "{out}");
    let baseline = fs::read_to_string(root.join("audit.baseline.toml")).expect("written");
    assert!(baseline.contains("[spacecore]"), "{baseline}");
    assert!(baseline.contains("r4 = 3"), "{baseline}");
    assert!(baseline.contains("r5 = 3"), "{baseline}");

    // Same tree under the recorded ceilings: ratchet holds, exit 0.
    let (code, out) = run_in(&root, &[]);
    assert_eq!(code, 0, "{out}");

    // Seed a regression in a fresh file: one more satellite-side store
    // of a key-embedding struct. The per-crate ceiling catches it.
    fs::write(
        root.join("crates/spacecore/src/regress.rs"),
        "use sc_fiveg::tracked::TrackedUe;\n\n\
         pub struct Extra {\n    pub log: Vec<TrackedUe>,\n}\n",
    )
    .expect("write regression");
    let (code, out) = run_in(&root, &[]);
    assert_eq!(code, 1, "{out}");
    assert!(
        out.contains("crates/spacecore: R4-state-flow r4 count 4 exceeds baseline 3"),
        "{out}"
    );

    // --warn-only reports but does not gate (tier-1 mode).
    let (code, out) = run_in(&root, &["--warn-only"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("R4-state-flow"), "{out}");
}
