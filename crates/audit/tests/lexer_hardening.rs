//! Lexer hardening regressions: raw strings, byte literals, nested
//! block comments, and lifetime-vs-char ambiguity. Every case here is
//! a way a naive tokenizer leaks literal/comment *content* into the
//! token stream — which the rules would then mistake for code (e.g. a
//! doc string mentioning `unwrap()` counting against the R3 ratchet).

use sc_audit::lexer::{lex, TokenKind};

/// Identifier texts only — what the rules actually pattern-match on.
fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn raw_string_content_is_opaque() {
    let src = r##"let q = r#"select unwrap() from panic!"#; done();"##;
    let ids = idents(src);
    assert!(ids.contains(&"done".to_string()), "{ids:?}");
    assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
    assert!(!ids.contains(&"select".to_string()), "{ids:?}");
}

#[test]
fn multi_hash_raw_string_finds_its_own_closer() {
    // The inner `"#` must NOT terminate an `r##"…"##` literal.
    let src = "let q = r##\"has \"# inside\"##; after();\n";
    let ids = idents(src);
    assert!(ids.contains(&"after".to_string()), "{ids:?}");
    assert!(!ids.contains(&"inside".to_string()), "{ids:?}");
}

#[test]
fn byte_and_raw_byte_strings_are_opaque() {
    let src = "let a = b\"unwrap()\"; let b2 = br#\"expect()\"#; tail();\n";
    let ids = idents(src);
    assert!(ids.contains(&"tail".to_string()), "{ids:?}");
    assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
    assert!(!ids.contains(&"expect".to_string()), "{ids:?}");
}

#[test]
fn byte_char_literal_does_not_leak_an_ident() {
    // Regression: `b'x'` used to lex as ident `b` + char — and
    // `b'\''`-style escapes could desync the whole stream.
    let src = "let n = b'x'; let q = b'\\''; follow();\n";
    let toks = lex(src);
    let ids: Vec<&str> = toks
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert!(ids.contains(&"follow"), "{ids:?}");
    assert!(!ids.contains(&"b"), "byte-char prefix leaked: {ids:?}");
    assert_eq!(
        toks.tokens.iter().filter(|t| t.kind == TokenKind::Char).count(),
        2,
        "{:?}",
        toks.tokens
    );
}

#[test]
fn nested_block_comments_balance() {
    // Rust block comments nest; a depth counter (not "first */") is
    // required or everything after the inner close leaks as code.
    let src = "/* outer /* inner unwrap() */ still comment panic!() */ alive();\n";
    let ids = idents(src);
    assert_eq!(ids, vec!["alive".to_string()], "{ids:?}");
}

#[test]
fn block_comment_directives_do_not_count() {
    // Allow directives are line-comment-only; a block comment that
    // *mentions* the syntax must not create a directive.
    let src = "/* sc-audit: allow(stateful, reason = \"nope\") */\nlet x = 1;\n";
    let lexed = lex(src);
    assert!(lexed.directives.is_empty(), "{:?}", lexed.directives);
}

#[test]
fn lifetimes_are_not_char_literals() {
    // `'a` in generics/references must not start a char literal and
    // swallow the rest of the line.
    let src = "fn f<'a, 'b: 'a>(x: &'a str, y: &'static u8) -> &'a str { visible(); x }\n";
    let ids = idents(src);
    assert!(ids.contains(&"visible".to_string()), "{ids:?}");
    assert!(ids.contains(&"str".to_string()), "{ids:?}");
    // And a real char literal right next to a lifetime still lexes.
    let src2 = "let c: char = 'x'; fn g<'q>(v: &'q u8) {} seen();\n";
    let toks = lex(src2);
    assert_eq!(
        toks.tokens.iter().filter(|t| t.kind == TokenKind::Char).count(),
        1,
        "{:?}",
        toks.tokens
    );
    assert!(
        toks.tokens.iter().any(|t| t.is_ident("seen")),
        "{:?}",
        toks.tokens
    );
}

#[test]
fn escaped_quotes_and_escaped_backslashes_close_correctly() {
    // `"\\"` ends the string (escaped backslash then close quote);
    // `"\""` does not end at the escaped quote.
    let src = r#"let a = "\\"; let b = "\""; end();"#;
    let ids = idents(src);
    assert!(ids.contains(&"end".to_string()), "{ids:?}");
}

#[test]
fn raw_identifiers_keep_their_text() {
    let src = "let r#type = 1; let r#match = r#type; used();\n";
    let ids = idents(src);
    assert!(ids.contains(&"used".to_string()), "{ids:?}");
}

#[test]
fn positions_survive_multiline_literals() {
    // Tokens after a multi-line raw string land on the right line —
    // positions are load-bearing for findings and allow-directives.
    let src = "let q = r#\"line1\nline2\nline3\"#;\nmarker();\n";
    let toks = lex(src);
    let m = toks
        .tokens
        .iter()
        .find(|t| t.is_ident("marker"))
        .expect("marker token");
    assert_eq!(m.line, 4, "{:?}", toks.tokens);
    assert_eq!(m.col, 1);
}
