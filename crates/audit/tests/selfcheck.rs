//! Self-check: the live workspace must audit clean against its own
//! checked-in baseline, and the real `sc-audit` binary must reproduce
//! the library verdict through its exit code — including non-zero exits
//! for the three acceptance injections (stateful satellite field,
//! wall-clock read, ratchet overrun).

use sc_audit::baseline::Baseline;
use sc_audit::engine::audit_workspace;
use sc_audit::rules::Config;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The real workspace root: two levels up from crates/audit.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn live_workspace_is_clean_under_checked_in_baseline() {
    let root = workspace_root();
    let baseline_path = root.join("audit.baseline.toml");
    let text = fs::read_to_string(&baseline_path)
        .expect("audit.baseline.toml is checked in at the workspace root");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    let report = audit_workspace(&root, &baseline, &Config::default())
        .expect("workspace walks");
    assert!(report.files_scanned > 100, "scanned {}", report.files_scanned);
    assert!(
        report.findings.is_empty(),
        "R1/R2 findings on the live tree:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.flow.is_empty(),
        "R4/R5 dataflow findings on the live tree:\n{}",
        report
            .flow
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.ratchet.is_empty(),
        "R3 ratchet regressions:\n{}",
        report
            .ratchet
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn analyzer_audits_its_own_crate_cleanly() {
    // The analyzer must be able to eat its own dogfood: lex, parse, and
    // dataflow-analyze every source file in crates/audit without any
    // unsuppressed finding. (R3 counts are covered by the checked-in
    // baseline in the live-workspace test above; here we pin the
    // finding-producing rules to zero on our own code.)
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut sources = Vec::new();
    for entry in fs::read_dir(&src_dir).expect("src dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = format!(
                "crates/audit/src/{}",
                path.file_name().unwrap().to_string_lossy()
            );
            sources.push((rel, fs::read_to_string(&path).expect("read source")));
        }
    }
    assert!(sources.len() >= 9, "found {} sources", sources.len());
    let report =
        sc_audit::engine::audit_sources(&sources, &Baseline::default(), &Config::default());
    assert!(
        report.findings.is_empty() && report.flow.is_empty(),
        "sc-audit flags itself:\n{}\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n"),
        report
            .flow
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Build a throwaway mini-workspace under the cargo-provided tmpdir and
/// run the actual binary against it.
fn run_binary(tag: &str, files: &[(&str, &str)], baseline: Option<&str>) -> (i32, String) {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(tag);
    // Rebuild from scratch each run so reruns stay deterministic.
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear previous run");
    }
    for (rel, src) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture paths have parents"))
            .expect("mkdir");
        fs::write(&path, src).expect("write fixture");
    }
    let baseline_arg = root.join("audit.baseline.toml");
    if let Some(text) = baseline {
        fs::write(&baseline_arg, text).expect("write baseline");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_sc-audit"))
        .arg("--root")
        .arg(&root)
        .arg("--baseline")
        .arg(&baseline_arg)
        .output()
        .expect("binary runs");
    let mut text = String::from_utf8_lossy(&out.stdout).into_owned();
    text.push_str(&String::from_utf8_lossy(&out.stderr));
    (out.status.code().expect("exit code"), text)
}

const CLEAN_SRC: &str = "pub fn id(x: u32) -> u32 { x }\n";

#[test]
fn binary_exits_zero_on_clean_tree() {
    let (code, out) = run_binary(
        "clean",
        &[("crates/spacecore/src/lib.rs", CLEAN_SRC)],
        None,
    );
    assert_eq!(code, 0, "{out}");
}

#[test]
fn binary_exits_nonzero_on_stateful_satellite_injection() {
    let (code, out) = run_binary(
        "inject-stateful",
        &[(
            "crates/spacecore/src/satellite.rs",
            include_str!("fixtures/stateful_satellite.rs"),
        )],
        None,
    );
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("R1-stateful"), "{out}");
}

#[test]
fn binary_exits_nonzero_on_wallclock_injection() {
    let (code, out) = run_binary(
        "inject-timing",
        &[(
            "crates/netsim/src/des.rs",
            include_str!("fixtures/timing_instant.rs"),
        )],
        None,
    );
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("R2-timing"), "{out}");
}

#[test]
fn binary_exits_nonzero_on_ratchet_overrun() {
    let (code, out) = run_binary(
        "inject-ratchet",
        &[(
            "crates/spacecore/src/injected.rs",
            include_str!("fixtures/panicky.rs"),
        )],
        Some("[spacecore]\nunwrap = 2\n"),
    );
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("R3-ratchet"), "{out}");
    assert!(out.contains("exceeds baseline 2"), "{out}");
}

#[test]
fn binary_update_baseline_then_rerun_is_clean() {
    let tag = "ratchet-roundtrip";
    let files = [(
        "crates/spacecore/src/injected.rs",
        include_str!("fixtures/panicky.rs"),
    )];
    // First run ratchets at zero (no baseline file) → violation.
    let (code, out) = run_binary(tag, &files, None);
    assert_eq!(code, 1, "{out}");

    // Regenerate the baseline in place, then the same tree passes.
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(tag);
    let baseline_path = root.join("audit.baseline.toml");
    let status = Command::new(env!("CARGO_BIN_EXE_sc-audit"))
        .arg("--root")
        .arg(&root)
        .arg("--baseline")
        .arg(&baseline_path)
        .arg("--update-baseline")
        .status()
        .expect("binary runs");
    assert!(status.success());
    let written = fs::read_to_string(&baseline_path).expect("baseline written");
    assert!(written.contains("unwrap = 3"), "{written}");

    let out = Command::new(env!("CARGO_BIN_EXE_sc-audit"))
        .arg("--root")
        .arg(&root)
        .arg("--baseline")
        .arg(&baseline_path)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn binary_warn_only_downgrades_exit() {
    let (code, out) = run_binary(
        "warn-only",
        &[(
            "crates/netsim/src/des.rs",
            include_str!("fixtures/timing_instant.rs"),
        )],
        None,
    );
    assert_eq!(code, 1, "precondition: fatal by default ({out})");

    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("warn-only");
    let out = Command::new(env!("CARGO_BIN_EXE_sc-audit"))
        .arg("--root")
        .arg(&root)
        .arg("--warn-only")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "warn-only reports but passes");
}
