//! Message-level procedure simulation over the ISL network.
//!
//! The rate models in `sc-dataset`/`spacecore` answer *aggregate*
//! questions (msg/s, CPU%). This module answers the *per-run* question:
//! what actually happens, message by message, when a signaling procedure
//! executes across a real topology with propagation delays, per-node
//! processing, loss, and retransmissions — the level at which the
//! paper's what-if emulations replay their captures (§3 Methodology).
//!
//! [`ProcedureSim`] walks a Figure 9 step table through the
//! discrete-event queue: each step is released only when its predecessor
//! has been delivered (signaling procedures are serialized), each
//! message traverses the current shortest path between its endpoints,
//! and each hop can lose the message (triggering a timeout-based
//! retransmission, as NAS does). The result is a timeline plus the
//! end-to-end procedure latency — with failure injection, the machinery
//! behind the "any signaling loss/error can block the entire procedure"
//! claim of §3.3.

use crate::des::EventQueue;
use crate::failure::{LossProcess, NodeFailures};
use crate::topo::{Graph, NodeId};
use sc_obs::{FieldValue, Recorder};

/// Where each abstract entity of a procedure lives in the network.
#[derive(Debug, Clone)]
pub struct EntityMap {
    /// Node hosting the UE side (the serving satellite's radio).
    pub ue_node: NodeId,
    /// Node hosting satellite-resident functions.
    pub sat_node: NodeId,
    /// Node hosting ground/home functions.
    pub ground_node: NodeId,
}

/// One abstract message of a procedure: from/to node plus a label.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStep {
    pub label: String,
    pub from: NodeId,
    pub to: NodeId,
}

/// Outcome of simulating one procedure run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Did every step complete within the retry budget?
    pub completed: bool,
    /// End-to-end latency (ms) until the last delivery (or the time of
    /// abandonment).
    pub latency_ms: f64,
    /// Per-step delivery times, ms (only completed steps).
    pub deliveries: Vec<(String, f64)>,
    /// Total transmissions, including retransmissions.
    pub transmissions: u32,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-hop processing delay already included in edge weights; this
    /// is the additional endpoint processing per message, ms.
    pub endpoint_processing_ms: f64,
    /// Retransmission timeout, ms (NAS timers are seconds; signaling
    /// over LEO uses tighter timers).
    pub rto_ms: f64,
    /// Maximum transmissions per step before declaring failure.
    pub max_attempts: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            endpoint_processing_ms: 1.0,
            rto_ms: 400.0,
            max_attempts: 4,
        }
    }
}

/// Message-level procedure simulator.
pub struct ProcedureSim<'a> {
    graph: &'a Graph,
    failures: &'a NodeFailures,
    cfg: SimConfig,
    /// Telemetry (disabled by default): `netsim.sim.*` counters, the
    /// per-procedure latency histogram, and one `netsim.delivery` event
    /// per delivered step, all stamped with DES sim-time (ms).
    obs: Recorder,
}

#[derive(Debug, Clone, PartialEq)]
enum Ev {
    /// Attempt transmission of step `idx` (attempt number).
    Send { idx: usize, attempt: u32 },
    /// Step `idx` delivered.
    Delivered { idx: usize },
    /// RTO check for step `idx`, attempt `attempt`.
    Timeout { idx: usize, attempt: u32 },
}

impl<'a> ProcedureSim<'a> {
    pub fn new(graph: &'a Graph, failures: &'a NodeFailures, cfg: SimConfig) -> Self {
        Self {
            graph,
            failures,
            cfg,
            obs: Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder (builder style); the recorder is
    /// also propagated into the internal event queue, so `netsim.des.*`
    /// counters cover every scheduled/processed event of each run.
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Run a serialized step list; `loss` draws per-transmission losses.
    pub fn run(&self, steps: &[SimStep], loss: &mut LossProcess) -> SimOutcome {
        self.obs.inc("netsim.sim.procedures", 1);
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.attach_recorder(self.obs.clone());
        let mut deliveries: Vec<(String, f64)> = Vec::new();
        let mut delivered = vec![false; steps.len()];
        let mut transmissions = 0u32;
        let mut completed = true;
        let mut last_time = 0.0f64;

        if steps.is_empty() {
            self.obs.inc("netsim.sim.completed", 1);
            self.obs.observe("netsim.sim.procedure_latency_ms", 0.0);
            return SimOutcome {
                completed: true,
                latency_ms: 0.0,
                deliveries,
                transmissions: 0,
            };
        }
        q.schedule(0.0, Ev::Send { idx: 0, attempt: 1 });

        while let Some(ev) = q.pop() {
            let now = ev.time;
            last_time = now;
            match ev.event {
                Ev::Send { idx, attempt } => {
                    if delivered[idx] {
                        continue;
                    }
                    if attempt > self.cfg.max_attempts {
                        completed = false;
                        break; // the whole procedure is blocked (§3.3)
                    }
                    transmissions += 1;
                    self.obs.inc("netsim.sim.transmissions", 1);
                    if attempt > 1 {
                        self.obs.inc("netsim.sim.retransmissions", 1);
                    }
                    let step = &steps[idx];
                    let path = self
                        .graph
                        .shortest_path(step.from, step.to, self.failures.blocker());
                    match path {
                        None => {
                            completed = false;
                            break; // endpoints partitioned
                        }
                        Some(p) => {
                            if loss.lost() {
                                self.obs.inc("netsim.sim.losses", 1);
                                // Lost somewhere en route: only the RTO
                                // recovers it.
                                q.schedule(
                                    now + self.cfg.rto_ms,
                                    Ev::Timeout { idx, attempt },
                                );
                            } else {
                                let delay = p.cost + self.cfg.endpoint_processing_ms;
                                q.schedule(now + delay, Ev::Delivered { idx });
                                // Timeout still armed in case a later
                                // model adds reordering; it is ignored
                                // once delivered.
                                q.schedule(
                                    now + self.cfg.rto_ms,
                                    Ev::Timeout { idx, attempt },
                                );
                            }
                        }
                    }
                }
                Ev::Delivered { idx } => {
                    if delivered[idx] {
                        continue;
                    }
                    delivered[idx] = true;
                    self.obs.event(
                        now,
                        "netsim.delivery",
                        vec![
                            ("idx", FieldValue::from(idx)),
                            ("step", FieldValue::from(steps[idx].label.as_str())),
                        ],
                    );
                    deliveries.push((steps[idx].label.clone(), now));
                    if idx + 1 < steps.len() {
                        q.schedule(now, Ev::Send {
                            idx: idx + 1,
                            attempt: 1,
                        });
                    } else {
                        break; // procedure complete
                    }
                }
                Ev::Timeout { idx, attempt } => {
                    if !delivered[idx] {
                        q.schedule(now, Ev::Send {
                            idx,
                            attempt: attempt + 1,
                        });
                    }
                }
            }
        }

        let all = delivered.iter().all(|d| *d);
        let completed = completed && all;
        self.obs.inc(
            if completed {
                "netsim.sim.completed"
            } else {
                "netsim.sim.blocked"
            },
            1,
        );
        self.obs.observe("netsim.sim.procedure_latency_ms", last_time);
        SimOutcome {
            completed,
            latency_ms: last_time,
            deliveries,
            transmissions,
        }
    }
}

/// Build the `SimStep` list for a Figure 9-style sequence of
/// (entity-kind, entity-kind) hops given an entity placement. The step
/// descriptions come from the caller (typically
/// `sc-fiveg::messages::Procedure` translated per split).
pub fn steps_from_pairs(
    pairs: &[(&str, NodeId, NodeId)],
) -> Vec<SimStep> {
    pairs
        .iter()
        .map(|(label, from, to)| SimStep {
            label: label.to_string(),
            from: *from,
            to: *to,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line topology 0—1—2—3 with 10 ms links.
    fn line() -> Graph {
        let mut g = Graph::new(4);
        g.add_bidirectional(0, 1, 10.0);
        g.add_bidirectional(1, 2, 10.0);
        g.add_bidirectional(2, 3, 10.0);
        g
    }

    fn no_failures() -> NodeFailures {
        NodeFailures::none()
    }

    #[test]
    fn lossless_run_sums_path_delays() {
        let g = line();
        let nf = no_failures();
        let sim = ProcedureSim::new(&g, &nf, SimConfig::default());
        let steps = steps_from_pairs(&[("a", 0, 3), ("b", 3, 0)]);
        let mut loss = LossProcess::new(0.0, 1);
        let o = sim.run(&steps, &mut loss);
        assert!(o.completed);
        assert_eq!(o.transmissions, 2);
        // Each leg: 30 ms path + 1 ms endpoint = 31 ms; serialized → 62.
        assert!((o.latency_ms - 62.0).abs() < 1e-9, "{}", o.latency_ms);
        assert_eq!(o.deliveries.len(), 2);
    }

    #[test]
    fn loss_adds_rto_delays() {
        let g = line();
        let nf = no_failures();
        let sim = ProcedureSim::new(&g, &nf, SimConfig::default());
        let steps = steps_from_pairs(&[("a", 0, 3)]);
        // Always lose the first transmission, deliver the second.
        let mut loss = LossProcess::new(0.0, 1);
        // Simulate "first lost" by a 100% loss process bounded by
        // attempts? Instead use 50% loss and a seed that loses first.
        let mut lossy = LossProcess::new(0.9999, 7);
        let o = sim.run(&steps, &mut lossy);
        // With near-certain loss, the run exhausts its attempts.
        assert!(!o.completed);
        assert_eq!(o.transmissions, SimConfig::default().max_attempts);
        // Clean process for contrast.
        let o2 = sim.run(&steps, &mut loss);
        assert!(o2.completed);
        assert!(o2.latency_ms < o.latency_ms);
    }

    #[test]
    fn moderate_loss_recovers_with_retries() {
        let g = line();
        let nf = no_failures();
        let sim = ProcedureSim::new(&g, &nf, SimConfig::default());
        let steps = steps_from_pairs(&[("a", 0, 2), ("b", 2, 1), ("c", 1, 3)]);
        let mut completed = 0;
        let mut total_tx = 0;
        for seed in 0..200 {
            let mut loss = LossProcess::new(0.2, seed);
            let o = sim.run(&steps, &mut loss);
            if o.completed {
                completed += 1;
            }
            total_tx += o.transmissions;
        }
        // P(step survives 4 attempts) = 1 - 0.2^4 ≈ 0.9984 per step.
        assert!(completed > 190, "{completed}");
        // Retransmissions happened: more transmissions than steps.
        assert!(total_tx > 200 * 3, "{total_tx}");
    }

    #[test]
    fn partition_blocks_procedure() {
        let g = line();
        let mut nf = NodeFailures::none();
        nf.fail(1); // cuts 0 from the rest
        let sim = ProcedureSim::new(&g, &nf, SimConfig::default());
        let steps = steps_from_pairs(&[("a", 0, 3)]);
        let mut loss = LossProcess::new(0.0, 1);
        let o = sim.run(&steps, &mut loss);
        assert!(!o.completed);
        assert!(o.deliveries.is_empty());
    }

    #[test]
    fn reroute_around_failed_intermediate() {
        // Diamond: 0-1-3 (fast) / 0-2-3 (slow); failing 1 reroutes.
        let mut g = Graph::new(4);
        g.add_bidirectional(0, 1, 5.0);
        g.add_bidirectional(1, 3, 5.0);
        g.add_bidirectional(0, 2, 20.0);
        g.add_bidirectional(2, 3, 20.0);
        let mut nf = NodeFailures::none();
        nf.fail(1);
        let sim = ProcedureSim::new(&g, &nf, SimConfig::default());
        let steps = steps_from_pairs(&[("a", 0, 3)]);
        let mut loss = LossProcess::new(0.0, 1);
        let o = sim.run(&steps, &mut loss);
        assert!(o.completed);
        assert!((o.latency_ms - 41.0).abs() < 1e-9, "{}", o.latency_ms);
    }

    #[test]
    fn empty_procedure_trivially_completes() {
        let g = line();
        let nf = no_failures();
        let sim = ProcedureSim::new(&g, &nf, SimConfig::default());
        let o = sim.run(&[], &mut LossProcess::new(0.5, 1));
        assert!(o.completed);
        assert_eq!(o.latency_ms, 0.0);
    }

    #[test]
    fn recorder_sees_full_procedure_accounting() {
        let g = line();
        let nf = no_failures();
        let rec = Recorder::new();
        let sim =
            ProcedureSim::new(&g, &nf, SimConfig::default()).with_recorder(rec.clone());
        let steps = steps_from_pairs(&[("req", 0, 3), ("rsp", 3, 0)]);
        let mut loss = LossProcess::new(0.0, 1);
        let o = sim.run(&steps, &mut loss);
        assert!(o.completed);
        let s = rec.snapshot();
        assert_eq!(s.counter("netsim.sim.procedures"), 1);
        assert_eq!(s.counter("netsim.sim.transmissions"), 2);
        assert_eq!(s.counter("netsim.sim.completed"), 1);
        assert_eq!(s.counter("netsim.sim.retransmissions"), 0);
        assert!(s.counter("netsim.des.scheduled") >= 4);
        // One delivery event per step, stamped with DES sim-time (ms).
        let deliveries: Vec<f64> = s
            .events
            .iter()
            .filter(|e| e.kind == "netsim.delivery")
            .map(|e| e.t)
            .collect();
        assert_eq!(deliveries.len(), 2);
        assert!((deliveries[1] - o.latency_ms).abs() < 1e-9);
        // Latency histogram carries the same sim-time quantity.
        assert_eq!(
            s.histogram("netsim.sim.procedure_latency_ms")
                .and_then(|h| h.max()),
            Some(o.latency_ms)
        );
    }

    #[test]
    fn longer_procedures_are_more_fragile() {
        // §3.3: "any signaling loss/error can block the entire
        // procedure" — completion probability decays with step count.
        let g = line();
        let nf = no_failures();
        let cfg = SimConfig {
            max_attempts: 1, // no retries: raw fragility
            ..SimConfig::default()
        };
        let sim = ProcedureSim::new(&g, &nf, cfg);
        let long: Vec<SimStep> =
            steps_from_pairs(&(0..24).map(|_| ("s", 0usize, 3usize)).collect::<Vec<_>>());
        let short: Vec<SimStep> =
            steps_from_pairs(&(0..4).map(|_| ("s", 0usize, 3usize)).collect::<Vec<_>>());
        let mut long_ok = 0;
        let mut short_ok = 0;
        for seed in 0..300 {
            if sim.run(&long, &mut LossProcess::new(0.05, seed)).completed {
                long_ok += 1;
            }
            if sim.run(&short, &mut LossProcess::new(0.05, seed + 1000)).completed {
                short_ok += 1;
            }
        }
        assert!(short_ok > long_ok + 30, "short {short_ok} long {long_ok}");
    }
}
