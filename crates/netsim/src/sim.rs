//! Message-level procedure simulation over the ISL network.
//!
//! The rate models in `sc-dataset`/`spacecore` answer *aggregate*
//! questions (msg/s, CPU%). This module answers the *per-run* question:
//! what actually happens, message by message, when a signaling procedure
//! executes across a real topology with propagation delays, per-node
//! processing, loss, and retransmissions — the level at which the
//! paper's what-if emulations replay their captures (§3 Methodology).
//!
//! [`ProcedureSim`] walks a Figure 9 step table through the
//! discrete-event queue: each step is released only when its predecessor
//! has been delivered (signaling procedures are serialized), each
//! message traverses the current shortest path between its endpoints,
//! and each hop can lose the message (triggering a timeout-based
//! retransmission, as NAS does). The result is a timeline plus the
//! end-to-end procedure latency — with failure injection, the machinery
//! behind the "any signaling loss/error can block the entire procedure"
//! claim of §3.3.

use crate::chaos::{ChaosCursor, FailureTimeline};
use crate::des::EventQueue;
use crate::failure::{LossProcess, NodeFailures};
use crate::topo::{Graph, NodeId};
use sc_obs::{FieldValue, Recorder, SpanId};

/// Where each abstract entity of a procedure lives in the network.
#[derive(Debug, Clone)]
pub struct EntityMap {
    /// Node hosting the UE side (the serving satellite's radio).
    pub ue_node: NodeId,
    /// Node hosting satellite-resident functions.
    pub sat_node: NodeId,
    /// Node hosting ground/home functions.
    pub ground_node: NodeId,
}

/// One abstract message of a procedure: from/to node plus a label.
///
/// Labels are `&'static str`: every step list ultimately comes from
/// static tables (the Figure 9 procedures, experiment literals), so
/// building and replaying steps allocates nothing per label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimStep {
    pub label: &'static str,
    pub from: NodeId,
    pub to: NodeId,
}

/// Outcome of simulating one procedure run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Did every step complete within the retry budget?
    pub completed: bool,
    /// End-to-end latency (ms) until the last delivery (or the time of
    /// abandonment).
    pub latency_ms: f64,
    /// Per-step delivery times, ms (only completed steps).
    pub deliveries: Vec<(&'static str, f64)>,
    /// Total transmissions, including retransmissions.
    pub transmissions: u32,
}

/// Simulator configuration.
///
/// The chaos-hardening knobs (`backoff_factor`, `rto_cap_ms`,
/// `retry_on_partition`, `total_deadline_ms`) all default to the legacy
/// behavior — fixed RTO, abort on partition, no deadline — so existing
/// experiments replay byte-identically unless a caller opts in.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-hop processing delay already included in edge weights; this
    /// is the additional endpoint processing per message, ms.
    pub endpoint_processing_ms: f64,
    /// Base retransmission timeout, ms (NAS timers are seconds;
    /// signaling over LEO uses tighter timers).
    pub rto_ms: f64,
    /// Maximum transmissions per step before declaring failure.
    pub max_attempts: u32,
    /// Multiplier applied to the RTO per retransmission (exponential
    /// backoff). `1.0` keeps the fixed legacy RTO.
    pub backoff_factor: f64,
    /// Upper bound on the backed-off RTO, ms (`f64::INFINITY` = no cap).
    pub rto_cap_ms: f64,
    /// Treat a routing partition as transient: wait a backoff and
    /// re-resolve instead of aborting the procedure — what a chaos run
    /// needs when an intermediate satellite crashes mid-procedure and
    /// recovers (or routing heals around it) moments later.
    pub retry_on_partition: bool,
    /// Total simulated-time budget for the procedure, ms. Sends past
    /// the deadline abort the run (`f64::INFINITY` = unbounded).
    pub total_deadline_ms: f64,
    /// Draw the ambient loss process once per *hop* instead of once per
    /// transmission: every ISL hop is an independent frame-error
    /// opportunity, so long (and chaos-detoured) paths lose more. The
    /// legacy default draws once per transmission regardless of path
    /// length.
    pub loss_per_hop: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            endpoint_processing_ms: 1.0,
            rto_ms: 400.0,
            max_attempts: 4,
            backoff_factor: 1.0,
            rto_cap_ms: f64::INFINITY,
            retry_on_partition: false,
            total_deadline_ms: f64::INFINITY,
            loss_per_hop: false,
        }
    }
}

impl SimConfig {
    /// The (capped, backed-off) RTO armed for transmission `attempt`
    /// (1-based). With the default `backoff_factor = 1.0` this is
    /// exactly `rto_ms` for every attempt.
    pub fn rto_for(&self, attempt: u32) -> f64 {
        (self.rto_ms * self.backoff_factor.powi(attempt.saturating_sub(1) as i32))
            .min(self.rto_cap_ms)
    }
}

/// Where the simulator reads its failure state from.
enum FailureSource<'a> {
    /// A static pre-run snapshot (the legacy API): the routing view
    /// never changes during the run.
    Static(&'a NodeFailures),
    /// A dynamic [`FailureTimeline`]: the view evolves as the DES clock
    /// advances, so a node can die (and recover) mid-procedure.
    Timeline(&'a FailureTimeline),
}

/// Reusable per-run working memory for [`ProcedureSim`].
///
/// One run needs an event queue plus five per-step vectors; a sweep
/// that replays thousands of procedures can hand the same scratch to
/// every [`ProcedureSim::run_in`] call and amortize all of those
/// allocations to one. Outcomes and telemetry are bit-identical to the
/// scratch-free entry points — the queue's [`EventQueue::reset`]
/// rewinds time and the sequence counter completely.
#[derive(Default)]
pub struct SimScratch {
    q: EventQueue<Ev>,
    delivered: Vec<bool>,
    in_flight: Vec<Option<u32>>,
    partition_retries: Vec<u32>,
    step_spans: Vec<SpanId>,
    tx_spans: Vec<SpanId>,
}

impl SimScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Message-level procedure simulator.
pub struct ProcedureSim<'a> {
    graph: &'a Graph,
    failures: FailureSource<'a>,
    cfg: SimConfig,
    /// Telemetry (disabled by default): `netsim.sim.*` counters, the
    /// per-procedure latency histogram, and one `netsim.delivery` event
    /// per delivered step, all stamped with DES sim-time (ms).
    obs: Recorder,
}

#[derive(Debug, Clone, PartialEq)]
enum Ev {
    /// Attempt transmission of step `idx` (attempt number).
    Send { idx: usize, attempt: u32 },
    /// Step `idx` delivered.
    Delivered { idx: usize },
    /// RTO check for step `idx`, attempt `attempt`.
    Timeout { idx: usize, attempt: u32 },
}

impl<'a> ProcedureSim<'a> {
    pub fn new(graph: &'a Graph, failures: &'a NodeFailures, cfg: SimConfig) -> Self {
        Self {
            graph,
            failures: FailureSource::Static(failures),
            cfg,
            obs: Recorder::disabled(),
        }
    }

    /// Simulate against a dynamic [`FailureTimeline`] instead of a
    /// static snapshot: the timeline is replayed as the DES clock
    /// advances, every transmission re-resolves its path against the
    /// *current* dead-node/link set, and open loss-burst windows add
    /// their own per-transmission losses. An empty timeline is
    /// outcome-identical to [`Self::new`] with [`NodeFailures::none`].
    pub fn with_timeline(graph: &'a Graph, timeline: &'a FailureTimeline, cfg: SimConfig) -> Self {
        Self {
            graph,
            failures: FailureSource::Timeline(timeline),
            cfg,
            obs: Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder (builder style); the recorder is
    /// also propagated into the internal event queue, so `netsim.des.*`
    /// counters cover every scheduled/processed event of each run.
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// Run a serialized step list; `loss` draws per-transmission losses.
    pub fn run(&self, steps: &[SimStep], loss: &mut LossProcess) -> SimOutcome {
        self.run_traced(steps, loss, None)
    }

    /// [`Self::run`] against a caller-owned [`SimScratch`], reusing its
    /// event queue and per-step buffers. The hot-loop entry point:
    /// sweeps that replay thousands of procedures back to back pay for
    /// the scratch once instead of per run.
    pub fn run_in(
        &self,
        steps: &[SimStep],
        loss: &mut LossProcess,
        scratch: &mut SimScratch,
    ) -> SimOutcome {
        self.run_traced_in(steps, loss, None, scratch)
    }

    /// [`Self::run`], with the procedure's root span parented on
    /// `parent` (e.g. a fiveg procedure span), so the caller's causal
    /// context and this run's hop/retransmission spans form one tree.
    ///
    /// Span shapes (all sim-time ms, recorded only when telemetry is
    /// enabled — outcomes are bit-identical either way):
    /// * `netsim.sim.procedure` — root, one per run; `steps` field, and
    ///   `completed` (0/1) attached on close.
    /// * `netsim.sim.step` — child of the root, opened at the step's
    ///   first transmission, closed at delivery (left open when the
    ///   procedure blocks mid-step).
    /// * `netsim.sim.tx` — child of its step, one per transmission;
    ///   `attempt` and `hops` fields. A lost transmission is emitted
    ///   closed over `[send, send+rto]` with `lost=1` — the time the
    ///   loss cost before its timeout recovered it. Spurious-RTO
    ///   suppressions emit a zero-width `netsim.sim.spurious_rto` child
    ///   of the step, and partition waits a `netsim.sim.partition_retry`
    ///   spanning the backoff — so chaos-rerouted retries stay linked to
    ///   the procedure they delayed.
    pub fn run_traced(
        &self,
        steps: &[SimStep],
        loss: &mut LossProcess,
        parent: Option<SpanId>,
    ) -> SimOutcome {
        self.run_traced_in(steps, loss, parent, &mut SimScratch::new())
    }

    /// [`Self::run_traced`] against a caller-owned [`SimScratch`];
    /// outcome- and telemetry-identical, allocation-free per run.
    pub fn run_traced_in(
        &self,
        steps: &[SimStep],
        loss: &mut LossProcess,
        parent: Option<SpanId>,
        scratch: &mut SimScratch,
    ) -> SimOutcome {
        self.obs.inc("netsim.sim.procedures", 1);
        // Spans allocate field vectors; skip all of it when disabled so
        // the hot path stays an Option check.
        let traced = self.obs.enabled();
        let root = if traced {
            self.obs.span_open(
                parent,
                "netsim.sim.procedure",
                0.0,
                vec![("steps", FieldValue::from(steps.len()))],
            )
        } else {
            SpanId::DISABLED
        };
        let SimScratch {
            q,
            delivered,
            in_flight,
            partition_retries,
            step_spans,
            tx_spans,
        } = scratch;
        q.reset();
        q.attach_recorder(self.obs.clone());
        // Dynamic-failure view, replayed as the DES clock advances
        // (absent for the legacy static snapshot).
        let mut cursor: Option<ChaosCursor<'_>> = match &self.failures {
            FailureSource::Timeline(tl) => Some(tl.cursor()),
            FailureSource::Static(_) => None,
        };
        let mut deliveries: Vec<(&'static str, f64)> = Vec::new();
        delivered.clear();
        delivered.resize(steps.len(), false);
        // Attempt number of the transmission currently on the wire (its
        // delivery is scheduled), per step; `None` while nothing is in
        // flight. Lets the RTO distinguish "lost" from "merely slower
        // than the timer" and stay silent for the latter.
        in_flight.clear();
        in_flight.resize(steps.len(), None);
        // Partition retries taken so far, per step (drives their backoff).
        partition_retries.clear();
        partition_retries.resize(steps.len(), 0u32);
        let mut transmissions = 0u32;
        let mut completed = true;
        let mut last_time = 0.0f64;

        if steps.is_empty() {
            self.obs.inc("netsim.sim.completed", 1);
            self.obs.observe("netsim.sim.procedure_latency_ms", 0.0);
            if traced {
                self.obs
                    .span_close_with(root, 0.0, vec![("completed", FieldValue::from(1u64))]);
            }
            return SimOutcome {
                completed: true,
                latency_ms: 0.0,
                deliveries,
                transmissions: 0,
            };
        }
        // Per-step span handles: the step span opens at the step's first
        // transmission; the tx span tracks the attempt currently on the
        // wire. DISABLED doubles as "not opened yet" — an enabled
        // recorder never returns it.
        step_spans.clear();
        step_spans.resize(steps.len(), SpanId::DISABLED);
        tx_spans.clear();
        tx_spans.resize(steps.len(), SpanId::DISABLED);
        q.schedule(0.0, Ev::Send { idx: 0, attempt: 1 });

        while let Some(ev) = q.pop() {
            let now = ev.time;
            last_time = now;
            if let Some(c) = cursor.as_mut() {
                c.advance_to(now, &self.obs);
            }
            match ev.event {
                Ev::Send { idx, attempt } => {
                    if delivered[idx] {
                        continue;
                    }
                    if now > self.cfg.total_deadline_ms {
                        completed = false;
                        break; // procedure deadline budget exhausted
                    }
                    if attempt > self.cfg.max_attempts {
                        completed = false;
                        break; // the whole procedure is blocked (§3.3)
                    }
                    transmissions += 1;
                    self.obs.inc("netsim.sim.transmissions", 1);
                    if attempt > 1 {
                        self.obs.inc("netsim.sim.retransmissions", 1);
                    }
                    if traced && step_spans[idx] == SpanId::DISABLED {
                        step_spans[idx] = self.obs.span_open(
                            Some(root),
                            "netsim.sim.step",
                            now,
                            vec![
                                ("idx", FieldValue::from(idx)),
                                ("label", FieldValue::from(steps[idx].label)),
                            ],
                        );
                    }
                    let step = &steps[idx];
                    // Per-attempt path resolution: a chaos run reroutes
                    // around nodes that died after the procedure started.
                    let path = if let Some(c) = cursor.as_ref() {
                        self.graph.shortest_path_avoiding(
                            step.from,
                            step.to,
                            |n| c.is_dead(n),
                            |a, b| c.link_down(a, b),
                        )
                    } else if let FailureSource::Static(nf) = &self.failures {
                        self.graph.shortest_path(step.from, step.to, nf.blocker())
                    } else {
                        None // timeline source always has a cursor
                    };
                    match path {
                        None if self.cfg.retry_on_partition => {
                            // Partition-as-transient: wait a backoff and
                            // re-resolve, bounded by the deadline budget
                            // (or, unbounded budgets, the attempt cap).
                            partition_retries[idx] += 1;
                            let backoff = self.cfg.rto_for(partition_retries[idx]);
                            let within = if self.cfg.total_deadline_ms.is_finite() {
                                now + backoff <= self.cfg.total_deadline_ms
                            } else {
                                partition_retries[idx] < self.cfg.max_attempts
                            };
                            if !within {
                                completed = false;
                                break; // partition outlasted the budget
                            }
                            self.obs.inc("netsim.sim.partition_retries", 1);
                            if traced {
                                self.obs.span(
                                    Some(step_spans[idx]),
                                    "netsim.sim.partition_retry",
                                    now,
                                    now + backoff,
                                    vec![],
                                );
                            }
                            q.schedule(now + backoff, Ev::Send { idx, attempt });
                        }
                        None => {
                            completed = false;
                            break; // endpoints partitioned
                        }
                        Some(p) => {
                            let mut lost = if self.cfg.loss_per_hop {
                                // First lossy hop kills the transmission.
                                (0..p.hops()).any(|_| loss.lost())
                            } else {
                                loss.lost()
                            };
                            if !lost {
                                if let Some(c) = cursor.as_mut() {
                                    // Open Fig. 13b-style burst window?
                                    lost = c.burst_loss(&self.obs);
                                }
                            }
                            let rto = self.cfg.rto_for(attempt);
                            if lost {
                                self.obs.inc("netsim.sim.losses", 1);
                                if traced {
                                    self.obs.span(
                                        Some(step_spans[idx]),
                                        "netsim.sim.tx",
                                        now,
                                        now + rto,
                                        vec![
                                            ("attempt", FieldValue::from(attempt as u64)),
                                            ("hops", FieldValue::from(p.hops())),
                                            ("lost", FieldValue::from(1u64)),
                                        ],
                                    );
                                }
                                in_flight[idx] = None;
                                // Lost somewhere en route: only the RTO
                                // recovers it.
                                q.schedule(now + rto, Ev::Timeout { idx, attempt });
                            } else {
                                let delay = p.cost + self.cfg.endpoint_processing_ms;
                                if traced {
                                    tx_spans[idx] = self.obs.span_open(
                                        Some(step_spans[idx]),
                                        "netsim.sim.tx",
                                        now,
                                        vec![
                                            ("attempt", FieldValue::from(attempt as u64)),
                                            ("hops", FieldValue::from(p.hops())),
                                        ],
                                    );
                                }
                                in_flight[idx] = Some(attempt);
                                q.schedule(now + delay, Ev::Delivered { idx });
                                // Timeout still armed; a delivery that
                                // merely outlasts it is recognized as in
                                // flight and not retransmitted.
                                q.schedule(now + rto, Ev::Timeout { idx, attempt });
                            }
                        }
                    }
                }
                Ev::Delivered { idx } => {
                    if delivered[idx] {
                        continue;
                    }
                    delivered[idx] = true;
                    if traced {
                        self.obs.span_close(tx_spans[idx], now);
                        self.obs.span_close(step_spans[idx], now);
                    }
                    self.obs.event(
                        now,
                        "netsim.delivery",
                        vec![
                            ("idx", FieldValue::from(idx)),
                            ("step", FieldValue::from(steps[idx].label)),
                        ],
                    );
                    deliveries.push((steps[idx].label, now));
                    if idx + 1 < steps.len() {
                        q.schedule(now, Ev::Send {
                            idx: idx + 1,
                            attempt: 1,
                        });
                    } else {
                        break; // procedure complete
                    }
                }
                Ev::Timeout { idx, attempt } => {
                    if delivered[idx] {
                        continue;
                    }
                    if in_flight[idx] == Some(attempt) {
                        // The transmission is still on the wire — its
                        // delivery delay simply exceeds the RTO. A naive
                        // timer would duplicate an in-flight message
                        // here; suppress it.
                        self.obs.inc("netsim.sim.spurious_rto", 1);
                        if traced {
                            self.obs.span(
                                Some(step_spans[idx]),
                                "netsim.sim.spurious_rto",
                                now,
                                now,
                                vec![("attempt", FieldValue::from(attempt as u64))],
                            );
                        }
                        continue;
                    }
                    q.schedule(now, Ev::Send {
                        idx,
                        attempt: attempt + 1,
                    });
                }
            }
        }

        let all = delivered.iter().all(|d| *d);
        let completed = completed && all;
        self.obs.inc(
            if completed {
                "netsim.sim.completed"
            } else {
                "netsim.sim.blocked"
            },
            1,
        );
        self.obs.observe("netsim.sim.procedure_latency_ms", last_time);
        if traced {
            self.obs.span_close_with(
                root,
                last_time,
                vec![("completed", FieldValue::from(u64::from(completed)))],
            );
        }
        SimOutcome {
            completed,
            latency_ms: last_time,
            deliveries,
            transmissions,
        }
    }
}

/// Build the `SimStep` list for a Figure 9-style sequence of
/// (entity-kind, entity-kind) hops given an entity placement. The step
/// descriptions come from the caller (typically
/// `sc-fiveg::messages::Procedure` translated per split).
pub fn steps_from_pairs(
    pairs: &[(&'static str, NodeId, NodeId)],
) -> Vec<SimStep> {
    pairs
        .iter()
        .map(|&(label, from, to)| SimStep { label, from, to })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line topology 0—1—2—3 with 10 ms links.
    fn line() -> Graph {
        let mut g = Graph::new(4);
        g.add_bidirectional(0, 1, 10.0);
        g.add_bidirectional(1, 2, 10.0);
        g.add_bidirectional(2, 3, 10.0);
        g
    }

    fn no_failures() -> NodeFailures {
        NodeFailures::none()
    }

    #[test]
    fn lossless_run_sums_path_delays() {
        let g = line();
        let nf = no_failures();
        let sim = ProcedureSim::new(&g, &nf, SimConfig::default());
        let steps = steps_from_pairs(&[("a", 0, 3), ("b", 3, 0)]);
        let mut loss = LossProcess::new(0.0, 1);
        let o = sim.run(&steps, &mut loss);
        assert!(o.completed);
        assert_eq!(o.transmissions, 2);
        // Each leg: 30 ms path + 1 ms endpoint = 31 ms; serialized → 62.
        assert!((o.latency_ms - 62.0).abs() < 1e-9, "{}", o.latency_ms);
        assert_eq!(o.deliveries.len(), 2);
    }

    #[test]
    fn loss_adds_rto_delays() {
        let g = line();
        let nf = no_failures();
        let sim = ProcedureSim::new(&g, &nf, SimConfig::default());
        let steps = steps_from_pairs(&[("a", 0, 3)]);
        // Always lose the first transmission, deliver the second.
        let mut loss = LossProcess::new(0.0, 1);
        // Simulate "first lost" by a 100% loss process bounded by
        // attempts? Instead use 50% loss and a seed that loses first.
        let mut lossy = LossProcess::new(0.9999, 7);
        let o = sim.run(&steps, &mut lossy);
        // With near-certain loss, the run exhausts its attempts.
        assert!(!o.completed);
        assert_eq!(o.transmissions, SimConfig::default().max_attempts);
        // Clean process for contrast.
        let o2 = sim.run(&steps, &mut loss);
        assert!(o2.completed);
        assert!(o2.latency_ms < o.latency_ms);
    }

    #[test]
    fn moderate_loss_recovers_with_retries() {
        let g = line();
        let nf = no_failures();
        let sim = ProcedureSim::new(&g, &nf, SimConfig::default());
        let steps = steps_from_pairs(&[("a", 0, 2), ("b", 2, 1), ("c", 1, 3)]);
        let mut completed = 0;
        let mut total_tx = 0;
        for seed in 0..200 {
            let mut loss = LossProcess::new(0.2, seed);
            let o = sim.run(&steps, &mut loss);
            if o.completed {
                completed += 1;
            }
            total_tx += o.transmissions;
        }
        // P(step survives 4 attempts) = 1 - 0.2^4 ≈ 0.9984 per step.
        assert!(completed > 190, "{completed}");
        // Retransmissions happened: more transmissions than steps.
        assert!(total_tx > 200 * 3, "{total_tx}");
    }

    #[test]
    fn partition_blocks_procedure() {
        let g = line();
        let mut nf = NodeFailures::none();
        nf.fail(1); // cuts 0 from the rest
        let sim = ProcedureSim::new(&g, &nf, SimConfig::default());
        let steps = steps_from_pairs(&[("a", 0, 3)]);
        let mut loss = LossProcess::new(0.0, 1);
        let o = sim.run(&steps, &mut loss);
        assert!(!o.completed);
        assert!(o.deliveries.is_empty());
    }

    #[test]
    fn reroute_around_failed_intermediate() {
        // Diamond: 0-1-3 (fast) / 0-2-3 (slow); failing 1 reroutes.
        let mut g = Graph::new(4);
        g.add_bidirectional(0, 1, 5.0);
        g.add_bidirectional(1, 3, 5.0);
        g.add_bidirectional(0, 2, 20.0);
        g.add_bidirectional(2, 3, 20.0);
        let mut nf = NodeFailures::none();
        nf.fail(1);
        let sim = ProcedureSim::new(&g, &nf, SimConfig::default());
        let steps = steps_from_pairs(&[("a", 0, 3)]);
        let mut loss = LossProcess::new(0.0, 1);
        let o = sim.run(&steps, &mut loss);
        assert!(o.completed);
        assert!((o.latency_ms - 41.0).abs() < 1e-9, "{}", o.latency_ms);
    }

    #[test]
    fn empty_procedure_trivially_completes() {
        let g = line();
        let nf = no_failures();
        let sim = ProcedureSim::new(&g, &nf, SimConfig::default());
        let o = sim.run(&[], &mut LossProcess::new(0.5, 1));
        assert!(o.completed);
        assert_eq!(o.latency_ms, 0.0);
    }

    #[test]
    fn recorder_sees_full_procedure_accounting() {
        let g = line();
        let nf = no_failures();
        let rec = Recorder::new();
        let sim =
            ProcedureSim::new(&g, &nf, SimConfig::default()).with_recorder(rec.clone());
        let steps = steps_from_pairs(&[("req", 0, 3), ("rsp", 3, 0)]);
        let mut loss = LossProcess::new(0.0, 1);
        let o = sim.run(&steps, &mut loss);
        assert!(o.completed);
        let s = rec.snapshot();
        assert_eq!(s.counter("netsim.sim.procedures"), 1);
        assert_eq!(s.counter("netsim.sim.transmissions"), 2);
        assert_eq!(s.counter("netsim.sim.completed"), 1);
        assert_eq!(s.counter("netsim.sim.retransmissions"), 0);
        assert!(s.counter("netsim.des.scheduled") >= 4);
        // One delivery event per step, stamped with DES sim-time (ms).
        let deliveries: Vec<f64> = s
            .events
            .iter()
            .filter(|e| e.kind == "netsim.delivery")
            .map(|e| e.t)
            .collect();
        assert_eq!(deliveries.len(), 2);
        assert!((deliveries[1] - o.latency_ms).abs() < 1e-9);
        // Latency histogram carries the same sim-time quantity.
        assert_eq!(
            s.histogram("netsim.sim.procedure_latency_ms")
                .and_then(|h| h.max()),
            Some(o.latency_ms)
        );
    }

    #[test]
    fn spans_form_a_procedure_tree() {
        let g = line();
        let nf = no_failures();
        let rec = Recorder::new();
        let sim =
            ProcedureSim::new(&g, &nf, SimConfig::default()).with_recorder(rec.clone());
        let steps = steps_from_pairs(&[("req", 0, 3), ("rsp", 3, 0)]);
        let o = sim.run(&steps, &mut LossProcess::new(0.0, 1));
        assert!(o.completed);
        let s = rec.snapshot();
        // Root + 2 steps + 2 transmissions.
        let kinds: Vec<&str> = s.spans.iter().map(|sp| sp.kind).collect();
        assert_eq!(
            kinds,
            vec![
                "netsim.sim.procedure",
                "netsim.sim.step",
                "netsim.sim.tx",
                "netsim.sim.step",
                "netsim.sim.tx",
            ]
        );
        let root = &s.spans[0];
        assert_eq!(root.parent, None);
        assert_eq!(root.end, Some(o.latency_ms));
        // Steps parent on the root; transmissions on their step.
        assert_eq!(s.spans[1].parent, Some(root.id));
        assert_eq!(s.spans[2].parent, Some(s.spans[1].id));
        assert_eq!(s.spans[3].parent, Some(root.id));
        assert_eq!(s.spans[4].parent, Some(s.spans[3].id));
        // Second step starts when the first delivers.
        assert_eq!(s.spans[1].end, Some(s.spans[3].start));
        // Outcomes are identical with telemetry off.
        let plain = ProcedureSim::new(&g, &nf, SimConfig::default());
        let o2 = plain.run(&steps, &mut LossProcess::new(0.0, 1));
        assert_eq!(o, o2);
    }

    #[test]
    fn lost_transmission_span_carries_rto_width() {
        let g = line();
        let nf = no_failures();
        let rec = Recorder::new();
        let cfg = SimConfig {
            max_attempts: 8,
            ..SimConfig::default()
        };
        let sim = ProcedureSim::new(&g, &nf, cfg.clone()).with_recorder(rec.clone());
        let steps = steps_from_pairs(&[("a", 0, 3)]);
        // Seed 3 loses the first transmissions (see backoff test above).
        let o = sim.run(&steps, &mut LossProcess::new(0.9, 3));
        let s = rec.snapshot();
        let lost: Vec<_> = s
            .spans
            .iter()
            .filter(|sp| {
                sp.kind == "netsim.sim.tx"
                    && sp.fields.iter().any(|(k, _)| *k == "lost")
            })
            .collect();
        assert_eq!(lost.len() as u64, s.counter("netsim.sim.losses"));
        for sp in &lost {
            assert_eq!(sp.duration(), Some(cfg.rto_ms));
        }
        // Blocked procedures leave their current step span open.
        if !o.completed {
            let open_steps = s
                .spans
                .iter()
                .filter(|sp| sp.kind == "netsim.sim.step" && sp.end.is_none())
                .count();
            assert_eq!(open_steps, 1);
        }
    }

    #[test]
    fn run_traced_parents_root_on_caller_span() {
        let g = line();
        let nf = no_failures();
        let rec = Recorder::new();
        let outer = rec.span_open(None, "fiveg.proc.test", 0.0, vec![]);
        let sim =
            ProcedureSim::new(&g, &nf, SimConfig::default()).with_recorder(rec.clone());
        let steps = steps_from_pairs(&[("a", 0, 3)]);
        let o = sim.run_traced(&steps, &mut LossProcess::new(0.0, 1), Some(outer));
        rec.span_close(outer, o.latency_ms);
        let s = rec.snapshot();
        assert_eq!(s.spans[0].kind, "fiveg.proc.test");
        assert_eq!(s.spans[1].kind, "netsim.sim.procedure");
        assert_eq!(s.spans[1].parent, Some(s.spans[0].id));
    }

    #[test]
    fn slow_delivery_does_not_trigger_spurious_rto() {
        // Regression: path delay (3 × 200 ms) far exceeds the RTO
        // (50 ms). The armed Timeout fires while the transmission is
        // still in flight; it must be suppressed, not duplicated.
        let mut g = Graph::new(4);
        g.add_bidirectional(0, 1, 200.0);
        g.add_bidirectional(1, 2, 200.0);
        g.add_bidirectional(2, 3, 200.0);
        let nf = no_failures();
        let rec = Recorder::new();
        let cfg = SimConfig {
            rto_ms: 50.0,
            ..SimConfig::default()
        };
        let sim = ProcedureSim::new(&g, &nf, cfg).with_recorder(rec.clone());
        let steps = steps_from_pairs(&[("slow", 0, 3)]);
        let o = sim.run(&steps, &mut LossProcess::new(0.0, 1));
        assert!(o.completed);
        assert_eq!(o.transmissions, 1, "in-flight delivery must not retransmit");
        assert!((o.latency_ms - 601.0).abs() < 1e-9, "{}", o.latency_ms);
        let s = rec.snapshot();
        assert_eq!(s.counter("netsim.sim.spurious_rto"), 1);
        assert_eq!(s.counter("netsim.sim.retransmissions"), 0);
    }

    #[test]
    fn per_hop_loss_scales_with_path_length() {
        let g = line();
        let nf = no_failures();
        // Self-addressed step (0 hops): per-hop ambient loss can never
        // touch it, even at p = 1.0.
        let cfg = SimConfig {
            loss_per_hop: true,
            ..SimConfig::default()
        };
        let sim = ProcedureSim::new(&g, &nf, cfg);
        let steps = steps_from_pairs(&[("local", 2, 2)]);
        let o = sim.run(&steps, &mut LossProcess::new(1.0, 1));
        assert!(o.completed);
        assert_eq!(o.transmissions, 1);
        // Longer paths lose more (1 hop vs 3 hops, no retries).
        let cfg1 = SimConfig {
            loss_per_hop: true,
            max_attempts: 1,
            ..SimConfig::default()
        };
        let sim = ProcedureSim::new(&g, &nf, cfg1);
        let short = steps_from_pairs(&[("s", 0, 1)]);
        let long = steps_from_pairs(&[("l", 0, 3)]);
        let mut short_ok = 0;
        let mut long_ok = 0;
        for seed in 0..400 {
            if sim.run(&short, &mut LossProcess::new(0.3, seed)).completed {
                short_ok += 1;
            }
            if sim.run(&long, &mut LossProcess::new(0.3, seed + 1000)).completed {
                long_ok += 1;
            }
        }
        // P(short) = 0.7 vs P(long) = 0.7^3 ≈ 0.34.
        assert!(short_ok > long_ok + 40, "short {short_ok} long {long_ok}");
    }

    #[test]
    fn rto_backoff_grows_and_caps() {
        let cfg = SimConfig {
            rto_ms: 100.0,
            backoff_factor: 2.0,
            rto_cap_ms: 350.0,
            ..SimConfig::default()
        };
        assert_eq!(cfg.rto_for(1), 100.0);
        assert_eq!(cfg.rto_for(2), 200.0);
        assert_eq!(cfg.rto_for(3), 350.0); // capped from 400
        assert_eq!(cfg.rto_for(9), 350.0);
        // Legacy defaults: fixed RTO, bit-exact.
        let legacy = SimConfig::default();
        for a in 1..10 {
            assert_eq!(legacy.rto_for(a), legacy.rto_ms);
        }
    }

    #[test]
    fn backoff_stretches_recovery_time() {
        let g = line();
        let nf = no_failures();
        let steps = steps_from_pairs(&[("a", 0, 3)]);
        // Seeded so the first few transmissions are lost.
        let fixed = ProcedureSim::new(&g, &nf, SimConfig {
            max_attempts: 8,
            ..SimConfig::default()
        });
        let backed = ProcedureSim::new(&g, &nf, SimConfig {
            max_attempts: 8,
            backoff_factor: 2.0,
            ..SimConfig::default()
        });
        let o_fixed = fixed.run(&steps, &mut LossProcess::new(0.9, 3));
        let o_backed = backed.run(&steps, &mut LossProcess::new(0.9, 3));
        // Identical loss draws (same seed): completion parity, but the
        // backed-off run waits longer between its retries.
        assert_eq!(o_fixed.completed, o_backed.completed);
        assert_eq!(o_fixed.transmissions, o_backed.transmissions);
        if o_fixed.transmissions > 1 {
            assert!(o_backed.latency_ms > o_fixed.latency_ms);
        }
    }

    #[test]
    fn total_deadline_aborts_late_sends() {
        let g = line();
        let nf = no_failures();
        let cfg = SimConfig {
            max_attempts: 100,
            total_deadline_ms: 900.0, // two 400 ms RTOs fit, not many more
            ..SimConfig::default()
        };
        let sim = ProcedureSim::new(&g, &nf, cfg);
        let steps = steps_from_pairs(&[("a", 0, 3)]);
        let o = sim.run(&steps, &mut LossProcess::new(1.0, 1));
        assert!(!o.completed);
        assert!(o.latency_ms <= 1300.0, "{}", o.latency_ms);
        assert!(o.transmissions <= 3, "{}", o.transmissions);
    }

    #[test]
    fn partition_retry_survives_crash_then_recover() {
        // 0—1—3 only (no detour): node 1 dead from t=0, recovers at
        // t=1000 ms. Legacy behavior aborts immediately; with
        // retry_on_partition the run waits out the outage and completes.
        let mut g = Graph::new(4);
        g.add_bidirectional(0, 1, 10.0);
        g.add_bidirectional(1, 3, 10.0);
        let tl = FailureTimeline::none().crash(0.0, 1).recover(1000.0, 1);
        let abort = ProcedureSim::with_timeline(&g, &tl, SimConfig::default());
        let steps = steps_from_pairs(&[("a", 0, 3)]);
        let o = abort.run(&steps, &mut LossProcess::new(0.0, 1));
        assert!(!o.completed, "legacy semantics abort on partition");

        let rec = Recorder::new();
        let retry = ProcedureSim::with_timeline(&g, &tl, SimConfig {
            retry_on_partition: true,
            total_deadline_ms: 5000.0,
            ..SimConfig::default()
        })
        .with_recorder(rec.clone());
        let o = retry.run(&steps, &mut LossProcess::new(0.0, 1));
        assert!(o.completed, "partition-as-transient rides out the crash");
        assert!(o.latency_ms >= 1000.0, "{}", o.latency_ms);
        let s = rec.snapshot();
        assert!(s.counter("netsim.sim.partition_retries") >= 1);
        assert_eq!(s.counter("netsim.chaos.crashes"), 1);
        assert_eq!(s.counter("netsim.chaos.recoveries"), 1);
    }

    #[test]
    fn partition_retry_respects_deadline_budget() {
        // Node 1 never recovers: the retry loop must terminate at the
        // deadline instead of spinning forever.
        let mut g = Graph::new(4);
        g.add_bidirectional(0, 1, 10.0);
        g.add_bidirectional(1, 3, 10.0);
        let tl = FailureTimeline::none().crash(0.0, 1);
        let sim = ProcedureSim::with_timeline(&g, &tl, SimConfig {
            retry_on_partition: true,
            total_deadline_ms: 2000.0,
            ..SimConfig::default()
        });
        let steps = steps_from_pairs(&[("a", 0, 3)]);
        let o = sim.run(&steps, &mut LossProcess::new(0.0, 1));
        assert!(!o.completed);
        assert!(o.latency_ms <= 2000.0, "{}", o.latency_ms);
    }

    #[test]
    fn chaos_reroute_mid_procedure() {
        // Diamond: fast 0-1-3 and slow 0-2-3. Node 1 dies at t=20 ms —
        // after step "a" (which uses the fast path) but before step "b"
        // resolves, so "b" reroutes onto the slow path dynamically.
        let mut g = Graph::new(4);
        g.add_bidirectional(0, 1, 5.0);
        g.add_bidirectional(1, 3, 5.0);
        g.add_bidirectional(0, 2, 20.0);
        g.add_bidirectional(2, 3, 20.0);
        let tl = FailureTimeline::none().crash(20.0, 1);
        let sim = ProcedureSim::with_timeline(&g, &tl, SimConfig::default());
        let steps = steps_from_pairs(&[("a", 0, 3), ("b", 3, 0)]);
        let o = sim.run(&steps, &mut LossProcess::new(0.0, 1));
        assert!(o.completed);
        // Leg a: 10 + 1 = 11 ms (fast). Leg b starts at 11 < 20 … but
        // resolves at its own Send pop at t = 11 — still fast? No: the
        // cursor has only advanced to 11, node 1 alive, so leg b also
        // takes the fast path and delivers at 22. Crash at 20 happens
        // while b is in flight — delivery already scheduled, unaffected
        // (the message left node 1 before the crash reached routing).
        assert!((o.latency_ms - 22.0).abs() < 1e-9, "{}", o.latency_ms);

        // Crash earlier (t = 5 ms): leg a is in flight on the fast path,
        // leg b (resolved at t = 11) must reroute onto the slow path.
        let tl2 = FailureTimeline::none().crash(5.0, 1);
        let sim2 = ProcedureSim::with_timeline(&g, &tl2, SimConfig::default());
        let o2 = sim2.run(&steps, &mut LossProcess::new(0.0, 1));
        assert!(o2.completed);
        // Leg a delivers at 11, leg b reroutes: 40 + 1 = 41 → total 52.
        assert!((o2.latency_ms - 52.0).abs() < 1e-9, "{}", o2.latency_ms);
    }

    #[test]
    fn empty_timeline_matches_static_run() {
        let g = line();
        let nf = no_failures();
        let tl = FailureTimeline::none();
        let steps = steps_from_pairs(&[("a", 0, 3), ("b", 3, 0)]);
        let o_static = ProcedureSim::new(&g, &nf, SimConfig::default())
            .run(&steps, &mut LossProcess::new(0.3, 42));
        let o_tl = ProcedureSim::with_timeline(&g, &tl, SimConfig::default())
            .run(&steps, &mut LossProcess::new(0.3, 42));
        assert_eq!(o_static, o_tl);
    }

    #[test]
    fn longer_procedures_are_more_fragile() {
        // §3.3: "any signaling loss/error can block the entire
        // procedure" — completion probability decays with step count.
        let g = line();
        let nf = no_failures();
        let cfg = SimConfig {
            max_attempts: 1, // no retries: raw fragility
            ..SimConfig::default()
        };
        let sim = ProcedureSim::new(&g, &nf, cfg);
        let long: Vec<SimStep> =
            steps_from_pairs(&(0..24).map(|_| ("s", 0usize, 3usize)).collect::<Vec<_>>());
        let short: Vec<SimStep> =
            steps_from_pairs(&(0..4).map(|_| ("s", 0usize, 3usize)).collect::<Vec<_>>());
        let mut long_ok = 0;
        let mut short_ok = 0;
        for seed in 0..300 {
            if sim.run(&long, &mut LossProcess::new(0.05, seed)).completed {
                long_ok += 1;
            }
            if sim.run(&short, &mut LossProcess::new(0.05, seed + 1000)).completed {
                short_ok += 1;
            }
        }
        assert!(short_ok > long_ok + 30, "short {short_ok} long {long_ok}");
    }
}
