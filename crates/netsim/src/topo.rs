//! Weighted graph and Dijkstra shortest paths.
//!
//! The shortest-path routing here is the *baseline* satellite routing the
//! paper's alternatives use (state-dependent, recomputed as the topology
//! changes); SpaceCore's stateless Algorithm 1 (in the `spacecore` crate)
//! is evaluated against it for path stretch.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Index of a node in a [`Graph`].
pub type NodeId = usize;

/// One directed edge.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Edge {
    to: NodeId,
    /// Edge weight — the emulation uses one-way delay in milliseconds.
    weight: f64,
}

/// A directed weighted graph (adjacency lists).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<Edge>>,
}

/// Result of a shortest-path query.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Node sequence from source to destination (inclusive).
    pub path: Vec<NodeId>,
    /// Total weight (delay, ms).
    pub cost: f64,
}

impl PathResult {
    /// Number of hops (edges) on the path.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

impl Graph {
    /// Create a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Add a directed edge.
    ///
    /// # Panics
    /// Panics on out-of-range nodes or non-finite/negative weights.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: f64) {
        assert!(from < self.adj.len() && to < self.adj.len(), "node out of range");
        assert!(weight.is_finite() && weight >= 0.0, "bad weight {weight}");
        self.adj[from].push(Edge { to, weight });
    }

    /// Add edges in both directions with the same weight.
    pub fn add_bidirectional(&mut self, a: NodeId, b: NodeId, weight: f64) {
        self.add_edge(a, b, weight);
        self.add_edge(b, a, weight);
    }

    /// Out-neighbours of a node with weights.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.adj[n].iter().map(|e| (e.to, e.weight))
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|v| v.len()).sum()
    }

    /// Dijkstra shortest path from `src` to `dst`, skipping nodes for
    /// which `blocked(node)` is true (used for failure injection: dead
    /// satellites simply vanish from the graph).
    ///
    /// Returns `None` when `dst` is unreachable.
    pub fn shortest_path(
        &self,
        src: NodeId,
        dst: NodeId,
        blocked: impl Fn(NodeId) -> bool,
    ) -> Option<PathResult> {
        self.shortest_path_avoiding(src, dst, blocked, |_, _| false)
    }

    /// [`Self::shortest_path`] with an additional undirected-edge filter:
    /// edges for which `blocked_edge(a, b)` is true are skipped — the
    /// routing view of a flapped inter-satellite laser link
    /// (`sc-netsim::chaos`), where both endpoints are alive but the link
    /// between them is not.
    pub fn shortest_path_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        blocked: impl Fn(NodeId) -> bool,
        blocked_edge: impl Fn(NodeId, NodeId) -> bool,
    ) -> Option<PathResult> {
        if blocked(src) || blocked(dst) {
            return None;
        }
        #[derive(PartialEq)]
        struct QItem {
            dist: f64,
            node: NodeId,
        }
        impl Eq for QItem {}
        impl Ord for QItem {
            fn cmp(&self, o: &Self) -> Ordering {
                o.dist
                    .total_cmp(&self.dist)
                    .then_with(|| o.node.cmp(&self.node))
            }
        }
        impl PartialOrd for QItem {
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                Some(self.cmp(o))
            }
        }

        let n = self.adj.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(QItem { dist: 0.0, node: src });

        while let Some(QItem { dist: d, node }) = heap.pop() {
            if node == dst {
                break;
            }
            if d > dist[node] {
                continue;
            }
            for e in &self.adj[node] {
                if blocked(e.to) || blocked_edge(node, e.to) {
                    continue;
                }
                let nd = d + e.weight;
                if nd < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = node;
                    heap.push(QItem { dist: nd, node: e.to });
                }
            }
        }

        if dist[dst].is_infinite() {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(PathResult {
            path,
            cost: dist[dst],
        })
    }

    /// Hop count of the shortest path by *hops* (unit weights), or `None`
    /// if unreachable. Used for the paper's "multi-hop (up to 48)
    /// signaling delivery" analysis (§3.2).
    pub fn hop_distance(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        // BFS.
        if src == dst {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(n) = queue.pop_front() {
            for e in &self.adj[n] {
                if dist[e.to] == usize::MAX {
                    dist[e.to] = dist[n] + 1;
                    if e.to == dst {
                        return Some(dist[e.to]);
                    }
                    queue.push_back(e.to);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small diamond: 0 → 1 → 3 (cost 2), 0 → 2 → 3 (cost 10).
    fn diamond() -> Graph {
        let mut g = Graph::new(4);
        g.add_bidirectional(0, 1, 1.0);
        g.add_bidirectional(1, 3, 1.0);
        g.add_bidirectional(0, 2, 5.0);
        g.add_bidirectional(2, 3, 5.0);
        g
    }

    #[test]
    fn picks_cheapest_path() {
        let g = diamond();
        let r = g.shortest_path(0, 3, |_| false).unwrap();
        assert_eq!(r.path, vec![0, 1, 3]);
        assert!((r.cost - 2.0).abs() < 1e-12);
        assert_eq!(r.hops(), 2);
    }

    #[test]
    fn routes_around_blocked_node() {
        let g = diamond();
        let r = g.shortest_path(0, 3, |n| n == 1).unwrap();
        assert_eq!(r.path, vec![0, 2, 3]);
        assert!((r.cost - 10.0).abs() < 1e-12);
    }

    #[test]
    fn routes_around_blocked_edge() {
        let g = diamond();
        // Cut the cheap 1—3 edge (undirected semantics: either order).
        let cut = |a: NodeId, b: NodeId| (a.min(b), a.max(b)) == (1, 3);
        let r = g.shortest_path_avoiding(0, 3, |_| false, cut).unwrap();
        assert_eq!(r.path, vec![0, 2, 3]);
        assert!((r.cost - 10.0).abs() < 1e-12);
        // Cut everything into 3: unreachable, nodes all alive.
        let r = g.shortest_path_avoiding(0, 3, |_| false, |a, b| a.max(b) == 3);
        assert!(r.is_none());
    }

    #[test]
    fn unreachable_when_all_cut() {
        let g = diamond();
        assert!(g.shortest_path(0, 3, |n| n == 1 || n == 2).is_none());
    }

    #[test]
    fn blocked_endpoint_is_unreachable() {
        let g = diamond();
        assert!(g.shortest_path(0, 3, |n| n == 3).is_none());
        assert!(g.shortest_path(0, 3, |n| n == 0).is_none());
    }

    #[test]
    fn trivial_self_path() {
        let g = diamond();
        let r = g.shortest_path(2, 2, |_| false).unwrap();
        assert_eq!(r.path, vec![2]);
        assert_eq!(r.hops(), 0);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn hop_distance_bfs() {
        let g = diamond();
        assert_eq!(g.hop_distance(0, 3), Some(2));
        assert_eq!(g.hop_distance(0, 0), Some(0));
        let mut g2 = Graph::new(2);
        assert_eq!(g2.hop_distance(0, 1), None);
        g2.add_edge(0, 1, 1.0);
        assert_eq!(g2.hop_distance(0, 1), Some(1));
        // Directed: reverse still unreachable.
        assert_eq!(g2.hop_distance(1, 0), None);
    }

    #[test]
    fn ring_distances() {
        // 10-node ring: max hop distance is 5.
        let mut g = Graph::new(10);
        for i in 0..10 {
            g.add_bidirectional(i, (i + 1) % 10, 1.0);
        }
        assert_eq!(g.hop_distance(0, 5), Some(5));
        assert_eq!(g.hop_distance(0, 9), Some(1));
        let r = g.shortest_path(0, 5, |_| false).unwrap();
        assert_eq!(r.hops(), 5);
    }

    #[test]
    #[should_panic(expected = "bad weight")]
    fn rejects_negative_weight() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, -1.0);
    }
}
