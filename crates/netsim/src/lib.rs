//! Network substrate: deterministic discrete-event simulation, satellite
//! network topology, routing, queueing, and failure/attack injection.
//!
//! The paper's what-if emulations (§3 "Methodology") run 5G procedures
//! over LEO constellations with a grid ISL topology, ground stations, and
//! realistic failure processes. This crate provides those moving parts:
//!
//! * [`des`] — a deterministic discrete-event scheduler (total order on
//!   time with FIFO tie-breaking, so replays are bit-identical),
//! * [`topo`] — a weighted graph with Dijkstra shortest paths: the
//!   baseline routing that SpaceCore's Algorithm 1 is compared against,
//! * [`isl`] — builders for the +Grid inter-satellite-link topology of
//!   Table 1 constellations, with physical link delays from actual
//!   satellite separations at any emulation time,
//! * [`queueing`] — the M/M/1-style signaling-latency model used to
//!   reproduce the latency-vs-load knees of Figures 8 and 17,
//! * [`failure`] — Bernoulli and Gilbert–Elliott (bursty) loss processes
//!   matching the radio-link failure traces of Figure 13b, satellite
//!   decay (Fig. 13a), plus hijack and man-in-the-middle attack markers
//!   for the Figure 19 leakage experiments,
//! * [`chaos`] — dynamic fault timelines: seeded, sim-time-ordered
//!   schedules of node crash/recover, link flaps, and loss-burst windows
//!   that [`sim::ProcedureSim`] replays as its DES clock advances, so a
//!   satellite can die (and recover) *mid-procedure*.
//!
//! The DES and the message-level procedure simulator carry an optional
//! `sc-obs` recorder: [`des::EventQueue`] counts scheduled/processed
//! events, and [`sim::ProcedureSim`] counts transmissions, losses,
//! retransmissions, and completions, records a per-procedure latency
//! histogram, and emits a sim-time-stamped `netsim.delivery` event per
//! delivered message (metric registry: `docs/TELEMETRY.md`). Telemetry
//! never touches the wall clock, so instrumented runs stay bit-identical.

pub mod capacity;
pub mod chaos;
pub mod des;
pub mod failure;
pub mod flow;
pub mod isl;
pub mod queueing;
pub mod sim;
pub mod topo;

pub use capacity::CapacityModel;
pub use chaos::{ChaosAction, ChaosCursor, ChaosEvent, FailureTimeline};
pub use des::{EventQueue, ScheduledEvent};
pub use flow::{handover_scenario, TcpFlow, TcpPhase};
pub use failure::{AttackInjector, GilbertElliott, LossProcess, NodeFailures};
pub use isl::{IslNetwork, NodeKind};
pub use queueing::MM1Model;
pub use sim::{ProcedureSim, SimConfig, SimOutcome, SimStep};
pub use topo::{Graph, NodeId, PathResult};
