//! Signaling-latency queueing model.
//!
//! Figures 8 and 17 plot signaling delay against offered load on two
//! satellite hardware profiles: flat at low load, then a sharp knee as
//! the CPU saturates. An M/M/1 queue with a load-dependent overload ramp
//! reproduces exactly that shape:
//!
//! * below saturation, sojourn time `W = 1/(μ − λ)`,
//! * at/over saturation the queue is unstable; the emulation caps the
//!   horizon and reports the backlog-drain delay after `horizon` seconds
//!   of arrivals, which grows linearly in the overload — matching the
//!   near-linear post-knee growth the paper measures.

/// An M/M/1-style latency model for one processing stage.
#[derive(Debug, Clone, Copy)]
pub struct MM1Model {
    /// Service rate μ, messages/second.
    pub service_rate: f64,
    /// Horizon over which overload backlog accumulates, seconds.
    pub overload_horizon_s: f64,
}

impl MM1Model {
    /// Build from a per-message service time (seconds).
    pub fn from_service_time(service_time_s: f64, overload_horizon_s: f64) -> Self {
        assert!(service_time_s > 0.0);
        Self {
            service_rate: 1.0 / service_time_s,
            overload_horizon_s,
        }
    }

    /// Utilization ρ = λ/μ at arrival rate `lambda`.
    pub fn utilization(&self, lambda: f64) -> f64 {
        lambda / self.service_rate
    }

    /// Is the stage overloaded at this arrival rate?
    pub fn saturated(&self, lambda: f64) -> bool {
        lambda >= self.service_rate
    }

    /// Mean sojourn time (queueing + service) in seconds at arrival rate
    /// `lambda` (messages/s).
    ///
    /// In overload, returns the mean delay of messages arriving during an
    /// `overload_horizon_s` window: the backlog grows at `λ − μ`, so the
    /// average waiting message sees half the final backlog plus service.
    pub fn sojourn_s(&self, lambda: f64) -> f64 {
        assert!(lambda >= 0.0 && lambda.is_finite());
        let mu = self.service_rate;
        if lambda < mu * 0.999 {
            1.0 / (mu - lambda)
        } else {
            // Unstable: backlog after H seconds is (λ-μ)·H messages; the
            // mean arrival waits half of that backlog's drain time plus
            // one service.
            let backlog = (lambda - mu).max(0.0) * self.overload_horizon_s;
            0.5 * backlog / mu + 1.0 / mu
        }
    }

    /// CPU usage percentage implied by this arrival rate (capped at 100).
    pub fn cpu_percent(&self, lambda: f64) -> f64 {
        (self.utilization(lambda) * 100.0).min(100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MM1Model {
        // 2 ms service time, 10 s overload horizon.
        MM1Model::from_service_time(0.002, 10.0)
    }

    #[test]
    fn idle_latency_is_service_time() {
        let m = model();
        assert!((m.sojourn_s(0.0) - 0.002).abs() < 1e-12);
    }

    #[test]
    fn latency_monotone_in_load() {
        let m = model();
        let mut prev = 0.0;
        for lambda in [0.0, 100.0, 200.0, 300.0, 400.0, 450.0, 490.0, 600.0, 800.0] {
            let w = m.sojourn_s(lambda);
            assert!(w >= prev, "λ={lambda}: {w} < {prev}");
            prev = w;
        }
    }

    #[test]
    fn knee_at_saturation() {
        let m = model(); // μ = 500/s
        let below = m.sojourn_s(400.0);
        let above = m.sojourn_s(600.0);
        assert!(below < 0.05, "{below}");
        assert!(above > 0.5, "{above}"); // backlog-dominated
        assert!(m.saturated(600.0));
        assert!(!m.saturated(400.0));
    }

    #[test]
    fn overload_grows_linearly() {
        let m = model();
        let a = m.sojourn_s(1000.0);
        let b = m.sojourn_s(1500.0);
        let c = m.sojourn_s(2000.0);
        // Equal increments of λ → equal increments of delay.
        assert!(((b - a) - (c - b)).abs() < 1e-9);
    }

    #[test]
    fn cpu_percent_caps() {
        let m = model();
        assert!((m.cpu_percent(250.0) - 50.0).abs() < 1e-9);
        assert_eq!(m.cpu_percent(10_000.0), 100.0);
    }

    #[test]
    fn utilization_linear() {
        let m = model();
        assert!((m.utilization(250.0) - 0.5).abs() < 1e-12);
    }
}
