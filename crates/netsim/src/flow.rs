//! A minimal TCP throughput model: AIMD with RTO-based recovery.
//!
//! Figure 21 measures *user-level* stalling: ping gaps and TCP
//! throughput collapse/recovery across satellite handovers. This model
//! reproduces the transport dynamics that turn a signaling outage into
//! a longer user-visible stall: congestion-window AIMD growth, an RTO
//! (with exponential backoff) when the path blacks out, slow-start
//! recovery afterwards — and full connection loss when the endpoint
//! address changes.

/// Connection phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpPhase {
    SlowStart,
    CongestionAvoidance,
    /// Waiting out an RTO (path dead).
    Backoff,
    /// Connection destroyed (address changed); needs re-establishment.
    Closed,
}

/// The TCP flow model, stepped at a fixed tick.
#[derive(Debug, Clone)]
pub struct TcpFlow {
    /// Congestion window, segments.
    cwnd: f64,
    /// Slow-start threshold, segments.
    ssthresh: f64,
    phase: TcpPhase,
    /// Current RTO, seconds (doubles per failed probe).
    rto_s: f64,
    /// Time of next retransmission probe while in backoff.
    next_probe: f64,
    /// Base RTT of the current path, seconds.
    rtt_s: f64,
    /// Segment size bytes (for throughput conversion).
    mss_bytes: f64,
}

/// RFC 6298 minimum RTO as commonly deployed.
pub const RTO_MIN_S: f64 = 0.2;
/// Cap on the backoff.
pub const RTO_MAX_S: f64 = 60.0;

impl TcpFlow {
    /// A fresh established connection over a path with `rtt_s`.
    pub fn new(rtt_s: f64) -> Self {
        assert!(rtt_s > 0.0);
        Self {
            cwnd: 10.0, // IW10
            ssthresh: 64.0,
            phase: TcpPhase::SlowStart,
            rto_s: (2.0 * rtt_s).max(RTO_MIN_S),
            next_probe: 0.0,
            rtt_s,
            mss_bytes: 1460.0,
        }
    }

    pub fn phase(&self) -> TcpPhase {
        self.phase
    }

    /// Instantaneous throughput estimate, Mbit/s.
    pub fn throughput_mbps(&self) -> f64 {
        match self.phase {
            TcpPhase::Backoff | TcpPhase::Closed => 0.0,
            _ => self.cwnd * self.mss_bytes * 8.0 / self.rtt_s / 1e6,
        }
    }

    /// Advance one RTT of successful transmission.
    fn on_good_rtt(&mut self) {
        match self.phase {
            TcpPhase::SlowStart => {
                self.cwnd *= 2.0;
                if self.cwnd >= self.ssthresh {
                    self.phase = TcpPhase::CongestionAvoidance;
                }
            }
            TcpPhase::CongestionAvoidance => {
                self.cwnd += 1.0;
            }
            _ => {}
        }
        self.cwnd = self.cwnd.min(1000.0);
    }

    /// The path blacked out at time `now` (handover outage began).
    pub fn on_path_down(&mut self, now: f64) {
        if self.phase != TcpPhase::Closed {
            self.phase = TcpPhase::Backoff;
            self.next_probe = now + self.rto_s;
        }
    }

    /// The endpoint address changed: the connection is dead.
    pub fn on_address_change(&mut self) {
        self.phase = TcpPhase::Closed;
        self.cwnd = 0.0;
    }

    /// Step the model to time `now`, given whether the path currently
    /// works. Returns the current throughput (Mbit/s).
    pub fn step(&mut self, now: f64, path_up: bool) -> f64 {
        match self.phase {
            TcpPhase::Closed => 0.0,
            TcpPhase::Backoff => {
                if now >= self.next_probe {
                    if path_up {
                        // Probe succeeds: slow-start restart.
                        self.ssthresh = (self.cwnd / 2.0).max(2.0);
                        self.cwnd = 1.0;
                        self.phase = TcpPhase::SlowStart;
                        self.rto_s = (2.0 * self.rtt_s).max(RTO_MIN_S);
                    } else {
                        // Exponential backoff.
                        self.rto_s = (self.rto_s * 2.0).min(RTO_MAX_S);
                        self.next_probe = now + self.rto_s;
                    }
                }
                0.0
            }
            _ => {
                if !path_up {
                    self.on_path_down(now);
                    0.0
                } else {
                    self.on_good_rtt();
                    self.throughput_mbps()
                }
            }
        }
    }

    /// Re-establish after an address change: a brand-new connection
    /// (handshake cost borne by the caller's timeline).
    pub fn reestablish(&mut self, rtt_s: f64) {
        *self = TcpFlow::new(rtt_s);
    }
}

/// Run a handover scenario: the path is up except during
/// `[outage_start, outage_end)`; if `address_changes`, the connection
/// dies at outage start and is re-established `reconnect_delay_s` after
/// the outage ends. Returns `(time, throughput)` samples at `tick_s`
/// and the measured stall duration (first zero to next non-zero).
pub fn handover_scenario(
    rtt_s: f64,
    outage_start: f64,
    outage_end: f64,
    address_changes: bool,
    reconnect_delay_s: f64,
    horizon: f64,
    tick_s: f64,
) -> (Vec<(f64, f64)>, f64) {
    let mut flow = TcpFlow::new(rtt_s);
    let mut samples = Vec::new();
    let mut t = 0.0;
    let mut reestablished = false;
    while t <= horizon {
        let path_up = !(outage_start..outage_end).contains(&t);
        if address_changes && t >= outage_start && flow.phase() != TcpPhase::Closed && !reestablished
        {
            flow.on_address_change();
        }
        if address_changes
            && !reestablished
            && t >= outage_end + reconnect_delay_s
        {
            flow.reestablish(rtt_s);
            reestablished = true;
        }
        let thr = flow.step(t, path_up);
        samples.push((t, thr));
        t += tick_s;
    }
    // Stall: the longest zero-throughput run that contains the outage.
    let mut stall = 0.0f64;
    let mut cur_start: Option<f64> = None;
    for (time, thr) in &samples {
        if *thr == 0.0 {
            cur_start.get_or_insert(*time);
        } else if let Some(s) = cur_start.take() {
            if *time > outage_start && s <= outage_end {
                stall = stall.max(time - s);
            }
        }
    }
    if let Some(s) = cur_start {
        stall = stall.max(horizon - s);
    }
    (samples, stall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_then_linear() {
        let mut f = TcpFlow::new(0.05);
        let t0 = f.throughput_mbps();
        f.step(0.05, true);
        let t1 = f.throughput_mbps();
        assert!((t1 / t0 - 2.0).abs() < 1e-9, "{t0} -> {t1}");
        // Push past ssthresh into congestion avoidance.
        for i in 0..10 {
            f.step(0.1 + i as f64 * 0.05, true);
        }
        assert_eq!(f.phase(), TcpPhase::CongestionAvoidance);
    }

    #[test]
    fn outage_zeroes_throughput_and_recovers() {
        let (samples, stall) =
            handover_scenario(0.05, 5.0, 5.5, false, 0.0, 20.0, 0.05);
        // Zero during the outage.
        let during: Vec<f64> = samples
            .iter()
            .filter(|(t, _)| (5.0..5.5).contains(t))
            .map(|(_, x)| *x)
            .collect();
        assert!(during.iter().all(|x| *x == 0.0));
        // Recovered by the end.
        assert!(samples.last().unwrap().1 > 1.0);
        // Stall ≥ outage (RTO adds recovery lag).
        assert!(stall >= 0.5, "{stall}");
        assert!(stall < 5.0, "{stall}");
    }

    #[test]
    fn address_change_needs_reestablishment() {
        let keep = handover_scenario(0.05, 5.0, 5.5, false, 0.0, 30.0, 0.05).1;
        let change = handover_scenario(0.05, 5.0, 5.5, true, 1.0, 30.0, 0.05).1;
        assert!(change > keep, "change {change} keep {keep}");
    }

    #[test]
    fn rto_backoff_doubles() {
        let mut f = TcpFlow::new(0.05);
        f.on_path_down(0.0);
        let rto0 = f.rto_s;
        // Path still down at the probe: backoff doubles.
        f.step(rto0 + 0.01, false);
        assert!((f.rto_s - 2.0 * rto0).abs() < 1e-9);
        // Probe again, still down.
        f.step(rto0 + 2.0 * rto0 + 0.02, false);
        assert!((f.rto_s - 4.0 * rto0).abs() < 1e-9);
    }

    #[test]
    fn recovery_restarts_in_slow_start() {
        let mut f = TcpFlow::new(0.05);
        for i in 0..20 {
            f.step(i as f64 * 0.05, true);
        }
        let before = f.throughput_mbps();
        f.on_path_down(1.0);
        f.step(1.0 + f.rto_s + 0.01, true);
        assert_eq!(f.phase(), TcpPhase::SlowStart);
        assert!(f.throughput_mbps() < before / 4.0);
    }

    #[test]
    fn closed_flow_stays_closed_until_reestablish() {
        let mut f = TcpFlow::new(0.05);
        f.on_address_change();
        assert_eq!(f.step(10.0, true), 0.0);
        assert_eq!(f.phase(), TcpPhase::Closed);
        f.reestablish(0.05);
        assert!(f.step(11.0, true) > 0.0);
    }

    #[test]
    fn longer_rtt_lower_throughput() {
        let short = TcpFlow::new(0.02).throughput_mbps();
        let long = TcpFlow::new(0.2).throughput_mbps();
        assert!(short > long);
    }
}
