//! Deterministic chaos injection: sim-time-ordered failure timelines.
//!
//! The static [`NodeFailures`] snapshot answers "what if these satellites
//! were already dead when the procedure started?" — the Figure 13a decay
//! regime. This module answers the harder §3.3 question: what happens
//! when a satellite dies *mid-procedure*, a laser link flaps while a
//! message is in flight, or a radio-link loss burst (Fig. 13b) opens
//! right as a signaling exchange begins. A [`FailureTimeline`] is a
//! seeded, time-ordered schedule of such events; [`crate::sim::ProcedureSim`]
//! consults it as the DES clock advances, re-resolving paths per attempt
//! so routing reroutes around nodes that died after the procedure
//! started.
//!
//! Everything is deterministic: the schedule is fixed up front, burst
//! loss draws come from a counted splitmix64 hash stream keyed by the
//! timeline seed (so the n-th draw is a pure function of `(seed, n)`,
//! never of which cursor clone evaluates it), and event application
//! order is (time, insertion order) — so chaos runs replay
//! bit-identically, the property the `ext_chaos` experiment's
//! byte-stability checks enforce. Sharded engines that fan one timeline
//! out across UE partitions use [`ChaosCursor::burst_loss_keyed`]
//! instead: the loss decision is keyed by `(seed, entity, draw#)` and
//! is therefore invariant to shard layout and drain interleaving.
//!
//! Event times are quantized to the integer-microsecond grid on insert
//! ([`quantize_ms_to_us_grid`]) — the same tick resolution
//! `spacecore::shard::CellLedger` accounts busy-time in — so a chaos
//! window split across `drain_until` batch boundaries lands on exactly
//! the same tick no matter how the batches are cut.

use crate::failure::{NodeFailures, Xorshift64};
use crate::topo::NodeId;
use sc_obs::{FieldValue, Recorder};
use std::collections::HashSet;

/// Quantize a simulated time (ms) onto the integer-microsecond tick
/// grid. `CellLedger` integrates busy time in integer µs ticks; chaos
/// windows that open and close on the same grid sum exactly across
/// `drain_until` batch boundaries, where a raw f64 ms timestamp could
/// straddle a tick.
pub fn quantize_ms_to_us_grid(t_ms: f64) -> f64 {
    (t_ms * 1000.0).round() / 1000.0
}

/// One chaos action, applied at a scheduled simulated time.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosAction {
    /// Node (satellite or ground station) fails: it blocks routing and
    /// cannot source or sink messages.
    Crash(NodeId),
    /// Node comes back (replacement satellite slots in, reboot, …).
    Recover(NodeId),
    /// Undirected link becomes unusable (laser misalignment, §3.2).
    LinkDown(NodeId, NodeId),
    /// Undirected link realigns.
    LinkUp(NodeId, NodeId),
    /// A loss-burst window opens: every transmission additionally
    /// suffers Bernoulli(`p_loss`) loss — the bad state of a
    /// Gilbert–Elliott process (Fig. 13b), scheduled explicitly.
    BurstStart {
        /// Extra per-transmission loss probability while the window is open.
        p_loss: f64,
    },
    /// The most recent open burst window closes (LIFO on overlap).
    BurstEnd,
}

/// An action bound to its simulated time (ms, the DES unit).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosEvent {
    /// Simulated time the action takes effect, ms.
    pub time_ms: f64,
    /// What happens.
    pub action: ChaosAction,
}

/// A sim-time-ordered schedule of failure events.
///
/// Build one with the fluent methods ([`Self::crash`],
/// [`Self::link_flap`], [`Self::loss_burst`], …) or generate a seeded
/// random schedule with [`Self::random_crashes`]. A static
/// [`NodeFailures`] snapshot embeds as the trivial timeline
/// ([`Self::from_static`]): dead from t = 0, no events — replays of it
/// are outcome-identical to the static path (property-tested in
/// `tests/chaos_props.rs`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureTimeline {
    /// Sorted by `time_ms` (stable: ties keep insertion order).
    events: Vec<ChaosEvent>,
    /// Nodes dead from t = 0 (the static-snapshot embedding).
    initial_dead: Vec<NodeId>,
    /// Seed for the replay cursor's burst-loss draws.
    seed: u64,
}

impl FailureTimeline {
    /// The empty timeline: nothing ever fails.
    pub fn none() -> Self {
        Self::default()
    }

    /// Embed a static failure snapshot: every dead node is dead from
    /// t = 0 and never recovers. Replaying this timeline is equivalent
    /// to running against the snapshot itself.
    pub fn from_static(failures: &NodeFailures) -> Self {
        Self {
            initial_dead: failures.dead_nodes(),
            ..Self::default()
        }
    }

    /// Seeded random crash schedule over `num_nodes` nodes: each node
    /// independently crashes with probability `p_crash`, at a uniform
    /// time in `[0, horizon_ms)`; with `recover_after_ms = Some(d)` it
    /// recovers `d` ms after crashing (satellite replacement), with
    /// `None` it stays down.
    pub fn random_crashes(
        num_nodes: usize,
        p_crash: f64,
        horizon_ms: f64,
        recover_after_ms: Option<f64>,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&p_crash));
        assert!(horizon_ms >= 0.0 && horizon_ms.is_finite());
        let mut rng = Xorshift64::new(seed);
        let mut tl = Self {
            seed,
            ..Self::default()
        };
        for node in 0..num_nodes {
            if rng.chance(p_crash) {
                let t = rng.next_f64() * horizon_ms;
                tl = tl.crash(t, node);
                if let Some(d) = recover_after_ms {
                    tl = tl.recover(t + d, node);
                }
            }
        }
        tl
    }

    /// Seed for burst-loss draws (deterministic per timeline).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedule a node crash at `t_ms`. `t_ms = 0.0` is equivalent to
    /// the node being in the initial dead set.
    pub fn crash(self, t_ms: f64, node: NodeId) -> Self {
        self.push(t_ms, ChaosAction::Crash(node))
    }

    /// Schedule a node recovery at `t_ms`.
    pub fn recover(self, t_ms: f64, node: NodeId) -> Self {
        self.push(t_ms, ChaosAction::Recover(node))
    }

    /// Take the undirected link `a`–`b` down over `[t_down_ms, t_up_ms)`.
    pub fn link_flap(self, t_down_ms: f64, t_up_ms: f64, a: NodeId, b: NodeId) -> Self {
        assert!(t_down_ms <= t_up_ms, "link flap must end after it starts");
        self.push(t_down_ms, ChaosAction::LinkDown(a, b))
            .push(t_up_ms, ChaosAction::LinkUp(a, b))
    }

    /// Open a loss-burst window over `[t_start_ms, t_end_ms)` during
    /// which every transmission additionally suffers Bernoulli(`p_loss`)
    /// loss. Overlapping windows nest LIFO; the innermost probability
    /// applies.
    pub fn loss_burst(self, t_start_ms: f64, t_end_ms: f64, p_loss: f64) -> Self {
        assert!(t_start_ms <= t_end_ms, "burst must end after it starts");
        assert!((0.0..=1.0).contains(&p_loss));
        self.push(t_start_ms, ChaosAction::BurstStart { p_loss })
            .push(t_end_ms, ChaosAction::BurstEnd)
    }

    /// Strip every event touching `node` (and remove it from the initial
    /// dead set) — used to protect an endpoint the scenario requires
    /// alive, e.g. the satellite the UE re-establishes to.
    pub fn without_node(mut self, node: NodeId) -> Self {
        self.events.retain(|e| match e.action {
            ChaosAction::Crash(n) | ChaosAction::Recover(n) => n != node,
            ChaosAction::LinkDown(a, b) | ChaosAction::LinkUp(a, b) => a != node && b != node,
            ChaosAction::BurstStart { .. } | ChaosAction::BurstEnd => true,
        });
        self.initial_dead.retain(|&n| n != node);
        self
    }

    /// The scheduled events, in replay order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Nodes dead from t = 0.
    pub fn initial_dead(&self) -> &[NodeId] {
        &self.initial_dead
    }

    /// No events and no initially-dead nodes?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.initial_dead.is_empty()
    }

    /// Start a replay cursor at t = 0.
    pub fn cursor(&self) -> ChaosCursor<'_> {
        let mut dead: HashSet<NodeId> = HashSet::new();
        dead.extend(self.initial_dead.iter().copied());
        ChaosCursor {
            timeline: self,
            next: 0,
            dead,
            links_down: HashSet::new(),
            bursts: Vec::new(),
            draw_seed: self.seed.wrapping_add(0x051C_4A05),
            draws: 0,
        }
    }

    fn push(mut self, t_ms: f64, action: ChaosAction) -> Self {
        assert!(t_ms >= 0.0 && t_ms.is_finite(), "bad chaos time {t_ms}");
        self.events.push(ChaosEvent {
            time_ms: quantize_ms_to_us_grid(t_ms),
            action,
        });
        // Stable sort: ties keep insertion order, so replay order is a
        // pure function of the build sequence.
        self.events.sort_by(|a, b| a.time_ms.total_cmp(&b.time_ms));
        self
    }
}

/// Monotone replay cursor over a [`FailureTimeline`].
///
/// [`Self::advance_to`] applies every event scheduled at or before the
/// given time (the DES pops events in time order, so the cursor only
/// moves forward); the query methods then answer for "now". Chaos
/// telemetry (`netsim.chaos.*` counters, `chaos.crash` /
/// `chaos.recover` events stamped with the *scheduled* sim-time) is
/// emitted as events are applied.
#[derive(Debug, Clone)]
pub struct ChaosCursor<'a> {
    timeline: &'a FailureTimeline,
    /// Next unapplied event index.
    next: usize,
    dead: HashSet<NodeId>,
    /// Normalized (min, max) undirected down links.
    links_down: HashSet<(NodeId, NodeId)>,
    /// LIFO stack of open burst-window probabilities.
    bursts: Vec<f64>,
    /// Burst-draw hash-stream key (timeline seed, domain-separated).
    draw_seed: u64,
    /// Draws consumed from the cursor's own stream ([`Self::burst_loss`]).
    draws: u64,
}

/// splitmix64 finalizer — the same stateless hash stream the sharded
/// load engines key their per-UE draws with.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Top 53 bits of a hash as a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl ChaosCursor<'_> {
    /// Apply every event with `time_ms <= t_ms`.
    pub fn advance_to(&mut self, t_ms: f64, obs: &Recorder) {
        while let Some(ev) = self.timeline.events.get(self.next) {
            if ev.time_ms > t_ms {
                break;
            }
            match ev.action {
                ChaosAction::Crash(n) => {
                    if self.dead.insert(n) {
                        obs.inc("netsim.chaos.crashes", 1);
                        obs.event(ev.time_ms, "chaos.crash", vec![("node", FieldValue::from(n))]);
                    }
                }
                ChaosAction::Recover(n) => {
                    if self.dead.remove(&n) {
                        obs.inc("netsim.chaos.recoveries", 1);
                        obs.event(
                            ev.time_ms,
                            "chaos.recover",
                            vec![("node", FieldValue::from(n))],
                        );
                    }
                }
                ChaosAction::LinkDown(a, b) => {
                    if self.links_down.insert((a.min(b), a.max(b))) {
                        obs.inc("netsim.chaos.link_downs", 1);
                    }
                }
                ChaosAction::LinkUp(a, b) => {
                    if self.links_down.remove(&(a.min(b), a.max(b))) {
                        obs.inc("netsim.chaos.link_ups", 1);
                    }
                }
                ChaosAction::BurstStart { p_loss } => {
                    self.bursts.push(p_loss);
                    obs.inc("netsim.chaos.burst_windows", 1);
                }
                ChaosAction::BurstEnd => {
                    self.bursts.pop();
                }
            }
            self.next += 1;
        }
    }

    /// Is `node` dead right now?
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead.contains(&node)
    }

    /// Is the undirected link `a`–`b` down right now?
    pub fn link_down(&self, a: NodeId, b: NodeId) -> bool {
        !self.links_down.is_empty() && self.links_down.contains(&(a.min(b), a.max(b)))
    }

    /// Number of currently-dead nodes.
    pub fn dead_count(&self) -> usize {
        self.dead.len()
    }

    /// Draw one burst loss for a transmission happening now. Consumes
    /// cursor randomness only while a burst window is open, so runs
    /// without bursts never touch the draw counter. The n-th draw is a
    /// pure function of `(timeline seed, n)` — a counted hash stream,
    /// not evolving RNG state — so a cursor clone replaying the same
    /// draw sequence reproduces the same losses bit-for-bit.
    pub fn burst_loss(&mut self, obs: &Recorder) -> bool {
        let Some(&p) = self.bursts.last() else {
            return false;
        };
        let u = unit(mix64(self.draw_seed ^ mix64(self.draws)));
        self.draws += 1;
        let lost = u < p;
        if lost {
            obs.inc("netsim.chaos.burst_losses", 1);
        }
        lost
    }

    /// Keyed burst-loss draw for sharded fan-out: the decision for
    /// `(key, draw)` — e.g. a UE id and that UE's own draw counter — is
    /// a pure hash of `(timeline seed, key, draw)`, so it does not
    /// depend on which shard's cursor evaluates it or in what order
    /// shards interleave their queries. Like [`Self::burst_loss`], it
    /// only draws while a burst window is open.
    pub fn burst_loss_keyed(&self, key: u64, draw: u64, obs: &Recorder) -> bool {
        let Some(&p) = self.bursts.last() else {
            return false;
        };
        let u = unit(mix64(mix64(self.draw_seed ^ key).wrapping_add(draw)));
        let lost = u < p;
        if lost {
            obs.inc("netsim.chaos.burst_losses", 1);
        }
        lost
    }

    /// Is a loss-burst window currently open?
    pub fn in_burst(&self) -> bool {
        !self.bursts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline_blocks_nothing() {
        let tl = FailureTimeline::none();
        assert!(tl.is_empty());
        let mut c = tl.cursor();
        let obs = Recorder::disabled();
        c.advance_to(1e9, &obs);
        assert!(!c.is_dead(0));
        assert!(!c.link_down(0, 1));
        assert!(!c.burst_loss(&obs));
    }

    #[test]
    fn static_embedding_is_dead_from_time_zero() {
        let mut nf = NodeFailures::none();
        nf.fail(3);
        nf.fail(7);
        let tl = FailureTimeline::from_static(&nf);
        assert_eq!(tl.initial_dead(), &[3, 7]);
        let mut c = tl.cursor();
        c.advance_to(0.0, &Recorder::disabled());
        assert!(c.is_dead(3) && c.is_dead(7) && !c.is_dead(4));
        // Never recovers.
        c.advance_to(1e12, &Recorder::disabled());
        assert!(c.is_dead(3));
    }

    #[test]
    fn crash_then_recover_applies_in_order() {
        let tl = FailureTimeline::none().crash(100.0, 5).recover(400.0, 5);
        let obs = Recorder::new();
        let mut c = tl.cursor();
        c.advance_to(99.9, &obs);
        assert!(!c.is_dead(5));
        c.advance_to(100.0, &obs);
        assert!(c.is_dead(5));
        assert_eq!(c.dead_count(), 1);
        c.advance_to(400.0, &obs);
        assert!(!c.is_dead(5));
        let s = obs.snapshot();
        assert_eq!(s.counter("netsim.chaos.crashes"), 1);
        assert_eq!(s.counter("netsim.chaos.recoveries"), 1);
        // Events are stamped with the scheduled time, not the query time.
        let kinds: Vec<(f64, &str)> = s
            .events
            .iter()
            .map(|e| (e.t, e.kind))
            .collect();
        assert_eq!(kinds, vec![(100.0, "chaos.crash"), (400.0, "chaos.recover")]);
    }

    #[test]
    fn link_flap_window() {
        let tl = FailureTimeline::none().link_flap(10.0, 20.0, 8, 2);
        let mut c = tl.cursor();
        let obs = Recorder::disabled();
        c.advance_to(9.0, &obs);
        assert!(!c.link_down(2, 8));
        c.advance_to(10.0, &obs);
        assert!(c.link_down(2, 8));
        assert!(c.link_down(8, 2), "undirected");
        assert!(!c.link_down(2, 9));
        c.advance_to(20.0, &obs);
        assert!(!c.link_down(2, 8));
    }

    #[test]
    fn burst_window_draws_only_while_open() {
        let tl = FailureTimeline::none()
            .loss_burst(50.0, 150.0, 1.0)
            .with_seed(9);
        let obs = Recorder::new();
        let mut c = tl.cursor();
        c.advance_to(0.0, &obs);
        assert!(!c.in_burst());
        assert!(!c.burst_loss(&obs));
        c.advance_to(60.0, &obs);
        assert!(c.in_burst());
        assert!(c.burst_loss(&obs), "p = 1.0 always loses");
        c.advance_to(150.0, &obs);
        assert!(!c.in_burst());
        assert!(!c.burst_loss(&obs));
        assert_eq!(obs.snapshot().counter("netsim.chaos.burst_losses"), 1);
    }

    #[test]
    fn random_crashes_seeded_and_recovering() {
        let tl = FailureTimeline::random_crashes(1000, 0.1, 5_000.0, Some(2_000.0), 7);
        let again = FailureTimeline::random_crashes(1000, 0.1, 5_000.0, Some(2_000.0), 7);
        assert_eq!(tl, again, "same seed, same schedule");
        let other = FailureTimeline::random_crashes(1000, 0.1, 5_000.0, Some(2_000.0), 8);
        assert_ne!(tl, other, "different seed, different schedule");
        let crashes = tl
            .events()
            .iter()
            .filter(|e| matches!(e.action, ChaosAction::Crash(_)))
            .count();
        let recoveries = tl
            .events()
            .iter()
            .filter(|e| matches!(e.action, ChaosAction::Recover(_)))
            .count();
        assert_eq!(crashes, recoveries, "every crash schedules a recovery");
        assert!((50..=150).contains(&crashes), "{crashes} crashes at p=0.1");
        // Fully replayed, everything has recovered.
        let mut c = tl.cursor();
        c.advance_to(f64::MAX, &Recorder::disabled());
        assert_eq!(c.dead_count(), 0);
    }

    #[test]
    fn without_node_protects_it() {
        let tl = FailureTimeline::random_crashes(100, 1.0, 1_000.0, None, 3);
        let mut c = tl.cursor();
        c.advance_to(1_000.0, &Recorder::disabled());
        assert!(c.is_dead(42));
        let protected = tl.without_node(42);
        let mut c = protected.cursor();
        c.advance_to(1_000.0, &Recorder::disabled());
        assert!(!c.is_dead(42));
        assert_eq!(c.dead_count(), 99);
    }

    #[test]
    fn event_times_quantize_to_the_microsecond_grid() {
        // 0.1 ms is not exactly representable; the grid snaps it so the
        // stored tick count is integral.
        let tl = FailureTimeline::none()
            .crash(0.1 + 1e-9, 1)
            .recover(1_234.567_890_1, 1);
        for e in tl.events() {
            let ticks = e.time_ms * 1000.0;
            assert_eq!(ticks, ticks.round(), "time {} not on µs grid", e.time_ms);
        }
        assert_eq!(tl.events()[0].time_ms, 0.1);
        assert_eq!(tl.events()[1].time_ms, 1234.568);
        // Monotone: quantization never reorders a flap window.
        let flap = FailureTimeline::none().link_flap(9.999_999_6, 10.000_000_4, 0, 1);
        assert!(flap.events()[0].time_ms <= flap.events()[1].time_ms);
    }

    #[test]
    fn burst_stream_is_counted_not_stateful() {
        let tl = FailureTimeline::none()
            .loss_burst(0.0, 1_000.0, 0.5)
            .with_seed(42);
        let obs = Recorder::disabled();
        let mut a = tl.cursor();
        a.advance_to(10.0, &obs);
        let seq_a: Vec<bool> = (0..64).map(|_| a.burst_loss(&obs)).collect();
        // A fresh cursor replays the identical sequence: draws are a
        // function of (seed, draw#), not of accumulated RNG state.
        let mut b = tl.cursor();
        b.advance_to(500.0, &obs);
        let seq_b: Vec<bool> = (0..64).map(|_| b.burst_loss(&obs)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&l| l) && seq_a.iter().any(|&l| !l), "p=0.5 mixes");
    }

    #[test]
    fn keyed_burst_draws_are_order_and_cursor_independent() {
        let tl = FailureTimeline::none()
            .loss_burst(0.0, 1_000.0, 0.4)
            .with_seed(7);
        let obs = Recorder::disabled();
        let mut c1 = tl.cursor();
        c1.advance_to(1.0, &obs);
        let mut c2 = tl.cursor();
        c2.advance_to(999.0, &obs);
        // Interleaved vs sequential query order, different cursors:
        // every (key, draw) decision matches.
        for key in 0..50u64 {
            for draw in 0..4u64 {
                assert_eq!(
                    c1.burst_loss_keyed(key, draw, &obs),
                    c2.burst_loss_keyed(key, draw, &obs)
                );
            }
        }
        // Consuming the cursor's own stream does not perturb keyed draws.
        let before = c1.burst_loss_keyed(3, 0, &obs);
        c1.burst_loss(&obs);
        assert_eq!(before, c1.burst_loss_keyed(3, 0, &obs));
        // Outside a burst window nothing is ever lost.
        let mut closed = tl.cursor();
        closed.advance_to(2_000.0, &obs);
        assert!(!closed.burst_loss_keyed(3, 0, &obs));
    }

    #[test]
    fn events_sorted_by_time_stable_on_ties() {
        let tl = FailureTimeline::none()
            .crash(200.0, 1)
            .crash(100.0, 2)
            .recover(200.0, 2);
        let times: Vec<f64> = tl.events().iter().map(|e| e.time_ms).collect();
        assert_eq!(times, vec![100.0, 200.0, 200.0]);
        // Tie at 200: crash(1) was inserted before recover(2).
        assert_eq!(tl.events()[1].action, ChaosAction::Crash(1));
        assert_eq!(tl.events()[2].action, ChaosAction::Recover(2));
    }
}
