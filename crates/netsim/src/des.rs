//! Deterministic discrete-event scheduler.
//!
//! A minimal priority-queue scheduler with one hard guarantee the
//! emulation relies on: **determinism**. Events are ordered by timestamp
//! and, at equal timestamps, by insertion sequence (FIFO). Replaying the
//! same workload therefore produces identical traces — the property that
//! makes every figure in EXPERIMENTS.md regenerable bit-for-bit.

use sc_obs::Recorder;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent<E> {
    /// Simulated time, seconds.
    pub time: f64,
    /// Insertion sequence number (tie-breaker).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> Eq for ScheduledEvent<E> where E: PartialEq {}

impl<E: PartialEq> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: PartialEq> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue.
///
/// ```
/// use sc_netsim::des::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// q.schedule(1.0, "sooner-but-second");
/// assert_eq!(q.pop().unwrap().event, "sooner");
/// assert_eq!(q.pop().unwrap().event, "sooner-but-second");
/// assert_eq!(q.pop().unwrap().event, "later");
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: f64,
    /// Telemetry handle (disabled by default; see `sc-obs`). Counts
    /// `netsim.des.scheduled` / `netsim.des.processed`.
    obs: Recorder,
}

impl<E: PartialEq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: PartialEq> EventQueue<E> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
            obs: Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder; every subsequent schedule/pop is
    /// counted under `netsim.des.*`. Timestamps stay simulated time —
    /// this queue never reads a wall clock.
    pub fn attach_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule an event at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is not finite or is before the current time
    /// (causality violation).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now,
            "causality violation: scheduling at {time} but now is {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.obs.inc("netsim.des.scheduled", 1);
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Schedule an event `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        self.obs.inc("netsim.des.processed", 1);
        Some(ev)
    }

    /// Peek at the earliest event without consuming it.
    pub fn peek(&self) -> Option<&ScheduledEvent<E>> {
        self.heap.peek()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain and process events until the queue is empty or `horizon` is
    /// passed; `handler` may schedule follow-up events through the queue
    /// it is handed. Returns the number of events processed.
    pub fn run_until(&mut self, horizon: f64, mut handler: impl FnMut(&mut Self, f64, E)) -> usize {
        let mut processed = 0;
        while let Some(ev) = self.peek() {
            if ev.time > horizon {
                break;
            }
            let ev = self.pop().expect("peeked event exists");
            handler(self, ev.time, ev.event);
            processed += 1;
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(1.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 1.5);
        q.schedule_in(0.5, ());
        assert_eq!(q.pop().unwrap().time, 2.0);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn cannot_schedule_in_the_past() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(4.0, ());
    }

    #[test]
    fn run_until_respects_horizon_and_cascades() {
        let mut q = EventQueue::new();
        q.schedule(0.0, 0u32);
        let mut seen = Vec::new();
        // Each event at t schedules a follow-up at t+1 with value+1.
        let n = q.run_until(5.0, |q, t, v| {
            seen.push((t, v));
            q.schedule_in(1.0, v + 1);
        });
        assert_eq!(n, 6); // t = 0,1,2,3,4,5
        assert_eq!(seen.last().unwrap().1, 5);
        // The t=6 follow-up remains pending.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn recorder_counts_schedules_and_pops() {
        let rec = Recorder::new();
        let mut q = EventQueue::new();
        q.attach_recorder(rec.clone());
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        q.pop();
        let s = rec.snapshot();
        assert_eq!(s.counter("netsim.des.scheduled"), 2);
        assert_eq!(s.counter("netsim.des.processed"), 1);
    }

    #[test]
    fn determinism_across_replays() {
        let run = || {
            let mut q = EventQueue::new();
            for i in 0..50u64 {
                q.schedule((i % 7) as f64, i);
            }
            std::iter::from_fn(|| q.pop().map(|e| (e.time, e.event))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
