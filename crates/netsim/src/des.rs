//! Deterministic discrete-event scheduler.
//!
//! A calendar-queue scheduler with one hard guarantee the emulation
//! relies on: **determinism**. Events are ordered by timestamp and, at
//! equal timestamps, by insertion sequence (FIFO). Replaying the same
//! workload therefore produces identical traces — the property that
//! makes every figure in EXPERIMENTS.md regenerable bit-for-bit.
//!
//! # Structure
//!
//! The queue partitions simulated time into fixed-width *days* of
//! [`EventQueue::BUCKET_WIDTH_S`] seconds each and keeps four tiers:
//!
//! - `active`: the earliest pending events, kept sorted by
//!   `(time, seq)`. Pops are `pop_front` — O(1).
//! - `rungs`: ladder-style sub-day wheels, mounted lazily when an
//!   activated bucket is too dense to sort wholesale (a signaling
//!   storm packs thousands of events into one day). An overloaded
//!   rung slot recursively spawns a finer rung, so the sorted bottom
//!   stays small no matter how skewed the event density; builds are
//!   counted as `netsim.des.rung_builds`.
//! - `wheel`: unsorted buckets for the next [`EventQueue::WHEEL_SLOTS`]
//!   days, indexed by `day % WHEEL_SLOTS`, with a word bitmap marking
//!   occupied slots. Scheduling into the wheel is O(1); a bucket is
//!   promoted when its day becomes current.
//! - `overflow`: a binary heap for events beyond the wheel horizon.
//!   Spills are rare in real workloads and counted as
//!   `netsim.des.wheel_spills`; spilled events migrate back into the
//!   wheel as the calendar advances.
//!
//! Every tier orders by the same `(time, seq)` key, so the pop sequence
//! is identical to the reference binary-heap scheduler kept in
//! [`mod@reference`] — `crates/netsim/tests/calendar_props.rs`
//! property-tests the equivalence on random workloads.

use sc_obs::Recorder;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent<E> {
    /// Simulated time, seconds.
    pub time: f64,
    /// Insertion sequence number (tie-breaker).
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> Eq for ScheduledEvent<E> where E: PartialEq {}

impl<E: PartialEq> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: PartialEq> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Ascending `(time, seq)` — the canonical event order.
fn event_order<E>(a: &ScheduledEvent<E>, b: &ScheduledEvent<E>) -> Ordering {
    a.time
        .total_cmp(&b.time)
        .then_with(|| a.seq.cmp(&b.seq))
}

const WHEEL_SLOTS: usize = 256;
const BITMAP_WORDS: usize = WHEEL_SLOTS / 64;

/// Slots per sub-day rung.
const RUNG_SLOTS: usize = 128;
/// A bucket at or below this size is sorted straight into `active`;
/// above it, it is redistributed into a finer rung instead. Sorting a
/// few hundred events wholesale beats a rung's slot-distribution pass,
/// so this sits well above the insert-path [`ACTIVE_SPLIT`].
const SORT_THRESHOLD: usize = 1024;
/// Narrowest rung worth building; below this (or when every event in
/// a bucket carries the same timestamp) subdivision cannot spread the
/// load, so the bucket is sorted wholesale.
const MIN_RUNG_WIDTH_S: f64 = 1e-9;
/// When `active` grows past this many events, its tail is split off
/// into a new deepest rung (storms schedule straight into the current
/// day and would otherwise degrade sorted insertion to O(n) memmoves).
/// Deliberately lower than [`SORT_THRESHOLD`]: a one-shot sort of an
/// activated bucket is cheap, but a *dense insert path* pays per
/// event.
const ACTIVE_SPLIT: usize = 128;
/// Sorted head retained in `active` by a split.
const SPLIT_KEEP: usize = ACTIVE_SPLIT / 4;

/// A ladder rung: a fine one-shot wheel inside the current calendar
/// day. Rungs are built lazily when an activated bucket is too large
/// to sort (`SORT_THRESHOLD`) or `active` grows dense
/// ([`ACTIVE_SPLIT`]), and nest: an overloaded bucket spawns a finer
/// rung. The rung *routes* for the whole window `[start, window_end)`
/// it took over from its parent, but its slots span only the content
/// range `[start, start + RUNG_SLOTS*slot_width ≈ latest]` actually
/// occupied at build time — sparse storms cluster in a sliver of
/// their day, and window-proportional slots would degenerate to one
/// hot slot. Later arrivals past the content range collect in `tail`,
/// promoted once after the slots drain. Consumed boundaries keep the
/// time axis partitioned as
/// `active < deepest rung < … < shallowest rung < wheel < overflow`.
#[derive(Debug, Clone)]
struct Rung<E> {
    /// Content start; slot `i` covers
    /// `[start + i*slot_width, start + (i+1)*slot_width)`.
    start: f64,
    slot_width: f64,
    /// `1.0 / slot_width`, precomputed: slot indexing is one multiply
    /// (monotone under IEEE rounding, like the division it replaces).
    inv_slot_width: f64,
    /// Routing window end (exclusive): the parent's consumed boundary
    /// at build time. Everything in `[slots_end, window_end)` routes
    /// to `tail`.
    window_end: f64,
    /// Next slot to promote; slots below it are already consumed, and
    /// the consumed boundary (`start + cursor*slot_width`) is the
    /// upper bound of the `active` tier below this rung.
    cursor: usize,
    /// Events held across all remaining slots plus the tail.
    len: usize,
    slots: Vec<Vec<ScheduledEvent<E>>>,
    /// Events past the content range but inside the routing window;
    /// strictly later than every slotted event, promoted last.
    tail: Vec<ScheduledEvent<E>>,
    /// The tail has been promoted: the rung is spent, and its
    /// boundary jumps to `window_end` so late arrivals go to the
    /// sorted `active` tier (the taken tail may already sit there —
    /// re-filling `tail` behind it would pop out of order).
    tail_taken: bool,
}

impl<E> Rung<E> {
    /// Build with slots over the content range `[start, latest]`,
    /// routing for `[start, window_end)`, and distribute `bucket` —
    /// O(n). Caller guarantees `latest - start > MIN_RUNG_WIDTH_S`.
    fn build(start: f64, latest: f64, window_end: f64, bucket: Vec<ScheduledEvent<E>>) -> Self {
        // Pre-size each slot for an even spread (×2 slack): one
        // allocation up front instead of a doubling ladder of
        // reallocs per slot as events stream in.
        let slot_cap = (bucket.len() / RUNG_SLOTS + 1) * 2;
        let slot_width = (latest - start) / RUNG_SLOTS as f64;
        let mut r = Self {
            start,
            slot_width,
            inv_slot_width: 1.0 / slot_width,
            window_end,
            cursor: 0,
            len: 0,
            slots: std::iter::repeat_with(|| Vec::with_capacity(slot_cap))
                .take(RUNG_SLOTS)
                .collect(),
            // The tail refills to roughly the build population before
            // the slots drain (steady-state holds).
            tail: Vec::with_capacity(bucket.len()),
            tail_taken: false,
        };
        for ev in bucket {
            r.insert(ev);
        }
        r
    }

    /// Routing window end (exclusive).
    fn end(&self) -> f64 {
        self.window_end
    }

    /// End of the slotted content range (exclusive).
    fn slots_end(&self) -> f64 {
        self.start + self.slot_width * RUNG_SLOTS as f64
    }

    /// Upper bound of everything already consumed from this rung: the
    /// tier below (ultimately `active`) covers times before it.
    fn boundary(&self) -> f64 {
        if self.tail_taken {
            self.window_end
        } else {
            self.start + self.cursor as f64 * self.slot_width
        }
    }

    /// O(1) insert: a slot push for the content range, a tail push
    /// beyond it. The slot index is a monotone function of the
    /// timestamp (clamped to the unconsumed range), and the tail only
    /// ever holds times past every slot, so cross-bucket order can
    /// never invert regardless of float rounding.
    fn insert(&mut self, ev: ScheduledEvent<E>) {
        if ev.time >= self.slots_end() {
            self.tail.push(ev);
        } else {
            let idx = ((ev.time - self.start) * self.inv_slot_width) as usize;
            let idx = idx.clamp(self.cursor, RUNG_SLOTS - 1);
            self.slots[idx].push(ev);
        }
        self.len += 1;
    }

    /// Take the next non-empty bucket — slots in cursor order, then
    /// the tail — with its consumed-boundary end. `None` when the
    /// rung is spent.
    fn take_next_slot(&mut self) -> Option<(Vec<ScheduledEvent<E>>, f64)> {
        while self.cursor < RUNG_SLOTS {
            self.cursor += 1;
            if !self.slots[self.cursor - 1].is_empty() {
                let bucket = std::mem::take(&mut self.slots[self.cursor - 1]);
                self.len -= bucket.len();
                return Some((bucket, self.boundary()));
            }
        }
        if !self.tail_taken && !self.tail.is_empty() {
            self.tail_taken = true;
            let bucket = std::mem::take(&mut self.tail);
            self.len -= bucket.len();
            return Some((bucket, self.window_end));
        }
        None
    }
}

/// A deterministic event queue.
///
/// ```
/// use sc_netsim::des::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// q.schedule(1.0, "sooner-but-second");
/// assert_eq!(q.pop().unwrap().event, "sooner");
/// assert_eq!(q.pop().unwrap().event, "sooner-but-second");
/// assert_eq!(q.pop().unwrap().event, "later");
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The earliest pending events, sorted by `(time, seq)`; the pop
    /// tier. Covers every pending time below the deepest rung's
    /// consumed boundary (or the whole current day when no rungs are
    /// mounted).
    active: VecDeque<ScheduledEvent<E>>,
    /// Sub-day ladder rungs, shallowest first; `rungs.last()` is the
    /// finest and earliest. Mounted on demand when a day holds too
    /// many events to sort wholesale.
    rungs: Vec<Rung<E>>,
    /// Future-day buckets; slot `day % WHEEL_SLOTS`. Empty (never
    /// allocated) until an event actually lands beyond the current day,
    /// so short procedure sims pay nothing for the wheel.
    wheel: Vec<Vec<ScheduledEvent<E>>>,
    /// Bitmap of occupied wheel slots.
    occupied: [u64; BITMAP_WORDS],
    /// Events at `WHEEL_SLOTS` or more days past `base_day`.
    overflow: BinaryHeap<ScheduledEvent<E>>,
    /// Day of the `active` tier; wheel slots cover
    /// `(base_day, base_day + WHEEL_SLOTS)`.
    base_day: u64,
    pending: usize,
    next_seq: u64,
    now: f64,
    /// Telemetry handle (disabled by default; see `sc-obs`). Counts
    /// `netsim.des.scheduled` / `netsim.des.processed` /
    /// `netsim.des.wheel_spills`, and per-window series
    /// `netsim.des.processed_per_window` (events per 1.0 sim-time
    /// unit) plus the `netsim.des.queue_depth` gauge series sampled at
    /// each processed event — the time axis of a load storm.
    obs: Recorder,
}

impl<E: PartialEq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: PartialEq> EventQueue<E> {
    /// Calendar bucket width, seconds of simulated time per day.
    pub const BUCKET_WIDTH_S: f64 = 1.0;
    /// Number of wheel slots (days covered before spilling to the
    /// overflow heap).
    pub const WHEEL_SLOTS: usize = WHEEL_SLOTS;

    pub fn new() -> Self {
        Self {
            active: VecDeque::new(),
            rungs: Vec::new(),
            wheel: Vec::new(),
            occupied: [0; BITMAP_WORDS],
            overflow: BinaryHeap::new(),
            base_day: 0,
            pending: 0,
            next_seq: 0,
            now: 0.0,
            obs: Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder; every subsequent schedule/pop is
    /// counted under `netsim.des.*`. Timestamps stay simulated time —
    /// this queue never reads a wall clock.
    pub fn attach_recorder(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Return the queue to its initial state (time 0, empty, sequence
    /// counter rewound) while keeping bucket allocations for reuse.
    /// Lets a simulation arena run many procedures through one queue
    /// without re-allocating per run; a reset queue behaves exactly
    /// like a fresh one.
    pub fn reset(&mut self) {
        self.active.clear();
        self.rungs.clear();
        for w in 0..BITMAP_WORDS {
            let mut word = self.occupied[w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                self.wheel[w * 64 + bit].clear();
                word &= word - 1;
            }
        }
        self.occupied = [0; BITMAP_WORDS];
        self.overflow.clear();
        self.base_day = 0;
        self.pending = 0;
        self.next_seq = 0;
        self.now = 0.0;
    }

    /// Calendar day of a (non-negative, finite) timestamp. Saturates
    /// for times beyond `u64` days, which only ever classifies an
    /// event into the overflow heap — ordering there is exact.
    fn day_of(time: f64) -> u64 {
        (time / Self::BUCKET_WIDTH_S) as u64
    }

    /// Schedule an event at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is not finite or is before the current time
    /// (causality violation).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now,
            "causality violation: scheduling at {time} but now is {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.obs.inc("netsim.des.scheduled", 1);
        self.pending += 1;
        let ev = ScheduledEvent { time, seq, event };
        let day = Self::day_of(time);
        if day <= self.base_day {
            self.insert_current(ev);
        } else if day - self.base_day < WHEEL_SLOTS as u64 {
            if self.wheel.is_empty() {
                self.wheel = std::iter::repeat_with(Vec::new).take(WHEEL_SLOTS).collect();
            }
            let slot = (day % WHEEL_SLOTS as u64) as usize;
            self.wheel[slot].push(ev);
            self.occupied[slot / 64] |= 1 << (slot % 64);
        } else {
            self.obs.inc("netsim.des.wheel_spills", 1);
            self.overflow.push(ev);
        }
    }

    /// Schedule an event `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Place an event belonging to the current (or an earlier) day:
    /// into the first rung window that covers its timestamp — an O(1)
    /// slot push — or, below the deepest rung's consumed boundary,
    /// into the sorted `active` tier. The fresh event holds the
    /// largest seq, so among equal timestamps it lands last — FIFO by
    /// construction (rung slots preserve push order for the later
    /// promotion sort, which orders by `(time, seq)`).
    fn insert_current(&mut self, ev: ScheduledEvent<E>) {
        for r in self.rungs.iter_mut().rev() {
            if ev.time < r.boundary() {
                break; // earlier than every rung window: active tier
            }
            if ev.time < r.end() {
                r.insert(ev);
                return;
            }
        }
        let pos = self
            .active
            .partition_point(|e| e.time.total_cmp(&ev.time) != Ordering::Greater);
        self.active.insert(pos, ev);
        if self.active.len() > ACTIVE_SPLIT {
            self.split_active();
        }
    }

    /// `active` has grown dense (a storm is scheduling straight into
    /// the current day, which never passes through a promotion): keep
    /// a short sorted head as the pop tier and hang the tail on a new
    /// deepest rung, so subsequent inserts become O(1) slot pushes
    /// instead of O(n) sorted inserts.
    fn split_active(&mut self) {
        let keep = SPLIT_KEEP;
        let end = match self.rungs.last() {
            Some(r) => r.boundary(),
            None => (self.base_day + 1) as f64 * Self::BUCKET_WIDTH_S,
        };
        let (start, latest) = match (self.active.get(keep), self.active.back()) {
            (Some(first), Some(last)) => (first.time, last.time),
            _ => return,
        };
        // Degenerate tails (mass ties, vanishing window) stay put:
        // their sorted inserts are near-back and cheap anyway.
        if latest - start <= MIN_RUNG_WIDTH_S || end - start <= MIN_RUNG_WIDTH_S {
            return;
        }
        let tail: Vec<ScheduledEvent<E>> = self.active.drain(keep..).collect();
        self.obs.inc("netsim.des.rung_builds", 1);
        self.rungs.push(Rung::build(start, latest, end, tail));
    }

    /// Promote a bucket of events (a rung slot or a calendar day whose
    /// window ends at `end`): small buckets are sorted straight into
    /// `active`; large ones are redistributed into a finer rung, which
    /// [`Self::ensure_active`] then drains slot by slot.
    fn promote(&mut self, mut bucket: Vec<ScheduledEvent<E>>, end: f64) {
        if bucket.len() > SORT_THRESHOLD {
            let (mut start, mut latest) = (f64::INFINITY, f64::NEG_INFINITY);
            for e in &bucket {
                start = start.min(e.time);
                latest = latest.max(e.time);
            }
            // Subdivide only when the timestamps actually spread out;
            // a mass of ties (or a vanishing window) sorts in one go.
            if latest - start > MIN_RUNG_WIDTH_S && end - start > MIN_RUNG_WIDTH_S {
                self.obs.inc("netsim.des.rung_builds", 1);
                self.rungs.push(Rung::build(start, latest, end, bucket));
                return;
            }
        }
        bucket.sort_unstable_by(event_order);
        self.adopt(bucket);
    }

    /// Hand a sorted bucket to the pop tier: O(1) buffer adoption in
    /// the common case (promotion only happens once the tier drains).
    fn adopt(&mut self, bucket: Vec<ScheduledEvent<E>>) {
        if self.active.is_empty() {
            self.active = VecDeque::from(bucket);
        } else {
            self.active.extend(bucket);
        }
    }

    /// First occupied wheel day after `base_day`, with its slot.
    fn next_wheel_day(&self) -> Option<(u64, usize)> {
        if self.occupied == [0; BITMAP_WORDS] {
            return None;
        }
        let start = ((self.base_day + 1) % WHEEL_SLOTS as u64) as usize;
        for step in 0..WHEEL_SLOTS {
            let slot = (start + step) % WHEEL_SLOTS;
            if self.occupied[slot / 64] >> (slot % 64) & 1 == 1 {
                return Some((self.base_day + 1 + step as u64, slot));
            }
        }
        None
    }

    /// Refill the pop path until `active` holds the next event (or
    /// everything is drained): promote rung slots deepest-first, then
    /// fall back to the next calendar day.
    fn ensure_active(&mut self) {
        while self.active.is_empty() {
            if self.rungs.is_empty() {
                if !self.activate_next_day() {
                    return;
                }
                continue;
            }
            match self.rungs.last_mut().and_then(Rung::take_next_slot) {
                Some((bucket, end)) => self.promote(bucket, end),
                None => {
                    self.rungs.pop();
                }
            }
        }
    }

    /// Advance `base_day` to the next day holding events and promote
    /// that day's bucket. Returns false when the calendar is empty.
    ///
    /// The next day is the *earlier* of the next occupied wheel slot
    /// and the earliest overflow day: overflow events spill relative
    /// to the `base_day` at schedule time, so once the clock advances
    /// an overflow day can predate everything left in the wheel.
    /// Whenever the calendar lands on a new day, overflow events that
    /// now fit the wheel horizon are migrated in.
    fn activate_next_day(&mut self) -> bool {
        let wheel_next = self.next_wheel_day();
        let overflow_day = self.overflow.peek().map(|ev| Self::day_of(ev.time));
        let target = match (wheel_next.map(|(d, _)| d), overflow_day) {
            (None, None) => return false,
            (Some(d), None) => d,
            (None, Some(d)) => d,
            (Some(w), Some(o)) => w.min(o),
        };
        self.base_day = target;
        let mut current = Vec::new();
        if let Some((day, slot)) = wheel_next {
            if day == target {
                self.occupied[slot / 64] &= !(1 << (slot % 64));
                current.append(&mut self.wheel[slot]);
            }
        }
        // Migrate every overflow event the wheel can now hold.
        while let Some(head) = self.overflow.peek() {
            let day = Self::day_of(head.time);
            if day - self.base_day >= WHEEL_SLOTS as u64 {
                break;
            }
            let Some(ev) = self.overflow.pop() else { break };
            if day == self.base_day {
                current.push(ev);
            } else {
                if self.wheel.is_empty() {
                    self.wheel =
                        std::iter::repeat_with(Vec::new).take(WHEEL_SLOTS).collect();
                }
                let slot = (day % WHEEL_SLOTS as u64) as usize;
                self.wheel[slot].push(ev);
                self.occupied[slot / 64] |= 1 << (slot % 64);
            }
        }
        let day_end = (self.base_day + 1) as f64 * Self::BUCKET_WIDTH_S;
        self.promote(current, day_end);
        true
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.ensure_active();
        let ev = self.active.pop_front()?;
        self.pending -= 1;
        self.now = ev.time;
        self.obs.inc("netsim.des.processed", 1);
        self.obs.series_inc("netsim.des.processed_per_window", ev.time, 1);
        self.obs
            .series_gauge("netsim.des.queue_depth", ev.time, self.pending as f64);
        Some(ev)
    }

    /// Peek at the earliest event without consuming it. Tiers are
    /// examined in time-partition order: `active`, then the rungs
    /// (deepest first — their windows ascend toward the shallowest),
    /// then the calendar, where like `activate_next_day` the
    /// wheel's next day and the overflow minimum are both candidates —
    /// either can hold the earliest event once the clock has advanced.
    pub fn peek(&self) -> Option<&ScheduledEvent<E>> {
        if let Some(ev) = self.active.front() {
            return Some(ev);
        }
        for r in self.rungs.iter().rev() {
            if r.len == 0 {
                continue;
            }
            let rung_min = r.slots[r.cursor..]
                .iter()
                .flatten()
                .chain(r.tail.iter())
                .min_by(|a, b| event_order(a, b));
            if rung_min.is_some() {
                return rung_min;
            }
        }
        let wheel_min = self
            .next_wheel_day()
            .and_then(|(_, slot)| self.wheel[slot].iter().min_by(|a, b| event_order(a, b)));
        match (wheel_min, self.overflow.peek()) {
            (Some(w), Some(o)) => {
                if event_order(w, o) == Ordering::Greater {
                    Some(o)
                } else {
                    Some(w)
                }
            }
            (w, o) => w.or(o),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending
    }

    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Drain and process events until the queue is empty or `horizon` is
    /// passed; `handler` may schedule follow-up events through the queue
    /// it is handed. Returns the number of events processed.
    ///
    /// One queue operation per event: the current day's bucket is
    /// already sorted, so the horizon check reads `active.front()` —
    /// O(1) — and the event is taken with a single `pop_front`. (The
    /// binary-heap scheduler this replaced paid two O(log n) heap
    /// operations per event here: a `peek` sift plus a `pop` sift.)
    pub fn run_until(&mut self, horizon: f64, mut handler: impl FnMut(&mut Self, f64, E)) -> usize {
        let mut processed = 0;
        loop {
            self.ensure_active();
            match self.active.front() {
                Some(ev) if ev.time <= horizon => {}
                _ => break,
            }
            let Some(ev) = self.active.pop_front() else { break };
            self.pending -= 1;
            self.now = ev.time;
            self.obs.inc("netsim.des.processed", 1);
            self.obs.series_inc("netsim.des.processed_per_window", ev.time, 1);
            self.obs
                .series_gauge("netsim.des.queue_depth", ev.time, self.pending as f64);
            handler(self, ev.time, ev.event);
            processed += 1;
        }
        processed
    }

    /// Drain every event with `time < horizon` — a **half-open** batch
    /// window, unlike [`Self::run_until`]'s inclusive one — into
    /// `batch` (cleared first), in exactly the order repeated
    /// [`Self::pop`] calls would return them. Returns the batch size.
    ///
    /// This is the batch-processing face of the queue: a caller steps
    /// simulated time in fixed windows, drains each window wholesale,
    /// and processes the drained slice without re-entering the queue
    /// per event. Half-open windows compose — `[t0, t1)`, `[t1, t2)`, …
    /// partition the time axis, so `drain_until(t1)` then
    /// `drain_until(t2)` sees every event exactly once.
    ///
    /// Deferred processing is only equivalent to interleaved
    /// processing when no handler reaction can land inside the window
    /// being processed. Callers must therefore never schedule a
    /// follow-up less than one full window ahead of the event that
    /// triggered it; with windows of [`Self::BUCKET_WIDTH_S`] and
    /// minimum follow-up delays of the same width (the `ext_mload`
    /// regime), a reaction to an event in `[t, t + w)` lands at or
    /// past `t + w` — always a later batch. The clock still advances
    /// per drained event, so scheduling from the processing loop obeys
    /// the same causality assert as scheduling from a handler.
    pub fn drain_until(&mut self, horizon: f64, batch: &mut Vec<ScheduledEvent<E>>) -> usize {
        batch.clear();
        loop {
            self.ensure_active();
            match self.active.front() {
                Some(ev) if ev.time < horizon => {}
                _ => break,
            }
            let Some(ev) = self.active.pop_front() else { break };
            self.pending -= 1;
            self.now = ev.time;
            self.obs.inc("netsim.des.processed", 1);
            self.obs.series_inc("netsim.des.processed_per_window", ev.time, 1);
            self.obs
                .series_gauge("netsim.des.queue_depth", ev.time, self.pending as f64);
            batch.push(ev);
        }
        batch.len()
    }
}

pub mod reference {
    //! The original binary-heap scheduler, retained as an executable
    //! specification. [`ReferenceQueue`] defines the pop order the
    //! calendar queue must reproduce; differential property tests and
    //! the `sc-bench` scheduler benchmarks run both side by side.

    use super::ScheduledEvent;
    use std::collections::BinaryHeap;

    /// Minimal binary-heap event queue with the exact semantics of the
    /// pre-calendar [`super::EventQueue`].
    #[derive(Debug, Clone, Default)]
    pub struct ReferenceQueue<E: PartialEq> {
        heap: BinaryHeap<ScheduledEvent<E>>,
        next_seq: u64,
        now: f64,
    }

    impl<E: PartialEq> ReferenceQueue<E> {
        pub fn new() -> Self {
            Self {
                heap: BinaryHeap::new(),
                next_seq: 0,
                now: 0.0,
            }
        }

        pub fn now(&self) -> f64 {
            self.now
        }

        /// Schedule at absolute `time`; same causality panics as
        /// [`super::EventQueue::schedule`].
        pub fn schedule(&mut self, time: f64, event: E) {
            assert!(time.is_finite(), "event time must be finite");
            assert!(
                time >= self.now,
                "causality violation: scheduling at {time} but now is {}",
                self.now
            );
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(ScheduledEvent { time, seq, event });
        }

        pub fn schedule_in(&mut self, delay: f64, event: E) {
            self.schedule(self.now + delay, event);
        }

        pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
            let ev = self.heap.pop()?;
            self.now = ev.time;
            Some(ev)
        }

        pub fn peek(&self) -> Option<&ScheduledEvent<E>> {
            self.heap.peek()
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }

        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(1.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 1.5);
        q.schedule_in(0.5, ());
        assert_eq!(q.pop().map(|e| e.time), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn cannot_schedule_in_the_past() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(4.0, ());
    }

    #[test]
    fn run_until_respects_horizon_and_cascades() {
        let mut q = EventQueue::new();
        q.schedule(0.0, 0u32);
        let mut seen = Vec::new();
        // Each event at t schedules a follow-up at t+1 with value+1.
        let n = q.run_until(5.0, |q, t, v| {
            seen.push((t, v));
            q.schedule_in(1.0, v + 1);
        });
        assert_eq!(n, 6); // t = 0,1,2,3,4,5
        assert_eq!(seen.last().map(|e| e.1), Some(5));
        // The t=6 follow-up remains pending.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_until_matches_pop_order_and_is_half_open() {
        let times = [0.0, 0.9, 1.0, 1.0, 1.5, 2.0, 700.0, 0.25];
        let mut q = EventQueue::new();
        let mut reference = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
            reference.schedule(t, i);
        }
        let mut batch = Vec::new();
        // Window [0, 1): strictly-before events only.
        assert_eq!(q.drain_until(1.0, &mut batch), 3);
        let got: Vec<(f64, usize)> = batch.iter().map(|e| (e.time, e.event)).collect();
        assert_eq!(got, vec![(0.0, 0), (0.25, 7), (0.9, 1)]);
        // Window [1, 2): the t = 1.0 ties pop FIFO; t = 2.0 excluded.
        q.drain_until(2.0, &mut batch);
        let got: Vec<(f64, usize)> = batch.iter().map(|e| (e.time, e.event)).collect();
        assert_eq!(got, vec![(1.0, 2), (1.0, 3), (1.5, 4)]);
        // The remaining drain picks up exactly the events at or past
        // t = 2.0, still in (time, seq) order.
        q.drain_until(f64::INFINITY, &mut batch);
        let got: Vec<(f64, usize)> = batch.iter().map(|e| (e.time, e.event)).collect();
        assert_eq!(got, vec![(2.0, 5), (700.0, 6)]);
        assert!(q.is_empty());
        // Sanity: the windowed drains together visited every event the
        // reference queue holds, in the same global order.
        let mut all = Vec::new();
        while let Some(e) = reference.pop() {
            all.push(e.event);
        }
        assert_eq!(all, vec![0, 7, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn drain_until_windows_equal_whole_pop_sequence() {
        // Windowed drains concatenated = one straight pop drain.
        let build = || {
            let mut q = EventQueue::new();
            let mut rng = 0x9E37_79B9_7F4A_7C15u64;
            for i in 0..500u32 {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let t = (rng % 10_000) as f64 / 100.0; // [0, 100)
                q.schedule(t, i);
            }
            q
        };
        let mut straight = build();
        let want: Vec<(f64, u64)> =
            std::iter::from_fn(|| straight.pop().map(|e| (e.time, e.seq))).collect();
        let mut windowed = build();
        let mut got = Vec::new();
        let mut batch = Vec::new();
        for w in 0..100u32 {
            windowed.drain_until((w + 1) as f64, &mut batch);
            got.extend(batch.iter().map(|e| (e.time, e.seq)));
        }
        assert_eq!(got, want);
        assert!(windowed.is_empty());
    }

    #[test]
    fn drain_until_advances_clock_and_allows_next_window_schedules() {
        let mut q = EventQueue::new();
        q.schedule(0.25, "a");
        q.schedule(0.75, "b");
        let mut batch = Vec::new();
        q.drain_until(1.0, &mut batch);
        assert_eq!(q.now(), 0.75);
        // A follow-up one full window ahead of the drained event is
        // always schedulable — the ext_mload contract.
        for e in &batch {
            q.schedule(e.time + 1.0, "follow-up");
        }
        q.drain_until(2.5, &mut batch);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].time, 1.25);
    }

    #[test]
    fn drain_until_counts_processed_events() {
        let rec = Recorder::new();
        let mut q = EventQueue::new();
        q.attach_recorder(rec.clone());
        for i in 0..10 {
            q.schedule(i as f64 * 0.1, i);
        }
        let mut batch = Vec::new();
        q.drain_until(0.55, &mut batch);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("netsim.des.processed"), 6);
        // All six events fall in series window 0 ([0.0, 1.0)); the
        // depth gauge holds the post-pop queue length of the last one.
        let per_window = snap
            .series
            .get("netsim.des.processed_per_window")
            .map(|d| d.points());
        assert_eq!(per_window, Some(vec![(0, 6.0)]));
        let depth = snap
            .series
            .get("netsim.des.queue_depth")
            .map(|d| d.points());
        assert_eq!(depth, Some(vec![(0, 4.0)]));
    }

    #[test]
    fn recorder_counts_schedules_and_pops() {
        let rec = Recorder::new();
        let mut q = EventQueue::new();
        q.attach_recorder(rec.clone());
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        q.pop();
        let s = rec.snapshot();
        assert_eq!(s.counter("netsim.des.scheduled"), 2);
        assert_eq!(s.counter("netsim.des.processed"), 1);
    }

    #[test]
    fn determinism_across_replays() {
        let run = || {
            let mut q = EventQueue::new();
            for i in 0..50u64 {
                q.schedule((i % 7) as f64, i);
            }
            std::iter::from_fn(|| q.pop().map(|e| (e.time, e.event))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn overflow_spills_are_counted_and_ordered() {
        let rec = Recorder::new();
        let mut q = EventQueue::new();
        q.attach_recorder(rec.clone());
        // Far beyond the wheel horizon → overflow heap.
        q.schedule(1e6, "far");
        q.schedule(2e6, "farther");
        q.schedule(0.5, "near");
        let s = rec.snapshot();
        assert_eq!(s.counter("netsim.des.wheel_spills"), 2);
        assert_eq!(q.pop().map(|e| e.event), Some("near"));
        assert_eq!(q.pop().map(|e| e.event), Some("far"));
        assert_eq!(q.pop().map(|e| e.event), Some("farther"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_sees_through_all_tiers() {
        let mut q = EventQueue::new();
        q.schedule(1e7, "overflow");
        assert_eq!(q.peek().map(|e| e.event), Some("overflow"));
        q.schedule(12.25, "wheel");
        assert_eq!(q.peek().map(|e| e.event), Some("wheel"));
        q.schedule(0.125, "active");
        assert_eq!(q.peek().map(|e| e.event), Some("active"));
        assert_eq!(q.len(), 3);
        // Peek is non-destructive.
        assert_eq!(q.pop().map(|e| e.event), Some("active"));
        assert_eq!(q.pop().map(|e| e.event), Some("wheel"));
        assert_eq!(q.pop().map(|e| e.event), Some("overflow"));
    }

    #[test]
    fn overflow_migrates_into_wheel_as_clock_advances() {
        // Regression: an event spills to overflow relative to the
        // base_day at schedule time; once pops advance the calendar,
        // that day comes within the wheel horizon and may even share a
        // day with freshly wheeled events. The spilled event must pop
        // in time order, not after the whole wheel drains.
        let mut q = EventQueue::new();
        q.schedule(300.2, "overflow-early"); // day 300: beyond wheel at base_day 0
        q.schedule(100.0, "advance");
        assert_eq!(q.pop().map(|e| e.event), Some("advance"));
        q.schedule(300.7, "wheel-late"); // same day, now within the wheel
        assert_eq!(q.peek().map(|e| e.event), Some("overflow-early"));
        assert_eq!(q.pop().map(|e| e.event), Some("overflow-early"));
        assert_eq!(q.pop().map(|e| e.event), Some("wheel-late"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn schedule_after_horizon_probe_stays_ordered() {
        // run_until may advance the calendar past empty days while
        // probing the horizon; later schedules into those earlier days
        // must still pop in time order.
        let mut q = EventQueue::new();
        q.schedule(100.0, "late");
        assert_eq!(q.run_until(1.0, |_, _, _| ()), 0);
        q.schedule(2.0, "early");
        assert_eq!(q.pop().map(|e| e.event), Some("early"));
        assert_eq!(q.pop().map(|e| e.event), Some("late"));
    }

    #[test]
    fn reset_rewinds_time_sequence_and_events() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 1);
        q.schedule(400.0, 2); // wheel
        q.schedule(1e6, 3); // overflow
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.now(), 0.0);
        // A reset queue replays exactly like a fresh one.
        q.schedule(5.0, 10);
        q.schedule(5.0, 11);
        assert_eq!(q.pop().map(|e| e.event), Some(10));
        assert_eq!(q.pop().map(|e| e.event), Some(11));
    }

    #[test]
    fn matches_reference_on_mixed_tiers() {
        let mut cal = EventQueue::new();
        let mut refq = reference::ReferenceQueue::new();
        let times = [
            0.0, 700.0, 0.0, 3.5, 1e5, 255.9, 256.0, 12.0, 12.0, 1e5, 0.25,
        ];
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(t, i);
            refq.schedule(t, i);
        }
        loop {
            let (a, b) = (cal.pop(), refq.pop());
            assert_eq!(a.is_some(), b.is_some(), "queues ended at different lengths");
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!((a.time, a.seq, a.event), (b.time, b.seq, b.event));
                }
                _ => break,
            }
        }
    }
}
