//! Failure and attack injection (§3.3, Figures 13 and 19).
//!
//! * [`LossProcess`] — Bernoulli i.i.d. signaling loss,
//! * [`GilbertElliott`] — two-state bursty frame-error process matching
//!   the Tiantong radio-link failure bursts of Figure 13b,
//! * [`NodeFailures`] — satellite decay / dead-node sets (Fig. 13a shows
//!   ≈ 1-in-40 Starlink satellites failed),
//! * [`AttackInjector`] — hijacked-satellite and man-in-the-middle tap
//!   markers consumed by the Figure 19 leakage experiments.
//!
//! All processes are deterministic given their seed (xorshift-based), so
//! failure experiments replay identically.

use std::collections::HashSet;

/// Deterministic xorshift64* RNG used by all failure processes.
#[derive(Debug, Clone)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.max(1),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// I.i.d. Bernoulli loss.
#[derive(Debug, Clone)]
pub struct LossProcess {
    p_loss: f64,
    rng: Xorshift64,
}

impl LossProcess {
    pub fn new(p_loss: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_loss));
        Self {
            p_loss,
            rng: Xorshift64::new(seed),
        }
    }

    /// Is the next transmission lost?
    pub fn lost(&mut self) -> bool {
        self.rng.chance(self.p_loss)
    }

    /// Configured loss probability.
    pub fn p_loss(&self) -> f64 {
        self.p_loss
    }
}

/// Gilbert–Elliott bursty loss: a good state with low loss and a bad
/// state with high loss, with geometric sojourns — the structure of the
/// frame-error bursts in Figure 13b.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    /// P(good → bad) per transmission.
    pub p_gb: f64,
    /// P(bad → good) per transmission.
    pub p_bg: f64,
    /// Loss probability in the good state.
    pub loss_good: f64,
    /// Loss probability in the bad state.
    pub loss_bad: f64,
    in_bad: bool,
    rng: Xorshift64,
}

impl GilbertElliott {
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64, seed: u64) -> Self {
        for p in [p_gb, p_bg, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p));
        }
        Self {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            in_bad: false,
            rng: Xorshift64::new(seed),
        }
    }

    /// A profile fit to the Figure 13b trace: mostly clean with bursts
    /// reaching tens of percent frame error.
    pub fn tiantong_profile(seed: u64) -> Self {
        Self::new(0.005, 0.08, 0.002, 0.35, seed)
    }

    /// Advance one transmission; returns whether it was lost.
    pub fn lost(&mut self) -> bool {
        // State transition first, then loss draw in the new state.
        if self.in_bad {
            if self.rng.chance(self.p_bg) {
                self.in_bad = false;
            }
        } else if self.rng.chance(self.p_gb) {
            self.in_bad = true;
        }
        let p = if self.in_bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        self.rng.chance(p)
    }

    /// Currently in the bad (bursty) state?
    pub fn in_bad_state(&self) -> bool {
        self.in_bad
    }

    /// Long-run loss rate implied by the chain's stationary distribution.
    pub fn stationary_loss(&self) -> f64 {
        let pi_bad = self.p_gb / (self.p_gb + self.p_bg);
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }
}

/// A set of failed (decayed / destroyed) satellites.
#[derive(Debug, Clone, Default)]
pub struct NodeFailures {
    dead: HashSet<usize>,
}

impl NodeFailures {
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail each of `n` nodes independently with probability `p`
    /// (Fig. 13a: ~1/40 ≈ 0.025 for Starlink).
    pub fn random(n: usize, p: f64, seed: u64) -> Self {
        let mut rng = Xorshift64::new(seed);
        let dead = (0..n).filter(|_| rng.chance(p)).collect();
        Self { dead }
    }

    /// Mark one node failed.
    pub fn fail(&mut self, node: usize) {
        self.dead.insert(node);
    }

    /// Recover one node.
    pub fn recover(&mut self, node: usize) {
        self.dead.remove(&node);
    }

    pub fn is_dead(&self, node: usize) -> bool {
        self.dead.contains(&node)
    }

    pub fn dead_count(&self) -> usize {
        self.dead.len()
    }

    /// The dead nodes, sorted (deterministic embedding into a
    /// [`crate::chaos::FailureTimeline`]).
    pub fn dead_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.dead.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Closure usable as the `blocked` predicate of
    /// [`crate::topo::Graph::shortest_path`].
    pub fn blocker(&self) -> impl Fn(usize) -> bool + '_ {
        move |n| self.is_dead(n)
    }
}

/// Attack markers for the Figure 19 experiments.
#[derive(Debug, Clone, Default)]
pub struct AttackInjector {
    hijacked: HashSet<usize>,
    /// Links with a passive listener, stored as (min, max) node pairs.
    tapped_links: HashSet<(usize, usize)>,
}

impl AttackInjector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark a satellite as hijacked: everything it stores or serves is
    /// readable by the adversary.
    pub fn hijack(&mut self, sat_node: usize) {
        self.hijacked.insert(sat_node);
    }

    pub fn is_hijacked(&self, node: usize) -> bool {
        self.hijacked.contains(&node)
    }

    pub fn hijacked_count(&self) -> usize {
        self.hijacked.len()
    }

    /// Tap a link for passive listening (man-in-the-middle without
    /// IPsec, Fig. 19b).
    pub fn tap_link(&mut self, a: usize, b: usize) {
        self.tapped_links.insert((a.min(b), a.max(b)));
    }

    pub fn is_tapped(&self, a: usize, b: usize) -> bool {
        self.tapped_links.contains(&(a.min(b), a.max(b)))
    }

    /// Does any hop of this path traverse a tapped link?
    pub fn path_tapped(&self, path: &[usize]) -> bool {
        path.windows(2).any(|w| self.is_tapped(w[0], w[1]))
    }

    /// Does any node of this path pass through a hijacked satellite?
    pub fn path_hijacked(&self, path: &[usize]) -> bool {
        path.iter().any(|n| self.is_hijacked(*n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_rate_converges() {
        let mut lp = LossProcess::new(0.1, 7);
        let n = 100_000;
        let losses = (0..n).filter(|_| lp.lost()).count();
        let rate = losses as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "{rate}");
    }

    #[test]
    fn zero_and_one_probability() {
        let mut never = LossProcess::new(0.0, 1);
        assert!((0..1000).all(|_| !never.lost()));
        let mut always = LossProcess::new(1.0, 1);
        assert!((0..1000).all(|_| always.lost()));
    }

    #[test]
    fn gilbert_elliott_bursty() {
        let mut ge = GilbertElliott::tiantong_profile(42);
        let n = 200_000;
        let mut losses = 0;
        let mut burst_transitions = 0;
        let mut prev_lost = false;
        let mut consecutive_after_loss = 0;
        for _ in 0..n {
            let l = ge.lost();
            if l {
                losses += 1;
                if prev_lost {
                    consecutive_after_loss += 1;
                }
            }
            if l != prev_lost {
                burst_transitions += 1;
            }
            prev_lost = l;
        }
        let rate = losses as f64 / n as f64;
        // Long-run rate near the stationary value.
        let expect = ge.stationary_loss();
        assert!((rate - expect).abs() < 0.01, "rate {rate} expect {expect}");
        // Burstiness: P(loss | previous loss) well above the marginal rate.
        let p_cond = consecutive_after_loss as f64 / losses as f64;
        assert!(p_cond > 2.0 * rate, "p_cond {p_cond} rate {rate}");
        assert!(burst_transitions > 0);
    }

    #[test]
    fn stationary_loss_formula() {
        let ge = GilbertElliott::new(0.01, 0.09, 0.0, 1.0, 1);
        assert!((ge.stationary_loss() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn node_failures_rate() {
        let nf = NodeFailures::random(10_000, 0.025, 3);
        let frac = nf.dead_count() as f64 / 10_000.0;
        assert!((frac - 0.025).abs() < 0.01, "{frac}");
    }

    #[test]
    fn fail_recover_cycle() {
        let mut nf = NodeFailures::none();
        assert!(!nf.is_dead(5));
        nf.fail(5);
        assert!(nf.is_dead(5));
        assert!(nf.blocker()(5));
        nf.recover(5);
        assert!(!nf.is_dead(5));
    }

    #[test]
    fn attack_markers() {
        let mut atk = AttackInjector::new();
        atk.hijack(3);
        atk.tap_link(7, 2);
        assert!(atk.is_hijacked(3));
        assert!(!atk.is_hijacked(4));
        assert!(atk.is_tapped(2, 7)); // order-insensitive
        assert!(atk.path_tapped(&[1, 2, 7, 9]));
        assert!(!atk.path_tapped(&[1, 2, 9]));
        assert!(atk.path_hijacked(&[0, 3, 5]));
        assert!(!atk.path_hijacked(&[0, 5]));
        assert_eq!(atk.hijacked_count(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut ge = GilbertElliott::tiantong_profile(seed);
            (0..1000).map(|_| ge.lost()).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
