//! Link-capacity accounting: the data-plane side of the bottleneck
//! analysis.
//!
//! §2.2: "\[26\] reports that Starlink's ground stations limit the LEO
//! network's total capacity despite mega-constellations." This module
//! assigns flows to paths, accumulates per-link utilization, and finds
//! the saturated links — showing *where* the network runs out of
//! capacity under anchor-based versus distributed delivery.

use crate::topo::NodeId;
use std::collections::HashMap;

/// Directed link key.
type Link = (NodeId, NodeId);

/// A capacity plan: per-link capacity and accumulated load (same units,
/// e.g. Mbit/s).
#[derive(Debug, Clone, Default)]
pub struct CapacityModel {
    capacity: HashMap<Link, f64>,
    load: HashMap<Link, f64>,
}

impl CapacityModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a link's capacity (directed). Overwrites.
    pub fn set_capacity(&mut self, from: NodeId, to: NodeId, capacity: f64) {
        assert!(capacity > 0.0 && capacity.is_finite());
        self.capacity.insert((from, to), capacity);
    }

    /// Set capacities for both directions.
    pub fn set_capacity_bidir(&mut self, a: NodeId, b: NodeId, capacity: f64) {
        self.set_capacity(a, b, capacity);
        self.set_capacity(b, a, capacity);
    }

    /// Route a flow of `demand` along `path` (node sequence),
    /// accumulating load on every hop. Unknown links are rejected.
    ///
    /// Returns the worst post-assignment utilization along the path.
    pub fn assign_flow(&mut self, path: &[NodeId], demand: f64) -> Result<f64, UnknownLink> {
        assert!(demand >= 0.0 && demand.is_finite());
        // Validate first (no partial assignment on error).
        for w in path.windows(2) {
            if !self.capacity.contains_key(&(w[0], w[1])) {
                return Err(UnknownLink { from: w[0], to: w[1] });
            }
        }
        let mut worst = 0.0f64;
        for w in path.windows(2) {
            let l = self.load.entry((w[0], w[1])).or_insert(0.0);
            *l += demand;
            worst = worst.max(*l / self.capacity[&(w[0], w[1])]);
        }
        Ok(worst)
    }

    /// Utilization of one link (load / capacity), or `None` if unknown.
    pub fn utilization(&self, from: NodeId, to: NodeId) -> Option<f64> {
        let cap = self.capacity.get(&(from, to))?;
        Some(self.load.get(&(from, to)).copied().unwrap_or(0.0) / cap)
    }

    /// All links at or above `threshold` utilization, most-loaded first.
    pub fn saturated_links(&self, threshold: f64) -> Vec<(Link, f64)> {
        let mut v: Vec<(Link, f64)> = self
            .capacity
            .keys()
            .filter_map(|l| {
                let u = self.load.get(l).copied().unwrap_or(0.0) / self.capacity[l];
                (u >= threshold).then_some((*l, u))
            })
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }

    /// The single most-utilized link, if any load exists.
    pub fn bottleneck(&self) -> Option<(Link, f64)> {
        self.saturated_links(f64::MIN_POSITIVE).into_iter().next()
    }

    /// Total carried load (sum over links; multi-hop flows count once
    /// per hop, i.e. this is link-byte volume, not end-to-end goodput).
    pub fn total_link_load(&self) -> f64 {
        self.load.values().sum()
    }

    /// Clear all assigned load, keeping capacities.
    pub fn reset_load(&mut self) {
        self.load.clear();
    }
}

/// Error: flow routed over a link that has no configured capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownLink {
    pub from: NodeId,
    pub to: NodeId,
}

impl std::fmt::Display for UnknownLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no capacity configured for link {} → {}", self.from, self.to)
    }
}

impl std::error::Error for UnknownLink {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star around a gateway (node 0), plus a mesh bypass 1-2-3.
    fn model() -> CapacityModel {
        let mut m = CapacityModel::new();
        for n in 1..=3 {
            m.set_capacity_bidir(0, n, 100.0); // feeder links
        }
        m.set_capacity_bidir(1, 2, 1000.0); // ISLs: much fatter
        m.set_capacity_bidir(2, 3, 1000.0);
        m
    }

    #[test]
    fn assignment_accumulates_and_reports_worst() {
        let mut m = model();
        let u = m.assign_flow(&[1, 0, 2], 50.0).unwrap();
        assert!((u - 0.5).abs() < 1e-12);
        let u2 = m.assign_flow(&[1, 0, 3], 30.0).unwrap();
        // Link (1,0) now carries 80 → 0.8 is the worst on this path.
        assert!((u2 - 0.8).abs() < 1e-12);
        assert!((m.utilization(1, 0).unwrap() - 0.8).abs() < 1e-12);
        assert!((m.utilization(0, 2).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gateway_becomes_the_bottleneck() {
        // Fig. 5a in miniature: anchor everything through node 0 and the
        // thin feeder saturates while the fat ISLs idle.
        let mut m = model();
        for _ in 0..3 {
            m.assign_flow(&[1, 0, 3], 40.0).unwrap();
        }
        let ((from, to), u) = m.bottleneck().unwrap();
        assert!(from == 1 || to == 1 || from == 0 || to == 0);
        assert!(u >= 1.2, "{u}");
        // Distributed delivery over the ISL mesh: no saturation.
        let mut d = model();
        for _ in 0..3 {
            d.assign_flow(&[1, 2, 3], 40.0).unwrap();
        }
        let (_, u2) = d.bottleneck().unwrap();
        assert!(u2 < 0.2, "{u2}");
    }

    #[test]
    fn saturated_links_sorted_desc() {
        let mut m = model();
        m.assign_flow(&[1, 0], 90.0).unwrap();
        m.assign_flow(&[2, 0], 120.0).unwrap();
        let sat = m.saturated_links(0.5);
        assert_eq!(sat.len(), 2);
        assert!(sat[0].1 >= sat[1].1);
        assert_eq!(sat[0].0, (2, 0));
    }

    #[test]
    fn unknown_link_rejected_atomically() {
        let mut m = model();
        let before = m.total_link_load();
        let err = m.assign_flow(&[1, 0, 9], 10.0).unwrap_err();
        assert_eq!(err, UnknownLink { from: 0, to: 9 });
        // Nothing was assigned to the valid prefix.
        assert_eq!(m.total_link_load(), before);
    }

    #[test]
    fn reset_keeps_capacities() {
        let mut m = model();
        m.assign_flow(&[1, 0], 10.0).unwrap();
        m.reset_load();
        assert_eq!(m.utilization(1, 0), Some(0.0));
        assert!(m.bottleneck().is_none());
    }

    #[test]
    fn directionality_respected() {
        let mut m = CapacityModel::new();
        m.set_capacity(0, 1, 10.0); // one way only
        assert!(m.assign_flow(&[0, 1], 5.0).is_ok());
        assert!(m.assign_flow(&[1, 0], 5.0).is_err());
    }
}
