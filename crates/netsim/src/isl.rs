//! +Grid inter-satellite-link topology over a constellation snapshot.
//!
//! Each satellite has 4 ISLs — two intra-orbit (previous/next slot) and
//! two inter-orbit (same slot in adjacent planes) — the "standard grid
//! satellite network topology" the paper assumes (§3, citing [6, 79]).
//! Ground stations attach to every satellite above their minimum
//! elevation. Link weights are one-way physical propagation delays (ms)
//! computed from actual satellite separations at the snapshot time, so
//! Dijkstra over this graph gives the paper's baseline routing delays.
//!
//! Near the poles, satellites in adjacent planes move in opposite
//! directions and their laser links cannot stay aligned (§3.2 footnote 2);
//! inter-plane ISLs are dropped above a configurable latitude threshold,
//! reproducing the paper's "neighboring satellites without direct links
//! … multi-hop (up to 48) signaling delivery" effect.

use crate::topo::{Graph, NodeId};
use sc_geo::sphere::{propagation_delay_ms, GeoPoint};
use sc_orbit::{
    Constellation, GroundStationSet, IndexedSnapshot, Propagator, SatId, SatMask, SatState,
};

/// What a node in the ISL network represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A satellite.
    Sat(SatId),
    /// A ground station (index into the [`GroundStationSet`]).
    Ground(usize),
}

/// Configuration for ISL graph construction.
#[derive(Debug, Clone, Copy)]
pub struct IslConfig {
    /// Latitude (radians) above which inter-plane ISLs are dropped.
    /// `None` keeps all cross-links (reasonable for low-inclination
    /// shells that never approach the poles).
    pub polar_cutoff_lat: Option<f64>,
    /// Per-hop processing/forwarding delay added to each link, ms.
    pub per_hop_processing_ms: f64,
}

impl Default for IslConfig {
    fn default() -> Self {
        Self {
            polar_cutoff_lat: Some(70f64.to_radians()),
            per_hop_processing_ms: 1.0,
        }
    }
}

/// The ISL + ground-station network at one emulation instant.
#[derive(Debug, Clone)]
pub struct IslNetwork {
    graph: Graph,
    constellation: Constellation,
    num_sats: usize,
    num_ground: usize,
    snapshot: Vec<SatState>,
    /// Per-station visibility bitsets computed during the build (bit =
    /// snapshot index of an attached satellite).
    ground_visibility: Vec<SatMask>,
    time: f64,
}

impl IslNetwork {
    /// Build the network at emulation time `t`.
    pub fn build(
        prop: &dyn Propagator,
        stations: &GroundStationSet,
        t: f64,
        cfg: IslConfig,
    ) -> Self {
        let constellation = Constellation::new(prop.config().clone());
        // Index the snapshot so ground attachment scans only the
        // satellites near each station instead of the whole shell.
        let indexed = IndexedSnapshot::build(prop, t);
        let snapshot = indexed.states();
        let num_sats = snapshot.len();
        let num_ground = stations.len();
        let mut graph = Graph::new(num_sats + num_ground);

        // Satellite-to-satellite +Grid links.
        for sat in constellation.sats() {
            let i = constellation.index_of(sat);
            let si = &snapshot[i];
            for (k, nb) in constellation.grid_neighbors(sat).into_iter().enumerate() {
                let j = constellation.index_of(nb);
                if j <= i {
                    continue; // add each undirected link once
                }
                let inter_plane = k >= 2;
                if inter_plane {
                    if let Some(cutoff) = cfg.polar_cutoff_lat {
                        let lat_i = si.subpoint.lat.abs();
                        let lat_j = snapshot[j].subpoint.lat.abs();
                        if lat_i > cutoff || lat_j > cutoff {
                            continue;
                        }
                    }
                }
                let d_km = si.position.distance_km(&snapshot[j].position);
                let delay = propagation_delay_ms(d_km) + cfg.per_hop_processing_ms;
                graph.add_bidirectional(i, j, delay);
            }
        }

        // Ground-to-satellite links: attach to all visible satellites.
        // The bitset visibility kernel: candidates come from the spatial
        // index (a geometric superset of the coverage cap), the exact
        // elevation test marks bits, and links are added in ascending
        // snapshot order — the same edges, in the same order, as the
        // historical full scan.
        let min_elev = prop.config().min_elevation_rad;
        let mut ground_visibility = Vec::with_capacity(num_ground);
        for (gi, gs) in stations.stations().iter().enumerate() {
            let gnode = num_sats + gi;
            let mut mask = SatMask::empty(num_sats);
            indexed.for_each_candidate(&gs.location, |i, st| {
                let elev = sc_geo::sphere::elevation_angle(&gs.location, &st.position);
                if elev >= min_elev {
                    mask.set(i);
                }
            });
            for i in mask.iter() {
                let st = &snapshot[i];
                let d_km = st.position.distance_km(&gs.location.surface_vector());
                let delay = propagation_delay_ms(d_km) + cfg.per_hop_processing_ms;
                graph.add_bidirectional(gnode, i, delay);
            }
            ground_visibility.push(mask);
        }

        Self {
            graph,
            constellation,
            num_sats,
            num_ground,
            snapshot: indexed.into_states(),
            ground_visibility,
            time: t,
        }
    }

    /// The underlying graph (node ids: satellites first, then grounds).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Emulation time of this snapshot.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Satellite states at the snapshot time, plane-major.
    pub fn snapshot(&self) -> &[SatState] {
        &self.snapshot
    }

    /// Node id of a satellite.
    pub fn sat_node(&self, sat: SatId) -> NodeId {
        self.constellation.index_of(sat)
    }

    /// Node id of a ground station.
    pub fn ground_node(&self, gs_index: usize) -> NodeId {
        assert!(gs_index < self.num_ground, "ground index out of range");
        self.num_sats + gs_index
    }

    /// What a node id represents.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        if n < self.num_sats {
            NodeKind::Sat(self.constellation.sat_at(n))
        } else {
            NodeKind::Ground(n - self.num_sats)
        }
    }

    /// Number of satellites.
    pub fn num_sats(&self) -> usize {
        self.num_sats
    }

    /// Number of ground stations.
    pub fn num_ground(&self) -> usize {
        self.num_ground
    }

    /// Visibility bitset of ground station `gi`: bit `i` set iff
    /// satellite `i` (snapshot order) is attached to this station.
    /// Popcount equals the station's ground-satellite link count.
    pub fn ground_visibility(&self, gi: usize) -> &SatMask {
        &self.ground_visibility[gi]
    }

    /// The satellite with the highest elevation over `p`, if any.
    pub fn serving_sat_of(&self, p: &GeoPoint, min_elev: f64) -> Option<SatId> {
        let mut best: Option<(f64, usize)> = None;
        for (i, st) in self.snapshot.iter().enumerate() {
            let e = sc_geo::sphere::elevation_angle(p, &st.position);
            if e >= min_elev && best.is_none_or(|(be, _)| e > be) {
                best = Some((e, i));
            }
        }
        best.map(|(_, i)| self.constellation.sat_at(i))
    }

    /// The constellation this network was built from.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_orbit::{ConstellationConfig, IdealPropagator};

    fn iridium_net() -> IslNetwork {
        let prop = IdealPropagator::new(ConstellationConfig::iridium());
        let gs = GroundStationSet::starlink_like();
        IslNetwork::build(&prop, &gs, 0.0, IslConfig::default())
    }

    #[test]
    fn node_counts() {
        let net = iridium_net();
        assert_eq!(net.num_sats(), 66);
        assert_eq!(net.num_ground(), 30);
        assert_eq!(net.graph().len(), 96);
    }

    #[test]
    fn sat_degree_at_most_four_isls() {
        let net = iridium_net();
        for i in 0..net.num_sats() {
            let isl_neighbors = net
                .graph()
                .neighbors(i)
                .filter(|(n, _)| *n < net.num_sats())
                .count();
            assert!(isl_neighbors <= 4, "sat {i} has {isl_neighbors} ISLs");
            assert!(isl_neighbors >= 2, "sat {i} has {isl_neighbors} ISLs");
        }
    }

    #[test]
    fn polar_cutoff_drops_cross_links() {
        let prop = IdealPropagator::new(ConstellationConfig::iridium());
        let gs = GroundStationSet::starlink_like();
        let with_cutoff = IslNetwork::build(&prop, &gs, 0.0, IslConfig::default());
        let without = IslNetwork::build(
            &prop,
            &gs,
            0.0,
            IslConfig {
                polar_cutoff_lat: None,
                ..IslConfig::default()
            },
        );
        assert!(with_cutoff.graph().edge_count() < without.graph().edge_count());
    }

    #[test]
    fn network_is_connected_for_starlink() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let gs = GroundStationSet::starlink_like();
        let net = IslNetwork::build(&prop, &gs, 0.0, IslConfig::default());
        // Every satellite can reach satellite 0 through ISLs.
        for i in (0..net.num_sats()).step_by(97) {
            assert!(
                net.graph().hop_distance(i, 0).is_some(),
                "sat {i} disconnected"
            );
        }
    }

    #[test]
    fn isl_delays_physical() {
        let net = iridium_net();
        for i in 0..net.num_sats() {
            for (j, w) in net.graph().neighbors(i) {
                if j < net.num_sats() {
                    // Iridium in-plane separation ≈ 2πr/11 ≈ 4084 km →
                    // ~14.6 msim delay (+1 processing). Inter-plane varies.
                    assert!(w > 1.0 && w < 40.0, "link {i}-{j} weight {w}");
                }
            }
        }
    }

    #[test]
    fn ground_visibility_masks_match_links_and_full_scan() {
        let net = iridium_net();
        for g in 0..net.num_ground() {
            let mask = net.ground_visibility(g);
            // Popcount = attached link count.
            assert_eq!(
                mask.count(),
                net.graph().neighbors(net.ground_node(g)).count(),
                "station {g}"
            );
            // Set bits = exactly the neighbors, ascending.
            let neighbors: Vec<usize> =
                net.graph().neighbors(net.ground_node(g)).map(|(n, _)| n).collect();
            assert_eq!(mask.iter().collect::<Vec<_>>(), neighbors, "station {g}");
        }
    }

    #[test]
    fn grounds_attach_to_visible_sats() {
        let net = iridium_net();
        let mut attached = 0;
        for g in 0..net.num_ground() {
            attached += net.graph().neighbors(net.ground_node(g)).count();
        }
        assert!(attached > 0, "no ground-satellite links at all");
    }

    #[test]
    fn multi_hop_distance_bounded() {
        // §3.2: "multi-hop (up to 48) signaling delivery" — grid diameter
        // for Starlink is (72+22)/2 = 47-ish hops.
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let gs = GroundStationSet::starlink_like();
        let net = IslNetwork::build(&prop, &gs, 0.0, IslConfig::default());
        let a = net.sat_node(SatId::new(0, 0));
        let b = net.sat_node(SatId::new(36, 11)); // antipodal in the grid
        // ISL-only path: block the ground-station shortcut nodes.
        let r = net
            .graph()
            .shortest_path(a, b, |n| n >= net.num_sats())
            .unwrap();
        let hops = r.hops();
        assert!((20..=60).contains(&hops), "hops {hops}");
    }

    #[test]
    fn serving_sat_exists_for_mid_latitudes() {
        let prop = IdealPropagator::new(ConstellationConfig::starlink());
        let gs = GroundStationSet::starlink_like();
        let net = IslNetwork::build(&prop, &gs, 0.0, IslConfig::default());
        let p = GeoPoint::from_degrees(40.0, -100.0);
        // 25° elevation may not always be met at one instant; accept an
        // answer at a slightly relaxed threshold.
        assert!(net.serving_sat_of(&p, 15f64.to_radians()).is_some());
    }

    #[test]
    fn kind_roundtrip() {
        let net = iridium_net();
        assert_eq!(net.kind(0), NodeKind::Sat(SatId::new(0, 0)));
        assert_eq!(net.kind(net.ground_node(3)), NodeKind::Ground(3));
    }
}
