//! Property-based tests for the network substrate.

use proptest::prelude::*;
use sc_netsim::des::EventQueue;
use sc_netsim::failure::{GilbertElliott, LossProcess, NodeFailures};
use sc_netsim::flow::TcpFlow;
use sc_netsim::queueing::MM1Model;
use sc_netsim::topo::Graph;

proptest! {
    #[test]
    fn event_queue_pops_in_time_order(times in proptest::collection::vec(0.0f64..1e6, 1..100)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(*t, i);
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= prev);
            prev = e.time;
        }
    }

    #[test]
    fn event_queue_fifo_within_ties(n in 1usize..200) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(1.0, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn dijkstra_cost_never_below_direct_edge(
        edges in proptest::collection::vec((0usize..12, 0usize..12, 0.1f64..100.0), 1..60),
    ) {
        let mut g = Graph::new(12);
        let mut direct: std::collections::HashMap<(usize, usize), f64> =
            std::collections::HashMap::new();
        for (a, b, w) in &edges {
            if a != b {
                g.add_edge(*a, *b, *w);
                let e = direct.entry((*a, *b)).or_insert(f64::INFINITY);
                *e = e.min(*w);
            }
        }
        // sc-audit: allow(unordered, reason = "property holds per edge independently; iteration order cannot affect the prop_assert outcomes")
        for ((a, b), w) in &direct {
            if let Some(p) = g.shortest_path(*a, *b, |_| false) {
                prop_assert!(p.cost <= *w + 1e-9, "{a}->{b}: {} > {w}", p.cost);
                // Path endpoints correct.
                prop_assert_eq!(p.path[0], *a);
                prop_assert_eq!(*p.path.last().unwrap(), *b);
            }
        }
    }

    #[test]
    fn dijkstra_triangle_inequality(
        edges in proptest::collection::vec((0usize..10, 0usize..10, 0.1f64..50.0), 5..40),
        via in 0usize..10,
    ) {
        let mut g = Graph::new(10);
        for (a, b, w) in &edges {
            if a != b {
                g.add_bidirectional(*a, *b, *w);
            }
        }
        if let (Some(ab), Some(av), Some(vb)) = (
            g.shortest_path(0, 9, |_| false),
            g.shortest_path(0, via, |_| false),
            g.shortest_path(via, 9, |_| false),
        ) {
            prop_assert!(ab.cost <= av.cost + vb.cost + 1e-9);
        }
    }

    #[test]
    fn blocked_nodes_never_appear_on_paths(
        edges in proptest::collection::vec((0usize..10, 0usize..10, 0.1f64..50.0), 5..40),
        blocked in 1usize..9,
    ) {
        let mut g = Graph::new(10);
        for (a, b, w) in &edges {
            if a != b {
                g.add_bidirectional(*a, *b, *w);
            }
        }
        if let Some(p) = g.shortest_path(0, 9, |n| n == blocked) {
            prop_assert!(!p.path.contains(&blocked));
        }
    }

    #[test]
    fn loss_process_rate_in_range(p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut lp = LossProcess::new(p, seed);
        let n = 5000;
        let losses = (0..n).filter(|_| lp.lost()).count() as f64 / n as f64;
        prop_assert!((losses - p).abs() < 0.05, "{losses} vs {p}");
    }

    #[test]
    fn gilbert_elliott_stationary(p_gb in 0.001f64..0.2, p_bg in 0.01f64..0.5, seed in 1u64..1000) {
        let mut ge = GilbertElliott::new(p_gb, p_bg, 0.0, 1.0, seed);
        let n = 30_000;
        let rate = (0..n).filter(|_| ge.lost()).count() as f64 / n as f64;
        let expect = ge.stationary_loss();
        prop_assert!((rate - expect).abs() < 0.05, "{rate} vs {expect}");
    }

    #[test]
    fn node_failures_fraction(p in 0.0f64..0.5, seed in any::<u64>()) {
        let nf = NodeFailures::random(5000, p, seed);
        let frac = nf.dead_count() as f64 / 5000.0;
        prop_assert!((frac - p).abs() < 0.05);
    }

    #[test]
    fn mm1_latency_monotone(service_ms in 0.1f64..20.0, l1 in 0.0f64..500.0, dl in 0.0f64..500.0) {
        let m = MM1Model::from_service_time(service_ms / 1000.0, 10.0);
        prop_assert!(m.sojourn_s(l1 + dl) >= m.sojourn_s(l1) - 1e-12);
    }

    #[test]
    fn tcp_flow_never_negative_throughput(rtt in 0.01f64..0.5, outage_at in 1.0f64..5.0) {
        let mut f = TcpFlow::new(rtt);
        let mut t = 0.0;
        while t < 20.0 {
            let up = !(outage_at..outage_at + 1.0).contains(&t);
            let thr = f.step(t, up);
            prop_assert!(thr >= 0.0);
            prop_assert!(thr.is_finite());
            t += rtt;
        }
    }
}
