//! Differential property tests: the calendar-queue [`EventQueue`]
//! against the retained binary-heap [`reference::ReferenceQueue`].
//!
//! The reference queue is the executable specification of the pop
//! order (ascending time, FIFO among equal timestamps); these tests
//! pin the calendar queue to it on random workloads that exercise all
//! three tiers — the sorted `active` day, the 256-slot wheel, and the
//! overflow heap — plus interleaved pops, ties, and `reset`.

use proptest::prelude::*;
use sc_netsim::des::{reference::ReferenceQueue, EventQueue};

/// Drain both queues and assert the full `(time, seq, event)` pop
/// sequences are identical.
fn assert_drains_equal(cal: &mut EventQueue<usize>, refq: &mut ReferenceQueue<usize>) {
    loop {
        let (a, b) = (cal.pop(), refq.pop());
        assert_eq!(a.is_some(), b.is_some(), "queues ended at different lengths");
        match (a, b) {
            (Some(a), Some(b)) => {
                assert_eq!(
                    (a.time, a.seq, a.event),
                    (b.time, b.seq, b.event),
                    "calendar and reference disagree"
                );
            }
            _ => break,
        }
    }
}

/// Map a tier selector and a unit fraction onto an offset that lands
/// in the current day (< 1 s), the wheel (< 256 days), or the
/// overflow heap (>= 256 days). Overflow is deliberately rare, as in
/// real workloads.
fn tiered(sel: u32, frac: f64) -> f64 {
    match sel % 9 {
        0..=3 => frac,
        4..=7 => frac * 256.0,
        _ => 256.0 + frac * 1.0e6,
    }
}

/// Offsets spanning all three tiers.
fn any_offset() -> impl Strategy<Value = f64> {
    (0u32..9, 0.0f64..1.0).prop_map(|(s, f)| tiered(s, f))
}

proptest! {
    /// Schedule-everything-then-drain: identical pop order across the
    /// tier mix.
    #[test]
    fn drain_matches_reference(offsets in proptest::collection::vec(any_offset(), 1..200)) {
        let mut cal = EventQueue::new();
        let mut refq = ReferenceQueue::new();
        for (i, dt) in offsets.iter().enumerate() {
            cal.schedule(*dt, i);
            refq.schedule(*dt, i);
        }
        assert_drains_equal(&mut cal, &mut refq);
    }

    /// Quantized timestamps force heavy ties; FIFO among equal times
    /// must match the reference exactly.
    #[test]
    fn tie_heavy_drain_matches_reference(
        quanta in proptest::collection::vec(0u32..8, 1..300),
    ) {
        let mut cal = EventQueue::new();
        let mut refq = ReferenceQueue::new();
        for (i, q) in quanta.iter().enumerate() {
            let t = f64::from(*q) * 0.5;
            cal.schedule(t, i);
            refq.schedule(t, i);
        }
        assert_drains_equal(&mut cal, &mut refq);
    }

    /// Interleaved schedule/pop: pops advance the clock, later
    /// schedules land relative to it (as real simulations do), and
    /// every intermediate pop must agree.
    #[test]
    fn interleaved_ops_match_reference(
        // `Some(dt)` schedules at `now + dt`; `None` pops.
        ops in proptest::collection::vec(
            (0u32..4, 0u32..9, 0.0f64..1.0)
                .prop_map(|(op, s, f)| (op < 3).then(|| tiered(s, f))),
            1..250,
        ),
    ) {
        let mut cal = EventQueue::new();
        let mut refq = ReferenceQueue::new();
        let mut next = 0usize;
        for op in ops {
            match op {
                Some(dt) => {
                    let t = cal.now() + dt;
                    cal.schedule(t, next);
                    refq.schedule(t, next);
                    next += 1;
                }
                None => {
                    let (a, b) = (cal.pop(), refq.pop());
                    prop_assert_eq!(
                        a.as_ref().map(|e| (e.time, e.seq, e.event)),
                        b.as_ref().map(|e| (e.time, e.seq, e.event))
                    );
                    prop_assert_eq!(cal.now(), refq.now());
                }
            }
            prop_assert_eq!(cal.len(), refq.len());
        }
        assert_drains_equal(&mut cal, &mut refq);
    }

    /// A reset calendar queue replays exactly like a fresh reference
    /// queue — reuse across procedure runs cannot leak state.
    #[test]
    fn reset_queue_matches_fresh_reference(
        warmup in proptest::collection::vec(any_offset(), 0..60),
        replay in proptest::collection::vec(any_offset(), 1..60),
    ) {
        let mut cal = EventQueue::new();
        for (i, dt) in warmup.iter().enumerate() {
            cal.schedule(*dt, i);
        }
        // Drain roughly half, then reset mid-flight.
        for _ in 0..warmup.len() / 2 {
            cal.pop();
        }
        cal.reset();
        prop_assert_eq!(cal.len(), 0);
        prop_assert_eq!(cal.now(), 0.0);

        let mut refq = ReferenceQueue::new();
        for (i, dt) in replay.iter().enumerate() {
            cal.schedule(*dt, i);
            refq.schedule(*dt, i);
        }
        assert_drains_equal(&mut cal, &mut refq);
    }

    /// `run_until` processes exactly the events the reference queue
    /// says are due by the horizon, in the same order, and leaves the
    /// rest pending.
    #[test]
    fn run_until_matches_reference_prefix(
        offsets in proptest::collection::vec(any_offset(), 1..150),
        horizon in 0.0f64..400.0,
    ) {
        let mut cal = EventQueue::new();
        let mut refq = ReferenceQueue::new();
        for (i, dt) in offsets.iter().enumerate() {
            cal.schedule(*dt, i);
            refq.schedule(*dt, i);
        }
        let mut seen = Vec::new();
        let n = cal.run_until(horizon, |_, t, v| seen.push((t, v)));
        prop_assert_eq!(n, seen.len());
        for (t, v) in &seen {
            let e = refq.pop();
            prop_assert_eq!(e.as_ref().map(|e| (e.time, e.event)), Some((*t, *v)));
        }
        // Everything left in the reference is past the horizon, and the
        // calendar agrees on the remainder.
        if let Some(e) = refq.peek() {
            prop_assert!(e.time > horizon);
        }
        assert_drains_equal(&mut cal, &mut refq);
    }
}
