//! Property-based tests for the chaos-injection layer (`sc-netsim::chaos`).
//!
//! The properties the `ext_chaos` experiment's byte-stability checks
//! lean on: identical seed + timeline ⇒ bit-identical outcomes, the
//! empty/static-embedding timelines reproduce the legacy static-failure
//! results exactly, and partition-as-transient retries recover runs a
//! legacy abort-on-partition simulator loses.

use proptest::prelude::*;
use sc_netsim::chaos::FailureTimeline;
use sc_netsim::failure::{LossProcess, NodeFailures};
use sc_netsim::sim::{steps_from_pairs, ProcedureSim, SimConfig, SimStep};
use sc_netsim::topo::Graph;

/// A small ring-with-chords topology: every node reachable over at least
/// two disjoint routes, so single crashes reroute rather than partition.
fn ring_with_chords(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_bidirectional(i, (i + 1) % n, 5.0 + (i % 3) as f64);
    }
    for i in 0..n / 2 {
        g.add_bidirectional(i, i + n / 2, 17.0);
    }
    g
}

fn procedure(n: usize, legs: usize) -> Vec<SimStep> {
    let pairs: Vec<(&str, usize, usize)> = (0..legs)
        .map(|i| {
            if i % 2 == 0 {
                ("fwd", 0usize, n / 2)
            } else {
                ("bwd", n / 2, 0usize)
            }
        })
        .collect();
    steps_from_pairs(&pairs)
}

proptest! {
    /// Identical seed and timeline ⇒ bit-identical `SimOutcome`
    /// sequences, including every delivery timestamp.
    #[test]
    fn same_seed_same_timeline_bit_identical(
        seed in any::<u64>(),
        p_crash in 0.0f64..0.3,
        p_loss in 0.0f64..0.3,
        legs in 1usize..6,
    ) {
        let n = 12;
        let g = ring_with_chords(n);
        let tl = FailureTimeline::random_crashes(n, p_crash, 300.0, Some(150.0), seed)
            .without_node(0)
            .without_node(n / 2)
            .loss_burst(50.0, 200.0, 0.2)
            .with_seed(seed ^ 0xABCD);
        let steps = procedure(n, legs);
        let cfg = SimConfig {
            retry_on_partition: true,
            total_deadline_ms: 5_000.0,
            backoff_factor: 1.5,
            rto_cap_ms: 1_000.0,
            ..SimConfig::default()
        };
        let run = || {
            let sim = ProcedureSim::with_timeline(&g, &tl, cfg.clone());
            (0..4)
                .map(|i| sim.run(&steps, &mut LossProcess::new(p_loss, seed ^ i)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// The empty timeline and the static embedding of a `NodeFailures`
    /// snapshot reproduce the legacy static-failure results exactly.
    #[test]
    fn static_embedding_matches_legacy(
        seed in any::<u64>(),
        p_dead in 0.0f64..0.4,
        p_loss in 0.0f64..0.4,
        legs in 1usize..6,
    ) {
        let n = 12;
        let g = ring_with_chords(n);
        let mut nf = NodeFailures::random(n, p_dead, seed);
        nf.recover(0);
        nf.recover(n / 2);
        let tl = FailureTimeline::from_static(&nf);
        let steps = procedure(n, legs);
        let cfg = SimConfig::default();
        let legacy = ProcedureSim::new(&g, &nf, cfg.clone())
            .run(&steps, &mut LossProcess::new(p_loss, seed ^ 1));
        let replay = ProcedureSim::with_timeline(&g, &tl, cfg.clone())
            .run(&steps, &mut LossProcess::new(p_loss, seed ^ 1));
        prop_assert_eq!(&legacy, &replay);

        // And the empty timeline matches a no-failure legacy run.
        let none = NodeFailures::none();
        let empty = FailureTimeline::none();
        let legacy0 = ProcedureSim::new(&g, &none, cfg.clone())
            .run(&steps, &mut LossProcess::new(p_loss, seed ^ 2));
        let replay0 = ProcedureSim::with_timeline(&g, &empty, cfg)
            .run(&steps, &mut LossProcess::new(p_loss, seed ^ 2));
        prop_assert_eq!(&legacy0, &replay0);
    }

    /// A crash-then-recover of the only transit node defeats the legacy
    /// abort-on-partition run but not a backoff-enabled retry run.
    #[test]
    fn retry_rides_out_crash_where_abort_fails(
        down_ms in 50.0f64..2_000.0,
        weight in 1.0f64..50.0,
    ) {
        // Line 0—1—2: node 1 is the only transit; dead from t = 0,
        // back at `down_ms`.
        let mut g = Graph::new(3);
        g.add_bidirectional(0, 1, weight);
        g.add_bidirectional(1, 2, weight);
        let tl = FailureTimeline::none().crash(0.0, 1).recover(down_ms, 1);
        let steps = steps_from_pairs(&[("req", 0, 2), ("rsp", 2, 0)]);
        let mut loss = LossProcess::new(0.0, 1);

        let abort = ProcedureSim::with_timeline(&g, &tl, SimConfig::default())
            .run(&steps, &mut loss.clone());
        prop_assert!(!abort.completed, "legacy semantics must abort");

        let retry_cfg = SimConfig {
            retry_on_partition: true,
            backoff_factor: 2.0,
            rto_cap_ms: 800.0,
            total_deadline_ms: 20_000.0,
            ..SimConfig::default()
        };
        let retry = ProcedureSim::with_timeline(&g, &tl, retry_cfg)
            .run(&steps, &mut loss);
        prop_assert!(retry.completed, "retry must ride out the outage");
        prop_assert!(retry.latency_ms >= down_ms);
    }
}
