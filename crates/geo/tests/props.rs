//! Property-based tests for the geodesy substrate.

use proptest::prelude::*;
use sc_geo::angle::{normalize_lon, wrap_2pi};
use sc_geo::cells::{CellGrid, CellId};
use sc_geo::inclined::{InclinedCoord, InclinedFrame};
use sc_geo::sphere::GeoPoint;
use sc_geo::GeoAddress;
use std::f64::consts::{FRAC_PI_2, PI, TAU};

proptest! {
    #[test]
    fn wrap_2pi_in_range(a in -1e6f64..1e6) {
        let w = wrap_2pi(a);
        prop_assert!((0.0..TAU).contains(&w), "{w}");
    }

    #[test]
    fn normalize_lon_in_range(a in -1e6f64..1e6) {
        let w = normalize_lon(a);
        prop_assert!(w > -PI - 1e-12 && w <= PI + 1e-12, "{w}");
    }

    #[test]
    fn geo_vector_roundtrip(lat in -1.55f64..1.55, lon in -3.1f64..3.1) {
        let p = GeoPoint::new(lat, lon);
        let q = p.surface_vector().to_geo();
        prop_assert!((p.lat - q.lat).abs() < 1e-9);
        prop_assert!((p.lon - q.lon).abs() < 1e-9);
    }

    #[test]
    fn distance_symmetric_and_triangle(
        lat1 in -1.5f64..1.5, lon1 in -3.1f64..3.1,
        lat2 in -1.5f64..1.5, lon2 in -3.1f64..3.1,
        lat3 in -1.5f64..1.5, lon3 in -3.1f64..3.1,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let c = GeoPoint::new(lat3, lon3);
        prop_assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-6);
        prop_assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-6);
    }

    #[test]
    fn inclined_roundtrip_ascending(
        inc in 0.3f64..1.55,
        alpha in 0.0f64..TAU,
        gamma in -1.5f64..1.5,
    ) {
        let f = InclinedFrame::new(inc);
        let c = InclinedCoord::new(alpha, gamma);
        let p = f.to_geo(c);
        let c2 = f.from_geo(&p).unwrap();
        prop_assert!((wrap_2pi(c2.alpha) - wrap_2pi(alpha)).abs() < 1e-6
            || (wrap_2pi(c2.alpha) - wrap_2pi(alpha)).abs() > TAU - 1e-6);
        prop_assert!((c2.gamma - gamma).abs() < 1e-6);
    }

    #[test]
    fn inclined_band_respected(inc in 0.3f64..1.5, lat in -1.55f64..1.55, lon in -3.1f64..3.1) {
        let f = InclinedFrame::new(inc);
        let p = GeoPoint::new(lat, lon);
        let r = f.from_geo(&p);
        if lat.abs() <= inc - 1e-9 {
            prop_assert!(r.is_ok());
        } else if lat.abs() > inc + 1e-9 {
            prop_assert!(r.is_err());
        }
    }

    #[test]
    fn cell_assignment_in_grid_bounds(
        planes in 1u16..100, slots in 1u16..50,
        lat in -1.5f64..1.5, lon in -3.1f64..3.1,
    ) {
        let g = CellGrid::new(1.2, planes, slots);
        let id = g.cell_of_point(&GeoPoint::new(lat, lon));
        prop_assert!(id.col < planes && id.row < slots);
    }

    #[test]
    fn cell_areas_positive_and_tile_band_twice(planes in 2u16..40, slots in 2u16..30) {
        let inc = 1.0f64;
        let g = CellGrid::new(inc, planes, slots);
        let mut total = 0.0;
        for id in g.iter_cells() {
            let a = g.cell_area_km2(id);
            prop_assert!(a > 0.0);
            total += a;
        }
        let band = 4.0 * PI * sc_geo::EARTH_RADIUS_KM * sc_geo::EARTH_RADIUS_KM * inc.sin();
        prop_assert!((total / (2.0 * band) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cell_center_maps_back(planes in 1u16..80, slots in 1u16..40, col in 0u16..80, row in 0u16..40) {
        let g = CellGrid::new(0.9, planes, slots);
        let id = CellId::new(col % planes, row % slots);
        prop_assert_eq!(g.cell_of_coord(g.cell_center(id)), id);
    }

    #[test]
    fn address_roundtrip(plmn in any::<u32>(), hc in any::<u32>(), uc in any::<u32>(), sfx in any::<u32>()) {
        let a = GeoAddress::new(plmn, CellId::unpack(hc), CellId::unpack(uc), sfx);
        prop_assert_eq!(GeoAddress::decode(a.encode()), a);
        prop_assert_eq!(GeoAddress::from_ipv6(a.to_ipv6()), a);
    }

    #[test]
    fn neighbors_are_mutual(planes in 2u16..60, slots in 2u16..30, col in 0u16..60, row in 0u16..30) {
        let g = CellGrid::new(1.1, planes, slots);
        let id = CellId::new(col % planes, row % slots);
        for n in g.neighbors(id) {
            prop_assert!(g.neighbors(n).contains(&id));
        }
    }

    #[test]
    fn gamma_turning_points_hit_max_lat(inc in 0.3f64..1.5, alpha in 0.0f64..TAU) {
        let f = InclinedFrame::new(inc);
        let top = f.to_geo(InclinedCoord::new(alpha, FRAC_PI_2));
        prop_assert!((top.lat - inc).abs() < 1e-9);
        let bottom = f.to_geo(InclinedCoord::new(alpha, -FRAC_PI_2));
        prop_assert!((bottom.lat + inc).abs() < 1e-9);
    }
}
