//! Hierarchical sub-cell refinement (§6.2).
//!
//! "In Iridium, SpaceCore sometimes incurs > 100 ms longer path delays
//! … from the detours due to the granularity of the geospatial cells
//! and can be avoided with finer-grained cells (thus more bits in the
//! addressing in Figure 15c)."
//!
//! A [`SubCellId`] refines a base [`CellId`] by a
//! quadtree subdivision of its (α, γ) rectangle: each level splits both
//! axes in half, adding 2 bits per level. Level 0 is the base cell. The
//! refined id packs into the same 32-bit field as the base id does —
//! the address format of Figure 15c simply spends spare suffix bits on
//! the quadrant path.

use crate::cells::{CellGrid, CellId};
use crate::inclined::InclinedCoord;
use crate::sphere::GeoPoint;

/// Maximum refinement level representable in the packed form
/// (2 bits per level in a 16-bit quadrant path + 4-bit level field).
pub const MAX_LEVEL: u8 = 8;

/// A refined cell: base cell + quadrant path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubCellId {
    /// The base grid cell.
    pub base: CellId,
    /// Refinement level (0 = base cell).
    pub level: u8,
    /// Quadrant path, 2 bits per level, level 1 in the least-significant
    /// bits. Quadrants: bit0 = upper α half, bit1 = upper γ half.
    pub path: u16,
}

impl SubCellId {
    /// The unrefined base cell.
    pub fn base_only(base: CellId) -> Self {
        Self {
            base,
            level: 0,
            path: 0,
        }
    }

    /// Pack to 64 bits: base(32) | level(4) | path(16) (12 bits spare).
    pub fn pack(&self) -> u64 {
        (self.base.pack() as u64) << 32 | (self.level as u64) << 16 | self.path as u64
    }

    /// Inverse of [`Self::pack`].
    pub fn unpack(v: u64) -> Self {
        Self {
            base: CellId::unpack((v >> 32) as u32),
            level: ((v >> 16) & 0xF) as u8,
            path: v as u16,
        }
    }

    /// Is `other` this sub-cell or a descendant of it?
    pub fn contains(&self, other: &SubCellId) -> bool {
        if self.base != other.base || other.level < self.level {
            return false;
        }
        let mask = if self.level == 0 {
            0
        } else {
            (1u16 << (2 * self.level)) - 1
        };
        (other.path & mask) == (self.path & mask)
    }

    /// Parent sub-cell (None at level 0).
    pub fn parent(&self) -> Option<SubCellId> {
        if self.level == 0 {
            return None;
        }
        let level = self.level - 1;
        let mask = if level == 0 { 0 } else { (1u16 << (2 * level)) - 1 };
        Some(SubCellId {
            base: self.base,
            level,
            path: self.path & mask,
        })
    }
}

/// Refinement operations over a base grid.
pub trait SubCellExt {
    /// The level-`level` sub-cell containing a point.
    fn subcell_of_point(&self, p: &GeoPoint, level: u8) -> SubCellId;
    /// The (α, γ) centre of a sub-cell.
    fn subcell_center(&self, id: SubCellId) -> InclinedCoord;
    /// Angular half-sizes (α, γ) of a level-`level` sub-cell.
    fn subcell_half_size(&self, level: u8) -> (f64, f64);
}

impl SubCellExt for CellGrid {
    fn subcell_of_point(&self, p: &GeoPoint, level: u8) -> SubCellId {
        assert!(level <= MAX_LEVEL, "level {level} > {MAX_LEVEL}");
        let coord = self.frame().from_geo_clamped(p);
        let base = self.cell_of_coord(coord);
        let (lo, _) = self.cell_bounds(base);
        // Fractional position inside the base cell.
        let fa = ((sc_wrap(coord.alpha) - lo.alpha).rem_euclid(std::f64::consts::TAU))
            / self.alpha_width();
        let fg = ((sc_wrap(coord.gamma) - lo.gamma).rem_euclid(std::f64::consts::TAU))
            / self.gamma_height();
        let mut path = 0u16;
        let (mut fa, mut fg) = (fa.clamp(0.0, 0.999_999), fg.clamp(0.0, 0.999_999));
        for l in 0..level {
            let qa = if fa >= 0.5 { 1u16 } else { 0 };
            let qg = if fg >= 0.5 { 1u16 } else { 0 };
            path |= (qa | (qg << 1)) << (2 * l);
            fa = (fa - 0.5 * qa as f64) * 2.0;
            fg = (fg - 0.5 * qg as f64) * 2.0;
        }
        SubCellId { base, level, path }
    }

    fn subcell_center(&self, id: SubCellId) -> InclinedCoord {
        let (lo, _) = self.cell_bounds(id.base);
        let (mut a0, mut g0) = (lo.alpha, lo.gamma);
        let (mut wa, mut wg) = (self.alpha_width(), self.gamma_height());
        for l in 0..id.level {
            wa /= 2.0;
            wg /= 2.0;
            let q = (id.path >> (2 * l)) & 0b11;
            if q & 1 != 0 {
                a0 += wa;
            }
            if q & 2 != 0 {
                g0 += wg;
            }
        }
        InclinedCoord::new(a0 + wa / 2.0, g0 + wg / 2.0)
    }

    fn subcell_half_size(&self, level: u8) -> (f64, f64) {
        let f = 2f64.powi(level as i32 + 1);
        (self.alpha_width() / f, self.gamma_height() / f)
    }
}

fn sc_wrap(a: f64) -> f64 {
    crate::angle::wrap_2pi(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> CellGrid {
        CellGrid::new(86.4f64.to_radians(), 6, 11) // Iridium: the coarse case
    }

    #[test]
    fn level0_matches_base_cell() {
        let g = grid();
        let p = GeoPoint::from_degrees(40.0, -100.0);
        let s = g.subcell_of_point(&p, 0);
        assert_eq!(s.base, g.cell_of_point(&p));
        assert_eq!(s.level, 0);
        assert_eq!(s.path, 0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let g = grid();
        for lvl in [0u8, 1, 3, 8] {
            let s = g.subcell_of_point(&GeoPoint::from_degrees(-50.0, 60.0), lvl);
            assert_eq!(SubCellId::unpack(s.pack()), s);
        }
    }

    #[test]
    fn refinement_is_nested() {
        let g = grid();
        let p = GeoPoint::from_degrees(12.0, 34.0);
        let coarse = g.subcell_of_point(&p, 2);
        let fine = g.subcell_of_point(&p, 6);
        assert!(coarse.contains(&fine));
        assert!(!fine.contains(&coarse));
        // The parent chain walks back to the coarse cell.
        let mut cur = fine;
        while cur.level > 2 {
            cur = cur.parent().expect("has parent");
        }
        assert_eq!(cur, coarse);
        assert!(g.subcell_of_point(&p, 0).parent().is_none());
    }

    #[test]
    fn centers_converge_to_the_point() {
        let g = grid();
        let p = GeoPoint::from_degrees(33.0, -7.0);
        let coord = g.frame().from_geo_clamped(&p);
        let mut prev_err = f64::INFINITY;
        for lvl in [0u8, 2, 4, 6, 8] {
            let c = g.subcell_center(g.subcell_of_point(&p, lvl));
            let err = sc_geo_err(c, coord);
            assert!(err <= prev_err + 1e-12, "level {lvl}: {err} > {prev_err}");
            prev_err = err;
        }
        // At level 8, the centre is within the sub-cell half-size.
        let (ha, hg) = g.subcell_half_size(8);
        assert!(prev_err <= (ha + hg) * 1.5, "{prev_err}");
    }

    fn sc_geo_err(a: InclinedCoord, b: InclinedCoord) -> f64 {
        crate::angle::signed_delta(a.alpha, b.alpha).abs()
            + crate::angle::signed_delta(a.gamma, b.gamma).abs()
    }

    #[test]
    fn half_size_halves_per_level() {
        let g = grid();
        let (a0, g0) = g.subcell_half_size(0);
        let (a1, g1) = g.subcell_half_size(1);
        assert!((a0 / a1 - 2.0).abs() < 1e-12);
        assert!((g0 / g1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_points_separate_at_depth() {
        let g = grid();
        // Two points ~200 km apart share the (huge) Iridium base cell but
        // separate under refinement.
        let p1 = GeoPoint::from_degrees(40.0, -100.0);
        let p2 = GeoPoint::from_degrees(41.5, -98.0);
        assert_eq!(g.cell_of_point(&p1), g.cell_of_point(&p2));
        let s1 = g.subcell_of_point(&p1, 8);
        let s2 = g.subcell_of_point(&p2, 8);
        assert_ne!(s1, s2, "refinement must separate distant points");
    }

    #[test]
    #[should_panic(expected = "level")]
    fn over_deep_level_panics() {
        grid().subcell_of_point(&GeoPoint::from_degrees(0.0, 0.0), MAX_LEVEL + 1);
    }
}
