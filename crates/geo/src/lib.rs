//! Geodesy substrate for the SpaceCore reproduction.
//!
//! This crate implements the geometric foundations the paper's stateless
//! core is built on (§4.1 of the paper):
//!
//! * [`sphere`] — spherical-earth geodesy: [`sphere::GeoPoint`]
//!   lat/lon positions, ECEF [`sphere::Vec3`] vectors, great-circle
//!   distance and visibility math,
//! * [`angle`] — degree/radian newtypes and longitude wrapping, so the
//!   rest of the workspace can't mix units,
//! * [`inclined`] — the **(α, γ) affine inclined spherical coordinate
//!   system** of Figure 15a, which identifies every terrestrial location
//!   by the longitude of an ascending-node crossing (α) and the angular
//!   distance along a great circle of the constellation's inclination
//!   (γ); the frame is derived from the constellation's own orbital
//!   parameters, so satellites sweep along coordinate lines,
//! * [`cells`] — the **geospatial cell grid** of Figure 15b / Table 3
//!   that decouples service areas from fast-moving satellites:
//!   [`cells::CellId`] (plane-column, in-plane-row), [`cells::CellGrid`] (size and
//!   enumeration per Table 1 constellation), cell-level adjacency for
//!   Algorithm 1's greedy relay,
//! * [`subcell`] — hierarchical quadtree refinement of a cell (§6.2),
//!   2 address bits per level, for the Iridium detour ablation,
//! * [`addr`] — the **128-bit geospatial UE address** of Figure 15c that
//!   folds the UE's logical and physical location into a single
//!   identifier.
//!
//! Everything here is pure math with no I/O and no floating-point
//! nondeterminism across runs; the `orbit`, `netsim`, and `spacecore`
//! crates build on it. The cell grid doubles as the *shard key* for the
//! million-UE sustained-load engine — `spacecore::shard` maps
//! [`cells::CellId`]s to contiguous shard ranges in `iter_cells` order
//! (see `docs/ARCHITECTURE.md`).

pub mod addr;
pub mod angle;
pub mod cells;
pub mod inclined;
pub mod sphere;
pub mod subcell;

pub use addr::GeoAddress;
pub use angle::{normalize_lon, wrap_2pi, Degrees, Radians};
pub use cells::{CellGrid, CellId, CellStats};
pub use inclined::{InclinedCoord, InclinedFrame};
pub use subcell::{SubCellExt, SubCellId};
pub use sphere::{GeoPoint, Vec3, EARTH_RADIUS_KM};
