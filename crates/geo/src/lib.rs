//! Geodesy substrate for the SpaceCore reproduction.
//!
//! This crate implements the geometric foundations the paper's stateless
//! core is built on (§4.1 of the paper):
//!
//! * spherical-earth geodesy (great-circle math, ECEF vectors, visibility),
//! * the **(α, γ) affine inclined spherical coordinate system** of
//!   Figure 15a, which identifies every terrestrial location by the
//!   longitude of an ascending-node crossing (α) and the angular distance
//!   along a great circle of the constellation's inclination (γ),
//! * the **geospatial cell grid** of Figure 15b / Table 3 that decouples
//!   service areas from fast-moving satellites, and
//! * the **128-bit geospatial UE address** of Figure 15c that folds the
//!   UE's logical and physical location into a single identifier.
//!
//! Everything here is pure math with no I/O; the `orbit`, `netsim` and
//! `spacecore` crates build on it.

pub mod addr;
pub mod angle;
pub mod cells;
pub mod inclined;
pub mod sphere;
pub mod subcell;

pub use addr::GeoAddress;
pub use angle::{normalize_lon, wrap_2pi, Degrees, Radians};
pub use cells::{CellGrid, CellId, CellStats};
pub use inclined::{InclinedCoord, InclinedFrame};
pub use subcell::{SubCellExt, SubCellId};
pub use sphere::{GeoPoint, Vec3, EARTH_RADIUS_KM};
