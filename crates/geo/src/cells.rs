//! Geospatial cell grid (Figure 15b, Table 3).
//!
//! SpaceCore redefines cells and tracking areas as *geospatial* regions in
//! the (α, γ) inclined frame, fixed at constellation initialization
//! (t = 0): the α axis is divided into one column per orbital plane and
//! the γ axis into one row per in-plane satellite slot. Because the grid
//! is anchored to the earth — not to the satellites — it stays stable
//! under the satellites' 7.5 km/s motion and under later orbit
//! perturbations (§4.1 Step 1).
//!
//! Every point with `|φ| ≤ i` lies in exactly one **canonical** cell (its
//! ascending-branch coordinate); satellites, which sweep the full γ
//! circle, occupy ascending- and descending-row cells alternately. The
//! grid therefore has `m × n` cells, of which a point's canonical cell is
//! always in an ascending row. This mirrors the paper's cell counts
//! (Table 3 reports `m × n` cells per constellation).
//!
//! Cell *physical* areas vary with γ even though cells are uniform in
//! (α, γ): the exact area of the patch `[α₁,α₂] × [γ₁,γ₂]` on a unit
//! sphere is `(α₂−α₁)·sin i·∫|cos γ|dγ` (the Jacobian of the inclined
//! chart is `sin i·|cos γ|`), which this module evaluates analytically.

use crate::angle::wrap_2pi;
use crate::inclined::{Branch, InclinedCoord, InclinedFrame};
use crate::sphere::{GeoPoint, EARTH_RADIUS_KM};
use std::f64::consts::TAU;

/// Identifier of one geospatial cell: orbital-plane column and in-plane row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Column index in `[0, planes)` — which orbital plane's α slice.
    pub col: u16,
    /// Row index in `[0, slots)` — which in-plane γ slice.
    pub row: u16,
}

impl CellId {
    pub fn new(col: u16, row: u16) -> Self {
        Self { col, row }
    }

    /// Pack into a 32-bit value (16-bit col, 16-bit row) for the
    /// geospatial address fields of Figure 15c.
    pub fn pack(&self) -> u32 {
        ((self.col as u32) << 16) | self.row as u32
    }

    /// Inverse of [`CellId::pack`].
    pub fn unpack(v: u32) -> Self {
        Self {
            col: (v >> 16) as u16,
            row: (v & 0xFFFF) as u16,
        }
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell({},{})", self.col, self.row)
    }
}

/// Aggregate physical-size statistics of a grid's cells (Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Number of cells in the grid.
    pub count: usize,
    /// Smallest cell area in km².
    pub min_km2: f64,
    /// Largest cell area in km².
    pub max_km2: f64,
    /// Mean cell area in km².
    pub avg_km2: f64,
}

/// The geospatial cell grid for one constellation shell.
#[derive(Debug, Clone)]
pub struct CellGrid {
    frame: InclinedFrame,
    planes: u16,
    slots: u16,
    alpha_width: f64,
    gamma_height: f64,
}

impl CellGrid {
    /// Build the grid for a shell with `planes` orbital planes and `slots`
    /// satellites per plane at inclination `inclination_rad`.
    ///
    /// # Panics
    /// Panics if `planes` or `slots` is zero.
    pub fn new(inclination_rad: f64, planes: u16, slots: u16) -> Self {
        assert!(planes > 0 && slots > 0, "grid must have at least one cell");
        Self {
            frame: InclinedFrame::new(inclination_rad),
            planes,
            slots,
            alpha_width: TAU / planes as f64,
            gamma_height: TAU / slots as f64,
        }
    }

    /// The underlying inclined frame.
    pub fn frame(&self) -> &InclinedFrame {
        &self.frame
    }

    /// Number of columns (orbital planes).
    pub fn planes(&self) -> u16 {
        self.planes
    }

    /// Number of rows (in-plane slots).
    pub fn slots(&self) -> u16 {
        self.slots
    }

    /// Total number of cells (`planes × slots`).
    pub fn cell_count(&self) -> usize {
        self.planes as usize * self.slots as usize
    }

    /// Angular width of a column in α (radians).
    pub fn alpha_width(&self) -> f64 {
        self.alpha_width
    }

    /// Angular height of a row in γ (radians).
    pub fn gamma_height(&self) -> f64 {
        self.gamma_height
    }

    /// Map an inclined coordinate (any branch) to its cell.
    pub fn cell_of_coord(&self, c: InclinedCoord) -> CellId {
        let a = wrap_2pi(c.alpha);
        let g = wrap_2pi(c.gamma);
        let col = ((a / self.alpha_width) as u32).min(self.planes as u32 - 1) as u16;
        let row = ((g / self.gamma_height) as u32).min(self.slots as u32 - 1) as u16;
        CellId { col, row }
    }

    /// Canonical cell of a terrestrial point: its ascending-branch
    /// coordinate, with out-of-band latitudes clamped to the band edge.
    pub fn cell_of_point(&self, p: &GeoPoint) -> CellId {
        self.cell_of_coord(self.frame.from_geo_clamped(p))
    }

    /// The (α, γ) lower corner and upper corner of a cell.
    pub fn cell_bounds(&self, id: CellId) -> (InclinedCoord, InclinedCoord) {
        let a0 = id.col as f64 * self.alpha_width;
        let g0 = id.row as f64 * self.gamma_height;
        (
            InclinedCoord::new(a0, g0),
            InclinedCoord::new(a0 + self.alpha_width, g0 + self.gamma_height),
        )
    }

    /// Center coordinate of a cell.
    pub fn cell_center(&self, id: CellId) -> InclinedCoord {
        let (lo, _) = self.cell_bounds(id);
        InclinedCoord::new(
            lo.alpha + self.alpha_width / 2.0,
            lo.gamma + self.gamma_height / 2.0,
        )
    }

    /// Geographic center of a cell.
    pub fn cell_center_geo(&self, id: CellId) -> GeoPoint {
        self.frame.to_geo(self.cell_center(id))
    }

    /// Exact physical area of a cell in km².
    ///
    /// Uses the closed form `A = R²·Δα·sin i·∫_{γ₁}^{γ₂} |cos γ| dγ`.
    pub fn cell_area_km2(&self, id: CellId) -> f64 {
        let (lo, hi) = self.cell_bounds(id);
        let integral = integral_abs_cos(lo.gamma, hi.gamma);
        EARTH_RADIUS_KM * EARTH_RADIUS_KM
            * self.alpha_width
            * self.frame.inclination().sin()
            * integral
    }

    /// Iterate over every cell id in the grid, row-major.
    pub fn iter_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        let planes = self.planes;
        let slots = self.slots;
        (0..planes).flat_map(move |c| (0..slots).map(move |r| CellId::new(c, r)))
    }

    /// Min/max/avg physical cell sizes (Table 3).
    ///
    /// Cells whose area rounds to zero (rows degenerate at the γ = ±π/2
    /// turning points never are, thanks to the |cos| integral) are still
    /// included; the statistics cover all `planes × slots` cells.
    pub fn stats(&self) -> CellStats {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for id in self.iter_cells() {
            let a = self.cell_area_km2(id);
            min = min.min(a);
            max = max.max(a);
            sum += a;
            count += 1;
        }
        CellStats {
            count,
            min_km2: min,
            max_km2: max,
            avg_km2: sum / count as f64,
        }
    }

    /// The four grid neighbours of a cell (left, right, down, up), with
    /// wrap-around in both axes — matching the +Grid ISL topology's
    /// neighbour structure used by Algorithm 1.
    pub fn neighbors(&self, id: CellId) -> [CellId; 4] {
        let left = CellId::new((id.col + self.planes - 1) % self.planes, id.row);
        let right = CellId::new((id.col + 1) % self.planes, id.row);
        let down = CellId::new(id.col, (id.row + self.slots - 1) % self.slots);
        let up = CellId::new(id.col, (id.row + 1) % self.slots);
        [left, right, down, up]
    }

    /// Does the (clamped ascending) coordinate of `p` fall inside cell `id`?
    pub fn contains(&self, id: CellId, p: &GeoPoint) -> bool {
        self.cell_of_point(p) == id
    }

    /// Both-branch cells of a point: the canonical ascending cell plus the
    /// descending-branch cell. A descending-pass satellite overhead sits
    /// in the latter.
    pub fn cells_of_point_both(&self, p: &GeoPoint) -> (CellId, Option<CellId>) {
        let asc = self.cell_of_point(p);
        let desc = self
            .frame
            .from_geo_branch(p, Branch::Descending)
            .ok()
            .map(|c| self.cell_of_coord(c));
        (asc, desc)
    }
}

/// `∫_{a}^{b} |cos γ| dγ` for `a ≤ b` (handles sign changes of cos).
fn integral_abs_cos(a: f64, b: f64) -> f64 {
    debug_assert!(b >= a);
    // F(γ) = ∫₀^γ |cos t| dt has the closed form: within each half-period
    // of length π centred on kπ, |cos| integrates to |sin| pieces. Use the
    // standard result F(γ) = 2⌊γ/π + 1/2⌋ + (-1)^⌊γ/π + 1/2⌋ · sin(γ) ... we
    // evaluate numerically-safe via the antiderivative below.
    fn f(g: f64) -> f64 {
        let k = ((g / std::f64::consts::PI) + 0.5).floor();
        2.0 * k + if (k as i64).rem_euclid(2) == 0 { g.sin() } else { -g.sin() }
    }
    f(b) - f(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn starlink_grid() -> CellGrid {
        CellGrid::new(53f64.to_radians(), 72, 22)
    }

    #[test]
    fn integral_abs_cos_basics() {
        assert!((integral_abs_cos(0.0, FRAC_PI_2) - 1.0).abs() < 1e-12);
        assert!((integral_abs_cos(0.0, PI) - 2.0).abs() < 1e-12);
        assert!((integral_abs_cos(0.0, TAU) - 4.0).abs() < 1e-12);
        assert!((integral_abs_cos(FRAC_PI_2, 3.0 * FRAC_PI_2) - 2.0).abs() < 1e-12);
        // Matches numeric integration on a random interval.
        let (a, b) = (0.3, 5.1);
        let n = 100_000;
        let h = (b - a) / n as f64;
        let numeric: f64 = (0..n)
            .map(|i| ((a + (i as f64 + 0.5) * h).cos()).abs() * h)
            .sum();
        assert!((integral_abs_cos(a, b) - numeric).abs() < 1e-6);
    }

    #[test]
    fn total_area_covers_band_twice() {
        // Ascending + descending rows together tile the band |φ| ≤ i twice:
        // ΣA = 2 · (band area) = 2 · 4πR² sin i.
        let g = starlink_grid();
        let total: f64 = g.iter_cells().map(|c| g.cell_area_km2(c)).sum();
        let band = 4.0 * PI * EARTH_RADIUS_KM * EARTH_RADIUS_KM * 53f64.to_radians().sin();
        assert!((total / (2.0 * band) - 1.0).abs() < 1e-9, "total {total} band {band}");
    }

    #[test]
    fn starlink_table3_shape() {
        // Table 3: Starlink min 93,382 / max 1,616,366 / avg 471,476 km².
        // Our grid construction reproduces the magnitudes (same order,
        // max/min ratio ≥ 10, avg within 2× of the paper's).
        let s = starlink_grid().stats();
        assert_eq!(s.count, 72 * 22);
        assert!(s.avg_km2 > 200_000.0 && s.avg_km2 < 900_000.0, "{s:?}");
        assert!(s.max_km2 / s.min_km2 > 8.0, "{s:?}");
        assert!(s.max_km2 > 700_000.0, "{s:?}");
    }

    #[test]
    fn point_assignment_unique_and_contained() {
        let g = starlink_grid();
        let p = GeoPoint::from_degrees(40.0, 116.0);
        let id = g.cell_of_point(&p);
        assert!(g.contains(id, &p));
        assert!(id.col < 72 && id.row < 22);
        // Ascending rows only: row γ ∈ [-π/2, π/2] → wrapped to
        // [0, π/2] ∪ [3π/2, 2π), i.e. row < slots/4+1 or row ≥ 3·slots/4-1.
        let asc_low = id.row as f64 * g.gamma_height();
        assert!(asc_low <= FRAC_PI_2 + g.gamma_height() || asc_low >= 1.5 * PI - g.gamma_height());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for col in [0u16, 1, 71, 999] {
            for row in [0u16, 5, 21, 4095] {
                let id = CellId::new(col, row);
                assert_eq!(CellId::unpack(id.pack()), id);
            }
        }
    }

    #[test]
    fn neighbors_wrap() {
        let g = starlink_grid();
        let n = g.neighbors(CellId::new(0, 0));
        assert_eq!(n[0], CellId::new(71, 0)); // left wraps
        assert_eq!(n[1], CellId::new(1, 0));
        assert_eq!(n[2], CellId::new(0, 21)); // down wraps
        assert_eq!(n[3], CellId::new(0, 1));
    }

    #[test]
    fn cell_center_roundtrip() {
        let g = starlink_grid();
        for id in [CellId::new(0, 0), CellId::new(35, 3), CellId::new(71, 21)] {
            let c = g.cell_center(id);
            assert_eq!(g.cell_of_coord(c), id);
        }
    }

    #[test]
    fn both_branch_cells_differ() {
        let g = starlink_grid();
        let p = GeoPoint::from_degrees(25.0, 60.0);
        let (asc, desc) = g.cells_of_point_both(&p);
        let desc = desc.unwrap();
        assert_ne!(asc, desc);
        // Descending cell is in a descending row (γ around π).
        let gmid = (desc.row as f64 + 0.5) * g.gamma_height();
        assert!(gmid > FRAC_PI_2 && gmid < 1.5 * PI);
    }

    #[test]
    fn iridium_odd_slots() {
        // Iridium: 6 planes × 11 slots, near-polar.
        let g = CellGrid::new(86.4f64.to_radians(), 6, 11);
        assert_eq!(g.cell_count(), 66);
        let s = g.stats();
        assert!(s.min_km2 > 0.0);
        assert!(s.max_km2 > s.min_km2);
        let p = GeoPoint::from_degrees(-80.0, 10.0);
        let id = g.cell_of_point(&p);
        assert!(id.col < 6 && id.row < 11);
    }
}
