//! Angle utilities: degree/radian newtypes and normalization helpers.
//!
//! All internal math in this workspace is done in radians (`f64`); the
//! [`Degrees`] / [`Radians`] newtypes exist so public constructors (orbit
//! inclinations, ground-station coordinates, …) cannot silently mix units.

use std::f64::consts::{PI, TAU};

/// An angle expressed in degrees.
///
/// Use [`Degrees::to_radians`] to enter the math layer; no computation is
/// performed on `Degrees` directly.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Degrees(pub f64);

/// An angle expressed in radians.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Radians(pub f64);

impl Degrees {
    /// Convert to radians.
    pub fn to_radians(self) -> Radians {
        Radians(self.0.to_radians())
    }
}

impl Radians {
    /// Convert to degrees.
    pub fn to_degrees(self) -> Degrees {
        Degrees(self.0.to_degrees())
    }

    /// Raw value in radians.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl From<Degrees> for Radians {
    fn from(d: Degrees) -> Self {
        d.to_radians()
    }
}

impl From<Radians> for Degrees {
    fn from(r: Radians) -> Self {
        r.to_degrees()
    }
}

/// Wrap an angle into `[0, 2π)`.
///
/// Handles arbitrarily large positive or negative inputs; the result is
/// always in the half-open interval (subject to floating-point rounding,
/// which may return a value equal to `2π` for inputs infinitesimally below
/// a multiple of `2π`; callers that index grids should use
/// `CellGrid::cell_of_point` style clamping).
pub fn wrap_2pi(a: f64) -> f64 {
    let r = a.rem_euclid(TAU);
    if r == TAU {
        0.0
    } else {
        r
    }
}

/// Wrap an angle into `(-π, π]`, the conventional longitude range.
pub fn normalize_lon(a: f64) -> f64 {
    let r = wrap_2pi(a);
    if r > PI {
        r - TAU
    } else {
        r
    }
}

/// Smallest absolute angular difference between two angles, in `[0, π]`.
pub fn angular_distance(a: f64, b: f64) -> f64 {
    normalize_lon(a - b).abs()
}

/// Signed shortest rotation taking angle `from` to angle `to`, in `(-π, π]`.
pub fn signed_delta(from: f64, to: f64) -> f64 {
    normalize_lon(to - from)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn wrap_basic() {
        assert!((wrap_2pi(0.0) - 0.0).abs() < EPS);
        assert!((wrap_2pi(TAU) - 0.0).abs() < EPS);
        assert!((wrap_2pi(-0.1) - (TAU - 0.1)).abs() < EPS);
        assert!((wrap_2pi(TAU + 0.5) - 0.5).abs() < EPS);
        assert!((wrap_2pi(-5.0 * TAU + 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_lon_range() {
        assert!((normalize_lon(PI + 0.1) - (-PI + 0.1)).abs() < EPS);
        assert!((normalize_lon(-PI - 0.1) - (PI - 0.1)).abs() < EPS);
        assert!((normalize_lon(PI) - PI).abs() < EPS);
    }

    #[test]
    fn angular_distance_symmetric() {
        assert!((angular_distance(0.1, TAU - 0.1) - 0.2).abs() < 1e-9);
        assert!((angular_distance(TAU - 0.1, 0.1) - 0.2).abs() < 1e-9);
        assert!((angular_distance(1.0, 1.0)).abs() < EPS);
    }

    #[test]
    fn signed_delta_direction() {
        assert!(signed_delta(0.1, 0.3) > 0.0);
        assert!(signed_delta(0.3, 0.1) < 0.0);
        // Crossing the wrap point takes the short way.
        assert!((signed_delta(TAU - 0.1, 0.1) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn degree_radian_roundtrip() {
        let d = Degrees(53.0);
        let back = d.to_radians().to_degrees();
        assert!((back.0 - 53.0).abs() < 1e-12);
    }
}
