//! The (α, γ) affine inclined spherical coordinate system of Figure 15a.
//!
//! SpaceCore identifies every terrestrial location by a coordinate
//! `(α, γ)` where `α` is the longitude at which a great circle of the
//! constellation's inclination crosses the equator northbound (the
//! "point of right ascension" in Figure 15a), and `γ` is the generalized
//! inclined latitude: the angular distance travelled along that great
//! circle from the crossing.
//!
//! Satellites on a circular orbit of inclination `i` trace exactly such
//! great circles in the earth-fixed frame (modulo earth rotation, handled
//! by `sc-orbit`), which is why this system makes satellite ground tracks
//! — and hence Algorithm 1's geospatial relaying — *axis-aligned*:
//! following an intra-orbit inter-satellite link changes only `γ`;
//! hopping to a neighbouring orbit changes only `α`.
//!
//! A point with latitude `|φ| ≤ i` has exactly two representations: one on
//! the **ascending** branch (`γ ∈ [-π/2, π/2]`, the satellite moving
//! north) and one on the **descending** branch (`γ ∈ [π/2, 3π/2]`). The
//! ascending representation is the canonical one used for cell assignment.

use crate::angle::{normalize_lon, wrap_2pi};
use crate::sphere::GeoPoint;
use std::f64::consts::{FRAC_PI_2, PI};

/// Which of the two great-circle branches a conversion should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branch {
    /// Satellite heading north across the point: `γ ∈ [-π/2, π/2]`.
    Ascending,
    /// Satellite heading south across the point: `γ ∈ [π/2, 3π/2]`.
    Descending,
}

/// A coordinate in the inclined frame.
///
/// * `alpha` — longitude of the ascending-node crossing, wrapped to `[0, 2π)`.
/// * `gamma` — angular distance along the inclined great circle, wrapped to
///   `[0, 2π)` when stored in cells; conversions may produce values in
///   `(-π/2, 3π/2]` depending on branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InclinedCoord {
    pub alpha: f64,
    pub gamma: f64,
}

impl InclinedCoord {
    pub fn new(alpha: f64, gamma: f64) -> Self {
        Self { alpha, gamma }
    }
}

/// The inclined coordinate frame for one constellation shell.
///
/// Construct with the shell's inclination (radians). Inclinations must be
/// in `(0, π/2]`; all constellations in Table 1 satisfy this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InclinedFrame {
    inclination: f64,
    sin_i: f64,
    cos_i: f64,
}

/// Error returned when a geographic point lies outside the latitude band
/// `|φ| ≤ i` covered by the inclined frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutOfBand {
    /// The offending latitude (radians).
    pub lat: f64,
    /// The frame's inclination (radians).
    pub inclination: f64,
}

impl std::fmt::Display for OutOfBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latitude {:.4} rad outside inclined band ±{:.4} rad",
            self.lat, self.inclination
        )
    }
}

impl std::error::Error for OutOfBand {}

impl InclinedFrame {
    /// Create a frame for a shell of the given inclination (radians).
    ///
    /// # Panics
    /// Panics if the inclination is not in `(0, π/2]`.
    pub fn new(inclination: f64) -> Self {
        assert!(
            inclination > 0.0 && inclination <= FRAC_PI_2 + 1e-12,
            "inclination must be in (0, π/2], got {inclination}"
        );
        Self {
            inclination,
            sin_i: inclination.sin(),
            cos_i: inclination.cos(),
        }
    }

    /// The frame's inclination in radians.
    pub fn inclination(&self) -> f64 {
        self.inclination
    }

    /// Maximum latitude (radians) representable in this frame.
    pub fn max_latitude(&self) -> f64 {
        self.inclination
    }

    /// Convert an inclined coordinate to the geographic point it denotes.
    ///
    /// Works for any `γ` (both branches): standard spherical orbit
    /// geometry, `sin φ = sin i · sin γ`, `λ = α + atan2(cos i·sin γ, cos γ)`.
    pub fn to_geo(&self, c: InclinedCoord) -> GeoPoint {
        let (sg, cg) = c.gamma.sin_cos();
        let lat = (self.sin_i * sg).clamp(-1.0, 1.0).asin();
        let dlon = (self.cos_i * sg).atan2(cg);
        GeoPoint::new(lat, normalize_lon(c.alpha + dlon))
    }

    /// Convert a geographic point to its inclined coordinate on the given
    /// branch. Returns `Err(OutOfBand)` when `|φ| > i`.
    ///
    /// The returned `alpha` is wrapped to `[0, 2π)`; `gamma` is in
    /// `[-π/2, π/2]` for [`Branch::Ascending`] and `[π/2, 3π/2]` for
    /// [`Branch::Descending`].
    pub fn from_geo_branch(&self, p: &GeoPoint, branch: Branch) -> Result<InclinedCoord, OutOfBand> {
        let s = p.lat.sin() / self.sin_i;
        if s.abs() > 1.0 + 1e-12 {
            return Err(OutOfBand {
                lat: p.lat,
                inclination: self.inclination,
            });
        }
        let s = s.clamp(-1.0, 1.0);
        let gamma_asc = s.asin(); // ∈ [-π/2, π/2]
        let gamma = match branch {
            Branch::Ascending => gamma_asc,
            Branch::Descending => PI - gamma_asc, // ∈ [π/2, 3π/2]
        };
        let (sg, cg) = gamma.sin_cos();
        let dlon = (self.cos_i * sg).atan2(cg);
        let alpha = wrap_2pi(p.lon - dlon);
        Ok(InclinedCoord { alpha, gamma })
    }

    /// Canonical (ascending-branch) conversion; see [`Self::from_geo_branch`].
    pub fn from_geo(&self, p: &GeoPoint) -> Result<InclinedCoord, OutOfBand> {
        self.from_geo_branch(p, Branch::Ascending)
    }

    /// Like [`Self::from_geo`], but clamps out-of-band latitudes to the
    /// band edge instead of failing. Used for high-latitude ground points
    /// under low-inclination shells (e.g. polar stations under Starlink),
    /// which the paper serves from the nearest band-edge cell.
    pub fn from_geo_clamped(&self, p: &GeoPoint) -> InclinedCoord {
        let clamped = GeoPoint::new(
            p.lat.clamp(-self.inclination + 1e-9, self.inclination - 1e-9),
            p.lon,
        );
        self.from_geo(&clamped)
            .expect("clamped latitude is always in band")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame53() -> InclinedFrame {
        InclinedFrame::new(53f64.to_radians())
    }

    #[test]
    fn equator_crossing_is_identity() {
        let f = frame53();
        let p = f.to_geo(InclinedCoord::new(1.0, 0.0));
        assert!(p.lat.abs() < 1e-12);
        assert!((p.lon - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quarter_orbit_reaches_max_latitude() {
        let f = frame53();
        let p = f.to_geo(InclinedCoord::new(0.0, FRAC_PI_2));
        assert!((p.lat - 53f64.to_radians()).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_ascending() {
        let f = frame53();
        for &alpha in &[0.0, 1.0, 3.0, 6.0] {
            for &gamma in &[-1.3, -0.5, 0.0, 0.7, 1.4] {
                let c = InclinedCoord::new(alpha, gamma);
                let p = f.to_geo(c);
                let c2 = f.from_geo(&p).unwrap();
                assert!(
                    (wrap_2pi(c2.alpha) - wrap_2pi(alpha)).abs() < 1e-9,
                    "alpha {alpha} {gamma} -> {:?}",
                    c2
                );
                assert!((c2.gamma - gamma).abs() < 1e-9, "gamma {alpha} {gamma} -> {c2:?}");
            }
        }
    }

    #[test]
    fn roundtrip_descending() {
        let f = frame53();
        for &alpha in &[0.2, 2.0, 5.0] {
            for &gamma in &[FRAC_PI_2 + 0.2, PI, PI + 1.0] {
                let c = InclinedCoord::new(alpha, gamma);
                let p = f.to_geo(c);
                let c2 = f.from_geo_branch(&p, Branch::Descending).unwrap();
                assert!((wrap_2pi(c2.alpha) - wrap_2pi(alpha)).abs() < 1e-9);
                assert!((c2.gamma - gamma).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn out_of_band_rejected() {
        let f = frame53();
        let p = GeoPoint::from_degrees(70.0, 10.0);
        assert!(f.from_geo(&p).is_err());
        // Clamped variant succeeds and lands near the band edge.
        let c = f.from_geo_clamped(&p);
        let back = f.to_geo(c);
        assert!((back.lat - 53f64.to_radians()).abs() < 1e-6);
    }

    #[test]
    fn near_polar_frame_covers_everything() {
        let f = InclinedFrame::new(87.9f64.to_radians());
        let p = GeoPoint::from_degrees(85.0, -120.0);
        let c = f.from_geo(&p).unwrap();
        let back = f.to_geo(c);
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lon - p.lon).abs() < 1e-9);
    }

    #[test]
    fn branches_give_same_point() {
        let f = frame53();
        let p = GeoPoint::from_degrees(30.0, 45.0);
        let a = f.from_geo_branch(&p, Branch::Ascending).unwrap();
        let d = f.from_geo_branch(&p, Branch::Descending).unwrap();
        let pa = f.to_geo(a);
        let pd = f.to_geo(d);
        assert!((pa.lat - pd.lat).abs() < 1e-9);
        assert!((pa.lon - pd.lon).abs() < 1e-9);
        assert!((a.alpha - d.alpha).abs() > 1e-6, "branches must differ in alpha");
    }
}
