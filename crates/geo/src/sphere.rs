//! Spherical-earth geodesy: geographic points, ECEF vectors, great-circle
//! distances, and space-ground visibility.
//!
//! The paper's emulation (and ours) treats the earth as a sphere; the J2/J4
//! perturbation effects that matter to the evaluation act on the *orbits*
//! (handled in `sc-orbit`), not on the geoid shape.

use crate::angle::normalize_lon;

/// Mean earth radius in kilometres (spherical model).
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Speed of light in vacuum, km/s. Used for propagation delays.
pub const SPEED_OF_LIGHT_KM_S: f64 = 299_792.458;

/// A geographic point on the (spherical) earth surface.
///
/// `lat` ∈ [-π/2, π/2], `lon` ∈ (-π, π], both radians.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Geographic latitude in radians.
    pub lat: f64,
    /// Geographic longitude in radians.
    pub lon: f64,
}

impl GeoPoint {
    /// Build a point from radians, normalizing the longitude.
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!(
            (-std::f64::consts::FRAC_PI_2..=std::f64::consts::FRAC_PI_2).contains(&lat),
            "latitude out of range: {lat}"
        );
        Self {
            lat,
            lon: normalize_lon(lon),
        }
    }

    /// Build a point from degrees.
    pub fn from_degrees(lat_deg: f64, lon_deg: f64) -> Self {
        Self::new(lat_deg.to_radians(), lon_deg.to_radians())
    }

    /// Unit direction vector (ECEF, earth-fixed, km-normalized to 1).
    pub fn unit_vector(&self) -> Vec3 {
        let (slat, clat) = self.lat.sin_cos();
        let (slon, clon) = self.lon.sin_cos();
        Vec3 {
            x: clat * clon,
            y: clat * slon,
            z: slat,
        }
    }

    /// Position vector on the surface, in km.
    pub fn surface_vector(&self) -> Vec3 {
        self.unit_vector().scale(EARTH_RADIUS_KM)
    }

    /// Central angle (radians) between two surface points.
    pub fn central_angle(&self, other: &GeoPoint) -> f64 {
        // Numerically stable formulation via the chord.
        let d = self.unit_vector().dot(&other.unit_vector()).clamp(-1.0, 1.0);
        d.acos()
    }

    /// Great-circle surface distance in km.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        self.central_angle(other) * EARTH_RADIUS_KM
    }
}

/// A 3-D vector in km (ECEF unless stated otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    pub fn dot(&self, o: &Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    pub fn cross(&self, o: &Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    pub fn scale(&self, k: f64) -> Vec3 {
        Vec3 {
            x: self.x * k,
            y: self.y * k,
            z: self.z * k,
        }
    }

    pub fn add(&self, o: &Vec3) -> Vec3 {
        Vec3 {
            x: self.x + o.x,
            y: self.y + o.y,
            z: self.z + o.z,
        }
    }

    pub fn sub(&self, o: &Vec3) -> Vec3 {
        Vec3 {
            x: self.x - o.x,
            y: self.y - o.y,
            z: self.z - o.z,
        }
    }

    /// Normalize to unit length. Returns `None` for the zero vector.
    pub fn normalized(&self) -> Option<Vec3> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(self.scale(1.0 / n))
        }
    }

    /// Convert an ECEF position back to the geographic sub-point
    /// (latitude/longitude of the radial projection onto the surface).
    pub fn to_geo(&self) -> GeoPoint {
        let r = self.norm();
        let lat = (self.z / r).clamp(-1.0, 1.0).asin();
        let lon = self.y.atan2(self.x);
        GeoPoint::new(lat, lon)
    }

    /// Straight-line (slant) distance to another point, km.
    pub fn distance_km(&self, o: &Vec3) -> f64 {
        self.sub(o).norm()
    }
}

/// Elevation angle (radians) of a satellite at ECEF position `sat_km` as
/// seen from ground point `ground` on the surface.
///
/// Returns negative values when the satellite is below the horizon.
pub fn elevation_angle(ground: &GeoPoint, sat_km: &Vec3) -> f64 {
    let gp = ground.surface_vector();
    let up = ground.unit_vector();
    let to_sat = sat_km.sub(&gp);
    let n = to_sat.norm();
    if n == 0.0 {
        return std::f64::consts::FRAC_PI_2;
    }
    (to_sat.dot(&up) / n).clamp(-1.0, 1.0).asin()
}

/// Maximum central angle (radians) between a satellite's sub-point and a
/// ground point such that the satellite is visible above `min_elev`
/// (radians), for a satellite at altitude `alt_km`.
///
/// Standard spherical visibility geometry:
/// `λ = acos(Re·cos(ε)/(Re+h)) − ε`.
pub fn coverage_half_angle(alt_km: f64, min_elev: f64) -> f64 {
    let re = EARTH_RADIUS_KM;
    ((re * min_elev.cos()) / (re + alt_km)).acos() - min_elev
}

/// Propagation delay in milliseconds over a straight-line path of `km`.
pub fn propagation_delay_ms(km: f64) -> f64 {
    km / SPEED_OF_LIGHT_KM_S * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn unit_vectors_cardinal() {
        let equator_prime = GeoPoint::from_degrees(0.0, 0.0).unit_vector();
        assert!((equator_prime.x - 1.0).abs() < 1e-12);
        let north = GeoPoint::from_degrees(90.0, 0.0).unit_vector();
        assert!((north.z - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_quarter_circle() {
        let a = GeoPoint::from_degrees(0.0, 0.0);
        let b = GeoPoint::from_degrees(0.0, 90.0);
        assert!((a.central_angle(&b) - FRAC_PI_2).abs() < 1e-12);
        assert!((a.distance_km(&b) - EARTH_RADIUS_KM * FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn beijing_new_york_distance() {
        // Known great-circle distance ≈ 10,990 km (spherical model).
        let beijing = GeoPoint::from_degrees(39.9042, 116.4074);
        let ny = GeoPoint::from_degrees(40.7128, -74.0060);
        let d = beijing.distance_km(&ny);
        assert!((10_500.0..11_500.0).contains(&d), "got {d}");
    }

    #[test]
    fn geo_vector_roundtrip() {
        let p = GeoPoint::from_degrees(37.5, -122.3);
        let q = p.surface_vector().to_geo();
        assert!((p.lat - q.lat).abs() < 1e-12);
        assert!((p.lon - q.lon).abs() < 1e-12);
    }

    #[test]
    fn elevation_zenith() {
        let g = GeoPoint::from_degrees(10.0, 20.0);
        let sat = g.unit_vector().scale(EARTH_RADIUS_KM + 550.0);
        let e = elevation_angle(&g, &sat);
        assert!((e - FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn elevation_below_horizon() {
        let g = GeoPoint::from_degrees(0.0, 0.0);
        // Satellite on the opposite side of the earth.
        let anti = GeoPoint::from_degrees(0.0, 180.0)
            .unit_vector()
            .scale(EARTH_RADIUS_KM + 550.0);
        assert!(elevation_angle(&g, &anti) < 0.0);
    }

    #[test]
    fn coverage_half_angle_sane() {
        // Starlink at 550 km, 25° min elevation → roughly 8-10° half angle.
        let lam = coverage_half_angle(550.0, 25f64.to_radians());
        assert!(lam > 5f64.to_radians() && lam < 12f64.to_radians(), "{lam}");
        // Higher altitude → wider coverage.
        let lam2 = coverage_half_angle(1200.0, 25f64.to_radians());
        assert!(lam2 > lam);
        // Lower min-elevation → wider coverage.
        let lam3 = coverage_half_angle(550.0, 10f64.to_radians());
        assert!(lam3 > lam);
    }

    #[test]
    fn propagation_delay_examples() {
        // 550 km straight down ≈ 1.83 ms.
        let d = propagation_delay_ms(550.0);
        assert!((d - 1.834).abs() < 0.01, "{d}");
    }

    #[test]
    fn vec3_algebra() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        let c = a.cross(&b);
        assert!((c.z - 1.0).abs() < 1e-12);
        assert!((a.add(&b).norm() - 2f64.sqrt()).abs() < 1e-12);
        assert!(Vec3::default().normalized().is_none());
    }

    #[test]
    fn antipodal_angle() {
        let a = GeoPoint::from_degrees(0.0, 0.0);
        let b = GeoPoint::from_degrees(0.0, 180.0);
        assert!((a.central_angle(&b) - PI).abs() < 1e-9);
    }
}
