//! Geospatial UE addressing (Figure 15c).
//!
//! SpaceCore collapses the legacy location state (S2: cell ID, tracking
//! area ID, IP address) into a single 128-bit address that unifies the
//! UE's logical and physical location:
//!
//! ```text
//!  bits 127..96      95..64           63..32        31..0
//! ┌───────────────┬───────────────┬───────────────┬───────────────┐
//! │ 5G-PLMN-ID    │ home cell     │ UE cell       │ 5G-TMSI       │
//! │ operator      │ (colₕ‖rowₕ)   │ (colᵤ‖rowᵤ)   │ per-cell UE id│
//! └───────────────┴───────────────┴───────────────┴───────────────┘
//! ```
//!
//! The address doubles as the routable destination for Algorithm 1: any
//! satellite can extract the UE-cell field and forward toward that
//! geospatial cell with no per-UE forwarding state. It changes only when
//! the UE crosses a geospatial cell — rare, given Table 3 cell sizes.

use crate::cells::CellId;
use std::net::Ipv6Addr;

/// A 128-bit geospatial address (Figure 15c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GeoAddress {
    /// Operator identifier (the 5G PLMN ID, padded to 32 bits).
    pub plmn: u32,
    /// The cell hosting the UE's terrestrial home network.
    pub home_cell: CellId,
    /// The cell the UE currently resides in.
    pub ue_cell: CellId,
    /// Per-cell unique UE identifier (the 5G-TMSI analogue).
    pub suffix: u32,
}

impl GeoAddress {
    pub fn new(plmn: u32, home_cell: CellId, ue_cell: CellId, suffix: u32) -> Self {
        Self {
            plmn,
            home_cell,
            ue_cell,
            suffix,
        }
    }

    /// Encode to a raw 128-bit value, field order per Figure 15c.
    pub fn encode(&self) -> u128 {
        ((self.plmn as u128) << 96)
            | ((self.home_cell.pack() as u128) << 64)
            | ((self.ue_cell.pack() as u128) << 32)
            | self.suffix as u128
    }

    /// Decode from a raw 128-bit value.
    pub fn decode(v: u128) -> Self {
        Self {
            plmn: (v >> 96) as u32,
            home_cell: CellId::unpack((v >> 64) as u32),
            ue_cell: CellId::unpack((v >> 32) as u32),
            suffix: v as u32,
        }
    }

    /// View as an IPv6 address (the deployment encoding noted in §4.1:
    /// prefix for external networking, geographic IDs, UE suffix).
    pub fn to_ipv6(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.encode())
    }

    /// Parse from an IPv6 address.
    pub fn from_ipv6(a: Ipv6Addr) -> Self {
        Self::decode(u128::from(a))
    }

    /// A copy of this address re-homed to a new UE cell, as issued by the
    /// home network on a (rare) UE cell crossing (§4.3). The suffix is
    /// re-allocated by the home; callers pass the new one.
    pub fn with_ue_cell(&self, ue_cell: CellId, suffix: u32) -> Self {
        Self {
            ue_cell,
            suffix,
            ..*self
        }
    }

    /// Do two addresses belong to the same operator?
    pub fn same_plmn(&self, other: &GeoAddress) -> bool {
        self.plmn == other.plmn
    }

    /// Are two UEs currently in the same geospatial cell?
    pub fn same_cell(&self, other: &GeoAddress) -> bool {
        self.ue_cell == other.ue_cell
    }
}

impl std::fmt::Display for GeoAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "geo://{:06x}/{}:{}/{}:{}/{:08x}",
            self.plmn,
            self.home_cell.col,
            self.home_cell.row,
            self.ue_cell.col,
            self.ue_cell.row,
            self.suffix
        )
    }
}

/// Allocates per-cell-unique suffixes, as the home network does after a
/// successful initial registration (§4.2).
///
/// Deterministic: suffixes are handed out sequentially per cell, so a
/// replayed workload produces identical addresses.
#[derive(Debug, Default, Clone)]
pub struct SuffixAllocator {
    next: std::collections::HashMap<CellId, u32>,
}

impl SuffixAllocator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next free suffix in `cell`.
    pub fn allocate(&mut self, cell: CellId) -> u32 {
        let n = self.next.entry(cell).or_insert(0);
        let v = *n;
        *n = n.wrapping_add(1);
        v
    }

    /// Number of suffixes handed out in `cell` so far.
    pub fn allocated_in(&self, cell: CellId) -> u32 {
        self.next.get(&cell).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GeoAddress {
        GeoAddress::new(
            0x00F110, // PLMN 460-01 style
            CellId::new(12, 7),
            CellId::new(40, 3),
            0xDEADBEEF,
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let a = sample();
        assert_eq!(GeoAddress::decode(a.encode()), a);
    }

    #[test]
    fn ipv6_roundtrip() {
        let a = sample();
        assert_eq!(GeoAddress::from_ipv6(a.to_ipv6()), a);
    }

    #[test]
    fn field_layout_matches_figure_15c() {
        let a = sample();
        let v = a.encode();
        assert_eq!((v >> 96) as u32, 0x00F110);
        assert_eq!(((v >> 64) & 0xFFFF_FFFF) as u32, CellId::new(12, 7).pack());
        assert_eq!(((v >> 32) & 0xFFFF_FFFF) as u32, CellId::new(40, 3).pack());
        assert_eq!(v as u32, 0xDEADBEEF);
    }

    #[test]
    fn rehoming_changes_only_cell_and_suffix() {
        let a = sample();
        let b = a.with_ue_cell(CellId::new(41, 3), 7);
        assert_eq!(b.plmn, a.plmn);
        assert_eq!(b.home_cell, a.home_cell);
        assert_eq!(b.ue_cell, CellId::new(41, 3));
        assert_eq!(b.suffix, 7);
        assert!(!a.same_cell(&b));
        assert!(a.same_plmn(&b));
    }

    #[test]
    fn suffix_allocator_per_cell() {
        let mut alloc = SuffixAllocator::new();
        let c1 = CellId::new(0, 0);
        let c2 = CellId::new(0, 1);
        assert_eq!(alloc.allocate(c1), 0);
        assert_eq!(alloc.allocate(c1), 1);
        assert_eq!(alloc.allocate(c2), 0);
        assert_eq!(alloc.allocated_in(c1), 2);
        assert_eq!(alloc.allocated_in(c2), 1);
    }

    #[test]
    fn display_is_stable() {
        let s = sample().to_string();
        assert!(s.starts_with("geo://00f110/12:7/40:3/deadbeef"), "{s}");
    }
}
