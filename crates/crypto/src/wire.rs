//! Wire codec for encrypted UE states: what actually rides inside the
//! NAS `StateReplica` IE and the GTP-U FutureExtensionField (§5).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! envelope:  ver(1)=1 | version(4) | expires(8) | home_sig(8) | ciphertext
//! ciphertext: nonce(8) | mac(8) | n_shares(2) | shares(8·n)
//!           | policy | payload_len(4) | payload
//! policy:    node_kind(1) | … (recursive; leaves carry utf-8 attrs)
//! ```

use crate::abe::AbeCiphertext;
use crate::field::Fe;
use crate::policy::{AccessTree, Attribute};
use crate::statecrypt::EncryptedUeState;

/// Decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    Truncated,
    BadVersion,
    BadPolicyNode,
    BadUtf8,
    TrailingBytes,
    /// Nesting deeper than the sanity bound (malformed/hostile input).
    PolicyTooDeep,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::Truncated => "truncated",
            WireError::BadVersion => "unsupported codec version",
            WireError::BadPolicyNode => "bad policy node kind",
            WireError::BadUtf8 => "attribute is not utf-8",
            WireError::TrailingBytes => "trailing bytes",
            WireError::PolicyTooDeep => "policy nesting too deep",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

const MAX_POLICY_DEPTH: usize = 16;

/// Encode an encrypted UE state to bytes.
pub fn encode_state(st: &EncryptedUeState) -> Vec<u8> {
    let mut b = Vec::with_capacity(256);
    b.push(1u8);
    b.extend_from_slice(&st.version.to_le_bytes());
    b.extend_from_slice(&st.expires_at.to_bits().to_le_bytes());
    b.extend_from_slice(&st.home_sig.to_le_bytes());
    encode_ciphertext(&st.ciphertext, &mut b);
    b
}

/// Decode an encrypted UE state from bytes.
pub fn decode_state(b: &[u8]) -> Result<EncryptedUeState, WireError> {
    let mut c = Cur { b, i: 0 };
    if c.u8()? != 1 {
        return Err(WireError::BadVersion);
    }
    let version = c.u32()?;
    let expires_at = f64::from_bits(c.u64()?);
    let home_sig = c.u64()?;
    let ciphertext = decode_ciphertext(&mut c)?;
    if c.i != b.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(EncryptedUeState {
        version,
        expires_at,
        ciphertext,
        home_sig,
    })
}

fn encode_ciphertext(ct: &AbeCiphertext, b: &mut Vec<u8>) {
    let (policy, shares, nonce, payload, mac) = ct.parts();
    b.extend_from_slice(&nonce.to_le_bytes());
    b.extend_from_slice(&mac.to_le_bytes());
    b.extend_from_slice(&(shares.len() as u16).to_le_bytes());
    for s in shares {
        b.extend_from_slice(&s.value().to_le_bytes());
    }
    encode_policy(policy, b);
    b.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    b.extend_from_slice(payload);
}

fn decode_ciphertext(c: &mut Cur) -> Result<AbeCiphertext, WireError> {
    let nonce = c.u64()?;
    let mac = c.u64()?;
    let n = c.u16()? as usize;
    let mut shares = Vec::with_capacity(n);
    for _ in 0..n {
        shares.push(Fe::new(c.u64()?));
    }
    let policy = decode_policy(c, 0)?;
    let plen = c.u32()? as usize;
    let payload = c.take(plen)?.to_vec();
    Ok(AbeCiphertext::from_parts(policy, shares, nonce, payload, mac))
}

fn encode_policy(p: &AccessTree, b: &mut Vec<u8>) {
    match p {
        AccessTree::Leaf(a) => {
            b.push(0);
            let s = a.as_str().as_bytes();
            b.extend_from_slice(&(s.len() as u16).to_le_bytes());
            b.extend_from_slice(s);
        }
        AccessTree::And(children) => {
            b.push(1);
            b.extend_from_slice(&(children.len() as u16).to_le_bytes());
            for ch in children {
                encode_policy(ch, b);
            }
        }
        AccessTree::Or(children) => {
            b.push(2);
            b.extend_from_slice(&(children.len() as u16).to_le_bytes());
            for ch in children {
                encode_policy(ch, b);
            }
        }
        AccessTree::Threshold { k, children } => {
            b.push(3);
            b.extend_from_slice(&(*k as u16).to_le_bytes());
            b.extend_from_slice(&(children.len() as u16).to_le_bytes());
            for ch in children {
                encode_policy(ch, b);
            }
        }
    }
}

fn decode_policy(c: &mut Cur, depth: usize) -> Result<AccessTree, WireError> {
    if depth > MAX_POLICY_DEPTH {
        return Err(WireError::PolicyTooDeep);
    }
    match c.u8()? {
        0 => {
            let n = c.u16()? as usize;
            let s = std::str::from_utf8(c.take(n)?).map_err(|_| WireError::BadUtf8)?;
            Ok(AccessTree::Leaf(Attribute::new(s)))
        }
        1 | 2 => {
            let kind = c.b[c.i - 1];
            let n = c.u16()? as usize;
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                children.push(decode_policy(c, depth + 1)?);
            }
            Ok(if kind == 1 {
                AccessTree::And(children)
            } else {
                AccessTree::Or(children)
            })
        }
        3 => {
            let k = c.u16()? as usize;
            let n = c.u16()? as usize;
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                children.push(decode_policy(c, depth + 1)?);
            }
            Ok(AccessTree::Threshold { k, children })
        }
        _ => Err(WireError::BadPolicyNode),
    }
}

struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.i + n > self.b.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.b[self.i..self.i + n];
        self.i += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::attr_set;
    use crate::statecrypt::HomeCrypto;

    fn sample_state() -> EncryptedUeState {
        let home = HomeCrypto::setup(7);
        let policy = AccessTree::Or(vec![
            AccessTree::all_of(&["role:satellite", "authorized"]),
            AccessTree::Threshold {
                k: 2,
                children: vec![
                    AccessTree::leaf("a"),
                    AccessTree::leaf("b"),
                    AccessTree::leaf("c"),
                ],
            },
        ]);
        home.encrypt_state(b"the session state payload", &policy, 3, 1234.5, 42)
    }

    #[test]
    fn roundtrip() {
        let st = sample_state();
        let b = encode_state(&st);
        let d = decode_state(&b).unwrap();
        assert_eq!(d, st);
    }

    #[test]
    fn decoded_state_still_decrypts() {
        let home = HomeCrypto::setup(7);
        let policy = AccessTree::all_of(&["role:satellite", "authorized"]);
        let st = home.encrypt_state(b"payload", &policy, 1, 99.0, 1);
        let d = decode_state(&encode_state(&st)).unwrap();
        let sat = home.provision_satellite(5, &attr_set(&["role:satellite", "authorized"]));
        let plain = crate::abe::AbeSystem::decrypt(&d.ciphertext, &sat.sk).unwrap();
        assert_eq!(plain, b"payload");
        home.verify_envelope(&d, &plain).unwrap();
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let b = encode_state(&sample_state());
        for cut in [0, 1, 5, 13, 21, 30, b.len() - 1] {
            assert!(decode_state(&b[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = encode_state(&sample_state());
        b.push(0);
        assert_eq!(decode_state(&b).unwrap_err(), WireError::TrailingBytes);
    }

    #[test]
    fn bad_policy_node_rejected() {
        let st = sample_state();
        let b = encode_state(&st);
        // Find the policy start: version(1)+4+8+8 + nonce(8)+mac(8)+
        // n_shares(2)+shares(8·n).
        let (_, shares, _, _, _) = st.ciphertext.parts();
        let policy_off = 1 + 4 + 8 + 8 + 8 + 8 + 2 + 8 * shares.len();
        let mut bad = b.clone();
        bad[policy_off] = 9;
        assert_eq!(decode_state(&bad).unwrap_err(), WireError::BadPolicyNode);
    }

    #[test]
    fn deep_policy_bounded() {
        // Build a deeply nested policy (beyond MAX_POLICY_DEPTH) and
        // check the decoder rejects it instead of recursing away.
        let mut tree = AccessTree::leaf("x");
        for _ in 0..(MAX_POLICY_DEPTH + 2) {
            tree = AccessTree::And(vec![tree]);
        }
        let home = HomeCrypto::setup(1);
        let st = home.encrypt_state(b"p", &tree, 1, 1.0, 1);
        let b = encode_state(&st);
        assert_eq!(decode_state(&b).unwrap_err(), WireError::PolicyTooDeep);
    }

    #[test]
    fn size_tracks_policy_and_payload() {
        let home = HomeCrypto::setup(1);
        let small = home.encrypt_state(b"x", &AccessTree::leaf("a"), 1, 1.0, 1);
        let big = home.encrypt_state(
            &[0u8; 500],
            &AccessTree::all_of(&["a", "b", "c", "d", "e", "f"]),
            1,
            1.0,
            1,
        );
        assert!(encode_state(&big).len() > encode_state(&small).len() + 400);
    }
}
