//! Security substrate for SpaceCore's home-controlled state updates
//! (§4.4, Algorithm 2, Appendix B).
//!
//! The paper protects UE-side state replicas with attribute-based
//! encryption (OpenABE) and negotiates per-session keys with a
//! station-to-station Diffie–Hellman exchange. This crate rebuilds that
//! layer from scratch:
//!
//! * [`field`] — prime-field arithmetic (2⁶¹−1 Mersenne field),
//! * [`shamir`] — Shamir secret sharing (threshold gates),
//! * [`policy`] — access trees: monotone Boolean formulas over attributes,
//! * [`abe`] — a ciphertext-policy ABE **simulator** with real access-tree
//!   share semantics,
//! * [`dh`] — finite-field Diffie–Hellman and the station-to-station
//!   protocol of Algorithm 2 (lines 10–14),
//! * [`statecrypt`] — the complete Algorithm 2 workflow: home setup, key
//!   generation for satellites/UEs, state encryption with version + TTL,
//!   signing, decryption and verification at the serving satellite,
//! * [`wire`] — the byte-exact codec for encrypted UE states: what
//!   actually rides inside the NAS `StateReplica` IE and the GTP-U
//!   `FutureExtensionField` (§5), so message sizes in the signaling
//!   bills reflect real envelope overhead,
//! * [`suci`] — the Subscription Concealed Identifier of the paper's
//!   footnote 4: ECIES-like concealment of the permanent identity under
//!   the home's public key, used in the initial registration.
//!
//! Determinism note: every operation is seeded and wall-clock-free, so
//! the Fig. 18a/19 experiments (and their telemetry sidecars) are
//! byte-identical across reruns — the property sc-audit's R2 rule
//! enforces tree-wide.
//!
//! ## Substitution note (DESIGN.md §3)
//!
//! This is a **functional simulation**, not production cryptography: the
//! field is 61-bit, the "signatures" are keyed hashes, and the ABE
//! construction is not collusion-resistant. The paper's experiments
//! measure (a) *who can decrypt which state under which policy* (Fig. 19
//! leakage under hijack/man-in-the-middle) and (b) *processing cost as a
//! function of attribute-set size* (Fig. 18a). Both are preserved: policy
//! satisfaction uses real secret-sharing over the access tree, and
//! encrypt/decrypt cost scales with the number of attributes exactly as
//! in a real ABE implementation.

pub mod abe;
pub mod dh;
pub mod field;
pub mod policy;
pub mod shamir;
pub mod statecrypt;
pub mod suci;
pub mod wire;

pub use abe::{AbeCiphertext, AbeError, AbeMasterKey, AbePublicKey, AbeSecretKey, AbeSystem};
pub use dh::{DhParams, StationToStation, StsError};
pub use policy::{AccessTree, Attribute};
pub use wire::{decode_state, encode_state, WireError};
pub use suci::{conceal, deconceal, Suci, SuciHomeKey};
pub use statecrypt::{EncryptedUeState, HomeCrypto, SatCredentials, StateCryptError, UeCredentials};
