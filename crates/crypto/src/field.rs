//! Arithmetic in the prime field GF(2⁶¹ − 1).
//!
//! 2⁶¹ − 1 is a Mersenne prime, which makes reduction cheap and lets all
//! intermediate products fit in `u128`. The field backs the Shamir
//! sharing in [`crate::shamir`], the ABE share blinding in
//! [`crate::abe`], and the Diffie–Hellman group in [`crate::dh`].

/// The field modulus: the Mersenne prime 2⁶¹ − 1.
pub const P: u64 = (1u64 << 61) - 1;

/// A field element in `[0, P)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fe(u64);

// `add`/`sub`/`mul`/`neg` shadow the std::ops trait names on purpose:
// field arithmetic is explicit-call-only here so a stray `+` on raw
// u64s can never silently bypass the modular reduction.
#[allow(clippy::should_implement_trait)]
impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe(0);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe(1);

    /// Reduce an arbitrary `u64` into the field.
    pub fn new(v: u64) -> Self {
        Fe(v % P)
    }

    /// Raw value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Field addition.
    pub fn add(self, o: Fe) -> Fe {
        let s = self.0 + o.0; // < 2^62, no overflow
        Fe(if s >= P { s - P } else { s })
    }

    /// Field subtraction.
    pub fn sub(self, o: Fe) -> Fe {
        Fe(if self.0 >= o.0 {
            self.0 - o.0
        } else {
            self.0 + P - o.0
        })
    }

    /// Field multiplication (via u128 with Mersenne reduction).
    pub fn mul(self, o: Fe) -> Fe {
        let prod = self.0 as u128 * o.0 as u128;
        // Mersenne reduction: x mod (2^61-1) = (x & (2^61-1)) + (x >> 61), iterated.
        let lo = (prod & ((1u128 << 61) - 1)) as u64;
        let hi = (prod >> 61) as u64;
        let mut r = lo + hi; // ≤ 2^61-1 + 2^67/2^61 ... still may exceed P once
        while r >= P {
            r -= P;
        }
        Fe(r)
    }

    /// Field exponentiation by squaring.
    pub fn pow(self, mut e: u64) -> Fe {
        let mut base = self;
        let mut acc = Fe::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn inv(self) -> Fe {
        assert!(self.0 != 0, "zero has no inverse");
        self.pow(P - 2)
    }

    /// Field negation.
    pub fn neg(self) -> Fe {
        if self.0 == 0 {
            self
        } else {
            Fe(P - self.0)
        }
    }
}

impl From<u64> for Fe {
    fn from(v: u64) -> Self {
        Fe::new(v)
    }
}

impl std::fmt::Display for Fe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A small deterministic keyed hash (FNV-1a 64 variant, tweaked for two
/// inputs). **Not** cryptographically strong — see the crate-level
/// substitution note. Used for attribute key derivation, "signatures"
/// (keyed MACs), and key-stream generation.
pub fn keyed_hash(key: u64, data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ key.rotate_left(17);
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
        h ^= h >> 29;
    }
    // Final avalanche (splitmix64 tail).
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Hash into a non-zero field element.
pub fn hash_to_fe(key: u64, data: &[u8]) -> Fe {
    let mut h = keyed_hash(key, data);
    loop {
        let v = h % P;
        if v != 0 {
            return Fe(v);
        }
        h = keyed_hash(key ^ 0x9e37_79b9_7f4a_7c15, &h.to_le_bytes());
    }
}

/// XOR key-stream over a buffer, keyed by `key` and a nonce. Involutive:
/// applying twice restores the plaintext.
pub fn xor_stream(key: u64, nonce: u64, data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(8).enumerate() {
        let block = keyed_hash(key ^ nonce.rotate_left(13), &(i as u64).to_le_bytes());
        let kb = block.to_le_bytes();
        for (j, b) in chunk.iter_mut().enumerate() {
            *b ^= kb[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = Fe::new(12345678901234567);
        let b = Fe::new(P - 5);
        assert_eq!(a.add(b).sub(b), a);
        assert_eq!(a.sub(a), Fe::ZERO);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let cases = [(3u64, 5u64), (P - 1, P - 1), (1 << 60, 12345), (0, 999)];
        for (x, y) in cases {
            let expect = ((x as u128 * y as u128) % P as u128) as u64;
            assert_eq!(Fe::new(x).mul(Fe::new(y)).value(), expect, "{x}*{y}");
        }
    }

    #[test]
    fn pow_and_inverse() {
        let a = Fe::new(987654321);
        assert_eq!(a.mul(a.inv()), Fe::ONE);
        assert_eq!(a.pow(0), Fe::ONE);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(2), a.mul(a));
        // Fermat: a^(P-1) = 1.
        assert_eq!(a.pow(P - 1), Fe::ONE);
    }

    #[test]
    fn neg_is_additive_inverse() {
        let a = Fe::new(424242);
        assert_eq!(a.add(a.neg()), Fe::ZERO);
        assert_eq!(Fe::ZERO.neg(), Fe::ZERO);
    }

    #[test]
    fn keyed_hash_is_key_sensitive() {
        let d = b"the same data";
        assert_ne!(keyed_hash(1, d), keyed_hash(2, d));
        assert_eq!(keyed_hash(7, d), keyed_hash(7, d));
        assert_ne!(keyed_hash(7, b"data a"), keyed_hash(7, b"data b"));
    }

    #[test]
    fn hash_to_fe_nonzero() {
        for k in 0..100u64 {
            assert_ne!(hash_to_fe(k, b"x"), Fe::ZERO);
        }
    }

    #[test]
    fn xor_stream_involutive() {
        let mut data = b"hello spacecore, this is a state replica".to_vec();
        let orig = data.clone();
        xor_stream(0xABCD, 42, &mut data);
        assert_ne!(data, orig);
        xor_stream(0xABCD, 42, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn xor_stream_nonce_sensitive() {
        let mut a = b"same plaintext".to_vec();
        let mut b = a.clone();
        xor_stream(1, 1, &mut a);
        xor_stream(1, 2, &mut b);
        assert_ne!(a, b);
    }
}
