//! The complete Algorithm 2 workflow: home-controlled local mutual
//! authentication, key agreement, and state access.
//!
//! ```text
//! Initialization:
//!   Home:             (pk, msk) ← Setup(1^λ)
//!   Home → Satellite: CERT_sat, sk_sat ← KeyGen(pk, msk, S_sat)
//!   Home → UE:        sk_UE ← KeyGen(pk, msk, S_UE)     (in SIM card)
//! Initial registration (C1):
//!   Home:      state_UE ← (ver, TTL, IP, QoS, billing, p, g)
//!   Home → UE: msg_UE ← Encrypt(pk, state_UE, A)
//!   UE:        state_UE ← Decrypt(msg_UE, sk_UE)
//! Later service establishments (C2–C3):
//!   UE → Satellite: X ← g^x mod p, msg_UE
//!   Satellite:      state_UE ← Decrypt(msg_UE, sk_sat)   (iff A(S_sat))
//!   Satellite:      Y ← g^y, K ← X^y
//!   Satellite → UE: Y, CERT_sat
//!   UE:             Verify(CERT_sat), K ← Y^x
//! ```
//!
//! Replay protection: every encrypted state carries a version number and
//! TTL; on TTL expiry the satellite refuses the local path and pulls a
//! fresh state from the home (Appendix B "Replay attacks").

use crate::abe::{AbeCiphertext, AbeError, AbeMasterKey, AbePublicKey, AbeSecretKey, AbeSystem};
use crate::dh::{Certificate, DhParams, StationToStation, StsError};
use crate::policy::{AccessTree, Attribute};
use std::collections::BTreeSet;

/// The plaintext UE session state protected by Algorithm 2
/// (line 6: `(ver, TTL, IP, QoS, billing, p, g)`), serialized as bytes by
/// the caller (the `fiveg` crate owns the rich state model; this layer
/// sees opaque payloads plus the envelope fields it must enforce).
#[derive(Debug, Clone, PartialEq)]
pub struct EncryptedUeState {
    /// Version number assigned by the home.
    pub version: u32,
    /// Absolute expiry time (emulation seconds since epoch).
    pub expires_at: f64,
    /// The ABE-wrapped state payload.
    pub ciphertext: AbeCiphertext,
    /// Home signature over (version, expiry, payload digest).
    pub home_sig: u64,
}

impl EncryptedUeState {
    /// Has this state expired at emulation time `now`?
    pub fn expired(&self, now: f64) -> bool {
        now > self.expires_at
    }

    /// Wire size in bytes for signaling-cost accounting.
    pub fn size_bytes(&self) -> usize {
        self.ciphertext.size_bytes() + 4 + 8 + 8
    }
}

/// Credentials installed in a satellite before launch (Algorithm 2 line 3).
#[derive(Debug, Clone)]
pub struct SatCredentials {
    /// The satellite's attribute-bound ABE key.
    pub sk: AbeSecretKey,
    /// Home-issued certificate.
    pub cert: Certificate,
    /// The satellite's transcript-signing key (paired with the cert).
    pub transcript_key: u64,
}

/// Credentials pre-stored in a UE's SIM card (Algorithm 2 line 4).
#[derive(Debug, Clone)]
pub struct UeCredentials {
    /// The UE's attribute-bound ABE key.
    pub sk: AbeSecretKey,
}

/// Errors in the local state-access path. Any error means the serving
/// satellite must roll back to the legacy home-routed procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateCryptError {
    /// ABE decryption failed (policy unsatisfied or tampered ciphertext).
    Abe(AbeError),
    /// Station-to-station failure (bad cert / transcript).
    Sts(StsError),
    /// The state's TTL has expired; fetch a fresh one from home.
    Expired,
    /// The home signature over the envelope did not verify.
    BadHomeSignature,
}

impl std::fmt::Display for StateCryptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateCryptError::Abe(e) => write!(f, "abe: {e}"),
            StateCryptError::Sts(e) => write!(f, "sts: {e}"),
            StateCryptError::Expired => f.write_str("state TTL expired"),
            StateCryptError::BadHomeSignature => f.write_str("home signature invalid"),
        }
    }
}

impl std::error::Error for StateCryptError {}

impl From<AbeError> for StateCryptError {
    fn from(e: AbeError) -> Self {
        StateCryptError::Abe(e)
    }
}

impl From<StsError> for StateCryptError {
    fn from(e: StsError) -> Self {
        StateCryptError::Sts(e)
    }
}

/// The home network's crypto authority: master keys, certificate issuing,
/// state encryption & signing.
#[derive(Debug, Clone)]
pub struct HomeCrypto {
    pk: AbePublicKey,
    msk: AbeMasterKey,
    cert_key: u64,
    sign_key: u64,
    dh: DhParams,
}

impl HomeCrypto {
    /// `Setup(1^λ)` — deterministic in the seed for reproducible runs.
    pub fn setup(seed: u64) -> Self {
        let (pk, msk) = AbeSystem::setup(seed);
        Self {
            pk,
            msk,
            cert_key: crate::field::keyed_hash(seed, b"home-cert-key"),
            sign_key: crate::field::keyed_hash(seed, b"home-state-sign-key"),
            dh: DhParams::default(),
        }
    }

    /// Public ABE parameters (distributable).
    pub fn public_key(&self) -> &AbePublicKey {
        &self.pk
    }

    /// DH group parameters embedded in UE states.
    pub fn dh_params(&self) -> DhParams {
        self.dh
    }

    /// The certificate-verification key UEs carry (public side of the
    /// simulated CA).
    pub fn cert_verify_key(&self) -> u64 {
        self.cert_key
    }

    /// Provision a satellite before launch (Algorithm 2 line 3).
    pub fn provision_satellite(
        &self,
        sat_identity: u64,
        attrs: &BTreeSet<Attribute>,
    ) -> SatCredentials {
        SatCredentials {
            sk: AbeSystem::keygen(&self.msk, attrs),
            cert: Certificate::issue(self.cert_key, sat_identity),
            transcript_key: crate::field::keyed_hash(self.cert_key, &sat_identity.to_le_bytes()),
        }
    }

    /// Provision a UE SIM (Algorithm 2 line 4).
    pub fn provision_ue(&self, attrs: &BTreeSet<Attribute>) -> UeCredentials {
        UeCredentials {
            sk: AbeSystem::keygen(&self.msk, attrs),
        }
    }

    /// Encrypt + sign a UE state under access policy `policy`
    /// (Algorithm 2 lines 6–7), with version/TTL envelope.
    pub fn encrypt_state(
        &self,
        state_payload: &[u8],
        policy: &AccessTree,
        version: u32,
        expires_at: f64,
        entropy: u64,
    ) -> EncryptedUeState {
        let ciphertext = AbeSystem::encrypt(&self.pk, state_payload, policy, entropy);
        let home_sig = self.sign_envelope(version, expires_at, state_payload);
        EncryptedUeState {
            version,
            expires_at,
            ciphertext,
            home_sig,
        }
    }

    fn sign_envelope(&self, version: u32, expires_at: f64, payload: &[u8]) -> u64 {
        let mut buf = Vec::with_capacity(payload.len() + 12);
        buf.extend_from_slice(&version.to_le_bytes());
        buf.extend_from_slice(&expires_at.to_bits().to_le_bytes());
        buf.extend_from_slice(payload);
        crate::field::keyed_hash(self.sign_key, &buf)
    }

    /// Verify the home signature over a decrypted state. Satellites call
    /// this after ABE decryption; it is what makes UE-side state
    /// manipulation detectable (Appendix B "UE-side state manipulation").
    pub fn verify_envelope(
        &self,
        st: &EncryptedUeState,
        decrypted_payload: &[u8],
    ) -> Result<(), StateCryptError> {
        if self.sign_envelope(st.version, st.expires_at, decrypted_payload) == st.home_sig {
            Ok(())
        } else {
            Err(StateCryptError::BadHomeSignature)
        }
    }
}

/// Outcome of the satellite-side local state access: the decrypted state
/// plus the negotiated session key.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalAccessOutcome {
    /// Decrypted UE state payload.
    pub state: Vec<u8>,
    /// Negotiated session key `K`.
    pub session_key: u64,
    /// The satellite's `Y` and certificate, returned to the UE.
    pub y_public: u64,
    /// Transcript signature over `(X, Y)`.
    pub transcript_sig: u64,
}

/// Satellite side of Algorithm 2 lines 11–13: attempt local decryption of
/// the piggybacked state and answer the UE's DH offer.
///
/// `now` enforces the TTL (Appendix B replay protection); `home` supplies
/// envelope verification (home-signed states cannot be forged by UEs).
pub fn satellite_local_access(
    creds: &SatCredentials,
    home: &HomeCrypto,
    st: &EncryptedUeState,
    ue_x_public: u64,
    ephemeral_secret: u64,
    now: f64,
) -> Result<LocalAccessOutcome, StateCryptError> {
    satellite_local_access_obs(
        &sc_obs::Recorder::disabled(),
        creds,
        home,
        st,
        ue_x_public,
        ephemeral_secret,
        now,
    )
}

/// [`satellite_local_access`] with telemetry: counts
/// `crypto.statecrypt.local_accesses` / `.failures` / `.expired`, plus
/// the ABE decryption it performs (`crypto.abe.decrypts`). `now` is the
/// caller's simulated time — the TTL check never reads a wall clock.
pub fn satellite_local_access_obs(
    obs: &sc_obs::Recorder,
    creds: &SatCredentials,
    home: &HomeCrypto,
    st: &EncryptedUeState,
    ue_x_public: u64,
    ephemeral_secret: u64,
    now: f64,
) -> Result<LocalAccessOutcome, StateCryptError> {
    obs.inc("crypto.statecrypt.local_accesses", 1);
    let r = local_access_inner(obs, creds, home, st, ue_x_public, ephemeral_secret, now);
    if r.is_err() {
        obs.inc("crypto.statecrypt.failures", 1);
    }
    r
}

fn local_access_inner(
    obs: &sc_obs::Recorder,
    creds: &SatCredentials,
    home: &HomeCrypto,
    st: &EncryptedUeState,
    ue_x_public: u64,
    ephemeral_secret: u64,
    now: f64,
) -> Result<LocalAccessOutcome, StateCryptError> {
    if st.expired(now) {
        obs.inc("crypto.statecrypt.expired", 1);
        return Err(StateCryptError::Expired);
    }
    let state = AbeSystem::decrypt_obs(obs, &st.ciphertext, &creds.sk)?;
    home.verify_envelope(st, &state)?;
    let sts = StationToStation::new(home.dh_params(), ephemeral_secret);
    let session_key = sts.shared_key(ue_x_public);
    let transcript_sig =
        StationToStation::sign_transcript(creds.transcript_key, ue_x_public, sts.public_value());
    Ok(LocalAccessOutcome {
        state,
        session_key,
        y_public: sts.public_value(),
        transcript_sig,
    })
}

/// UE side of Algorithm 2 line 14: verify the satellite certificate and
/// transcript, then derive `K`.
pub fn ue_complete_exchange(
    home_cert_key: u64,
    ue_sts: &StationToStation,
    sat_cert: &Certificate,
    sat_identity: u64,
    y_public: u64,
    transcript_sig: u64,
) -> Result<u64, StateCryptError> {
    if !sat_cert.verify(home_cert_key) || sat_cert.subject != sat_identity {
        return Err(StateCryptError::Sts(StsError::BadCertificate));
    }
    let sat_transcript_key =
        crate::field::keyed_hash(home_cert_key, &sat_identity.to_le_bytes());
    StationToStation::verify_transcript(
        sat_transcript_key,
        ue_sts.public_value(),
        y_public,
        transcript_sig,
    )?;
    Ok(ue_sts.shared_key(y_public))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::attr_set;

    fn home() -> HomeCrypto {
        HomeCrypto::setup(0xFEED)
    }

    fn sat_policy() -> AccessTree {
        AccessTree::all_of(&["role:satellite", "qos"])
    }

    fn full_exchange(
        home: &HomeCrypto,
        sat: &SatCredentials,
        st: &EncryptedUeState,
        now: f64,
    ) -> Result<(u64, u64), StateCryptError> {
        // UE initiates (Algorithm 2 line 10).
        let ue_sts = StationToStation::new(home.dh_params(), 0x123456);
        let out = satellite_local_access(sat, home, st, ue_sts.public_value(), 0xABCDEF, now)?;
        // UE completes (line 14).
        let k_ue = ue_complete_exchange(
            home.cert_verify_key(),
            &ue_sts,
            &sat.cert,
            sat.cert.subject,
            out.y_public,
            out.transcript_sig,
        )?;
        Ok((k_ue, out.session_key))
    }

    #[test]
    fn authorized_satellite_full_path() {
        let h = home();
        let sat = h.provision_satellite(7, &attr_set(&["role:satellite", "qos"]));
        let st = h.encrypt_state(b"ip=geo://1 qos=gbr billing=15gb", &sat_policy(), 1, 1000.0, 42);
        let (k_ue, k_sat) = full_exchange(&h, &sat, &st, 10.0).unwrap();
        assert_eq!(k_ue, k_sat);
    }

    #[test]
    fn unauthorized_satellite_rolls_back() {
        let h = home();
        let sat = h.provision_satellite(8, &attr_set(&["role:satellite"])); // no qos attr
        let st = h.encrypt_state(b"state", &sat_policy(), 1, 1000.0, 43);
        assert_eq!(
            full_exchange(&h, &sat, &st, 10.0).unwrap_err(),
            StateCryptError::Abe(AbeError::PolicyNotSatisfied)
        );
    }

    #[test]
    fn expired_state_rejected() {
        let h = home();
        let sat = h.provision_satellite(9, &attr_set(&["role:satellite", "qos"]));
        let st = h.encrypt_state(b"state", &sat_policy(), 3, 100.0, 44);
        assert_eq!(
            full_exchange(&h, &sat, &st, 101.0).unwrap_err(),
            StateCryptError::Expired
        );
        // Still fine just before expiry.
        assert!(full_exchange(&h, &sat, &st, 99.9).is_ok());
    }

    #[test]
    fn ue_state_manipulation_detected() {
        // A selfish UE re-encrypts a modified state under the right
        // policy using the public parameters — the home envelope
        // signature exposes it.
        let h = home();
        let sat = h.provision_satellite(10, &attr_set(&["role:satellite", "qos"]));
        let genuine = h.encrypt_state(b"billing=throttle-at-15gb", &sat_policy(), 1, 1000.0, 45);
        let forged_ct =
            AbeSystem::encrypt(h.public_key(), b"billing=unlimited!!!!!!!", &sat_policy(), 46);
        let forged = EncryptedUeState {
            ciphertext: forged_ct,
            ..genuine.clone()
        };
        let ue_sts = StationToStation::new(h.dh_params(), 1);
        let err = satellite_local_access(&sat, &h, &forged, ue_sts.public_value(), 2, 10.0)
            .unwrap_err();
        assert_eq!(err, StateCryptError::BadHomeSignature);
    }

    #[test]
    fn fake_satellite_certificate_rejected_by_ue() {
        let h = home();
        let sat = h.provision_satellite(11, &attr_set(&["role:satellite", "qos"]));
        let st = h.encrypt_state(b"state", &sat_policy(), 1, 1000.0, 47);
        let ue_sts = StationToStation::new(h.dh_params(), 5);
        let out =
            satellite_local_access(&sat, &h, &st, ue_sts.public_value(), 6, 10.0).unwrap();
        // 3rd-party malicious satellite replays Y with a self-made cert.
        let fake_cert = Certificate {
            subject: 11,
            sig: 0xDEAD,
        };
        let err = ue_complete_exchange(
            h.cert_verify_key(),
            &ue_sts,
            &fake_cert,
            11,
            out.y_public,
            out.transcript_sig,
        )
        .unwrap_err();
        assert_eq!(err, StateCryptError::Sts(StsError::BadCertificate));
    }

    #[test]
    fn session_keys_fresh_per_establishment() {
        let h = home();
        let sat = h.provision_satellite(12, &attr_set(&["role:satellite", "qos"]));
        let st = h.encrypt_state(b"state", &sat_policy(), 1, 1000.0, 48);
        let ue1 = StationToStation::new(h.dh_params(), 100);
        let ue2 = StationToStation::new(h.dh_params(), 200);
        let o1 = satellite_local_access(&sat, &h, &st, ue1.public_value(), 300, 1.0).unwrap();
        let o2 = satellite_local_access(&sat, &h, &st, ue2.public_value(), 400, 2.0).unwrap();
        assert_ne!(o1.session_key, o2.session_key);
    }

    #[test]
    fn version_bump_invalidates_nothing_but_tracks() {
        let h = home();
        let st1 = h.encrypt_state(b"v1", &sat_policy(), 1, 1000.0, 50);
        let st2 = h.encrypt_state(b"v2", &sat_policy(), 2, 2000.0, 51);
        assert!(st2.version > st1.version);
        assert!(st1.size_bytes() > 0);
    }
}
