//! Shamir secret sharing over GF(2⁶¹ − 1).
//!
//! Threshold gates in the ABE access tree (AND = n-of-n, OR = 1-of-n,
//! k-of-n) are realized by splitting each node's secret into shares with
//! a random degree-(k−1) polynomial and reconstructing by Lagrange
//! interpolation at x = 0 — the textbook construction used by GPSW/BSW
//! ABE schemes.

use crate::field::Fe;

/// One share: the evaluation point `x` (non-zero) and value `y = f(x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Share {
    pub x: Fe,
    pub y: Fe,
}

/// Split `secret` into `n` shares with threshold `k` (any `k` shares
/// reconstruct; fewer reveal nothing). The polynomial's random
/// coefficients are drawn from `coeff_source`, a caller-supplied iterator
/// (lets the ABE layer derive them deterministically from the master key).
///
/// Shares are issued at x = 1..=n.
///
/// # Panics
/// Panics if `k == 0` or `k > n`.
pub fn split(
    secret: Fe,
    k: usize,
    n: usize,
    mut coeff_source: impl FnMut() -> Fe,
) -> Vec<Share> {
    assert!(k >= 1 && k <= n, "invalid threshold {k}-of-{n}");
    // f(x) = secret + c1·x + … + c_{k-1}·x^{k-1}
    let coeffs: Vec<Fe> = (0..k - 1).map(|_| coeff_source()).collect();
    (1..=n as u64)
        .map(|xi| {
            let x = Fe::new(xi);
            let mut y = secret;
            let mut xp = Fe::ONE;
            for &c in &coeffs {
                xp = xp.mul(x);
                y = y.add(c.mul(xp));
            }
            Share { x, y }
        })
        .collect()
}

/// Reconstruct the secret from at least `k` distinct shares by Lagrange
/// interpolation at x = 0. With fewer than the original threshold the
/// result is (with overwhelming probability) garbage — by design.
///
/// # Panics
/// Panics if `shares` is empty or contains duplicate x-coordinates.
pub fn reconstruct(shares: &[Share]) -> Fe {
    assert!(!shares.is_empty(), "need at least one share");
    for (i, a) in shares.iter().enumerate() {
        for b in &shares[i + 1..] {
            assert!(a.x != b.x, "duplicate share x-coordinate");
        }
    }
    let mut acc = Fe::ZERO;
    for (i, si) in shares.iter().enumerate() {
        // Lagrange basis at 0: Π_{j≠i} (0 - x_j)/(x_i - x_j)
        let mut num = Fe::ONE;
        let mut den = Fe::ONE;
        for (j, sj) in shares.iter().enumerate() {
            if i == j {
                continue;
            }
            num = num.mul(sj.x.neg());
            den = den.mul(si.x.sub(sj.x));
        }
        acc = acc.add(si.y.mul(num.mul(den.inv())));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_source(seed: u64) -> impl FnMut() -> Fe {
        let mut s = seed;
        move || {
            // splitmix64 step
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            Fe::new(z ^ (z >> 31))
        }
    }

    #[test]
    fn k_of_n_reconstructs() {
        let secret = Fe::new(0x0005_FACE_C0DE);
        let shares = split(secret, 3, 5, rng_source(7));
        assert_eq!(shares.len(), 5);
        // Any 3 shares work.
        assert_eq!(reconstruct(&shares[0..3]), secret);
        assert_eq!(reconstruct(&[shares[0], shares[2], shares[4]]), secret);
        // All 5 also work.
        assert_eq!(reconstruct(&shares), secret);
    }

    #[test]
    fn below_threshold_fails() {
        let secret = Fe::new(123456789);
        let shares = split(secret, 3, 5, rng_source(99));
        // 2 < k shares almost surely reconstruct something else.
        assert_ne!(reconstruct(&shares[0..2]), secret);
    }

    #[test]
    fn one_of_n_is_replication() {
        let secret = Fe::new(42);
        let shares = split(secret, 1, 4, rng_source(1));
        for s in &shares {
            assert_eq!(reconstruct(&[*s]), secret);
        }
    }

    #[test]
    fn n_of_n_requires_all() {
        let secret = Fe::new(777777);
        let shares = split(secret, 4, 4, rng_source(3));
        assert_eq!(reconstruct(&shares), secret);
        assert_ne!(reconstruct(&shares[0..3]), secret);
    }

    #[test]
    #[should_panic(expected = "invalid threshold")]
    fn zero_threshold_panics() {
        split(Fe::new(1), 0, 3, rng_source(0));
    }

    #[test]
    #[should_panic(expected = "duplicate share")]
    fn duplicate_x_panics() {
        let s = Share {
            x: Fe::new(1),
            y: Fe::new(2),
        };
        reconstruct(&[s, s]);
    }
}
