//! Diffie–Hellman and the station-to-station exchange of Algorithm 2
//! (lines 10–14) plus the certificate check of line 14.
//!
//! The UE's encrypted state carries the group parameters `(p, g)`
//! (Algorithm 2 line 6: `state_UE ← (ver, TTL, IP, QoS, billing, p, g)`).
//! The UE sends `X = gˣ mod p`; the satellite — having decrypted the
//! state with its ABE key — answers `Y = g^y` and derives `K = X^y`; the
//! UE verifies the satellite certificate and derives `K = Yˣ`. Binding
//! `Y`'s computation to the decrypted state is what makes the exchange
//! fail closed for unauthorized satellites, and signing the exchange
//! (station-to-station) is what defeats man-in-the-middle relays.

use crate::field::{keyed_hash, Fe, P};

/// Diffie–Hellman group parameters carried inside the UE state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhParams {
    /// Group modulus (we use the field prime; real deployments use a
    /// 2048-bit safe prime — see the crate-level substitution note).
    pub p: u64,
    /// Generator.
    pub g: u64,
}

impl Default for DhParams {
    fn default() -> Self {
        // 7 generates a large subgroup of GF(2^61-1)*.
        Self { p: P, g: 7 }
    }
}

/// Errors in the station-to-station exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StsError {
    /// The peer's certificate did not verify against the home's key.
    BadCertificate,
    /// The signed exchange transcript did not verify (MITM indicator).
    BadTranscriptSignature,
}

impl std::fmt::Display for StsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StsError::BadCertificate => f.write_str("peer certificate invalid"),
            StsError::BadTranscriptSignature => f.write_str("exchange transcript signature invalid"),
        }
    }
}

impl std::error::Error for StsError {}

/// A certificate: identity + home signature over it (keyed MAC by the
/// home's certificate key — the simulation's stand-in for a CA signature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Certificate {
    /// The subject (e.g. satellite id hash).
    pub subject: u64,
    /// Home signature over the subject.
    pub sig: u64,
}

impl Certificate {
    /// Issue a certificate (home side; `cert_key` is home-secret).
    pub fn issue(cert_key: u64, subject: u64) -> Self {
        Self {
            subject,
            sig: keyed_hash(cert_key, &subject.to_le_bytes()),
        }
    }

    /// Verify against the home's certificate key.
    pub fn verify(&self, cert_key: u64) -> bool {
        self.sig == keyed_hash(cert_key, &self.subject.to_le_bytes())
    }
}

/// One side of a station-to-station exchange.
#[derive(Debug, Clone)]
pub struct StationToStation {
    params: DhParams,
    secret: u64,
    public: u64,
}

impl StationToStation {
    /// Start an exchange with a fresh ephemeral secret.
    pub fn new(params: DhParams, ephemeral_secret: u64) -> Self {
        let secret = (ephemeral_secret % (params.p - 2)).max(2);
        let public = Fe::new(params.g).pow(secret).value();
        Self {
            params,
            secret,
            public,
        }
    }

    /// The public value (`X` for the UE, `Y` for the satellite).
    pub fn public_value(&self) -> u64 {
        self.public
    }

    /// Derive the shared key `K = peer^secret mod p`.
    pub fn shared_key(&self, peer_public: u64) -> u64 {
        Fe::new(peer_public).pow(self.secret).value()
    }

    /// Sign the exchange transcript `(X, Y)` with a party key — the STS
    /// signature that authenticates the exchange.
    pub fn sign_transcript(party_key: u64, x: u64, y: u64) -> u64 {
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(&x.to_le_bytes());
        buf[8..].copy_from_slice(&y.to_le_bytes());
        keyed_hash(party_key, &buf)
    }

    /// Verify a transcript signature.
    pub fn verify_transcript(party_key: u64, x: u64, y: u64, sig: u64) -> Result<(), StsError> {
        if Self::sign_transcript(party_key, x, y) == sig {
            Ok(())
        } else {
            Err(StsError::BadTranscriptSignature)
        }
    }

    /// Group parameters in use.
    pub fn params(&self) -> DhParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_keys_agree() {
        let p = DhParams::default();
        let ue = StationToStation::new(p, 0x1111_2222_3333);
        let sat = StationToStation::new(p, 0x9999_8888_7777);
        let k1 = ue.shared_key(sat.public_value());
        let k2 = sat.shared_key(ue.public_value());
        assert_eq!(k1, k2);
        assert_ne!(k1, 0);
    }

    #[test]
    fn different_ephemerals_different_keys() {
        // Algorithm 2 "updates this security key for every session
        // establishment (thus resilient to key leakages)".
        let p = DhParams::default();
        let sat = StationToStation::new(p, 5555);
        let s1 = StationToStation::new(p, 1001);
        let s2 = StationToStation::new(p, 2002);
        assert_ne!(
            sat.shared_key(s1.public_value()),
            sat.shared_key(s2.public_value())
        );
    }

    #[test]
    fn certificate_issue_verify() {
        let cert = Certificate::issue(0xCAFE, 42);
        assert!(cert.verify(0xCAFE));
        assert!(!cert.verify(0xBAD1));
        let forged = Certificate {
            subject: 42,
            sig: cert.sig ^ 1,
        };
        assert!(!forged.verify(0xCAFE));
    }

    #[test]
    fn transcript_signature_detects_mitm() {
        let p = DhParams::default();
        let ue = StationToStation::new(p, 10);
        let sat = StationToStation::new(p, 20);
        let mitm = StationToStation::new(p, 30);
        let sig = StationToStation::sign_transcript(0x5A7, ue.public_value(), sat.public_value());
        // Honest transcript verifies.
        assert!(StationToStation::verify_transcript(
            0x5A7,
            ue.public_value(),
            sat.public_value(),
            sig
        )
        .is_ok());
        // A MITM substituting its own Y invalidates the signature.
        assert_eq!(
            StationToStation::verify_transcript(
                0x5A7,
                ue.public_value(),
                mitm.public_value(),
                sig
            )
            .unwrap_err(),
            StsError::BadTranscriptSignature
        );
    }

    #[test]
    fn public_value_deterministic() {
        let p = DhParams::default();
        let a = StationToStation::new(p, 777);
        let b = StationToStation::new(p, 777);
        assert_eq!(a.public_value(), b.public_value());
    }
}
