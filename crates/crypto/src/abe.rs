//! Ciphertext-policy ABE simulator (§4.4).
//!
//! Faithful to the share-based structure of BSW/GPSW CP-ABE: encryption
//! draws a random secret `s`, recursively splits it down the access tree
//! with Shamir sharing at every threshold gate, and blinds each leaf
//! share under its attribute. Decryption unblinds exactly the leaves its
//! attribute set covers and reconstructs bottom-up; it succeeds **iff**
//! the attribute set satisfies the policy.
//!
//! Simulation boundary (crate-level doc): leaf blinding keys are derived
//! from a system key reachable from the public parameters, so the
//! construction resists only adversaries modeled as API users — exactly
//! the adversary model of the paper's leakage experiments (Fig. 19),
//! where "leaked" means *states an entity can decrypt through the
//! protocol*. Costs scale with leaf count as in real ABE (Fig. 18a).

use crate::field::{hash_to_fe, keyed_hash, xor_stream, Fe};
use crate::policy::{AccessTree, Attribute};
use crate::shamir;
use std::collections::BTreeSet;

/// Public parameters. Cloned freely to UEs and satellites.
#[derive(Debug, Clone, PartialEq)]
pub struct AbePublicKey {
    system_key: u64,
}

/// Master secret key, held only by the home network.
#[derive(Debug, Clone, PartialEq)]
pub struct AbeMasterKey {
    msk: u64,
    system_key: u64,
}

/// A decryption key bound to an attribute set.
#[derive(Debug, Clone, PartialEq)]
pub struct AbeSecretKey {
    /// The attributes this key embodies (e.g. a satellite's capabilities).
    attrs: BTreeSet<Attribute>,
    /// Per-attribute unblinding elements issued by KeyGen.
    unblind: Vec<(Attribute, Fe)>,
}

impl AbeSecretKey {
    /// The attribute set the key was issued for.
    pub fn attributes(&self) -> &BTreeSet<Attribute> {
        &self.attrs
    }
}

/// A ciphertext: the policy in the clear (standard for CP-ABE), blinded
/// leaf shares, and the wrapped payload.
#[derive(Debug, Clone, PartialEq)]
pub struct AbeCiphertext {
    policy: AccessTree,
    /// Blinded share per leaf, in depth-first leaf order.
    leaf_shares: Vec<Fe>,
    nonce: u64,
    payload: Vec<u8>,
    mac: u64,
}

impl AbeCiphertext {
    /// The (public) policy this ciphertext is encrypted under.
    pub fn policy(&self) -> &AccessTree {
        &self.policy
    }

    /// Ciphertext size in bytes (payload + share overhead), for cost
    /// accounting.
    pub fn size_bytes(&self) -> usize {
        self.payload.len() + self.leaf_shares.len() * 8 + 16
    }

    /// Deconstruct into components (for the wire codec).
    pub fn parts(&self) -> (&AccessTree, &[Fe], u64, &[u8], u64) {
        (
            &self.policy,
            &self.leaf_shares,
            self.nonce,
            &self.payload,
            self.mac,
        )
    }

    /// Reassemble from components (wire decode). The caller is trusted
    /// to supply matching parts; mismatches simply fail to decrypt.
    pub fn from_parts(
        policy: AccessTree,
        leaf_shares: Vec<Fe>,
        nonce: u64,
        payload: Vec<u8>,
        mac: u64,
    ) -> Self {
        Self {
            policy,
            leaf_shares,
            nonce,
            payload,
            mac,
        }
    }
}

/// Errors from decryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbeError {
    /// The key's attribute set does not satisfy the ciphertext policy —
    /// the satellite must roll back to the legacy home-routed procedure.
    PolicyNotSatisfied,
    /// Shares reconstructed but the MAC failed: tampered ciphertext.
    IntegrityFailure,
}

impl std::fmt::Display for AbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbeError::PolicyNotSatisfied => f.write_str("attribute set does not satisfy policy"),
            AbeError::IntegrityFailure => f.write_str("ciphertext integrity check failed"),
        }
    }
}

impl std::error::Error for AbeError {}

/// The ABE system: setup, key generation, encrypt, decrypt.
#[derive(Debug, Clone)]
pub struct AbeSystem;

impl AbeSystem {
    /// `Setup(1^λ)` → `(pk, msk)` (Algorithm 2 line 2). Deterministic in
    /// the seed for reproducible experiments.
    pub fn setup(seed: u64) -> (AbePublicKey, AbeMasterKey) {
        let system_key = keyed_hash(seed, b"spacecore-abe-system");
        let msk = keyed_hash(seed, b"spacecore-abe-master");
        (
            AbePublicKey { system_key },
            AbeMasterKey { msk, system_key },
        )
    }

    /// `KeyGen(pk, msk, S)` → secret key for attribute set `S`
    /// (Algorithm 2 lines 3–4: satellite keys installed before launch,
    /// UE keys pre-stored in SIM cards).
    pub fn keygen(msk: &AbeMasterKey, attrs: &BTreeSet<Attribute>) -> AbeSecretKey {
        let unblind = attrs
            .iter()
            .map(|a| (a.clone(), leaf_blind(msk.system_key, a)))
            .collect();
        AbeSecretKey {
            attrs: attrs.clone(),
            unblind,
        }
    }

    /// `Encrypt(pk, state, A)` (Algorithm 2 line 7): wrap `plaintext`
    /// under access tree `policy`. `entropy` seeds the per-ciphertext
    /// randomness (secret, nonce, share polynomials).
    pub fn encrypt(
        pk: &AbePublicKey,
        plaintext: &[u8],
        policy: &AccessTree,
        entropy: u64,
    ) -> AbeCiphertext {
        let mut rng = SplitMix64::new(entropy ^ pk.system_key);
        let secret = Fe::new(rng.next_nonzero());
        let nonce = rng.next();

        // Recursively share the secret down the tree.
        let mut leaf_shares = Vec::with_capacity(policy.leaf_count());
        share_node(pk.system_key, policy, secret, &mut rng, &mut leaf_shares);

        let mut payload = plaintext.to_vec();
        let mac = keyed_hash(secret.value(), plaintext);
        xor_stream(secret.value(), nonce, &mut payload);

        AbeCiphertext {
            policy: policy.clone(),
            leaf_shares,
            nonce,
            payload,
            mac,
        }
    }

    /// [`AbeSystem::encrypt`] with telemetry: counts
    /// `crypto.abe.encrypts` and samples `crypto.abe.ciphertext_bytes`.
    pub fn encrypt_obs(
        obs: &sc_obs::Recorder,
        pk: &AbePublicKey,
        plaintext: &[u8],
        policy: &AccessTree,
        entropy: u64,
    ) -> AbeCiphertext {
        let ct = Self::encrypt(pk, plaintext, policy, entropy);
        obs.inc("crypto.abe.encrypts", 1);
        obs.observe("crypto.abe.ciphertext_bytes", ct.size_bytes() as f64);
        ct
    }

    /// [`AbeSystem::decrypt`] with telemetry: counts
    /// `crypto.abe.decrypts` and `crypto.abe.decrypt_failures`.
    pub fn decrypt_obs(
        obs: &sc_obs::Recorder,
        ct: &AbeCiphertext,
        sk: &AbeSecretKey,
    ) -> Result<Vec<u8>, AbeError> {
        obs.inc("crypto.abe.decrypts", 1);
        let r = Self::decrypt(ct, sk);
        if r.is_err() {
            obs.inc("crypto.abe.decrypt_failures", 1);
        }
        r
    }

    /// `Decrypt(msg, sk)` (Algorithm 2 lines 8/11): recover the plaintext
    /// iff `sk`'s attributes satisfy the ciphertext policy.
    pub fn decrypt(ct: &AbeCiphertext, sk: &AbeSecretKey) -> Result<Vec<u8>, AbeError> {
        let mut idx = 0usize;
        let secret = recover_node(&ct.policy, &ct.leaf_shares, sk, &mut idx)
            .ok_or(AbeError::PolicyNotSatisfied)?;
        let mut payload = ct.payload.clone();
        xor_stream(secret.value(), ct.nonce, &mut payload);
        if keyed_hash(secret.value(), &payload) != ct.mac {
            return Err(AbeError::IntegrityFailure);
        }
        Ok(payload)
    }
}

/// Per-attribute leaf blinding element.
fn leaf_blind(system_key: u64, attr: &Attribute) -> Fe {
    hash_to_fe(system_key, attr.as_str().as_bytes())
}

/// Recursively split `secret` down the tree, pushing blinded leaf shares
/// in depth-first order.
fn share_node(
    system_key: u64,
    node: &AccessTree,
    secret: Fe,
    rng: &mut SplitMix64,
    out: &mut Vec<Fe>,
) {
    match node {
        AccessTree::Leaf(attr) => {
            out.push(secret.add(leaf_blind(system_key, attr)));
        }
        _ => {
            let (k, n) = node.gate();
            let shares = shamir::split(secret, k, n, || Fe::new(rng.next()));
            for (child, share) in node.children().iter().zip(shares) {
                share_node(system_key, child, share.y, rng, out);
            }
        }
    }
}

/// Recursively recover a node's secret from the leaves the key covers.
/// Advances `idx` through the depth-first leaf order even for subtrees it
/// cannot satisfy (to stay aligned).
fn recover_node(
    node: &AccessTree,
    leaf_shares: &[Fe],
    sk: &AbeSecretKey,
    idx: &mut usize,
) -> Option<Fe> {
    match node {
        AccessTree::Leaf(attr) => {
            let blinded = leaf_shares[*idx];
            *idx += 1;
            sk.unblind
                .iter()
                .find(|(a, _)| a == attr)
                .map(|(_, b)| blinded.sub(*b))
        }
        _ => {
            let (k, _) = node.gate();
            let mut shares = Vec::new();
            for (i, child) in node.children().iter().enumerate() {
                let recovered = recover_node(child, leaf_shares, sk, idx);
                if let Some(y) = recovered {
                    shares.push(shamir::Share {
                        x: Fe::new(i as u64 + 1),
                        y,
                    });
                }
            }
            if shares.len() < k {
                return None;
            }
            shares.truncate(k);
            Some(shamir::reconstruct(&shares))
        }
    }
}

/// Deterministic splitmix64 RNG for per-ciphertext randomness.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_nonzero(&mut self) -> u64 {
        loop {
            let v = self.next() % crate::field::P;
            if v != 0 {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::attr_set;

    fn setup() -> (AbePublicKey, AbeMasterKey) {
        AbeSystem::setup(0xC0FFEE)
    }

    fn paper_policy() -> AccessTree {
        AccessTree::Or(vec![
            AccessTree::all_of(&["role:ue", "supi:1"]),
            AccessTree::all_of(&["role:satellite", "qos", "bw>=10g"]),
        ])
    }

    #[test]
    fn authorized_satellite_decrypts() {
        let (pk, msk) = setup();
        let sk = AbeSystem::keygen(&msk, &attr_set(&["role:satellite", "qos", "bw>=10g"]));
        let ct = AbeSystem::encrypt(&pk, b"ue session state", &paper_policy(), 1);
        assert_eq!(AbeSystem::decrypt(&ct, &sk).unwrap(), b"ue session state");
    }

    #[test]
    fn owner_ue_decrypts() {
        let (pk, msk) = setup();
        let sk = AbeSystem::keygen(&msk, &attr_set(&["role:ue", "supi:1"]));
        let ct = AbeSystem::encrypt(&pk, b"state", &paper_policy(), 2);
        assert_eq!(AbeSystem::decrypt(&ct, &sk).unwrap(), b"state");
    }

    #[test]
    fn unauthorized_satellite_fails() {
        let (pk, msk) = setup();
        // Missing the "qos" capability.
        let sk = AbeSystem::keygen(&msk, &attr_set(&["role:satellite", "bw>=10g"]));
        let ct = AbeSystem::encrypt(&pk, b"state", &paper_policy(), 3);
        assert_eq!(
            AbeSystem::decrypt(&ct, &sk).unwrap_err(),
            AbeError::PolicyNotSatisfied
        );
    }

    #[test]
    fn revocation_via_policy_update() {
        // Appendix B: "the home network detects [hijack] and invalidates
        // its authenticity by updating A … such that A(S_sat)=false".
        let (pk, msk) = setup();
        let hijacked = AbeSystem::keygen(&msk, &attr_set(&["role:satellite", "qos", "bw>=10g"]));
        let new_policy = AccessTree::And(vec![
            AccessTree::all_of(&["role:satellite", "qos", "bw>=10g"]),
            AccessTree::leaf("epoch:2"), // hijacked sat lacks the new epoch attr
        ]);
        let ct = AbeSystem::encrypt(&pk, b"refreshed", &new_policy, 4);
        assert_eq!(
            AbeSystem::decrypt(&ct, &hijacked).unwrap_err(),
            AbeError::PolicyNotSatisfied
        );
        let fresh =
            AbeSystem::keygen(&msk, &attr_set(&["role:satellite", "qos", "bw>=10g", "epoch:2"]));
        assert!(AbeSystem::decrypt(&ct, &fresh).is_ok());
    }

    #[test]
    fn tampering_detected() {
        let (pk, msk) = setup();
        let sk = AbeSystem::keygen(&msk, &attr_set(&["role:ue", "supi:1"]));
        let mut ct = AbeSystem::encrypt(&pk, b"billing: 15GB", &paper_policy(), 5);
        // A selfish UE flips payload bits to manipulate its billing state.
        ct.payload[0] ^= 0xFF;
        assert_eq!(
            AbeSystem::decrypt(&ct, &sk).unwrap_err(),
            AbeError::IntegrityFailure
        );
    }

    #[test]
    fn threshold_policies_work() {
        let (pk, msk) = setup();
        let policy = AccessTree::Threshold {
            k: 2,
            children: vec![
                AccessTree::leaf("a"),
                AccessTree::leaf("b"),
                AccessTree::leaf("c"),
            ],
        };
        let ct = AbeSystem::encrypt(&pk, b"secret", &policy, 6);
        let ok = AbeSystem::keygen(&msk, &attr_set(&["a", "c"]));
        assert!(AbeSystem::decrypt(&ct, &ok).is_ok());
        let insufficient = AbeSystem::keygen(&msk, &attr_set(&["b"]));
        assert!(AbeSystem::decrypt(&ct, &insufficient).is_err());
    }

    #[test]
    fn deterministic_under_same_entropy() {
        let (pk, _) = setup();
        let a = AbeSystem::encrypt(&pk, b"x", &paper_policy(), 7);
        let b = AbeSystem::encrypt(&pk, b"x", &paper_policy(), 7);
        assert_eq!(a, b);
        let c = AbeSystem::encrypt(&pk, b"x", &paper_policy(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn nested_policies() {
        let (pk, msk) = setup();
        let policy = AccessTree::And(vec![
            AccessTree::leaf("root-attr"),
            AccessTree::Or(vec![
                AccessTree::all_of(&["x", "y"]),
                AccessTree::Threshold {
                    k: 2,
                    children: vec![
                        AccessTree::leaf("p"),
                        AccessTree::leaf("q"),
                        AccessTree::leaf("r"),
                    ],
                },
            ]),
        ]);
        let ct = AbeSystem::encrypt(&pk, b"deep", &policy, 9);
        let ok = AbeSystem::keygen(&msk, &attr_set(&["root-attr", "p", "r"]));
        assert_eq!(AbeSystem::decrypt(&ct, &ok).unwrap(), b"deep");
        let missing_root = AbeSystem::keygen(&msk, &attr_set(&["p", "r", "x", "y"]));
        assert!(AbeSystem::decrypt(&ct, &missing_root).is_err());
    }

    #[test]
    fn ciphertext_size_scales_with_leaves() {
        let (pk, _) = setup();
        let small = AbeSystem::encrypt(&pk, b"data", &AccessTree::leaf("a"), 1);
        let big = AbeSystem::encrypt(
            &pk,
            b"data",
            &AccessTree::all_of(&["a", "b", "c", "d", "e", "f", "g", "h"]),
            1,
        );
        assert!(big.size_bytes() > small.size_bytes());
    }
}
