//! Access trees: monotone Boolean policies over attributes (§4.4).
//!
//! The home network expresses satellite access-control policies as access
//! trees `A` in the form of Boolean formulas, e.g. the paper's example:
//!
//! > `A(S) = {(S is UE and S.SUPI == UE.SUPI) or (S is satellite and
//! >  S supports QoS and S.bandwidth > 10Gbps)}`
//!
//! Attributes are opaque strings (comparisons like `bandwidth > 10Gbps`
//! are flattened into grantable attribute tokens such as
//! `"bw>=10g"`, as real ABE deployments do via bag-of-bits encodings).
//! Trees compose `Leaf`, `And`, `Or`, and general `Threshold(k)` gates.

use std::collections::BTreeSet;

/// An attribute token (opaque string, e.g. `"role:satellite"`,
//  `"qos"`, `"bw>=10g"`, `"supi:460011234"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attribute(pub String);

impl Attribute {
    pub fn new(s: impl Into<String>) -> Self {
        Attribute(s.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Attribute {
    fn from(s: &str) -> Self {
        Attribute(s.to_string())
    }
}

impl std::fmt::Display for Attribute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A monotone access tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessTree {
    /// Satisfied iff the attribute set contains this attribute.
    Leaf(Attribute),
    /// Satisfied iff all children are satisfied (n-of-n threshold).
    And(Vec<AccessTree>),
    /// Satisfied iff any child is satisfied (1-of-n threshold).
    Or(Vec<AccessTree>),
    /// Satisfied iff at least `k` children are satisfied.
    Threshold { k: usize, children: Vec<AccessTree> },
}

impl AccessTree {
    /// Convenience leaf constructor.
    pub fn leaf(attr: impl Into<String>) -> Self {
        AccessTree::Leaf(Attribute::new(attr))
    }

    /// Convenience AND of leaves.
    pub fn all_of(attrs: &[&str]) -> Self {
        AccessTree::And(attrs.iter().map(|a| Self::leaf(*a)).collect())
    }

    /// Convenience OR of leaves.
    pub fn any_of(attrs: &[&str]) -> Self {
        AccessTree::Or(attrs.iter().map(|a| Self::leaf(*a)).collect())
    }

    /// The effective threshold `(k, n)` of this node's gate.
    ///
    /// # Panics
    /// Panics on malformed gates (no children, or k out of range) — trees
    /// are built by the home network, so malformed policies are bugs.
    pub fn gate(&self) -> (usize, usize) {
        match self {
            AccessTree::Leaf(_) => (1, 1),
            AccessTree::And(c) => {
                assert!(!c.is_empty(), "AND gate with no children");
                (c.len(), c.len())
            }
            AccessTree::Or(c) => {
                assert!(!c.is_empty(), "OR gate with no children");
                (1, c.len())
            }
            AccessTree::Threshold { k, children } => {
                assert!(
                    *k >= 1 && *k <= children.len(),
                    "threshold {k} of {} children",
                    children.len()
                );
                (*k, children.len())
            }
        }
    }

    /// Child nodes (empty for leaves).
    pub fn children(&self) -> &[AccessTree] {
        match self {
            AccessTree::Leaf(_) => &[],
            AccessTree::And(c) | AccessTree::Or(c) => c,
            AccessTree::Threshold { children, .. } => children,
        }
    }

    /// Is the tree satisfied by this attribute set?
    pub fn satisfied_by(&self, attrs: &BTreeSet<Attribute>) -> bool {
        match self {
            AccessTree::Leaf(a) => attrs.contains(a),
            _ => {
                let (k, _) = self.gate();
                let sat = self
                    .children()
                    .iter()
                    .filter(|c| c.satisfied_by(attrs))
                    .count();
                sat >= k
            }
        }
    }

    /// All leaf attributes mentioned by the tree (deduplicated).
    pub fn leaves(&self) -> BTreeSet<Attribute> {
        let mut out = BTreeSet::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut BTreeSet<Attribute>) {
        match self {
            AccessTree::Leaf(a) => {
                out.insert(a.clone());
            }
            _ => {
                for c in self.children() {
                    c.collect_leaves(out);
                }
            }
        }
    }

    /// Number of leaf nodes (counting duplicates) — the quantity ABE
    /// encryption cost scales with (Fig. 18a).
    pub fn leaf_count(&self) -> usize {
        match self {
            AccessTree::Leaf(_) => 1,
            _ => self.children().iter().map(|c| c.leaf_count()).sum(),
        }
    }

    /// Compact policy string, for logs and tests.
    pub fn to_policy_string(&self) -> String {
        match self {
            AccessTree::Leaf(a) => a.0.clone(),
            AccessTree::And(c) => {
                let parts: Vec<_> = c.iter().map(|x| x.to_policy_string()).collect();
                format!("({})", parts.join(" and "))
            }
            AccessTree::Or(c) => {
                let parts: Vec<_> = c.iter().map(|x| x.to_policy_string()).collect();
                format!("({})", parts.join(" or "))
            }
            AccessTree::Threshold { k, children } => {
                let parts: Vec<_> = children.iter().map(|x| x.to_policy_string()).collect();
                format!("({k} of [{}])", parts.join(", "))
            }
        }
    }
}

/// Build an attribute set from string tokens.
pub fn attr_set(attrs: &[&str]) -> BTreeSet<Attribute> {
    attrs.iter().map(|a| Attribute::new(*a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §4.4 example policy.
    fn paper_policy() -> AccessTree {
        AccessTree::Or(vec![
            AccessTree::And(vec![
                AccessTree::leaf("role:ue"),
                AccessTree::leaf("supi:460011234"),
            ]),
            AccessTree::And(vec![
                AccessTree::leaf("role:satellite"),
                AccessTree::leaf("qos"),
                AccessTree::leaf("bw>=10g"),
            ]),
        ])
    }

    #[test]
    fn paper_example_satisfaction() {
        let p = paper_policy();
        // The UE itself.
        assert!(p.satisfied_by(&attr_set(&["role:ue", "supi:460011234"])));
        // An authorized satellite.
        assert!(p.satisfied_by(&attr_set(&["role:satellite", "qos", "bw>=10g"])));
        // A satellite without QoS support.
        assert!(!p.satisfied_by(&attr_set(&["role:satellite", "bw>=10g"])));
        // A different UE.
        assert!(!p.satisfied_by(&attr_set(&["role:ue", "supi:999"])));
        // Empty set.
        assert!(!p.satisfied_by(&BTreeSet::new()));
    }

    #[test]
    fn threshold_gate() {
        let t = AccessTree::Threshold {
            k: 2,
            children: vec![
                AccessTree::leaf("a"),
                AccessTree::leaf("b"),
                AccessTree::leaf("c"),
            ],
        };
        assert!(!t.satisfied_by(&attr_set(&["a"])));
        assert!(t.satisfied_by(&attr_set(&["a", "c"])));
        assert!(t.satisfied_by(&attr_set(&["a", "b", "c"])));
        assert_eq!(t.gate(), (2, 3));
    }

    #[test]
    fn leaves_and_counts() {
        let p = paper_policy();
        assert_eq!(p.leaf_count(), 5);
        let leaves = p.leaves();
        assert_eq!(leaves.len(), 5);
        assert!(leaves.contains(&Attribute::new("qos")));
    }

    #[test]
    fn monotonicity_superset_still_satisfies() {
        let p = paper_policy();
        assert!(p.satisfied_by(&attr_set(&[
            "role:satellite",
            "qos",
            "bw>=10g",
            "extra",
            "more-extra"
        ])));
    }

    #[test]
    fn policy_string_readable() {
        let s = paper_policy().to_policy_string();
        assert!(s.contains("role:satellite"), "{s}");
        assert!(s.contains(" or "), "{s}");
    }

    #[test]
    #[should_panic(expected = "AND gate with no children")]
    fn empty_and_panics() {
        AccessTree::And(vec![]).gate();
    }
}
