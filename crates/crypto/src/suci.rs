//! SUCI — Subscription Concealed Identifier (paper footnote 4).
//!
//! "5G has also adopted public-private key cryptography to encrypt user
//! identity (SUCI) in the initial registration to protect user privacy."
//!
//! The UE encrypts its SUPI under the home network's public key before
//! the first over-the-air message, so passive listeners (and fake base
//! stations) never see the permanent identity. We implement the
//! ECIES-like structure over the workspace DH group: an ephemeral key
//! exchange against the home's static public key, then a keyed stream +
//! MAC over the identity — functionally faithful at the simulation's
//! crypto strength.

use crate::dh::DhParams;
use crate::field::{keyed_hash, xor_stream, Fe};

/// The home network's SUCI key pair.
#[derive(Debug, Clone, Copy)]
pub struct SuciHomeKey {
    secret: u64,
    /// Public value distributed in SIM profiles.
    pub public: u64,
    /// The group parameters this key pair lives in.
    pub params: DhParams,
}

impl SuciHomeKey {
    /// Generate from a seed (deterministic for replayable experiments).
    pub fn generate(seed: u64) -> Self {
        let params = DhParams::default();
        let secret = (keyed_hash(seed, b"suci-home-key") % (params.p - 2)).max(2);
        let public = Fe::new(params.g).pow(secret).value();
        Self {
            secret,
            public,
            params,
        }
    }
}

/// A concealed identity, as sent over the air.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suci {
    /// The UE's ephemeral public value.
    pub ephemeral_public: u64,
    /// Encrypted SUPI bytes.
    pub ciphertext: Vec<u8>,
    /// Integrity tag.
    pub mac: u64,
}

/// UE side: conceal a SUPI under the home public key with a fresh
/// ephemeral secret.
pub fn conceal(home_public: u64, params: DhParams, supi: u64, ephemeral: u64) -> Suci {
    let eph_secret = (ephemeral % (params.p - 2)).max(2);
    let eph_public = Fe::new(params.g).pow(eph_secret).value();
    let shared = Fe::new(home_public).pow(eph_secret).value();
    let mut ct = supi.to_le_bytes().to_vec();
    xor_stream(shared, eph_public, &mut ct);
    let mac = keyed_hash(shared, &ct);
    Suci {
        ephemeral_public: eph_public,
        ciphertext: ct,
        mac,
    }
}

/// [`conceal`] with telemetry: counts `crypto.suci.concealments` (one
/// per initial registration — footnote 4's per-C1 public-key cost).
pub fn conceal_obs(
    obs: &sc_obs::Recorder,
    home_public: u64,
    params: DhParams,
    supi: u64,
    ephemeral: u64,
) -> Suci {
    obs.inc("crypto.suci.concealments", 1);
    conceal(home_public, params, supi, ephemeral)
}

/// [`deconceal`] with telemetry: counts `crypto.suci.deconcealments`
/// and `crypto.suci.deconceal_failures`.
pub fn deconceal_obs(obs: &sc_obs::Recorder, home: &SuciHomeKey, suci: &Suci) -> Option<u64> {
    obs.inc("crypto.suci.deconcealments", 1);
    let r = deconceal(home, suci);
    if r.is_none() {
        obs.inc("crypto.suci.deconceal_failures", 1);
    }
    r
}

/// Home side: deconceal. Returns `None` on MAC failure (tampered or
/// encrypted for a different home).
pub fn deconceal(home: &SuciHomeKey, suci: &Suci) -> Option<u64> {
    let shared = Fe::new(suci.ephemeral_public).pow(home.secret).value();
    if keyed_hash(shared, &suci.ciphertext) != suci.mac {
        return None;
    }
    let mut pt = suci.ciphertext.clone();
    xor_stream(shared, suci.ephemeral_public, &mut pt);
    Some(u64::from_le_bytes(pt.try_into().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conceal_deconceal_roundtrip() {
        let home = SuciHomeKey::generate(1);
        let supi = 0x460_0100_1234_5678;
        let suci = conceal(home.public, DhParams::default(), supi, 777);
        assert_eq!(deconceal(&home, &suci), Some(supi));
    }

    #[test]
    fn ciphertext_hides_identity() {
        let home = SuciHomeKey::generate(1);
        let supi = 0x460_0100_1234_5678u64;
        let suci = conceal(home.public, DhParams::default(), supi, 778);
        assert_ne!(suci.ciphertext, supi.to_le_bytes().to_vec());
    }

    #[test]
    fn fresh_ephemerals_unlinkable() {
        // The same SUPI concealed twice looks different on the wire —
        // the unlinkability property SUCI exists for.
        let home = SuciHomeKey::generate(1);
        let supi = 42u64;
        let a = conceal(home.public, DhParams::default(), supi, 1000);
        let b = conceal(home.public, DhParams::default(), supi, 2000);
        assert_ne!(a.ciphertext, b.ciphertext);
        assert_ne!(a.ephemeral_public, b.ephemeral_public);
        assert_eq!(deconceal(&home, &a), Some(supi));
        assert_eq!(deconceal(&home, &b), Some(supi));
    }

    #[test]
    fn wrong_home_cannot_deconceal() {
        let home = SuciHomeKey::generate(1);
        let foreign = SuciHomeKey::generate(2);
        let suci = conceal(home.public, DhParams::default(), 42, 3);
        assert_eq!(deconceal(&foreign, &suci), None);
    }

    #[test]
    fn tampering_detected() {
        let home = SuciHomeKey::generate(1);
        let mut suci = conceal(home.public, DhParams::default(), 42, 4);
        suci.ciphertext[0] ^= 1;
        assert_eq!(deconceal(&home, &suci), None);
    }
}
