//! Property-based tests for the security substrate.

use proptest::prelude::*;
use sc_crypto::abe::AbeSystem;
use sc_crypto::field::{keyed_hash, xor_stream, Fe, P};
use sc_crypto::policy::{attr_set, AccessTree};
use sc_crypto::shamir;
use sc_crypto::statecrypt::HomeCrypto;
use sc_crypto::wire;

proptest! {
    #[test]
    fn field_add_commutes_and_associates(a in 0..P, b in 0..P, c in 0..P) {
        let (a, b, c) = (Fe::new(a), Fe::new(b), Fe::new(c));
        prop_assert_eq!(a.add(b), b.add(a));
        prop_assert_eq!(a.add(b).add(c), a.add(b.add(c)));
    }

    #[test]
    fn field_mul_distributes(a in 0..P, b in 0..P, c in 0..P) {
        let (a, b, c) = (Fe::new(a), Fe::new(b), Fe::new(c));
        prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    }

    #[test]
    fn field_inverse_total_on_nonzero(a in 1..P) {
        let a = Fe::new(a);
        prop_assert_eq!(a.mul(a.inv()), Fe::ONE);
    }

    #[test]
    fn pow_adds_exponents(a in 1..P, e1 in 0u64..1000, e2 in 0u64..1000) {
        let a = Fe::new(a);
        prop_assert_eq!(a.pow(e1).mul(a.pow(e2)), a.pow(e1 + e2));
    }

    #[test]
    fn xor_stream_involutive(key in any::<u64>(), nonce in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut d = data.clone();
        xor_stream(key, nonce, &mut d);
        xor_stream(key, nonce, &mut d);
        prop_assert_eq!(d, data);
    }

    #[test]
    fn keyed_hash_deterministic(key in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(keyed_hash(key, &data), keyed_hash(key, &data));
    }

    #[test]
    fn shamir_k_of_n(secret in 0..P, k in 1usize..6, extra in 0usize..4, seed in any::<u64>()) {
        let n = k + extra;
        let secret = Fe::new(secret);
        let mut s = seed;
        let shares = shamir::split(secret, k, n, || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            Fe::new(s)
        });
        prop_assert_eq!(shamir::reconstruct(&shares[..k]), secret);
        prop_assert_eq!(shamir::reconstruct(&shares), secret);
    }

    #[test]
    fn abe_owner_always_decrypts(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        nattrs in 1usize..6,
        entropy in any::<u64>(),
    ) {
        let (pk, msk) = AbeSystem::setup(99);
        let attrs: Vec<String> = (0..nattrs).map(|i| format!("a{i}")).collect();
        let refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
        let policy = AccessTree::all_of(&refs);
        let sk = AbeSystem::keygen(&msk, &attr_set(&refs));
        let ct = AbeSystem::encrypt(&pk, &payload, &policy, entropy);
        prop_assert_eq!(AbeSystem::decrypt(&ct, &sk).unwrap(), payload);
    }

    #[test]
    fn abe_missing_attribute_always_fails(nattrs in 2usize..6, drop in 0usize..6, entropy in any::<u64>()) {
        let drop = drop % nattrs;
        let (pk, msk) = AbeSystem::setup(99);
        let attrs: Vec<String> = (0..nattrs).map(|i| format!("a{i}")).collect();
        let refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
        let policy = AccessTree::all_of(&refs);
        let partial: Vec<&str> = refs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, s)| *s)
            .collect();
        let sk = AbeSystem::keygen(&msk, &attr_set(&partial));
        let ct = AbeSystem::encrypt(&pk, b"x", &policy, entropy);
        prop_assert!(AbeSystem::decrypt(&ct, &sk).is_err());
    }

    #[test]
    fn wire_roundtrip_arbitrary_states(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        version in any::<u32>(),
        ttl in 0.0f64..1e6,
        entropy in any::<u64>(),
    ) {
        let home = HomeCrypto::setup(5);
        let policy = AccessTree::any_of(&["p", "q", "r"]);
        let st = home.encrypt_state(&payload, &policy, version, ttl, entropy);
        let decoded = wire::decode_state(&wire::encode_state(&st)).unwrap();
        prop_assert_eq!(decoded, st);
    }

    #[test]
    fn wire_rejects_random_bytes(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Random blobs must never decode into a valid state that also
        // verifies (they may occasionally parse structurally; the
        // envelope signature still gates them, so parse-failure here is
        // the common case).
        if let Ok(st) = wire::decode_state(&data) {
            let home = HomeCrypto::setup(5);
            prop_assert!(home.verify_envelope(&st, b"anything").is_err());
        }
    }
}
