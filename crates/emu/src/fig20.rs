//! Figure 20 — signaling migration overhead per satellite and per
//! ground station: five solutions × four constellations × capacities.
//!
//! The headline figure: SpaceCore's satellite bars sit one-to-two orders
//! of magnitude below every baseline, and its ground-station row reads
//! "None" (as does SkyCore's, which pre-stores states — at the cost of
//! the Fig. 19 leakage).

use sc_orbit::ConstellationConfig;
use serde::Serialize;
use spacecore::solutions::{Solution, SolutionKind};

/// Satellite capacities swept.
pub const CAPACITIES: [u32; 4] = [2_000, 10_000, 20_000, 30_000];

/// Gateways per constellation.
pub const GROUND_STATIONS: usize = 30;

#[derive(Debug, Clone, Serialize)]
pub struct Fig20 {
    pub cells: Vec<Cell>,
}

#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    pub constellation: String,
    pub solution: String,
    pub capacity: u32,
    pub sat_msgs_per_s: f64,
    pub gs_msgs_per_s: f64,
    pub state_tx_per_s: f64,
}

/// Run the experiment.
pub fn run() -> Fig20 {
    run_with(crate::engine::thread_count())
}

/// Run with an explicit worker count. Output is identical for every
/// `threads` value; tests diff the JSON against `threads = 1`.
pub fn run_with(threads: usize) -> Fig20 {
    let units: Vec<(ConstellationConfig, SolutionKind)> = ConstellationConfig::all_presets()
        .iter()
        .flat_map(|cfg| SolutionKind::ALL.iter().map(|&kind| (cfg.clone(), kind)))
        .collect();
    let groups = crate::engine::parallel_map_with(threads, units, |(cfg, kind)| {
        let s = Solution::new(kind, cfg.clone());
        CAPACITIES
            .iter()
            .map(|&capacity| Cell {
                constellation: cfg.name.to_string(),
                solution: kind.name().to_string(),
                capacity,
                sat_msgs_per_s: s.sat_msgs_per_s(capacity),
                gs_msgs_per_s: s.ground_msgs_per_s(capacity, GROUND_STATIONS),
                state_tx_per_s: s.state_tx_per_s(capacity),
            })
            .collect::<Vec<_>>()
    });
    Fig20 {
        cells: groups.into_iter().flatten().collect(),
    }
}

/// Look up one cell.
pub fn cell<'a>(r: &'a Fig20, cons: &str, sol: &str, cap: u32) -> &'a Cell {
    r.cells
        .iter()
        .find(|c| c.constellation == cons && c.solution == sol && c.capacity == cap)
        .expect("cell exists")
}

/// Text rendering.
pub fn render(r: &Fig20) -> String {
    let mut t = crate::report::TextTable::new(&[
        "constellation",
        "solution",
        "capacity",
        "sat msg/s",
        "GS msg/s",
        "state tx/s",
    ]);
    for c in &r.cells {
        t.row(vec![
            c.constellation.clone(),
            c.solution.clone(),
            c.capacity.to_string(),
            crate::report::fmt_num(c.sat_msgs_per_s),
            if c.gs_msgs_per_s == 0.0 {
                "None".into()
            } else {
                crate::report::fmt_num(c.gs_msgs_per_s)
            },
            crate::report::fmt_num(c.state_tx_per_s),
        ]);
    }
    format!(
        "Fig. 20 — signaling overhead: 5 solutions × 4 constellations\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cells_present() {
        assert_eq!(run().cells.len(), 4 * 5 * 4);
    }

    #[test]
    fn parallel_json_bit_identical_to_serial() {
        let serial = serde_json::to_string_pretty(&run_with(1)).unwrap();
        for threads in [2, 8] {
            let parallel = serde_json::to_string_pretty(&run_with(threads)).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn spacecore_satellite_load_lowest_everywhere() {
        let r = run();
        for cons in ["Starlink", "Kuiper", "OneWeb", "Iridium"] {
            for cap in CAPACITIES {
                let sc = cell(&r, cons, "SpaceCore", cap).sat_msgs_per_s;
                for sol in ["5G NTN", "SkyCore", "DPCM", "Baoyun"] {
                    let o = cell(&r, cons, sol, cap).sat_msgs_per_s;
                    assert!(o > sc, "{cons}/{sol}/{cap}: {o} vs {sc}");
                }
            }
        }
    }

    #[test]
    fn spacecore_and_skycore_no_gs_load() {
        let r = run();
        for cons in ["Starlink", "Iridium"] {
            for cap in CAPACITIES {
                assert_eq!(cell(&r, cons, "SpaceCore", cap).gs_msgs_per_s, 0.0);
                assert_eq!(cell(&r, cons, "SkyCore", cap).gs_msgs_per_s, 0.0);
                assert!(cell(&r, cons, "5G NTN", cap).gs_msgs_per_s > 0.0);
            }
        }
    }

    #[test]
    fn starlink_30k_reduction_orders_of_magnitude() {
        // Table 4's Starlink row comes from this figure: 122.2× vs 5G
        // NTN, 17.5× vs SkyCore. Require ≥ 10× against 5G NTN and ≥ 5×
        // against every baseline.
        let r = run();
        let sc = cell(&r, "Starlink", "SpaceCore", 30_000).sat_msgs_per_s;
        let ntn = cell(&r, "Starlink", "5G NTN", 30_000).sat_msgs_per_s;
        assert!(ntn / sc > 10.0, "{}", ntn / sc);
        for sol in ["SkyCore", "DPCM", "Baoyun"] {
            let o = cell(&r, "Starlink", sol, 30_000).sat_msgs_per_s;
            assert!(o / sc > 5.0, "{sol}: {}", o / sc);
        }
    }

    #[test]
    fn spacecore_state_tx_zero() {
        let r = run();
        for cap in CAPACITIES {
            assert_eq!(cell(&r, "Starlink", "SpaceCore", cap).state_tx_per_s, 0.0);
            assert!(cell(&r, "Starlink", "Baoyun", cap).state_tx_per_s > 0.0);
        }
    }

    #[test]
    fn render_marks_none_for_spacecore() {
        let txt = render(&run());
        assert!(txt.contains("None"));
    }
}
