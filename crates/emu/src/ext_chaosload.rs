//! Extension experiment: chaos under load — fault-injected million-UE
//! soak with retry budgets, overload shedding, and recovery SLOs.
//!
//! `ext_mload` serves a million UEs on a failure-free sky; this engine
//! drives the same sharded churn through a seeded
//! [`FailureTimeline`]: a serving
//! satellite crashes mid-soak (and its replacement re-crashes
//! mid-recovery), a feeder link flaps, and a loss-burst window opens
//! over the recovery. Every session the crash drops goes through
//! `RecoveryPlan`-costed **stateless local re-establishment** at the
//! replacement satellite (4 messages vs the 13-message home-routed
//! re-registration the legacy design pays), and two robustness
//! mechanisms shape the resulting signaling storm:
//!
//! * **Retry budget** ([`spacecore::recovery::RetryBudget`]) — a
//!   per-cell token bucket with jittered exponential backoff. Admission
//!   is *stateless*: each dropped UE hashes into one of the bucket's
//!   refill slots, so the storm drains at a fixed per-cell rate without
//!   any first-come-first-served state that would couple shards. The
//!   per-cell bucket clocks live in dense cell-indexed Vecs
//!   ([`spacecore::shard::CellStorm`]).
//! * **Overload gate** — while a crashed satellite's footprint is
//!   inside its overload window (crash → recovery + hold), the serving
//!   satellite sheds or defers low-priority signaling: connected-UE
//!   mobility updates and RRC releases are deferred (retried after ≥
//!   one batch window), cell-crossing C4 updates are shed outright.
//!   The saturation signal is derived from the failure timeline, not
//!   from shard-local queue depth — a deliberate choice: queue depth
//!   depends on how cells are grouped into shards, and gating on it
//!   would break the byte-identity contract.
//!
//! Chaos state is replayed **per shard** from the shared timeline (a
//! [`ChaosCursor`](sc_netsim::chaos::ChaosCursor) advanced on the
//! shard's own DES clock, telemetry disabled so counters are not
//! multiplied by shard count — the schedule is emitted once at top
//! level), and burst-loss draws use the keyed hash-stream variant
//! (`burst_loss_keyed`) so loss decisions are a pure function of
//! `(timeline seed, UE, draw#)`. Chaos timestamps are quantized to the
//! integer-µs grid on insert, so a crash landing exactly on a
//! `drain_until` batch boundary is processed on the same tick no matter
//! how wide the batches are — `tests/chaosload_props.rs` asserts batch
//! widths 0.25/0.5/1.0 s produce identical bytes.
//!
//! Recovery SLOs reported per crash: sessions dropped, time to 99 %
//! re-established (exact, from 0.25 s offset slot counts), session
//! survival within the deadline, and the signaling-surge amplitude —
//! peak re-registration rate over the crashed footprint's cells versus
//! those cells' steady-state C1 establishment rate. The acceptance bar
//! (≥ 98 % survival, surge ≤ 3×) is asserted by `bench-report`'s
//! `chaosload` section on the full run.

use crate::churn::{exp_clamped, mix64, ue_unit};
use sc_dataset::population::PopulationModel;
use sc_dataset::workload::WorkloadParams;
use sc_geo::cells::CellGrid;
use sc_netsim::chaos::{ChaosAction, FailureTimeline};
use sc_netsim::des::EventQueue;
use serde::Serialize;
use spacecore::recovery::{RecoveryCosts, RetryBudget};
use spacecore::shard::{
    cell_at, cell_index, CellLedger, CellStorm, ChaosStats, ProcedureCosts, ShardMap, ShardStats,
};

pub use crate::ext_mload::MloadConfig;

/// Default batch window width (= the DES calendar day). The config can
/// narrow it — the batching ≡ interleaving contract only needs
/// `batch_window_s <= MIN_DELAY_S`.
pub const BATCH_WINDOW_S: f64 = 1.0;
/// Minimum follow-up delay: every reaction the engine schedules
/// (retries, backoffs, deferrals, churn follow-ups) is at least one
/// full default batch window in the future. Loss *detection* is
/// likewise quantized up to this (the plan-level 200 ms would land
/// retries inside the window that scheduled them).
pub const MIN_DELAY_S: f64 = BATCH_WINDOW_S;
/// Simulated per-message processing cost, µs (see `ext_mload`).
const PER_MSG_US: f64 = 120.0;
/// Fixed re-registration-rate accounting window, s. Indexed by event
/// time — deliberately independent of `batch_window_s`.
const SLO_WINDOW_S: f64 = 1.0;
/// Resolution of the time-to-re-established slot counts, µs (0.25 s).
const TT_SLOT_US: u64 = 250_000;

/// Microsecond tick of a simulation timestamp (the `CellLedger` grid).
fn tick(t_s: f64) -> u64 {
    (t_s * 1e6).round() as u64
}

/// Engine configuration: the `ext_mload` churn substrate plus the
/// failure scenario and the robustness policies.
#[derive(Debug, Clone)]
pub struct ChaosloadConfig {
    /// Churn substrate (population, shards, windows, seed).
    pub load: MloadConfig,
    /// Satellites covering the grid; [`ShardMap`] doubles as the static
    /// cell → serving-satellite footprint map (independent of the
    /// execution shard count).
    pub sats: usize,
    /// DES drain-batch width, s (≤ [`MIN_DELAY_S`]; test hook — results
    /// are invariant to it).
    pub batch_window_s: f64,
    /// The failure scenario. Node ids `0..sats` are satellites;
    /// [`Self::gateway`] is the feeder-link ground node.
    pub timeline: FailureTimeline,
    /// Re-establishment deadline: a dropped session survives iff it
    /// re-establishes within this many seconds of the crash.
    pub deadline_s: f64,
    /// Retry-budget policy (pacing slots + backoff).
    pub budget: RetryBudget,
    /// Paced admission on/off. `false` is the thundering-herd contrast:
    /// every dropped UE retries right after detection.
    pub paced: bool,
    /// Overload window extension past the satellite's recovery, s.
    pub overload_hold_s: f64,
}

impl ChaosloadConfig {
    /// The million-UE chaos soak the acceptance figures come from:
    /// satellite 11 crashes at t = 60 s under load, its replacement
    /// re-crashes at t = 63.5 s (mid-recovery), a feeder link flaps
    /// over [90, 93) s, and a 20 % loss burst covers [60, 70) s.
    pub fn full() -> Self {
        let sats = 24;
        let sat = 5;
        let flap_sat = 20;
        let timeline = FailureTimeline::none()
            .crash(60_000.0, sat)
            .recover(62_000.0, sat)
            .crash(63_500.0, sat)
            .recover(65_500.0, sat)
            .link_flap(90_000.0, 93_000.0, flap_sat, sats)
            .loss_burst(60_000.0, 70_000.0, 0.2)
            .with_seed(0xC4A0_5EED);
        Self {
            load: MloadConfig::full(),
            sats,
            batch_window_s: BATCH_WINDOW_S,
            timeline,
            deadline_s: 20.0,
            // 160 slots × 0.1 s spread the 14 k-session storm over
            // 16 s — the last first-attempt lands ~3 s inside the 20 s
            // deadline, and the paced rate stays well under 3× the
            // footprint's steady C1 rate.
            budget: RetryBudget {
                tokens: 160,
                ..RetryBudget::paper_defaults()
            },
            paced: true,
            overload_hold_s: 4.0,
        }
    }

    /// Bounded smoke variant for tier-1 byte-stability checks: same
    /// scenario shape (crash + mid-recovery re-crash + flap + burst) on
    /// the 20 k-UE smoke churn.
    pub fn smoke() -> Self {
        let sats = 24;
        let sat = 5;
        let flap_sat = 20;
        let timeline = FailureTimeline::none()
            .crash(10_000.0, sat)
            .recover(12_000.0, sat)
            .crash(12_500.0, sat)
            .recover(14_000.0, sat)
            .link_flap(18_000.0, 19_500.0, flap_sat, sats)
            .loss_burst(10_000.0, 14_000.0, 0.2)
            .with_seed(0xC4A0_5EED);
        Self {
            load: MloadConfig::smoke(),
            sats,
            timeline,
            deadline_s: 12.0,
            budget: RetryBudget {
                tokens: 96,
                ..RetryBudget::paper_defaults()
            },
            ..Self::full()
        }
    }

    /// The feeder-link ground node id (satellites are `0..sats`).
    pub fn gateway(&self) -> usize {
        self.sats
    }
}

/// One crash in the scenario, resolved from the timeline: when, which
/// satellite, and its footprint (the overload window it opens lives in
/// the matching [`StormWin`]).
#[derive(Debug, Clone)]
struct CrashMeta {
    ev_idx: usize,
    t_s: f64,
    sat: usize,
    cells: std::ops::Range<usize>,
}

/// An overload window bound to the timeline event that opens it: a
/// crash (footprint overloaded until recovery + hold) or a feeder-link
/// drop (the cut-off satellite defers non-essential signaling until
/// realignment + hold — sessions stay up, the control plane backs off).
#[derive(Debug, Clone)]
struct StormWin {
    ev_idx: usize,
    cells: std::ops::Range<usize>,
    until_s: f64,
}

/// Resolve crash metadata, the overload windows, and the storm-cell
/// membership mask — pure functions of the config, computed identically
/// for every shard.
fn scenario_metas(
    cfg: &ChaosloadConfig,
    coverage: &ShardMap,
    horizon: f64,
) -> (Vec<CrashMeta>, Vec<bool>, Vec<StormWin>) {
    let events = cfg.timeline.events();
    let mut metas = Vec::new();
    let mut storms = Vec::new();
    let mut in_storm = vec![false; coverage.cells()];
    for (k, e) in events.iter().enumerate() {
        if e.time_ms / 1000.0 >= horizon {
            continue;
        }
        match e.action {
            ChaosAction::Crash(sat) if sat < cfg.sats => {
                let recover_s = events[k + 1..]
                    .iter()
                    .find(|r| r.action == ChaosAction::Recover(sat))
                    .map_or(horizon, |r| r.time_ms / 1000.0);
                let cells = coverage.range(sat);
                for c in cells.clone() {
                    in_storm[c] = true;
                }
                storms.push(StormWin {
                    ev_idx: k,
                    cells: cells.clone(),
                    until_s: recover_s + cfg.overload_hold_s,
                });
                metas.push(CrashMeta {
                    ev_idx: k,
                    t_s: e.time_ms / 1000.0,
                    sat,
                    cells,
                });
            }
            ChaosAction::LinkDown(a, b) => {
                let sat = if a < cfg.sats { a } else { b };
                if sat >= cfg.sats {
                    continue;
                }
                let up_s = events[k + 1..]
                    .iter()
                    .find(|r| r.action == ChaosAction::LinkUp(a, b))
                    .map_or(horizon, |r| r.time_ms / 1000.0);
                storms.push(StormWin {
                    ev_idx: k,
                    cells: coverage.range(sat),
                    until_s: up_s + cfg.overload_hold_s,
                });
            }
            _ => {}
        }
    }
    (metas, in_storm, storms)
}

/// Connection state of one UE under chaos.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Link {
    Idle,
    Connected,
    /// Between a drop (or a blocked fresh establishment) and the
    /// re-establishment that resolves it.
    Reattaching,
}

/// One UE's churn + recovery state inside its shard.
struct Ue {
    id: u32,
    cell: u32,
    state: Link,
    /// Session generation: bumped on every drop/teardown so stale
    /// `Release`/`Reattach` events from a previous session are ignored.
    gen: u32,
    /// Attempts made in the current re-establishment chain.
    attempt: u32,
    /// Crash row this recovery belongs to (−1: blocked fresh
    /// establishment, not a dropped session).
    crash_id: i32,
    /// µs tick of the drop, for time-to-re-established offsets.
    drop_us: u64,
    /// Draws consumed from this UE's hash stream (see `churn`).
    draws: u32,
}

impl Ue {
    fn draw(&mut self, seed: u64) -> f64 {
        let u = ue_unit(seed, self.id, self.draws);
        self.draws += 1;
        u
    }
}

/// Churn + chaos events; UE payloads are shard-local indices.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Arrive(u32),
    Release { ue: u32, gen: u32 },
    Sweep(u32),
    Cross(u32),
    Reattach { ue: u32, gen: u32 },
    /// Index into the timeline's event list; scheduled before any UE
    /// event so same-tick ties resolve chaos-first in every shard.
    Chaos(u32),
}

/// Per-crash recovery accounting: additive counts plus the
/// time-to-re-established slot histogram (0.25 s resolution).
#[derive(Debug, Clone)]
struct CrashTrack {
    dropped: u64,
    reattached: u64,
    survived: u64,
    late: u64,
    lost: u64,
    pending: u64,
    /// `slots[i]` = sessions re-established with offset in
    /// `[i·0.25 s, (i+1)·0.25 s)`; the last slot collects ≥ deadline.
    slots: Vec<u64>,
}

impl CrashTrack {
    fn new(in_slots: usize) -> Self {
        Self {
            dropped: 0,
            reattached: 0,
            survived: 0,
            late: 0,
            lost: 0,
            pending: 0,
            slots: vec![0; in_slots + 1],
        }
    }

    fn absorb(&mut self, o: &CrashTrack) {
        self.dropped += o.dropped;
        self.reattached += o.reattached;
        self.survived += o.survived;
        self.late += o.late;
        self.lost += o.lost;
        self.pending += o.pending;
        for (a, b) in self.slots.iter_mut().zip(o.slots.iter()) {
            *a += b;
        }
    }

    /// Exact time to 99 % re-established: the first slot boundary by
    /// which ≥ ⌈0.99 · dropped⌉ sessions were back, `None` if 99 % was
    /// never reached within the deadline.
    fn tt99_s(&self) -> Option<f64> {
        if self.dropped == 0 {
            return None;
        }
        let target = (self.dropped * 99).div_ceil(100);
        let mut cum = 0u64;
        for (i, &n) in self.slots[..self.slots.len() - 1].iter().enumerate() {
            cum += n;
            if cum >= target {
                return Some((i + 1) as f64 * (TT_SLOT_US as f64 * 1e-6));
            }
        }
        None
    }
}

/// Everything one shard returns: additive tallies, mergeable
/// histograms, per-crash tracks, and the per-second window counts.
struct ShardOut {
    stats: ShardStats,
    cstats: ChaosStats,
    events_total: u64,
    events_measured: u64,
    busy_us: u64,
    cell_active_end: Vec<u32>,
    step_hist: sc_obs::Histogram,
    reattach_hist: sc_obs::Histogram,
    crash_rows: Vec<CrashTrack>,
    /// Establishments per SLO window, storm cells only.
    est_storm_win: Vec<u64>,
    /// Re-registration signaling per SLO window, storm cells only
    /// (establishments + re-establishment attempts).
    rereg_storm_win: Vec<u64>,
    reattaching_at_horizon: u64,
}

/// Draw the per-event cost jitter and, for measured events with
/// SpaceCore-side work, record the processing cost (integer µs) —
/// the `ext_mload` convention, on the `emu.chaosload.*` series.
fn observe_cost(
    seed: u64,
    ue: &mut Ue,
    msgs: u32,
    measured: bool,
    hist: &mut sc_obs::Histogram,
    rec: &sc_obs::Recorder,
) {
    let u = ue.draw(seed);
    if measured && msgs > 0 {
        let cost_us = (msgs as f64 * PER_MSG_US * (0.75 + 0.5 * u)).round();
        hist.observe(cost_us);
        rec.observe("emu.chaosload.step_us", cost_us);
    }
}

/// Immutable per-run context shared (by reference) with every shard
/// worker: the config, the static maps, the cost models, and the
/// precomputed chaos scenario.
#[derive(Clone, Copy)]
struct ShardCtx<'a> {
    cfg: &'a ChaosloadConfig,
    grid: &'a CellGrid,
    coverage: &'a ShardMap,
    costs: &'a ProcedureCosts,
    rcosts: &'a RecoveryCosts,
    metas: &'a [CrashMeta],
    in_storm: &'a [bool],
    storms: &'a [StormWin],
}

#[allow(clippy::too_many_lines)]
fn run_shard(ctx: ShardCtx<'_>, mut ues: Vec<Ue>, rec: &sc_obs::Recorder) -> ShardOut {
    let ShardCtx { cfg, grid, coverage, costs, rcosts, metas, in_storm, storms } = ctx;
    let params = WorkloadParams::paper_defaults();
    let seed = cfg.load.seed;
    let horizon = cfg.load.warmup_s + cfg.load.measure_s;
    let gateway = cfg.gateway();
    let deadline_us = (cfg.deadline_s * 1e6).round() as u64;
    debug_assert_eq!(deadline_us % TT_SLOT_US, 0, "deadline must sit on the slot grid");
    let in_slots = (deadline_us / TT_SLOT_US) as usize;
    let windows_1s = (horizon / SLO_WINDOW_S).ceil() as usize;
    let win_of = |t: f64| ((t / SLO_WINDOW_S) as usize).min(windows_1s.saturating_sub(1));

    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut ledger = CellLedger::new(grid.cell_count(), cfg.load.warmup_s, horizon);
    let mut storm = CellStorm::new(grid.cell_count());
    // Per-shard replay cursor over the shared timeline. Telemetry is
    // disabled here: shards would multiply the schedule counters by the
    // shard count; `run_config_with` emits the schedule once, serially.
    let mut cursor = cfg.timeline.cursor();
    let quiet = sc_obs::Recorder::disabled();
    let mut stats = ShardStats::default();
    let mut cstats = ChaosStats::default();
    let mut step_hist = sc_obs::Histogram::new();
    let mut reattach_hist = sc_obs::Histogram::new();
    let mut crash_rows: Vec<CrashTrack> = metas.iter().map(|_| CrashTrack::new(in_slots)).collect();
    let mut est_storm_win = vec![0u64; windows_1s];
    let mut rereg_storm_win = vec![0u64; windows_1s];
    // Storm-gate activity per 1 s window: signaling the overload gate
    // (or an outage) deferred into the paced lane, and C4 updates it
    // shed outright. Dense window-indexed Vecs like the storm windows
    // above — emitted as shard-additive counter series at shard end.
    let mut gate_deferred_win = vec![0u64; windows_1s];
    let mut gate_shed_win = vec![0u64; windows_1s];
    let mut events_total = 0u64;
    let mut events_measured = 0u64;

    // Chaos markers first (smallest sequence numbers in *every* shard,
    // so same-tick ties against UE events resolve identically), then
    // the initial churn schedule in local UE order, as in `ext_mload`.
    for (k, e) in cfg.timeline.events().iter().enumerate() {
        q.schedule(e.time_ms / 1000.0, Ev::Chaos(k as u32));
    }
    for (i, ue) in ues.iter_mut().enumerate() {
        let i = i as u32;
        let u = ue.draw(seed);
        q.schedule(exp_clamped(params.session_interarrival_s, u, MIN_DELAY_S), Ev::Arrive(i));
        let u = ue.draw(seed);
        q.schedule(u * params.transit_s, Ev::Sweep(i));
        let u = ue.draw(seed);
        q.schedule(exp_clamped(cfg.load.crossing_interval_s, u, MIN_DELAY_S), Ev::Cross(i));
    }

    // Is the serving satellite of `cell` unreachable right now (dead or
    // feeder link down)? Burst loss is drawn separately, per attempt.
    let service_down = |cursor: &sc_netsim::chaos::ChaosCursor<'_>, cell: usize| {
        let sat = coverage.shard_of(cell);
        cursor.is_dead(sat) || cursor.link_down(sat, gateway)
    };

    let windows = (horizon / cfg.batch_window_s).ceil() as u64;
    let mut batch = Vec::new();
    for w in 0..windows {
        let end = ((w + 1) as f64 * cfg.batch_window_s).min(horizon);
        q.drain_until(end, &mut batch);
        for ev in &batch {
            let t = ev.time;
            let measured = t >= cfg.load.warmup_s;
            // Chaos markers are replayed in *every* shard; they are
            // schedule bookkeeping, not workload, so they stay out of
            // the (shard-additive) event tallies.
            if !matches!(ev.event, Ev::Chaos(_)) {
                events_total += 1;
                if measured {
                    events_measured += 1;
                }
            }
            cursor.advance_to(t * 1000.0, &quiet);
            match ev.event {
                Ev::Arrive(i) => {
                    let ue = &mut ues[i as usize];
                    let u = ue.draw(seed);
                    let next = t + exp_clamped(params.session_interarrival_s, u, MIN_DELAY_S);
                    match ue.state {
                        // Data rides the existing bearer — or, while
                        // re-establishing, the arrival piggybacks on
                        // the recovery exchange already in flight.
                        Link::Connected | Link::Reattaching => {
                            if measured {
                                stats.bill_arrival(costs, true);
                            }
                        }
                        Link::Idle => {
                            let cell = ue.cell as usize;
                            let down = service_down(&cursor, cell);
                            // Admission control: an alive-but-storming
                            // satellite broadcasts access-class barring,
                            // so new-session requests are never even
                            // transmitted — recovery traffic keeps the
                            // bucket's full token rate.
                            let barred = !down && storm.overloaded(cell, tick(t));
                            let mut blocked = down || barred;
                            if !blocked && cursor.in_burst() {
                                let lost =
                                    cursor.burst_loss_keyed(ue.id as u64, ue.draws as u64, &quiet);
                                ue.draws += 1;
                                if lost {
                                    blocked = true;
                                    if measured {
                                        cstats.burst_losses += 1;
                                    }
                                }
                            }
                            if blocked {
                                // Admission is deferred into the paced
                                // half-rate lane of the bucket (no
                                // session to lose yet, so no crash row).
                                ue.state = Link::Reattaching;
                                ue.gen += 1;
                                ue.attempt = 1;
                                ue.crash_id = -1;
                                ue.drop_us = 0;
                                if measured {
                                    stats.arrivals += 1;
                                    cstats.deferred_establishments += 1;
                                    gate_deferred_win[win_of(t)] += 1;
                                    // Only a burst-lost setup actually
                                    // transmitted to a live satellite;
                                    // barred UEs stay silent and against
                                    // a dead one there is no cell to
                                    // signal to — no surge counted.
                                    if in_storm[cell] && !down && !barred {
                                        rereg_storm_win[win_of(t)] += 1;
                                    }
                                }
                                let u = ue.draw(seed);
                                let delay = if cfg.paced {
                                    let slot = cfg.budget.slot(mix64(
                                        seed ^ mix64(((ue.id as u64) << 16) | 0xFF00 | 1),
                                    ));
                                    cfg.budget.admission_attempt_s(slot, u).max(MIN_DELAY_S)
                                } else {
                                    cfg.budget.backoff_s(1, u).max(MIN_DELAY_S)
                                };
                                q.schedule(t + delay, Ev::Reattach { ue: i, gen: ue.gen });
                            } else {
                                let u = ue.draw(seed);
                                let hold = params.inactivity_release_s - 2.5 + 5.0 * u; // U(10, 15)
                                ue.state = Link::Connected;
                                ledger.connect(cell, t);
                                q.schedule(t + hold, Ev::Release { ue: i, gen: ue.gen });
                                let msgs = if measured {
                                    rec.observe(
                                        "emu.chaosload.session_hold_ms",
                                        (hold * 1000.0).round(),
                                    );
                                    if in_storm[cell] {
                                        est_storm_win[win_of(t)] += 1;
                                        rereg_storm_win[win_of(t)] += 1;
                                    }
                                    stats.bill_arrival(costs, false)
                                } else {
                                    costs.local_establishment
                                };
                                observe_cost(seed, &mut ues[i as usize], msgs, measured, &mut step_hist, rec);
                            }
                        }
                    }
                    q.schedule(next, Ev::Arrive(i));
                }
                Ev::Release { ue: i, gen } => {
                    let ue = &mut ues[i as usize];
                    if ue.gen != gen || ue.state != Link::Connected {
                        // Stale: the session this release belonged to
                        // was dropped by a crash (no draws consumed —
                        // stale events are invisible to the streams).
                        continue;
                    }
                    let cell = ue.cell as usize;
                    if storm.overloaded(cell, tick(t)) {
                        // Overload gate: the release is low-priority
                        // signaling — defer it past the storm.
                        if measured {
                            cstats.deferred_releases += 1;
                            gate_deferred_win[win_of(t)] += 1;
                        }
                        let u = ue.draw(seed);
                        q.schedule(t + MIN_DELAY_S + u, Ev::Release { ue: i, gen });
                    } else {
                        ue.state = Link::Idle;
                        ledger.release(cell, t);
                        let msgs = if measured {
                            stats.bill_release(costs)
                        } else {
                            costs.release
                        };
                        observe_cost(seed, &mut ues[i as usize], msgs, measured, &mut step_hist, rec);
                    }
                }
                Ev::Sweep(i) => {
                    let ue = &mut ues[i as usize];
                    let u = ue.draw(seed);
                    let next = (t + params.transit_s * (0.75 + 0.5 * u)).max(t + MIN_DELAY_S);
                    if ue.state == Link::Connected {
                        let cell = ue.cell as usize;
                        if storm.overloaded(cell, tick(t)) {
                            // Defer the handover signaling, not the
                            // satellite: retry shortly, the normal
                            // sweep cadence resumes once it lands.
                            if measured {
                                cstats.deferred_handovers += 1;
                                gate_deferred_win[win_of(t)] += 1;
                            }
                            let u = ue.draw(seed);
                            q.schedule(t + MIN_DELAY_S + u, Ev::Sweep(i));
                        } else {
                            let msgs = if measured {
                                stats.bill_sweep(costs, true)
                            } else {
                                costs.local_handover
                            };
                            observe_cost(seed, &mut ues[i as usize], msgs, measured, &mut step_hist, rec);
                            q.schedule(next, Ev::Sweep(i));
                        }
                    } else {
                        if measured {
                            stats.bill_sweep(costs, false);
                        }
                        q.schedule(next, Ev::Sweep(i));
                    }
                }
                Ev::Cross(i) => {
                    let ue = &mut ues[i as usize];
                    let u = ue.draw(seed);
                    let dir = ((u * 4.0) as usize).min(3);
                    let old = cell_at(grid, ue.cell as usize);
                    let new_idx = cell_index(grid, grid.neighbors(old)[dir]);
                    if ue.state == Link::Connected {
                        ledger.move_session(ue.cell as usize, new_idx);
                    }
                    ue.cell = new_idx as u32;
                    if storm.overloaded(new_idx, tick(t)) {
                        // Shed: the destination satellite is storming;
                        // the C4 update is dropped outright (the cell
                        // record is eventually consistent). Cost jitter
                        // still draws so the stream stays aligned.
                        if measured {
                            cstats.shed_crossings += 1;
                            gate_shed_win[win_of(t)] += 1;
                        }
                        observe_cost(seed, &mut ues[i as usize], 0, measured, &mut step_hist, rec);
                    } else {
                        let msgs = if measured {
                            stats.bill_crossing(costs)
                        } else {
                            costs.cell_crossing
                        };
                        observe_cost(seed, &mut ues[i as usize], msgs, measured, &mut step_hist, rec);
                    }
                    let ue = &mut ues[i as usize];
                    let u = ue.draw(seed);
                    q.schedule(t + exp_clamped(cfg.load.crossing_interval_s, u, MIN_DELAY_S), Ev::Cross(i));
                }
                Ev::Reattach { ue: i, gen } => {
                    let ue = &mut ues[i as usize];
                    if ue.gen != gen || ue.state != Link::Reattaching {
                        continue; // stale chain
                    }
                    let cell = ue.cell as usize;
                    let down = service_down(&cursor, cell);
                    if ue.crash_id < 0 && !down && storm.overloaded(cell, tick(t)) {
                        // Fresh admission still barred by the overload
                        // broadcast: stay silent, re-enter the
                        // half-rate admission lane.
                        if measured {
                            cstats.deferred_establishments += 1;
                            gate_deferred_win[win_of(t)] += 1;
                        }
                        if ue.attempt >= cfg.budget.max_attempts {
                            if measured {
                                cstats.budget_exhausted += 1;
                            }
                            ue.state = Link::Idle;
                            ue.gen += 1;
                            ue.attempt = 0;
                        } else {
                            ue.attempt += 1;
                            let u = ue.draw(seed);
                            let delay = if cfg.paced {
                                let slot = cfg.budget.slot(mix64(
                                    seed ^ mix64(((ue.id as u64) << 16) | 0xFF00 | ue.attempt as u64),
                                ));
                                cfg.budget.admission_attempt_s(slot, u).max(MIN_DELAY_S)
                            } else {
                                cfg.budget.backoff_s(ue.attempt, u).max(MIN_DELAY_S)
                            };
                            q.schedule(t + delay, Ev::Reattach { ue: i, gen });
                        }
                        continue;
                    }
                    let mut failed = down;
                    if !failed && cursor.in_burst() {
                        let lost = cursor.burst_loss_keyed(ue.id as u64, ue.draws as u64, &quiet);
                        ue.draws += 1;
                        if lost {
                            failed = true;
                            if measured {
                                cstats.burst_losses += 1;
                            }
                        }
                    }
                    // Surge accounting: an attempt is signaling load on
                    // the satellite only if a live satellite saw it —
                    // against a dead one there is no cell to reach, the
                    // UE just keeps scanning.
                    if measured && in_storm[cell] && !down {
                        rereg_storm_win[win_of(t)] += 1;
                    }
                    if failed {
                        if measured {
                            cstats.bill_attempt_failure(rcosts);
                        }
                        if ue.attempt >= cfg.budget.max_attempts {
                            // Budget exhausted: give the session up.
                            if measured {
                                cstats.budget_exhausted += 1;
                                if ue.crash_id >= 0 {
                                    crash_rows[ue.crash_id as usize].lost += 1;
                                }
                            }
                            ue.state = Link::Idle;
                            ue.gen += 1;
                            ue.crash_id = -1;
                            ue.attempt = 0;
                        } else {
                            ue.attempt += 1;
                            let u = ue.draw(seed);
                            // Recovery chains back off exponentially
                            // (deadline-bound); fresh-admission chains
                            // re-enter the paced admission lane.
                            let delay = if ue.crash_id >= 0 || !cfg.paced {
                                cfg.budget.backoff_s(ue.attempt, u).max(MIN_DELAY_S)
                            } else {
                                let slot = cfg.budget.slot(mix64(
                                    seed ^ mix64(((ue.id as u64) << 16) | 0xFF00 | ue.attempt as u64),
                                ));
                                cfg.budget.admission_attempt_s(slot, u).max(MIN_DELAY_S)
                            };
                            q.schedule(t + delay, Ev::Reattach { ue: i, gen });
                        }
                    } else {
                        // Stateless local re-establishment at the
                        // replacement satellite (4 msgs vs legacy 13).
                        ue.state = Link::Connected;
                        ledger.connect(cell, t);
                        let msgs;
                        if ue.crash_id >= 0 {
                            msgs = if measured {
                                cstats.bill_reattach(rcosts)
                            } else {
                                rcosts.local_messages
                            };
                            if measured {
                                let row = &mut crash_rows[ue.crash_id as usize];
                                row.reattached += 1;
                                let off_us = tick(t) - ue.drop_us;
                                let slot = ((off_us / TT_SLOT_US) as usize).min(in_slots);
                                row.slots[slot] += 1;
                                if slot < in_slots {
                                    row.survived += 1;
                                } else {
                                    row.late += 1;
                                }
                                let off_ms = (off_us as f64 / 1000.0).round();
                                reattach_hist.observe(off_ms);
                                rec.observe("emu.chaosload.reattach_ms", off_ms);
                            }
                        } else {
                            // A deferred fresh establishment landing.
                            msgs = costs.local_establishment;
                            if measured {
                                stats.establishments += 1;
                                stats.spacecore_msgs += costs.local_establishment as u64;
                                stats.legacy_msgs += costs.legacy_establishment as u64;
                                if in_storm[cell] {
                                    est_storm_win[win_of(t)] += 1;
                                }
                            }
                        }
                        ue.crash_id = -1;
                        ue.attempt = 0;
                        let u = ue.draw(seed);
                        let hold = params.inactivity_release_s - 2.5 + 5.0 * u;
                        q.schedule(t + hold, Ev::Release { ue: i, gen });
                        observe_cost(seed, &mut ues[i as usize], msgs, measured, &mut step_hist, rec);
                    }
                }
                Ev::Chaos(k) => {
                    let k = k as usize;
                    let chaos_ev = &cfg.timeline.events()[k];
                    // Apply through the event's *exact* quantized
                    // timestamp: the s → ms roundtrip above can land
                    // one ulp short of it.
                    cursor.advance_to(chaos_ev.time_ms, &quiet);
                    let now_us = tick(t);
                    // Open any overload window this event starts (crash
                    // footprints and feeder-cut footprints alike).
                    for sw in storms.iter().filter(|s| s.ev_idx == k) {
                        storm.open(sw.cells.clone(), now_us, tick(sw.until_s));
                    }
                    let Some(row) = metas.iter().position(|m| m.ev_idx == k) else {
                        continue; // recover/link/burst/flap: no drops
                    };
                    let meta = &metas[row];
                    // Drop every connected session in the footprint and
                    // pace its re-establishment through the budget.
                    for (j, ue) in ues.iter_mut().enumerate() {
                        let cell = ue.cell as usize;
                        if ue.state != Link::Connected || !meta.cells.contains(&cell) {
                            continue;
                        }
                        ue.state = Link::Reattaching;
                        ue.gen += 1; // invalidates the pending Release
                        ue.attempt = 1;
                        ue.crash_id = row as i32;
                        ue.drop_us = now_us;
                        ledger.release(cell, t);
                        if measured {
                            cstats.dropped += 1;
                            crash_rows[row].dropped += 1;
                        }
                        let u = ue.draw(seed);
                        let first = if cfg.paced {
                            let slot = cfg
                                .budget
                                .slot(mix64(seed ^ mix64(((ue.id as u64) << 8) | row as u64)));
                            cfg.budget.first_attempt_s(slot, u)
                        } else {
                            // Thundering herd: everyone storms the
                            // replacement right after detection.
                            cfg.budget.detect_s + 0.2 * u
                        };
                        q.schedule(t + first, Ev::Reattach { ue: j as u32, gen: ue.gen });
                    }
                }
            }
        }
    }
    ledger.finish();

    let reattaching_at_horizon = ues.iter().filter(|u| u.state == Link::Reattaching).count() as u64;
    for ue in &ues {
        if ue.state == Link::Reattaching && ue.crash_id >= 0 {
            crash_rows[ue.crash_id as usize].pending += 1;
        }
    }

    // Shard telemetry: counters, integer-valued histograms, and counter
    // series only (all shard-additive; see the `ext_mload` policy note).
    // SLO_WINDOW_S equals the series window (1.0 s), so the window
    // index maps one-to-one onto the series tick grid.
    for (w, &v) in gate_deferred_win.iter().enumerate() {
        if v > 0 {
            rec.series_inc_tick(
                "emu.chaosload.gate_deferred_per_s",
                w as u64 * sc_obs::WINDOW_TICKS,
                v,
            );
        }
    }
    for (w, &v) in gate_shed_win.iter().enumerate() {
        if v > 0 {
            rec.series_inc_tick(
                "emu.chaosload.gate_shed_per_s",
                w as u64 * sc_obs::WINDOW_TICKS,
                v,
            );
        }
    }
    rec.inc("emu.chaosload.events", events_total);
    rec.inc("emu.chaosload.arrivals", stats.arrivals);
    rec.inc("emu.chaosload.establishments", stats.establishments);
    rec.inc("emu.chaosload.piggybacked", stats.piggybacked);
    rec.inc("emu.chaosload.releases", stats.releases);
    rec.inc("emu.chaosload.handovers_local", stats.local_handovers);
    rec.inc("emu.chaosload.sweeps_idle", stats.idle_sweeps);
    rec.inc("emu.chaosload.cell_crossings", stats.cell_crossings);
    rec.inc("emu.chaosload.msgs_spacecore", stats.spacecore_msgs + cstats.spacecore_msgs);
    rec.inc("emu.chaosload.msgs_legacy", stats.legacy_msgs + cstats.legacy_msgs);
    rec.inc("emu.chaosload.dropped", cstats.dropped);
    rec.inc("emu.chaosload.reattach_attempts", cstats.reattach_attempts);
    rec.inc("emu.chaosload.reattach_failures", cstats.reattach_failures);
    rec.inc("emu.chaosload.reattached", cstats.reattached);
    rec.inc("emu.chaosload.budget_exhausted", cstats.budget_exhausted);
    rec.inc("emu.chaosload.deferred_handovers", cstats.deferred_handovers);
    rec.inc("emu.chaosload.deferred_releases", cstats.deferred_releases);
    rec.inc("emu.chaosload.shed_crossings", cstats.shed_crossings);
    rec.inc("emu.chaosload.deferred_establishments", cstats.deferred_establishments);
    rec.inc("emu.chaosload.burst_losses", cstats.burst_losses);

    ShardOut {
        stats,
        cstats,
        events_total,
        events_measured,
        busy_us: ledger.busy_us(),
        cell_active_end: ledger.cell_active().to_vec(),
        step_hist,
        reattach_hist,
        crash_rows,
        est_storm_win,
        rereg_storm_win,
        reattaching_at_horizon,
    }
}

/// Result of one run — deterministic in the config, invariant to
/// thread and shard counts (`tests/chaosload_props.rs`).
#[derive(Debug, Clone, Serialize)]
pub struct ExtChaosload {
    pub total_ues: usize,
    pub cells: usize,
    pub sats: usize,
    pub warmup_s: f64,
    pub measure_s: f64,
    pub deadline_s: f64,
    pub paced: bool,
    pub events_total: u64,
    pub events_measured: u64,
    pub mean_active_sessions: f64,
    pub arrivals: u64,
    pub establishments: u64,
    pub piggybacked_arrivals: u64,
    pub releases: u64,
    pub local_handovers: u64,
    pub idle_sweeps: u64,
    pub cell_crossings: u64,
    /// Churn + recovery signaling, both designs.
    pub spacecore_msgs: u64,
    pub legacy_msgs: u64,
    pub signaling_reduction: f64,
    // Robustness:
    pub sessions_dropped: u64,
    pub reattach_attempts: u64,
    pub reattach_failures: u64,
    pub sessions_reestablished: u64,
    pub sessions_survived: u64,
    pub sessions_late: u64,
    pub sessions_lost: u64,
    pub reattaching_at_horizon: u64,
    /// `sessions_survived / sessions_dropped` — the acceptance metric.
    pub session_survival: f64,
    pub budget_exhausted: u64,
    pub deferred_handovers: u64,
    pub deferred_releases: u64,
    pub shed_crossings: u64,
    pub deferred_establishments: u64,
    pub burst_losses: u64,
    /// Mean C1 establishments/s over the crashed footprint's cells,
    /// pre-crash measured windows.
    pub steady_c1_per_s: f64,
    /// Peak re-registration signaling/s over those cells, any measured
    /// window.
    pub peak_rereg_per_s: f64,
    /// `peak_rereg_per_s / steady_c1_per_s` — must stay ≤ 3 with the
    /// retry budget on.
    pub surge_amplitude: f64,
    pub p99_step_cost_ms: Option<f64>,
    pub reattach_ms_p50: Option<f64>,
    pub reattach_ms_p99: Option<f64>,
    pub crashes: Vec<CrashRow>,
    /// Re-registration signaling per 1 s window over the storm cells —
    /// the folded source of `peak_rereg_per_s` and the
    /// `emu.chaosload.rereg_storm_per_s` telemetry series; the storm's
    /// time axis in the results JSON. `bench-report` reads it
    /// in-process for the surge-per-window summary.
    pub rereg_storm_win: Vec<u64>,
}

/// Per-crash recovery SLO row.
#[derive(Debug, Clone, Serialize)]
pub struct CrashRow {
    pub t_s: f64,
    pub satellite: usize,
    pub footprint_cells: usize,
    pub dropped: u64,
    pub reestablished: u64,
    pub survived: u64,
    pub late: u64,
    pub lost: u64,
    pub pending: u64,
    /// Time to 99 % re-established, s (`None`: not reached within the
    /// deadline).
    pub tt99_s: Option<f64>,
}

/// Run with the default worker count, telemetry off.
pub fn run() -> ExtChaosload {
    run_config_with(
        crate::engine::thread_count(),
        &sc_obs::Recorder::disabled(),
        &ChaosloadConfig::full(),
    )
}

/// Full config with telemetry (the `ext_chaosload` binary's default).
pub fn run_obs(obs: &sc_obs::Recorder) -> ExtChaosload {
    run_config_with(crate::engine::thread_count(), obs, &ChaosloadConfig::full())
}

/// Smoke config with telemetry (the `--smoke` tier-1 mode).
pub fn run_smoke_obs(obs: &sc_obs::Recorder) -> ExtChaosload {
    run_config_with(crate::engine::thread_count(), obs, &ChaosloadConfig::smoke())
}

/// The engine proper: explicit worker count and config.
pub fn run_config_with(threads: usize, obs: &sc_obs::Recorder, cfg: &ChaosloadConfig) -> ExtChaosload {
    assert!(
        cfg.batch_window_s > 0.0 && cfg.batch_window_s <= MIN_DELAY_S,
        "batch window must not exceed the minimum follow-up delay"
    );
    let grid = CellGrid::new(53f64.to_radians(), 72, 22);
    let shard_map = ShardMap::new(grid.cell_count(), cfg.load.shards);
    let coverage = ShardMap::new(grid.cell_count(), cfg.sats);
    let costs = ProcedureCosts::paper();
    let rcosts = RecoveryCosts::paper();
    let horizon = cfg.load.warmup_s + cfg.load.measure_s;
    let (metas, in_storm, storms) = scenario_metas(cfg, &coverage, horizon);

    let points = PopulationModel::world_bank_like().sample_ues(cfg.load.total_ues, cfg.load.seed);
    let mut shard_ues: Vec<Vec<Ue>> = (0..shard_map.shards()).map(|_| Vec::new()).collect();
    for (id, p) in points.iter().enumerate() {
        let cell = cell_index(&grid, grid.cell_of_point(p));
        shard_ues[shard_map.shard_of(cell)].push(Ue {
            id: id as u32,
            cell: cell as u32,
            state: Link::Idle,
            gen: 0,
            attempt: 0,
            crash_id: -1,
            drop_us: 0,
            draws: 0,
        });
    }

    let ctx = ShardCtx {
        cfg,
        grid: &grid,
        coverage: &coverage,
        costs: &costs,
        rcosts: &rcosts,
        metas: &metas,
        in_storm: &in_storm,
        storms: &storms,
    };
    let outs = crate::engine::parallel_map_obs_with(threads, obs, shard_ues, |ues, rec| {
        run_shard(ctx, ues, rec)
    });

    // Slot-order fold: sums and bucket merges only.
    let windows_1s = (horizon / SLO_WINDOW_S).ceil() as usize;
    let deadline_us = (cfg.deadline_s * 1e6).round() as u64;
    let in_slots = (deadline_us / TT_SLOT_US) as usize;
    let mut stats = ShardStats::default();
    let mut cstats = ChaosStats::default();
    let mut events_total = 0u64;
    let mut events_measured = 0u64;
    let mut busy_us = 0u64;
    let mut step_hist = sc_obs::Histogram::new();
    let mut reattach_hist = sc_obs::Histogram::new();
    let mut crash_rows: Vec<CrashTrack> = metas.iter().map(|_| CrashTrack::new(in_slots)).collect();
    let mut est_storm_win = vec![0u64; windows_1s];
    let mut rereg_storm_win = vec![0u64; windows_1s];
    let mut reattaching_at_horizon = 0u64;
    for o in &outs {
        stats.absorb(&o.stats);
        cstats.absorb(&o.cstats);
        events_total += o.events_total;
        events_measured += o.events_measured;
        busy_us += o.busy_us;
        step_hist.merge(&o.step_hist);
        reattach_hist.merge(&o.reattach_hist);
        for (row, or) in crash_rows.iter_mut().zip(o.crash_rows.iter()) {
            row.absorb(or);
        }
        for (a, b) in est_storm_win.iter_mut().zip(o.est_storm_win.iter()) {
            *a += b;
        }
        for (a, b) in rereg_storm_win.iter_mut().zip(o.rereg_storm_win.iter()) {
            *a += b;
        }
        reattaching_at_horizon += o.reattaching_at_horizon;
    }
    // End-of-run occupancy: sessions in a cell can live in any shard
    // (crossings migrate UEs into foreign cells), so sum element-wise
    // before counting occupied cells.
    let mut cell_active = vec![0u64; grid.cell_count()];
    for o in &outs {
        for (a, b) in cell_active.iter_mut().zip(o.cell_active_end.iter()) {
            *a += *b as u64;
        }
    }
    let cells_occupied_end = cell_active.iter().filter(|&&n| n > 0).count();

    // Surge SLO: steady state is the storm cells' establishment rate
    // over the pre-crash measured windows; peak is the worst measured
    // re-registration window over the same cells. Integer sums → the
    // ratio is exact and shard-invariant.
    let warmup_win = (cfg.load.warmup_s / SLO_WINDOW_S) as usize;
    let first_crash_win = metas
        .first()
        .map_or(windows_1s, |m| (m.t_s / SLO_WINDOW_S) as usize)
        .min(windows_1s);
    let steady_windows = &est_storm_win[warmup_win.min(first_crash_win)..first_crash_win];
    let steady_c1_per_s = if steady_windows.is_empty() {
        0.0
    } else {
        steady_windows.iter().sum::<u64>() as f64 / (steady_windows.len() as f64 * SLO_WINDOW_S)
    };
    let peak_rereg_per_s = rereg_storm_win[warmup_win.min(windows_1s)..]
        .iter()
        .max()
        .copied()
        .unwrap_or(0) as f64
        / SLO_WINDOW_S;
    let surge_amplitude = if steady_c1_per_s > 0.0 {
        peak_rereg_per_s / steady_c1_per_s
    } else {
        0.0
    };

    let dropped = cstats.dropped;
    let survived: u64 = crash_rows.iter().map(|r| r.survived).sum();
    let late: u64 = crash_rows.iter().map(|r| r.late).sum();
    let lost: u64 = crash_rows.iter().map(|r| r.lost).sum();
    let session_survival = if dropped > 0 {
        survived as f64 / dropped as f64
    } else {
        1.0
    };

    // The chaos schedule's telemetry, emitted exactly once (a serial
    // replay — per-shard cursors run with a disabled recorder).
    {
        let mut c = cfg.timeline.cursor();
        c.advance_to(horizon * 1000.0, obs);
    }
    for (m, row) in metas.iter().zip(crash_rows.iter()) {
        let mut fields = vec![
            ("sat", sc_obs::FieldValue::from(m.sat)),
            ("dropped", sc_obs::FieldValue::from(row.dropped)),
            ("survived", sc_obs::FieldValue::from(row.survived)),
        ];
        if let Some(tt) = row.tt99_s() {
            fields.push(("tt99_s", sc_obs::FieldValue::from(tt)));
        }
        obs.event(m.t_s, "chaosload.crash", fields);
    }
    obs.set_gauge("emu.chaosload.cells_occupied_end", cells_occupied_end as f64);
    obs.set_gauge("emu.chaosload.session_survival", session_survival);
    obs.set_gauge("emu.chaosload.steady_c1_per_s", steady_c1_per_s);
    obs.set_gauge("emu.chaosload.peak_rereg_per_s", peak_rereg_per_s);
    obs.set_gauge("emu.chaosload.surge_amplitude", surge_amplitude);

    // The folded storm windows as top-level counter series (emitted
    // once, serially — the per-shard vecs were already summed in slot
    // order above, so the series is shard- and thread-invariant), then
    // the windowed SLO pass over them: burn = re-registration signaling
    // per window against the surge budget (3× the storm cells' steady
    // C1 rate), plus a recovery rule — once every crash's
    // re-establishment deadline has passed, the storm must have decayed
    // back under 2× steady. `SloTracker::record` writes the
    // `slo.burn.*` gauge series, the `slo.breached_windows.*` counters,
    // and one `slo.breach` event at each rule's first breach.
    for (w, &v) in est_storm_win.iter().enumerate() {
        if v > 0 {
            obs.series_inc_tick(
                "emu.chaosload.est_storm_per_s",
                w as u64 * sc_obs::WINDOW_TICKS,
                v,
            );
        }
    }
    for (w, &v) in rereg_storm_win.iter().enumerate() {
        if v > 0 {
            obs.series_inc_tick(
                "emu.chaosload.rereg_storm_per_s",
                w as u64 * sc_obs::WINDOW_TICKS,
                v,
            );
        }
    }
    if obs.enabled() {
        let surge_budget = 3.0 * steady_c1_per_s * SLO_WINDOW_S;
        let recovery_win = metas
            .iter()
            .map(|m| ((m.t_s + cfg.deadline_s) / SLO_WINDOW_S).ceil() as u64)
            .max()
            .unwrap_or(0);
        let recovery_budget = 2.0 * steady_c1_per_s * SLO_WINDOW_S;
        let tracker = sc_obs::SloTracker::new(vec![
            sc_obs::SloRule::new(
                "chaosload.surge",
                "emu.chaosload.rereg_storm_per_s",
                surge_budget,
            )
            .over_windows(warmup_win as u64, windows_1s as u64)
            .emit_as(
                "slo.burn.chaosload_surge",
                "slo.breached_windows.chaosload_surge",
            ),
            sc_obs::SloRule::new(
                "chaosload.recovery",
                "emu.chaosload.rereg_storm_per_s",
                recovery_budget,
            )
            .over_windows(recovery_win, windows_1s as u64)
            .emit_as(
                "slo.burn.chaosload_recovery",
                "slo.breached_windows.chaosload_recovery",
            ),
        ]);
        tracker.record(obs, SLO_WINDOW_S);
    }

    ExtChaosload {
        total_ues: cfg.load.total_ues,
        cells: grid.cell_count(),
        sats: cfg.sats,
        warmup_s: cfg.load.warmup_s,
        measure_s: cfg.load.measure_s,
        deadline_s: cfg.deadline_s,
        paced: cfg.paced,
        events_total,
        events_measured,
        mean_active_sessions: busy_us as f64 * 1e-6 / cfg.load.measure_s,
        arrivals: stats.arrivals,
        establishments: stats.establishments,
        piggybacked_arrivals: stats.piggybacked,
        releases: stats.releases,
        local_handovers: stats.local_handovers,
        idle_sweeps: stats.idle_sweeps,
        cell_crossings: stats.cell_crossings,
        spacecore_msgs: stats.spacecore_msgs + cstats.spacecore_msgs,
        legacy_msgs: stats.legacy_msgs + cstats.legacy_msgs,
        signaling_reduction: (stats.legacy_msgs + cstats.legacy_msgs) as f64
            / (stats.spacecore_msgs + cstats.spacecore_msgs).max(1) as f64,
        sessions_dropped: dropped,
        reattach_attempts: cstats.reattach_attempts,
        reattach_failures: cstats.reattach_failures,
        sessions_reestablished: cstats.reattached,
        sessions_survived: survived,
        sessions_late: late,
        sessions_lost: lost,
        reattaching_at_horizon,
        session_survival,
        budget_exhausted: cstats.budget_exhausted,
        deferred_handovers: cstats.deferred_handovers,
        deferred_releases: cstats.deferred_releases,
        shed_crossings: cstats.shed_crossings,
        deferred_establishments: cstats.deferred_establishments,
        burst_losses: cstats.burst_losses,
        steady_c1_per_s,
        peak_rereg_per_s,
        surge_amplitude,
        p99_step_cost_ms: step_hist.percentile(0.99).map(|us| us / 1000.0),
        reattach_ms_p50: reattach_hist.percentile(0.50),
        reattach_ms_p99: reattach_hist.percentile(0.99),
        crashes: metas
            .iter()
            .zip(crash_rows.iter())
            .map(|(m, row)| CrashRow {
                t_s: m.t_s,
                satellite: m.sat,
                footprint_cells: m.cells.len(),
                dropped: row.dropped,
                reestablished: row.reattached,
                survived: row.survived,
                late: row.late,
                lost: row.lost,
                pending: row.pending,
                tt99_s: row.tt99_s(),
            })
            .collect(),
        rereg_storm_win,
    }
}

/// Text rendering.
pub fn render(r: &ExtChaosload) -> String {
    let fmt = crate::report::fmt_num;
    let mut t = crate::report::TextTable::new(&["quantity", "value"]);
    t.row(vec!["live UEs".into(), fmt(r.total_ues as f64)]);
    t.row(vec![
        "satellites / cells".into(),
        format!("{} / {}", r.sats, r.cells),
    ]);
    t.row(vec![
        "measured window (s)".into(),
        format!("{:.0} (after {:.0} warmup)", r.measure_s, r.warmup_s),
    ]);
    t.row(vec!["events (measured)".into(), fmt(r.events_measured as f64)]);
    t.row(vec![
        "mean active sessions".into(),
        fmt(r.mean_active_sessions),
    ]);
    t.row(vec![
        "sessions dropped".into(),
        fmt(r.sessions_dropped as f64),
    ]);
    t.row(vec![
        "re-established (survived / late / lost)".into(),
        format!(
            "{} ({} / {} / {})",
            fmt(r.sessions_reestablished as f64),
            fmt(r.sessions_survived as f64),
            r.sessions_late,
            r.sessions_lost
        ),
    ]);
    t.row(vec![
        "session survival".into(),
        format!("{:.2}%", r.session_survival * 100.0),
    ]);
    t.row(vec![
        "reattach attempts (failures)".into(),
        format!("{} ({})", fmt(r.reattach_attempts as f64), fmt(r.reattach_failures as f64)),
    ]);
    t.row(vec![
        "steady C1 / peak re-reg (per s, storm cells)".into(),
        format!("{:.1} / {:.1}", r.steady_c1_per_s, r.peak_rereg_per_s),
    ]);
    t.row(vec![
        "surge amplitude".into(),
        format!("{:.2}x ({})", r.surge_amplitude, if r.paced { "paced" } else { "unpaced" }),
    ]);
    t.row(vec![
        "deferred (handover / release / establish)".into(),
        format!(
            "{} / {} / {}",
            fmt(r.deferred_handovers as f64),
            fmt(r.deferred_releases as f64),
            fmt(r.deferred_establishments as f64)
        ),
    ]);
    t.row(vec![
        "shed crossings / burst losses".into(),
        format!("{} / {}", fmt(r.shed_crossings as f64), fmt(r.burst_losses as f64)),
    ]);
    t.row(vec![
        "signaling reduction".into(),
        format!("{:.1}x", r.signaling_reduction),
    ]);
    if let Some(p) = r.reattach_ms_p99 {
        t.row(vec![
            "reattach ms (p50 / p99)".into(),
            format!("{:.0} / {p:.0}", r.reattach_ms_p50.unwrap_or(0.0)),
        ]);
    }
    if let Some(p) = r.p99_step_cost_ms {
        t.row(vec!["p99 step cost (ms)".into(), format!("{p:.3}")]);
    }
    let mut cr = crate::report::TextTable::new(&[
        "crash t (s)",
        "sat",
        "cells",
        "dropped",
        "survived",
        "tt99 (s)",
    ]);
    for c in &r.crashes {
        cr.row(vec![
            format!("{:.1}", c.t_s),
            c.satellite.to_string(),
            c.footprint_cells.to_string(),
            fmt(c.dropped as f64),
            fmt(c.survived as f64),
            c.tt99_s.map_or("—".into(), |v| format!("{v:.2}")),
        ]);
    }
    format!(
        "Extension — chaos under load ({} UEs, crash/re-crash + flap + burst)\n{}\n{}",
        fmt(r.total_ues as f64),
        t.render(),
        cr.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One cached smoke run for the shape assertions.
    fn cached() -> &'static ExtChaosload {
        static CACHE: OnceLock<ExtChaosload> = OnceLock::new();
        CACHE.get_or_init(|| run_config_with(2, &sc_obs::Recorder::disabled(), &ChaosloadConfig::smoke()))
    }

    #[test]
    fn crash_drops_sessions_and_stateless_recovery_brings_them_back() {
        let r = cached();
        assert_eq!(r.crashes.len(), 2, "crash + mid-recovery re-crash");
        assert!(r.sessions_dropped > 50, "{}", r.sessions_dropped);
        assert!(r.crashes[0].dropped > r.crashes[1].dropped / 2);
        // The acceptance bar on the smoke config too: ≥ 98 % survival.
        assert!(
            r.session_survival >= 0.98,
            "survival {}",
            r.session_survival
        );
        let pending: u64 = r.crashes.iter().map(|c| c.pending).sum();
        assert_eq!(
            r.sessions_dropped,
            r.sessions_survived + r.sessions_late + r.sessions_lost + pending,
            "every dropped session is accounted for"
        );
        // tt99 reported for the main crash, within the deadline.
        let tt99 = r.crashes[0].tt99_s.expect("99% re-established");
        assert!(tt99 > 0.0 && tt99 <= r.deadline_s, "tt99 {tt99}");
    }

    #[test]
    fn retry_budget_caps_the_signaling_surge() {
        let r = cached();
        assert!(r.steady_c1_per_s > 0.0);
        assert!(
            r.surge_amplitude <= 3.0,
            "paced surge {} exceeds 3x",
            r.surge_amplitude
        );
        // The thundering-herd contrast: pacing off, same scenario.
        let unpaced = run_config_with(
            2,
            &sc_obs::Recorder::disabled(),
            &ChaosloadConfig {
                paced: false,
                ..ChaosloadConfig::smoke()
            },
        );
        assert!(
            unpaced.surge_amplitude > r.surge_amplitude * 2.0,
            "unpaced {} vs paced {}",
            unpaced.surge_amplitude,
            r.surge_amplitude
        );
    }

    #[test]
    fn overload_gate_sheds_and_defers_low_priority_signaling() {
        let r = cached();
        assert!(r.deferred_handovers > 0, "storm must defer handovers");
        assert!(r.deferred_releases > 0, "storm must defer releases");
        assert!(r.shed_crossings > 0, "storm must shed C4 crossings");
        assert!(r.deferred_establishments > 0, "flap must defer establishments");
        assert!(r.burst_losses > 0, "burst window must kill some attempts");
        // Shedding is bounded: the gate never touches more signaling
        // than the churn it rides on.
        assert!(r.deferred_handovers < r.local_handovers);
        assert!(r.deferred_releases < r.releases);
    }

    #[test]
    fn recovery_is_costed_by_the_recovery_plans() {
        let r = cached();
        // Every reattach billed 4 vs 13: recovery widens the reduction
        // above the pure-churn ratio only if failures stay rare; at
        // minimum the global ratio must hold up under chaos.
        assert!(r.signaling_reduction > 3.0, "{}", r.signaling_reduction);
        // Every billed attempt either failed or re-established (deferred
        // fresh establishments that land bill as establishments instead).
        assert_eq!(
            r.reattach_attempts,
            r.sessions_reestablished + r.reattach_failures
        );
    }

    #[test]
    fn results_thread_and_shard_invariant_smoke() {
        let cfg = ChaosloadConfig {
            load: MloadConfig {
                total_ues: 3_000,
                shards: 8,
                warmup_s: 3.0,
                measure_s: 15.0,
                ..MloadConfig::smoke()
            },
            timeline: FailureTimeline::none()
                .crash(6_000.0, 5)
                .recover(8_000.0, 5)
                .loss_burst(6_000.0, 9_000.0, 0.25)
                .with_seed(0xC4A0_5EED),
            deadline_s: 10.0,
            ..ChaosloadConfig::smoke()
        };
        let reference = {
            let obs = sc_obs::Recorder::new();
            let r = run_config_with(1, &obs, &cfg);
            (serde_json::to_string(&r).unwrap(), obs.snapshot().to_json("t"))
        };
        for (threads, shards) in [(4, 8), (2, 1), (3, 1584)] {
            let obs = sc_obs::Recorder::new();
            let c = ChaosloadConfig {
                load: MloadConfig { shards, ..cfg.load.clone() },
                ..cfg.clone()
            };
            let r = run_config_with(threads, &obs, &c);
            assert_eq!(
                serde_json::to_string(&r).unwrap(),
                reference.0,
                "threads={threads} shards={shards}"
            );
            assert_eq!(
                obs.snapshot().to_json("t"),
                reference.1,
                "threads={threads} shards={shards}"
            );
        }
    }
}
