//! Figure 21 — user-level performance in satellite mobility: ping and
//! TCP stalling during an inter-satellite handover (Beijing ↔ New York).
//!
//! The mechanics the paper measures:
//!
//! * **SkyCore / Baoyun / DPCM** — the mobility registration re-allocates
//!   the UE's logical IP, which *terminates* TCP connections and ping;
//!   the stall is a full reconnection (signaling + address change +
//!   application re-establishment).
//! * **5G NTN** — the IP is anchored at the remote home, so connections
//!   survive but stall for the (slow, home-routed) signaling plus
//!   higher-layer recovery (TCP retransmission timeout).
//! * **SpaceCore** — geospatial addressing keeps the IP; the stall is
//!   just the local handover plus one RTO-free recovery.

use sc_fiveg::cpu::HardwareProfile;
use sc_fiveg::messages::ProcedureKind;
use sc_orbit::ConstellationConfig;
use serde::Serialize;
use spacecore::solutions::{Solution, SolutionKind};

#[derive(Debug, Clone, Serialize)]
pub struct Fig21 {
    pub bars: Vec<StallBar>,
    /// The Fig. 21b/c-style event timeline for 5G NTN.
    pub ntn_timeline: Vec<TimelineEvent>,
    /// Fig. 21c — TCP throughput (Mbit/s) through the handover, per
    /// solution, from the AIMD/RTO flow model.
    pub throughput_series: Vec<ThroughputSeries>,
}

/// Modeled TCP throughput across a handover for one solution.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputSeries {
    pub solution: String,
    /// (time s, throughput Mbit/s) samples.
    pub samples: Vec<(f64, f64)>,
    /// Measured zero-throughput stall, s.
    pub measured_stall_s: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct StallBar {
    pub solution: String,
    pub ping_stall_s: f64,
    pub tcp_stall_s: f64,
    /// Whether the transport connection survived the handover.
    pub connection_survives: bool,
}

#[derive(Debug, Clone, Serialize)]
pub struct TimelineEvent {
    pub t_s: f64,
    pub event: String,
}

/// Minimum TCP retransmission timeout (RFC 6298 floor as deployed).
const TCP_RTO_MIN_S: f64 = 0.2;
/// Application-level reconnect cost after an address change.
const RECONNECT_S: f64 = 1.0;

/// Run the experiment at a moderate event rate (handovers are not the
/// satellite's bottleneck procedure).
pub fn run() -> Fig21 {
    let cfg = ConstellationConfig::starlink();
    let hw = HardwareProfile::RaspberryPi4;
    let rate = 100.0;

    let mut bars = Vec::new();
    for kind in SolutionKind::ALL {
        let s = Solution::new(kind, cfg.clone());
        // Signaling outage: the handover (and, where triggered, the
        // mobility registration) must complete before traffic resumes.
        let mut signaling = s.signaling_delay_s(ProcedureKind::Handover, rate, hw);
        if kind.mobility_regs_on_satellite_sweep() {
            signaling += s.signaling_delay_s(ProcedureKind::MobilityRegistration, rate, hw);
        }
        let survives = kind.ip_stable_under_satellite_handover();
        let (ping_stall, tcp_stall) = if survives {
            // Higher-layer recovery on the surviving path: ping misses
            // during the outage; TCP additionally waits out an RTO.
            (signaling, signaling + TCP_RTO_MIN_S * (1.0 + signaling / 0.5))
        } else {
            // Address changed: both terminate and re-establish.
            (
                signaling + RECONNECT_S,
                signaling + RECONNECT_S + 2.0 * TCP_RTO_MIN_S,
            )
        };
        bars.push(StallBar {
            solution: kind.name().to_string(),
            ping_stall_s: ping_stall,
            tcp_stall_s: tcp_stall,
            connection_survives: survives,
        });
    }

    // 5G NTN event timeline (the shape of Fig. 21b/c).
    let ntn = Solution::new(SolutionKind::FiveGNtn, cfg);
    let ho = ntn.signaling_delay_s(ProcedureKind::Handover, rate, hw);
    let sess = ntn.signaling_delay_s(ProcedureKind::SessionEstablishment, rate, hw);
    let ntn_timeline = vec![
        TimelineEvent {
            t_s: 0.0,
            event: "handover triggered (serving satellite leaves)".into(),
        },
        TimelineEvent {
            t_s: ho,
            event: "handover complete".into(),
        },
        TimelineEvent {
            t_s: ho + 0.05,
            event: "session establishment request".into(),
        },
        TimelineEvent {
            t_s: ho + 0.05 + sess,
            event: "session established".into(),
        },
        TimelineEvent {
            t_s: ho + 0.05 + sess + TCP_RTO_MIN_S,
            event: "TCP throughput recovers".into(),
        },
    ];

    // Fig. 21c — drive the TCP flow model through the same handover for
    // every solution: outage = the signaling interruption; address
    // change per the IP-stability table.
    let outage_start = 10.0;
    let rtt = 0.06; // Beijing↔New York over the constellation
    let throughput_series = SolutionKind::ALL
        .iter()
        .map(|k| {
            let s = Solution::new(*k, ConstellationConfig::starlink());
            let mut outage =
                s.signaling_delay_s(ProcedureKind::Handover, rate, HardwareProfile::RaspberryPi4);
            if k.mobility_regs_on_satellite_sweep() {
                outage += s.signaling_delay_s(
                    ProcedureKind::MobilityRegistration,
                    rate,
                    HardwareProfile::RaspberryPi4,
                );
            }
            let (samples, measured_stall_s) = sc_netsim::flow::handover_scenario(
                rtt,
                outage_start,
                outage_start + outage,
                !k.ip_stable_under_satellite_handover(),
                RECONNECT_S,
                40.0,
                0.1,
            );
            ThroughputSeries {
                solution: k.name().to_string(),
                samples,
                measured_stall_s,
            }
        })
        .collect();

    Fig21 {
        bars,
        ntn_timeline,
        throughput_series,
    }
}

/// Text rendering.
pub fn render(r: &Fig21) -> String {
    let mut t = crate::report::TextTable::new(&[
        "solution",
        "ping stall (s)",
        "TCP stall (s)",
        "connection survives",
    ]);
    for b in &r.bars {
        t.row(vec![
            b.solution.clone(),
            format!("{:.3}", b.ping_stall_s),
            format!("{:.3}", b.tcp_stall_s),
            b.connection_survives.to_string(),
        ]);
    }
    let mut out = format!("Fig. 21a — user-level stalling in satellite mobility\n{}", t.render());
    out.push_str("\nFig. 21b — 5G NTN recovery timeline\n");
    for e in &r.ntn_timeline {
        out.push_str(&format!("  t={:7.3}s  {}\n", e.t_s, e.event));
    }
    out.push_str("\nFig. 21c — modeled TCP throughput stall across the handover\n");
    let mut t2 = crate::report::TextTable::new(&["solution", "measured stall (s)", "peak Mbps"]);
    for s in &r.throughput_series {
        let peak = s.samples.iter().map(|(_, x)| *x).fold(0.0, f64::max);
        t2.row(vec![
            s.solution.clone(),
            format!("{:.2}", s.measured_stall_s),
            crate::report::fmt_num(peak),
        ]);
    }
    out.push_str(&t2.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bar<'a>(r: &'a Fig21, sol: &str) -> &'a StallBar {
        r.bars.iter().find(|b| b.solution == sol).unwrap()
    }

    #[test]
    fn spacecore_shortest_stall() {
        let r = run();
        let sc = bar(&r, "SpaceCore");
        for sol in ["5G NTN", "SkyCore", "DPCM", "Baoyun"] {
            let o = bar(&r, sol);
            assert!(o.ping_stall_s > sc.ping_stall_s, "{sol}");
            assert!(o.tcp_stall_s > sc.tcp_stall_s, "{sol}");
        }
    }

    #[test]
    fn connection_survival_matches_ip_stability() {
        // Fig. 21: SkyCore/Baoyun/DPCM terminate TCP and ping; 5G NTN
        // and SpaceCore keep the connection alive.
        let r = run();
        assert!(bar(&r, "SpaceCore").connection_survives);
        assert!(bar(&r, "5G NTN").connection_survives);
        for sol in ["SkyCore", "DPCM", "Baoyun"] {
            assert!(!bar(&r, sol).connection_survives, "{sol}");
        }
    }

    #[test]
    fn tcp_stalls_exceed_ping_stalls() {
        // "Both user-level stalling durations are usually longer than
        // the duration of the mobility registrations due to the
        // higher-layer recovery (e.g., TCP retransmission timeout)."
        for b in run().bars {
            assert!(b.tcp_stall_s > b.ping_stall_s, "{}", b.solution);
        }
    }

    #[test]
    fn ntn_timeline_ordered_and_complete() {
        let r = run();
        assert_eq!(r.ntn_timeline.len(), 5);
        for w in r.ntn_timeline.windows(2) {
            assert!(w[1].t_s > w[0].t_s);
        }
        assert!(r.ntn_timeline.last().unwrap().event.contains("recovers"));
    }

    #[test]
    fn throughput_series_stalls_ordered() {
        // The flow-model stalls must preserve the Fig. 21 ordering:
        // SpaceCore shortest, address-changing solutions longest.
        let r = run();
        let stall = |sol: &str| {
            r.throughput_series
                .iter()
                .find(|s| s.solution == sol)
                .unwrap()
                .measured_stall_s
        };
        for sol in ["5G NTN", "SkyCore", "DPCM", "Baoyun"] {
            assert!(stall(sol) > stall("SpaceCore"), "{sol}");
        }
        // Address-changing solutions stall longer than 5G NTN's
        // surviving connection.
        for sol in ["SkyCore", "DPCM", "Baoyun"] {
            assert!(stall(sol) > stall("5G NTN") * 0.8, "{sol}");
        }
    }

    #[test]
    fn throughput_recovers_by_horizon() {
        let r = run();
        for s in &r.throughput_series {
            let tail = s.samples.last().unwrap().1;
            assert!(tail > 0.5, "{}: {tail}", s.solution);
        }
    }

    #[test]
    fn spacecore_stall_subsecond() {
        // Fig. 21a: SpaceCore's stalls are well under a second; legacy
        // 5G NTN stalls for seconds.
        let r = run();
        assert!(bar(&r, "SpaceCore").ping_stall_s < 1.0);
        assert!(bar(&r, "5G NTN").tcp_stall_s > 1.0);
    }
}
