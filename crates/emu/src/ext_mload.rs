//! Extension experiment: million-UE sharded sustained-load engine.
//!
//! The per-figure sweeps sample populations; this engine *serves* one.
//! It draws `total_ues` UEs from the World-Bank population mixture,
//! pins each to its geospatial cell on the Starlink grid (72 × 22, the
//! paper's natural shard key), partitions the cells into contiguous
//! shards ([`spacecore::shard::ShardMap`]), and drives every UE through
//! continuous churn on one calendar-queue DES per shard:
//!
//! * **session arrivals** — Poisson, mean 106.9 s per UE (§3.1); an
//!   arrival on an idle UE runs the localized establishment (4 msgs
//!   SpaceCore vs the 13-msg home-routed C2), an arrival on a connected
//!   UE rides the existing bearer;
//! * **RRC releases** — 10–15 s after establishment (§3.1);
//! * **satellite sweeps** — once per ~165.8 s coverage transit: a local
//!   3-msg handover for connected UEs, *nothing* for idle ones under
//!   geospatial tracking areas (legacy bills a C3/C4 respectively);
//! * **cell crossings** — rare UE mobility across cells, C4 both ways.
//!
//! Each shard's events are drained in [`BATCH_WINDOW_S`]-wide batches
//! ([`EventQueue::drain_until`]); every follow-up delay is at least
//! [`MIN_DELAY_S`] = one window, so batch processing is event-for-event
//! identical to interleaved processing. All randomness is a per-UE
//! splitmix64 hash stream keyed by `(seed, ue, draw#)` — independent of
//! shard layout and thread schedule. Every reported quantity is a sum
//! (or bucket merge) over disjoint cell ranges, and every histogram
//! observation is **integer-valued** so float sums stay associative —
//! which together make results *and* telemetry byte-identical across
//! `SC_EMU_THREADS` and across shard counts. Shards run under
//! [`crate::engine::parallel_map_obs_with`], which merges per-shard
//! recorders in slot order.
//!
//! Wall-clock throughput (steady-state events/s, p99 step cost, peak
//! RSS) is reported by `bench-report`'s `mload` section, not here:
//! `results/ext_mload.json` holds only deterministic quantities.

use sc_dataset::population::{PopulationModel, Region};
use sc_dataset::workload::WorkloadParams;
use sc_geo::cells::CellGrid;
use sc_netsim::des::EventQueue;
use serde::Serialize;
use spacecore::shard::{cell_at, cell_index, CellLedger, ProcedureCosts, ShardMap, ShardStats};

/// Batch window width; equals the DES calendar day
/// (`EventQueue::BUCKET_WIDTH_S`) so a window never spans day
/// promotions mid-drain.
pub const BATCH_WINDOW_S: f64 = 1.0;
/// Minimum follow-up delay: one full batch window, the contract that
/// makes deferred batch processing equivalent to per-event processing
/// (see [`EventQueue::drain_until`]).
pub const MIN_DELAY_S: f64 = BATCH_WINDOW_S;
/// Simulated per-message processing cost, µs — the Figure 16b scale of
/// a satellite-local signaling step. Costs are recorded in integer
/// microseconds: integer-valued f64 observations sum exactly, so
/// histogram sidecars stay byte-identical under any shard grouping.
const PER_MSG_US: f64 = 120.0;

/// Engine configuration. [`MloadConfig::full`] is the million-UE soak
/// the acceptance figures come from; [`MloadConfig::smoke`] is the
/// bounded tier-1 variant.
#[derive(Debug, Clone)]
pub struct MloadConfig {
    /// Live UEs under churn management.
    pub total_ues: usize,
    /// Requested shard count (clamped to the cell count).
    pub shards: usize,
    /// Ramp-in window excluded from every measured quantity, s.
    pub warmup_s: f64,
    /// Measured steady-state window, s.
    pub measure_s: f64,
    /// Root seed for placement and all churn draws.
    pub seed: u64,
    /// Mean interval between geospatial cell crossings per UE, s
    /// (Table 3 cells are hundreds of km wide — crossings are rare).
    pub crossing_interval_s: f64,
}

impl MloadConfig {
    /// The million-UE sustained soak: 30 s ramp + 120 s measured.
    pub fn full() -> Self {
        Self {
            total_ues: 1_000_000,
            shards: 64,
            warmup_s: 30.0,
            measure_s: 120.0,
            seed: 0x5C_10AD,
            crossing_interval_s: 600.0,
        }
    }

    /// Bounded smoke variant for `scripts/tier1.sh` byte-stability
    /// checks: same mechanics, seconds of wall time.
    pub fn smoke() -> Self {
        Self {
            total_ues: 20_000,
            shards: 8,
            warmup_s: 5.0,
            measure_s: 20.0,
            ..Self::full()
        }
    }
}

/// Result of one run. Everything here is deterministic in the config —
/// no wall-clock, no thread count, no shard count (shard layout is an
/// execution detail, deliberately **absent** from the schema;
/// `tests/mload_props.rs` asserts the bytes are invariant to it).
#[derive(Debug, Clone, Serialize)]
pub struct ExtMload {
    pub total_ues: usize,
    pub cells: usize,
    pub warmup_s: f64,
    pub measure_s: f64,
    /// Events processed over warmup + measured windows.
    pub events_total: u64,
    /// Events processed inside the measured window.
    pub events_measured: u64,
    /// `events_measured / measure_s` — simulated event throughput.
    pub events_per_sim_s: f64,
    /// Time-averaged concurrent sessions over the measured window.
    pub mean_active_sessions: f64,
    pub active_sessions_at_end: u64,
    /// Cells holding at least one active session at the horizon.
    pub occupied_cells: u64,
    pub arrivals: u64,
    pub establishments: u64,
    pub piggybacked_arrivals: u64,
    pub releases: u64,
    pub local_handovers: u64,
    pub idle_sweeps: u64,
    pub cell_crossings: u64,
    pub spacecore_msgs: u64,
    pub legacy_msgs: u64,
    pub spacecore_msgs_per_s: f64,
    pub legacy_msgs_per_s: f64,
    /// `legacy_msgs / spacecore_msgs` — the stateless signaling win.
    pub signaling_reduction: f64,
    /// p99 of the per-event SpaceCore processing cost, simulated ms
    /// (bucket-interpolated from the µs histogram; deterministic).
    pub p99_step_cost_ms: Option<f64>,
    pub regions: Vec<RegionRow>,
}

/// Per-region slice of the load (region fixed at placement).
#[derive(Debug, Clone, Serialize)]
pub struct RegionRow {
    pub region: &'static str,
    pub ues: u64,
    /// Session arrivals inside the measured window.
    pub arrivals: u64,
}

const REGIONS: [Region; 6] = [
    Region::NorthAmerica,
    Region::SouthCentralAmerica,
    Region::EuropeAsia,
    Region::Africa,
    Region::Oceania,
    Region::Ocean,
];

fn region_slot(r: Region) -> usize {
    REGIONS
        .iter()
        .position(|x| *x == r)
        .expect("REGIONS covers every variant")
}

use crate::churn::ue_unit;

/// Exponential draw with mean `mean_s`, clamped to [`MIN_DELAY_S`].
/// The clamp is the batch-window contract; it shifts < 1% of the mass
/// for the ≥ 100 s means used here.
fn exp_clamped(mean_s: f64, u: f64) -> f64 {
    crate::churn::exp_clamped(mean_s, u, MIN_DELAY_S)
}

/// One UE's churn state inside its shard.
struct Ue {
    /// Global UE id — the hash-stream key.
    id: u32,
    /// Current row-major cell index.
    cell: u32,
    region: u8,
    connected: bool,
    /// Draws consumed from this UE's hash stream. The UE's own events
    /// are totally ordered by the DES, so the counter sequence — and
    /// therefore every draw — is identical under any shard layout.
    draws: u32,
}

impl Ue {
    fn draw(&mut self, seed: u64) -> f64 {
        let u = ue_unit(seed, self.id, self.draws);
        self.draws += 1;
        u
    }
}

/// Churn events; the payload is the UE's index within its shard.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Arrive(u32),
    Release(u32),
    Sweep(u32),
    Cross(u32),
}

/// Everything one shard returns: additive tallies plus mergeable
/// histograms, no ordering-sensitive state.
struct ShardOut {
    stats: ShardStats,
    events_total: u64,
    events_measured: u64,
    /// Busy-time integral in integer µs ticks — exact under summation.
    busy_us: u64,
    cell_active_end: Vec<u32>,
    step_hist: sc_obs::Histogram,
    region_ues: [u64; 6],
    region_arrivals: [u64; 6],
}

/// Draw the per-event cost jitter and, for events that do
/// SpaceCore-side work inside the measured window, record the
/// processing cost (integer simulated µs) in the shard histogram and
/// the telemetry series. The jitter draw always happens so the UE's
/// stream position never depends on the measurement window.
fn observe_cost(
    seed: u64,
    ue: &mut Ue,
    msgs: u32,
    measured: bool,
    hist: &mut sc_obs::Histogram,
    rec: &sc_obs::Recorder,
) {
    let u = ue.draw(seed);
    if measured && msgs > 0 {
        let cost_us = (msgs as f64 * PER_MSG_US * (0.75 + 0.5 * u)).round();
        hist.observe(cost_us);
        rec.observe("emu.mload.step_us", cost_us);
    }
}

fn run_shard(
    cfg: &MloadConfig,
    grid: &CellGrid,
    costs: &ProcedureCosts,
    mut ues: Vec<Ue>,
    rec: &sc_obs::Recorder,
) -> ShardOut {
    let params = WorkloadParams::paper_defaults();
    let horizon = cfg.warmup_s + cfg.measure_s;
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut ledger = CellLedger::new(grid.cell_count(), cfg.warmup_s, horizon);
    let mut stats = ShardStats::default();
    let mut step_hist = sc_obs::Histogram::new();
    let mut region_ues = [0u64; 6];
    let mut region_arrivals = [0u64; 6];
    let mut events_total = 0u64;
    let mut events_measured = 0u64;

    // Initial schedule, in local UE order (deterministic): exponential
    // first arrival (stationary Poisson from t = 0), uniform sweep
    // phase, exponential first crossing.
    for (i, ue) in ues.iter_mut().enumerate() {
        region_ues[ue.region as usize] += 1;
        let i = i as u32;
        let u = ue.draw(cfg.seed);
        q.schedule(exp_clamped(params.session_interarrival_s, u), Ev::Arrive(i));
        let u = ue.draw(cfg.seed);
        q.schedule(u * params.transit_s, Ev::Sweep(i));
        let u = ue.draw(cfg.seed);
        q.schedule(exp_clamped(cfg.crossing_interval_s, u), Ev::Cross(i));
    }

    let windows = (horizon / BATCH_WINDOW_S).ceil() as u64;
    let mut batch = Vec::new();
    for w in 0..windows {
        let end = ((w + 1) as f64 * BATCH_WINDOW_S).min(horizon);
        q.drain_until(end, &mut batch);
        // Windowed event rate: BATCH_WINDOW_S equals the series window
        // (1.0 s), so a drained batch maps to exactly one window — the
        // counter series adds elementwise across shards and is
        // therefore shard- and thread-invariant like the counters.
        if !batch.is_empty() {
            rec.series_inc_tick(
                "emu.mload.events_per_s",
                w * sc_obs::WINDOW_TICKS,
                batch.len() as u64,
            );
        }
        for ev in &batch {
            let t = ev.time;
            let measured = t >= cfg.warmup_s;
            events_total += 1;
            if measured {
                events_measured += 1;
            }
            match ev.event {
                Ev::Arrive(i) => {
                    let ue = &mut ues[i as usize];
                    let u = ue.draw(cfg.seed);
                    let next = t + exp_clamped(params.session_interarrival_s, u);
                    if measured {
                        region_arrivals[ue.region as usize] += 1;
                    }
                    if ue.connected {
                        if measured {
                            stats.bill_arrival(costs, true);
                        }
                    } else {
                        let u = ue.draw(cfg.seed);
                        let hold = params.inactivity_release_s - 2.5 + 5.0 * u; // U(10, 15)
                        ue.connected = true;
                        let cell = ue.cell as usize;
                        ledger.connect(cell, t);
                        q.schedule(t + hold, Ev::Release(i));
                        let msgs = if measured {
                            rec.observe("emu.mload.session_hold_ms", (hold * 1000.0).round());
                            stats.bill_arrival(costs, false)
                        } else {
                            costs.local_establishment
                        };
                        observe_cost(cfg.seed, &mut ues[i as usize], msgs, measured, &mut step_hist, rec);
                    }
                    q.schedule(next, Ev::Arrive(i));
                }
                Ev::Release(i) => {
                    let ue = &mut ues[i as usize];
                    ue.connected = false;
                    ledger.release(ue.cell as usize, t);
                    let msgs = if measured {
                        stats.bill_release(costs)
                    } else {
                        costs.release
                    };
                    observe_cost(cfg.seed, &mut ues[i as usize], msgs, measured, &mut step_hist, rec);
                }
                Ev::Sweep(i) => {
                    let ue = &mut ues[i as usize];
                    let u = ue.draw(cfg.seed);
                    let next = (t + params.transit_s * (0.75 + 0.5 * u)).max(t + MIN_DELAY_S);
                    if ue.connected {
                        let msgs = if measured {
                            stats.bill_sweep(costs, true)
                        } else {
                            costs.local_handover
                        };
                        observe_cost(cfg.seed, &mut ues[i as usize], msgs, measured, &mut step_hist, rec);
                    } else if measured {
                        // Free under geospatial tracking areas; billed
                        // as a C4 on the legacy side.
                        stats.bill_sweep(costs, false);
                    }
                    q.schedule(next, Ev::Sweep(i));
                }
                Ev::Cross(i) => {
                    let ue = &mut ues[i as usize];
                    let u = ue.draw(cfg.seed);
                    let dir = ((u * 4.0) as usize).min(3);
                    let old = cell_at(grid, ue.cell as usize);
                    let new_idx = cell_index(grid, grid.neighbors(old)[dir]);
                    if ue.connected {
                        ledger.move_session(ue.cell as usize, new_idx);
                    }
                    ue.cell = new_idx as u32;
                    let msgs = if measured {
                        stats.bill_crossing(costs)
                    } else {
                        costs.cell_crossing
                    };
                    observe_cost(cfg.seed, &mut ues[i as usize], msgs, measured, &mut step_hist, rec);
                    let ue = &mut ues[i as usize];
                    let u = ue.draw(cfg.seed);
                    q.schedule(t + exp_clamped(cfg.crossing_interval_s, u), Ev::Cross(i));
                }
            }
        }
    }
    ledger.finish();

    // Shard telemetry: counters, (integer-valued) histograms, and
    // counter *series* only — all three merge commutatively and sum
    // exactly, so the absorbed snapshot is invariant to shard count and
    // thread count. Events, spans and gauges would encode shard layout;
    // the per-shard DES queues likewise stay recorder-free — their
    // rung/spill counters depend on how cells are grouped.
    rec.inc("emu.mload.events", events_total);
    rec.inc("emu.mload.arrivals", stats.arrivals);
    rec.inc("emu.mload.establishments", stats.establishments);
    rec.inc("emu.mload.piggybacked", stats.piggybacked);
    rec.inc("emu.mload.releases", stats.releases);
    rec.inc("emu.mload.handovers_local", stats.local_handovers);
    rec.inc("emu.mload.sweeps_idle", stats.idle_sweeps);
    rec.inc("emu.mload.cell_crossings", stats.cell_crossings);
    rec.inc("emu.mload.msgs_spacecore", stats.spacecore_msgs);
    rec.inc("emu.mload.msgs_legacy", stats.legacy_msgs);

    ShardOut {
        stats,
        events_total,
        events_measured,
        busy_us: ledger.busy_us(),
        cell_active_end: ledger.cell_active().to_vec(),
        step_hist,
        region_ues,
        region_arrivals,
    }
}

/// Run with the default worker count, telemetry off.
pub fn run() -> ExtMload {
    run_config_with(
        crate::engine::thread_count(),
        &sc_obs::Recorder::disabled(),
        &MloadConfig::full(),
    )
}

/// Full config with telemetry (the `ext_mload` binary's default mode).
pub fn run_obs(obs: &sc_obs::Recorder) -> ExtMload {
    run_config_with(crate::engine::thread_count(), obs, &MloadConfig::full())
}

/// Smoke config with telemetry (the `--smoke` mode tier-1 exercises).
pub fn run_smoke_obs(obs: &sc_obs::Recorder) -> ExtMload {
    run_config_with(crate::engine::thread_count(), obs, &MloadConfig::smoke())
}

/// The engine proper: explicit worker count and config. Results and
/// merged telemetry are byte-identical for every `threads` value and
/// every `cfg.shards` value.
pub fn run_config_with(threads: usize, obs: &sc_obs::Recorder, cfg: &MloadConfig) -> ExtMload {
    let grid = CellGrid::new(53f64.to_radians(), 72, 22);
    let shard_map = ShardMap::new(grid.cell_count(), cfg.shards);
    let costs = ProcedureCosts::paper();
    let pop = PopulationModel::world_bank_like();

    // Placement: every UE gets its cell, region and owner shard from
    // the population draw; shard inputs are filled in UE-id order so a
    // shard's local ordering is independent of the shard count.
    let points = pop.sample_ues(cfg.total_ues, cfg.seed);
    let mut shard_ues: Vec<Vec<Ue>> = (0..shard_map.shards()).map(|_| Vec::new()).collect();
    for (id, p) in points.iter().enumerate() {
        let cell = cell_index(&grid, grid.cell_of_point(p));
        let region = region_slot(pop.region_of(p)) as u8;
        shard_ues[shard_map.shard_of(cell)].push(Ue {
            id: id as u32,
            cell: cell as u32,
            region,
            connected: false,
            draws: 0,
        });
    }

    let outs = crate::engine::parallel_map_obs_with(threads, obs, shard_ues, |ues, rec| {
        run_shard(cfg, &grid, &costs, ues, rec)
    });

    // Slot-order fold: sums and bucket merges only.
    let mut stats = ShardStats::default();
    let mut events_total = 0u64;
    let mut events_measured = 0u64;
    let mut busy_us = 0u64;
    let mut cell_active = vec![0u64; grid.cell_count()];
    let mut step_hist = sc_obs::Histogram::new();
    let mut region_ues = [0u64; 6];
    let mut region_arrivals = [0u64; 6];
    for o in &outs {
        stats.absorb(&o.stats);
        events_total += o.events_total;
        events_measured += o.events_measured;
        busy_us += o.busy_us;
        for (acc, v) in cell_active.iter_mut().zip(o.cell_active_end.iter()) {
            *acc += *v as u64;
        }
        step_hist.merge(&o.step_hist);
        for r in 0..REGIONS.len() {
            region_ues[r] += o.region_ues[r];
            region_arrivals[r] += o.region_arrivals[r];
        }
    }
    let active_end: u64 = cell_active.iter().sum();
    let occupied = cell_active.iter().filter(|c| **c > 0).count() as u64;
    let mean_active = busy_us as f64 * 1e-6 / cfg.measure_s;
    obs.set_gauge("emu.mload.active_sessions", active_end as f64);
    obs.set_gauge("emu.mload.mean_active_sessions", mean_active);
    obs.set_gauge("emu.mload.occupied_cells", occupied as f64);

    ExtMload {
        total_ues: cfg.total_ues,
        cells: grid.cell_count(),
        warmup_s: cfg.warmup_s,
        measure_s: cfg.measure_s,
        events_total,
        events_measured,
        events_per_sim_s: events_measured as f64 / cfg.measure_s,
        mean_active_sessions: mean_active,
        active_sessions_at_end: active_end,
        occupied_cells: occupied,
        arrivals: stats.arrivals,
        establishments: stats.establishments,
        piggybacked_arrivals: stats.piggybacked,
        releases: stats.releases,
        local_handovers: stats.local_handovers,
        idle_sweeps: stats.idle_sweeps,
        cell_crossings: stats.cell_crossings,
        spacecore_msgs: stats.spacecore_msgs,
        legacy_msgs: stats.legacy_msgs,
        spacecore_msgs_per_s: stats.spacecore_msgs as f64 / cfg.measure_s,
        legacy_msgs_per_s: stats.legacy_msgs as f64 / cfg.measure_s,
        signaling_reduction: stats.legacy_msgs as f64 / stats.spacecore_msgs.max(1) as f64,
        p99_step_cost_ms: step_hist.percentile(0.99).map(|us| us / 1000.0),
        regions: REGIONS
            .iter()
            .enumerate()
            .map(|(r, reg)| RegionRow {
                region: reg.name(),
                ues: region_ues[r],
                arrivals: region_arrivals[r],
            })
            .collect(),
    }
}

/// Text rendering.
pub fn render(r: &ExtMload) -> String {
    let fmt = crate::report::fmt_num;
    let mut t = crate::report::TextTable::new(&["quantity", "value"]);
    t.row(vec!["live UEs".into(), fmt(r.total_ues as f64)]);
    t.row(vec!["geospatial cells".into(), fmt(r.cells as f64)]);
    t.row(vec![
        "measured window (s)".into(),
        format!("{:.0} (after {:.0} warmup)", r.measure_s, r.warmup_s),
    ]);
    t.row(vec!["events (measured)".into(), fmt(r.events_measured as f64)]);
    t.row(vec!["events / sim-s".into(), fmt(r.events_per_sim_s)]);
    t.row(vec![
        "mean active sessions".into(),
        fmt(r.mean_active_sessions),
    ]);
    t.row(vec![
        "active at horizon".into(),
        fmt(r.active_sessions_at_end as f64),
    ]);
    t.row(vec!["occupied cells".into(), fmt(r.occupied_cells as f64)]);
    t.row(vec!["establishments".into(), fmt(r.establishments as f64)]);
    t.row(vec![
        "local handovers".into(),
        fmt(r.local_handovers as f64),
    ]);
    t.row(vec![
        "idle sweeps (free)".into(),
        fmt(r.idle_sweeps as f64),
    ]);
    t.row(vec![
        "SpaceCore msgs/s".into(),
        fmt(r.spacecore_msgs_per_s),
    ]);
    t.row(vec!["legacy msgs/s".into(), fmt(r.legacy_msgs_per_s)]);
    t.row(vec![
        "signaling reduction".into(),
        format!("{:.1}x", r.signaling_reduction),
    ]);
    if let Some(p) = r.p99_step_cost_ms {
        t.row(vec!["p99 step cost (ms)".into(), format!("{p:.3}")]);
    }
    let mut reg = crate::report::TextTable::new(&["region", "UEs", "arrivals (measured)"]);
    for row in &r.regions {
        reg.row(vec![
            row.region.to_string(),
            fmt(row.ues as f64),
            fmt(row.arrivals as f64),
        ]);
    }
    format!(
        "Extension — sharded sustained-load engine ({} UEs on geospatial cells)\n{}\n{}",
        fmt(r.total_ues as f64),
        t.render(),
        reg.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn tiny() -> MloadConfig {
        MloadConfig {
            total_ues: 2_000,
            shards: 8,
            warmup_s: 5.0,
            measure_s: 20.0,
            seed: 0x5C_10AD,
            crossing_interval_s: 120.0,
        }
    }

    /// One cached smoke-size run for the shape assertions.
    fn cached() -> &'static ExtMload {
        static CACHE: OnceLock<ExtMload> = OnceLock::new();
        CACHE.get_or_init(|| {
            run_config_with(2, &sc_obs::Recorder::disabled(), &MloadConfig::smoke())
        })
    }

    #[test]
    fn batch_window_matches_calendar_day() {
        assert_eq!(BATCH_WINDOW_S, EventQueue::<Ev>::BUCKET_WIDTH_S);
        // MIN_DELAY_S >= BATCH_WINDOW_S is definitional (`MIN_DELAY_S =
        // BATCH_WINDOW_S`); the batching ≡ interleaving argument in the
        // module docs depends on it.
    }

    #[test]
    fn churn_rates_match_the_paper_constants() {
        let r = cached();
        let n = r.total_ues as f64;
        // Arrivals: Poisson with mean interarrival 106.9 s.
        let want_arrivals = n * r.measure_s / 106.9;
        assert!(
            (r.arrivals as f64 - want_arrivals).abs() < 0.1 * want_arrivals,
            "arrivals {} want ~{want_arrivals}",
            r.arrivals
        );
        // Active fraction ≈ 11.7% of the population.
        let frac = r.mean_active_sessions / n;
        assert!((0.08..=0.16).contains(&frac), "active fraction {frac}");
        // Sweeps: one per transit per UE, idle-dominated.
        let sweeps = r.idle_sweeps + r.local_handovers;
        let want_sweeps = n * r.measure_s / 165.8;
        assert!(
            (sweeps as f64 - want_sweeps).abs() < 0.15 * want_sweeps,
            "sweeps {sweeps} want ~{want_sweeps}"
        );
        assert!(r.idle_sweeps > 4 * r.local_handovers);
    }

    #[test]
    fn stateless_signaling_reduction_holds_under_sustained_load() {
        let r = cached();
        assert!(r.signaling_reduction > 3.0, "{}", r.signaling_reduction);
        assert!(r.spacecore_msgs > 0);
        assert!(r.p99_step_cost_ms.is_some());
        assert!(r.events_per_sim_s > 0.0);
        assert_eq!(
            r.arrivals,
            r.establishments + r.piggybacked_arrivals,
            "every arrival is either an establishment or a piggyback"
        );
        // Sessions that ended plus sessions still up = sessions started
        // (measured-window releases can exceed establishments by the
        // warmup carry-over, so compare totals loosely).
        assert!(r.active_sessions_at_end > 0);
        assert!(r.occupied_cells > 0 && r.occupied_cells <= r.cells as u64);
        let region_ues: u64 = r.regions.iter().map(|x| x.ues).sum();
        assert_eq!(region_ues, r.total_ues as u64);
    }

    #[test]
    fn results_and_telemetry_thread_invariant() {
        let cfg = tiny();
        let reference = {
            let obs = sc_obs::Recorder::new();
            let r = run_config_with(1, &obs, &cfg);
            (serde_json::to_string(&r).unwrap(), obs.snapshot().to_json("t"))
        };
        for threads in [2, 4] {
            let obs = sc_obs::Recorder::new();
            let r = run_config_with(threads, &obs, &cfg);
            assert_eq!(serde_json::to_string(&r).unwrap(), reference.0, "threads={threads}");
            assert_eq!(obs.snapshot().to_json("t"), reference.1, "threads={threads}");
        }
    }

    #[test]
    fn results_and_telemetry_shard_invariant() {
        let base = tiny();
        let reference = {
            let obs = sc_obs::Recorder::new();
            let r = run_config_with(2, &obs, &MloadConfig { shards: 1, ..base.clone() });
            (serde_json::to_string(&r).unwrap(), obs.snapshot().to_json("t"))
        };
        for shards in [3, 16, 1584, 5000] {
            let obs = sc_obs::Recorder::new();
            let r = run_config_with(2, &obs, &MloadConfig { shards, ..base.clone() });
            assert_eq!(serde_json::to_string(&r).unwrap(), reference.0, "shards={shards}");
            assert_eq!(obs.snapshot().to_json("t"), reference.1, "shards={shards}");
        }
    }

    #[test]
    fn churn_schedule_deterministic_in_seed() {
        let cfg = tiny();
        let a = run_config_with(2, &sc_obs::Recorder::disabled(), &cfg);
        let b = run_config_with(4, &sc_obs::Recorder::disabled(), &cfg);
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
        let other = run_config_with(
            2,
            &sc_obs::Recorder::disabled(),
            &MloadConfig { seed: 99, ..cfg },
        );
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&other).unwrap(),
            "different seeds must produce different churn"
        );
    }

    #[test]
    fn hash_stream_is_uniform_ish() {
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let u = ue_unit(7, i % 97, i / 97);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }

    #[test]
    fn exp_clamped_respects_floor_and_mean() {
        assert_eq!(exp_clamped(100.0, 0.0), MIN_DELAY_S.max(0.0));
        let mut sum = 0.0;
        let n = 20_000;
        for i in 0..n {
            sum += exp_clamped(106.9, ue_unit(3, 0, i));
        }
        let mean = sum / n as f64;
        assert!((mean - 106.9).abs() < 0.05 * 106.9, "{mean}");
        for i in 0..1000 {
            assert!(exp_clamped(106.9, ue_unit(4, 1, i)) >= MIN_DELAY_S);
        }
    }
}
