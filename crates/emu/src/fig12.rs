//! Figure 12 — temporal dynamics of a fast-moving LEO satellite's
//! signaling overhead (Option 3).
//!
//! One Starlink satellite is followed for one orbital period (~95 min);
//! at each time step the number of users under its footprint comes from
//! the population model, and the Option 3 (Baoyun-split) signaling and
//! state-transmission rates are computed. The paper's signature shape:
//! bursty peaks as the satellite crosses Europe & Asia, near-zero over
//! oceans, varying with the satellite's capacity cap.

use sc_dataset::population::PopulationModel;
use sc_dataset::workload::{RateModel, WorkloadParams};
use sc_fiveg::messages::{Procedure, ProcedureKind};
use sc_fiveg::nf::SplitOption;
use sc_orbit::{ConstellationConfig, IdealPropagator, Propagator, SatId};
use serde::Serialize;

/// Satellite capacity caps swept (the paper's legend: 2K–30K).
pub const CAPACITIES: [u32; 4] = [2_000, 10_000, 20_000, 30_000];

#[derive(Debug, Clone, Serialize)]
pub struct Fig12 {
    /// Sample interval, seconds.
    pub dt_s: f64,
    pub points: Vec<TimePoint>,
}

#[derive(Debug, Clone, Serialize)]
pub struct TimePoint {
    pub t_min: f64,
    pub region: String,
    /// Users under the footprint before capacity capping.
    pub users_in_view: f64,
    /// (capacity, signaling msg/s) series.
    pub signaling_per_s: Vec<(u32, f64)>,
    /// (capacity, states tx/s) series.
    pub state_tx_per_s: Vec<(u32, f64)>,
}

/// Run the experiment: follow satellite (0,0) for one orbit.
pub fn run() -> Fig12 {
    run_with(crate::engine::thread_count())
}

/// Run with an explicit worker count. Each time step is an independent
/// cell; output is identical for every `threads` value.
pub fn run_with(threads: usize) -> Fig12 {
    let cfg = ConstellationConfig::starlink();
    let prop = IdealPropagator::new(cfg.clone());
    let pop = PopulationModel::world_bank_like();
    let params = WorkloadParams::for_constellation(&cfg);
    let model = RateModel::new(params);
    let split = SplitOption::SessionMobility.split();
    let c2 = Procedure::build(ProcedureKind::SessionEstablishment);
    let c3 = Procedure::build(ProcedureKind::Handover);
    let c4 = Procedure::build(ProcedureKind::MobilityRegistration);

    // Global satellite-subscriber base served by this shell: a few
    // million early adopters, so dense regions exceed small capacity
    // caps while oceans are near-empty (the Fig. 12 dynamic range).
    let global_users = 3.0e6;
    let half_angle = sc_geo::sphere::coverage_half_angle(cfg.altitude_km, cfg.min_elevation_rad);

    let dt_s = 60.0;
    let period = cfg.period_s();
    // Sample instants via the same repeated-addition walk as the old
    // serial loop, so every t is the same f64 bit pattern.
    let mut ts = Vec::new();
    let mut t = 0.0;
    while t <= period + 1.0 {
        ts.push(t);
        t += dt_s;
    }

    let points = crate::engine::parallel_map_with(threads, ts, |t| {
        let st = prop.state(SatId::new(0, 0), t);
        let frac = pop.coverage_fraction(&st.subpoint, half_angle);
        let users = frac * global_users;
        let region = pop.region_of(&st.subpoint);

        let mut signaling = Vec::new();
        let mut state_tx = Vec::new();
        for cap in CAPACITIES {
            let served = users.min(cap as f64);
            let sessions = served / params.session_interarrival_s;
            let sweeps = served / params.transit_s;
            let msgs = sessions * c2.satellite_messages(&split) as f64 * model.radio_overhead
                + sweeps * params.active_fraction * c3.satellite_messages(&split) as f64
                + sweeps * c4.satellite_messages(&split) as f64;
            let stx = sessions * c2.state_tx_crossing(&split) as f64
                + sweeps * params.active_fraction * c3.state_op_count() as f64
                + sweeps * c4.state_op_count() as f64;
            signaling.push((cap, msgs));
            state_tx.push((cap, stx));
        }
        TimePoint {
            t_min: t / 60.0,
            region: region.name().to_string(),
            users_in_view: users,
            signaling_per_s: signaling,
            state_tx_per_s: state_tx,
        }
    });
    Fig12 { dt_s, points }
}

/// Regions traversed, in order of first appearance (for assertions and
/// rendering).
pub fn regions_visited(r: &Fig12) -> Vec<String> {
    let mut seen = Vec::new();
    for p in &r.points {
        if seen.last() != Some(&p.region) {
            seen.push(p.region.clone());
        }
    }
    seen
}

/// Text rendering.
pub fn render(r: &Fig12) -> String {
    let mut t = crate::report::TextTable::new(&[
        "t (min)",
        "region",
        "users in view",
        "signaling/s @30K",
        "state tx/s @30K",
    ]);
    for p in r.points.iter().step_by(5) {
        t.row(vec![
            crate::report::fmt_num(p.t_min),
            p.region.clone(),
            crate::report::fmt_num(p.users_in_view),
            crate::report::fmt_num(p.signaling_per_s.last().unwrap().1),
            crate::report::fmt_num(p.state_tx_per_s.last().unwrap().1),
        ]);
    }
    format!(
        "Fig. 12 — temporal dynamics of one satellite over one orbit (Option 3)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_json_bit_identical_to_serial() {
        let serial = serde_json::to_string_pretty(&run_with(1)).unwrap();
        for threads in [2, 8] {
            let parallel = serde_json::to_string_pretty(&run_with(threads)).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn covers_one_full_orbit() {
        let r = run();
        let last = r.points.last().unwrap().t_min;
        assert!((90.0..=110.0).contains(&last), "{last}");
    }

    #[test]
    fn bursty_over_land_quiet_over_ocean() {
        let r = run();
        let peak = r
            .points
            .iter()
            .map(|p| p.signaling_per_s.last().unwrap().1)
            .fold(0.0, f64::max);
        let ocean_points: Vec<f64> = r
            .points
            .iter()
            .filter(|p| p.region == "Ocean")
            .map(|p| p.signaling_per_s.last().unwrap().1)
            .collect();
        assert!(!ocean_points.is_empty(), "orbit never crosses ocean?");
        let ocean_max = ocean_points.iter().fold(0.0f64, |a, b| a.max(*b));
        assert!(peak > 10.0 * ocean_max.max(1.0), "peak {peak} ocean {ocean_max}");
    }

    #[test]
    fn capacity_caps_the_peaks() {
        let r = run();
        for p in &r.points {
            let s2k = p.signaling_per_s[0].1;
            let s30k = p.signaling_per_s[3].1;
            assert!(s30k >= s2k - 1e-9);
        }
        // Somewhere the cap must bind: the 2K series saturates while 30K
        // keeps growing.
        let any_capped = r.points.iter().any(|p| {
            p.users_in_view > 2_000.0
                && p.signaling_per_s[3].1 > 2.0 * p.signaling_per_s[0].1
        });
        assert!(any_capped);
    }

    #[test]
    fn visits_multiple_regions() {
        let r = run();
        let regions = regions_visited(&r);
        assert!(regions.len() >= 3, "{regions:?}");
    }

    #[test]
    fn state_tx_tracks_signaling() {
        let r = run();
        for p in &r.points {
            let s = p.signaling_per_s.last().unwrap().1;
            let x = p.state_tx_per_s.last().unwrap().1;
            assert_eq!(s == 0.0, x == 0.0);
        }
    }
}
