//! Table 3 — SpaceCore's geospatial cells in real LEO constellations.
//!
//! Number of satellites (= cells) and the min/max/avg physical cell
//! sizes of the t = 0 grid for Starlink, Kuiper and OneWeb (the paper's
//! rows), plus Iridium for completeness.

use sc_orbit::ConstellationConfig;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct Table3 {
    pub rows: Vec<Row>,
}

#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub constellation: String,
    pub num_cells: usize,
    pub min_km2: f64,
    pub max_km2: f64,
    pub avg_km2: f64,
}

/// Run the experiment.
pub fn run() -> Table3 {
    let rows = ConstellationConfig::all_presets()
        .into_iter()
        .map(|cfg| {
            let stats = cfg.cell_grid().stats();
            Row {
                constellation: cfg.name.to_string(),
                num_cells: stats.count,
                min_km2: stats.min_km2,
                max_km2: stats.max_km2,
                avg_km2: stats.avg_km2,
            }
        })
        .collect();
    Table3 { rows }
}

/// Text rendering.
pub fn render(r: &Table3) -> String {
    let mut t = crate::report::TextTable::new(&[
        "constellation",
        "cells",
        "min km²",
        "max km²",
        "avg km²",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.constellation.clone(),
            row.num_cells.to_string(),
            crate::report::fmt_num(row.min_km2),
            crate::report::fmt_num(row.max_km2),
            crate::report::fmt_num(row.avg_km2),
        ]);
    }
    format!("Table 3 — SpaceCore's geospatial cells\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(r: &'a Table3, name: &str) -> &'a Row {
        r.rows.iter().find(|x| x.constellation == name).unwrap()
    }

    #[test]
    fn cell_counts_match_satellite_counts() {
        let r = run();
        assert_eq!(row(&r, "Starlink").num_cells, 1584);
        assert_eq!(row(&r, "Kuiper").num_cells, 1156);
        assert_eq!(row(&r, "OneWeb").num_cells, 720);
        assert_eq!(row(&r, "Iridium").num_cells, 66);
    }

    #[test]
    fn starlink_sizes_match_table3_scale() {
        // Paper: min 93,382 / max 1,616,366 / avg 471,476 km². We accept
        // the same order of magnitude (our Walker phasing differs from
        // the exact deployment grid).
        let r = run();
        let s = row(&r, "Starlink");
        assert!(s.avg_km2 > 150_000.0 && s.avg_km2 < 1_000_000.0, "{}", s.avg_km2);
        assert!(s.max_km2 > 600_000.0 && s.max_km2 < 4_000_000.0, "{}", s.max_km2);
        assert!(s.min_km2 > 10_000.0 && s.min_km2 < 300_000.0, "{}", s.min_km2);
    }

    #[test]
    fn oneweb_cells_larger_than_starlink() {
        // Table 3: OneWeb avg 1,573,215 ≫ Starlink avg 471,476 (fewer
        // satellites → larger cells).
        let r = run();
        assert!(row(&r, "OneWeb").avg_km2 > 2.0 * row(&r, "Starlink").avg_km2);
    }

    #[test]
    fn ordering_min_avg_max() {
        for row in run().rows {
            assert!(row.min_km2 < row.avg_km2, "{row:?}");
            assert!(row.avg_km2 < row.max_km2, "{row:?}");
        }
    }

    #[test]
    fn render_contains_all_constellations() {
        let txt = render(&run());
        for n in ["Starlink", "Kuiper", "OneWeb", "Iridium"] {
            assert!(txt.contains(n), "{n}");
        }
    }
}
