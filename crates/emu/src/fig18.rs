//! Figure 18 — SpaceCore's latency micro-benchmarks.
//!
//! * **(a)** local state processing: ABE encryption/decryption wall time
//!   as a function of the number of attributes (2–10) — measured, not
//!   modeled: the real `sc-crypto` implementation is timed.
//! * **(b)** geospatial relaying: Beijing → New York delivery delay over
//!   ideal orbits vs. the J4 perturbation propagator, for all four
//!   constellations — Algorithm 1 must deliver under both, with similar
//!   delays (runtime-coordinate calibration).

use sc_crypto::abe::AbeSystem;
use sc_crypto::policy::{attr_set, AccessTree};
use sc_geo::sphere::GeoPoint;
use sc_orbit::{ConstellationConfig, IdealPropagator, J4Propagator};
use serde::Serialize;
use spacecore::relay::GeoRelay;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
pub struct Fig18 {
    pub abe: Vec<AbePoint>,
    pub relay: Vec<RelayPoint>,
}

/// One ABE timing point.
#[derive(Debug, Clone, Serialize)]
pub struct AbePoint {
    pub attributes: usize,
    pub encrypt_us: f64,
    pub decrypt_us: f64,
}

/// One relay measurement.
#[derive(Debug, Clone, Serialize)]
pub struct RelayPoint {
    pub constellation: String,
    pub propagator: String,
    pub t_s: f64,
    pub delivered: bool,
    pub delay_ms: f64,
    pub hops: usize,
}

/// Fig. 18a — time ABE with k attributes (AND policy of k leaves, key
/// holding exactly those attributes).
pub fn run_abe() -> Vec<AbePoint> {
    let (pk, msk) = AbeSystem::setup(0xBEEF);
    let payload = vec![0x42u8; 256];
    let mut out = Vec::new();
    for k in [2usize, 4, 6, 8, 10] {
        let attrs: Vec<String> = (0..k).map(|i| format!("attr-{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
        let policy = AccessTree::all_of(&attr_refs);
        let sk = AbeSystem::keygen(&msk, &attr_set(&attr_refs));

        let iters = 200;
        let t0 = Instant::now();
        for i in 0..iters {
            let _ = AbeSystem::encrypt(&pk, &payload, &policy, i as u64);
        }
        let encrypt_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

        let ct = AbeSystem::encrypt(&pk, &payload, &policy, 1);
        let t1 = Instant::now();
        for _ in 0..iters {
            let _ = AbeSystem::decrypt(&ct, &sk).expect("authorized");
        }
        let decrypt_us = t1.elapsed().as_secs_f64() * 1e6 / iters as f64;

        out.push(AbePoint {
            attributes: k,
            encrypt_us,
            decrypt_us,
        });
    }
    out
}

/// Fig. 18b — Beijing→New York relaying, ideal vs. J4, four
/// constellations, several epochs.
pub fn run_relay() -> Vec<RelayPoint> {
    run_relay_obs(&sc_obs::Recorder::disabled())
}

/// [`run_relay`] with telemetry: every packet trace feeds the
/// `spacecore.relay.*` counters and hop/delay histograms. All recorded
/// quantities are simulation-derived, so the telemetry is deterministic
/// even though the figure's panel (a) is wall-clock.
pub fn run_relay_obs(obs: &sc_obs::Recorder) -> Vec<RelayPoint> {
    let beijing = GeoPoint::from_degrees(39.9042, 116.4074);
    let ny = GeoPoint::from_degrees(40.7128, -74.0060);
    let mut out = Vec::new();
    for cfg in ConstellationConfig::all_presets() {
        let relay = GeoRelay::for_shell(&cfg).with_recorder(obs.clone());
        let ideal = IdealPropagator::new(cfg.clone());
        let j4 = J4Propagator::new(cfg.clone());
        for t in [0.0, 900.0, 1800.0, 2700.0, 3600.0] {
            for (name, trace) in [
                (
                    "ideal",
                    relay.deliver_ground_to_ground(&ideal, &beijing, &ny, t, 1.0),
                ),
                (
                    "j4",
                    relay.deliver_ground_to_ground(&j4, &beijing, &ny, t, 1.0),
                ),
            ] {
                if let Some(tr) = trace {
                    out.push(RelayPoint {
                        constellation: cfg.name.to_string(),
                        propagator: name.to_string(),
                        t_s: t,
                        delivered: tr.delivered,
                        delay_ms: tr.delay_ms,
                        hops: tr.hops(),
                    });
                }
            }
        }
    }
    out
}

/// Run both panels.
pub fn run() -> Fig18 {
    Fig18 {
        abe: run_abe(),
        relay: run_relay(),
    }
}

/// [`run`] with telemetry. Panel (a)'s wall-clock timings stay **out**
/// of the recorder (sc-obs records simulation quantities only); instead
/// one counted encrypt/decrypt per attribute count feeds the
/// `crypto.abe.*` counters, and panel (b) counts every relay trace.
pub fn run_obs(obs: &sc_obs::Recorder) -> Fig18 {
    let abe = run_abe();
    if obs.enabled() {
        obs.inc("emu.fig18.abe_points", abe.len() as u64);
        record_abe_counts(obs);
    }
    Fig18 {
        abe,
        relay: run_relay_obs(obs),
    }
}

/// Count-only ABE telemetry: one encrypt + one authorized decrypt per
/// attribute count of panel (a), with fixed entropy (deterministic
/// ciphertext sizes).
fn record_abe_counts(obs: &sc_obs::Recorder) {
    let (pk, msk) = AbeSystem::setup(0xBEEF);
    let payload = vec![0x42u8; 256];
    for k in [2usize, 4, 6, 8, 10] {
        let attrs: Vec<String> = (0..k).map(|i| format!("attr-{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
        let policy = AccessTree::all_of(&attr_refs);
        let sk = AbeSystem::keygen(&msk, &attr_set(&attr_refs));
        let ct = AbeSystem::encrypt_obs(obs, &pk, &payload, &policy, k as u64);
        let _ = AbeSystem::decrypt_obs(obs, &ct, &sk);
    }
}

/// Text rendering.
pub fn render(r: &Fig18) -> String {
    let mut out = String::from("Fig. 18a — ABE local state processing\n");
    let mut t = crate::report::TextTable::new(&["attributes", "encrypt (µs)", "decrypt (µs)"]);
    for p in &r.abe {
        t.row(vec![
            p.attributes.to_string(),
            crate::report::fmt_num(p.encrypt_us),
            crate::report::fmt_num(p.decrypt_us),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nFig. 18b — geospatial relay Beijing → New York\n");
    let mut t2 = crate::report::TextTable::new(&[
        "constellation",
        "propagator",
        "t (s)",
        "delivered",
        "delay (ms)",
        "hops",
    ]);
    for p in &r.relay {
        t2.row(vec![
            p.constellation.clone(),
            p.propagator.clone(),
            crate::report::fmt_num(p.t_s),
            p.delivered.to_string(),
            crate::report::fmt_num(p.delay_ms),
            p.hops.to_string(),
        ]);
    }
    out.push_str(&t2.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abe_cost_grows_with_attributes() {
        // Wall-clock microbenchmark: under a loaded test runner a single
        // sample can invert, so allow a few attempts before failing.
        let mut pts = run_abe();
        for _ in 0..4 {
            if pts[4].encrypt_us > pts[0].encrypt_us {
                break;
            }
            pts = run_abe();
        }
        assert_eq!(pts.len(), 5);
        let first = &pts[0];
        let last = &pts[4];
        assert!(last.encrypt_us > first.encrypt_us, "{pts:?}");
        // All timings positive and sane (< 100 ms each).
        for p in &pts {
            assert!(p.encrypt_us > 0.0 && p.encrypt_us < 100_000.0);
            assert!(p.decrypt_us > 0.0 && p.decrypt_us < 100_000.0);
        }
    }

    #[test]
    fn relay_always_delivers() {
        // Fig. 18b: "Under both ideal and realistic orbits, Algorithm 1
        // guarantees traffic delivery."
        for p in run_relay() {
            assert!(p.delivered, "{p:?}");
        }
    }

    #[test]
    fn ideal_and_j4_delays_similar() {
        // "The path delays are similar in both scenarios since
        // Algorithm 1 calibrates orbit perturbations."
        let pts = run_relay();
        for cfg in ["Starlink", "Kuiper", "OneWeb"] {
            for t in [0.0, 1800.0, 3600.0] {
                let ideal = pts
                    .iter()
                    .find(|p| p.constellation == cfg && p.propagator == "ideal" && p.t_s == t)
                    .unwrap();
                let j4 = pts
                    .iter()
                    .find(|p| p.constellation == cfg && p.propagator == "j4" && p.t_s == t)
                    .unwrap();
                assert!(
                    (ideal.delay_ms - j4.delay_ms).abs() < 150.0,
                    "{cfg} t={t}: ideal {} j4 {}",
                    ideal.delay_ms,
                    j4.delay_ms
                );
            }
        }
    }

    #[test]
    fn run_obs_counts_relay_and_abe_without_wall_clock() {
        let rec = sc_obs::Recorder::new();
        let r = run_obs(&rec);
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter("spacecore.relay.packets"),
            r.relay.len() as u64
        );
        assert_eq!(snap.counter("crypto.abe.encrypts"), 5);
        assert_eq!(snap.counter("crypto.abe.decrypts"), 5);
        assert_eq!(snap.counter("emu.fig18.abe_points"), 5);
        // No wall-clock metric may leak into the snapshot: everything
        // recorded is replayable, so two runs emit identical bytes.
        let rec2 = sc_obs::Recorder::new();
        run_obs(&rec2);
        assert_eq!(
            rec.snapshot().to_json("fig18"),
            rec2.snapshot().to_json("fig18")
        );
    }

    #[test]
    fn beijing_ny_delay_scale() {
        // ~11,000 km great-circle at near-light speed plus hops: total
        // delay should land in the tens-to-low-hundreds of ms.
        for p in run_relay() {
            assert!(p.delay_ms > 30.0 && p.delay_ms < 600.0, "{p:?}");
        }
    }

    #[test]
    fn iridium_occasionally_detours() {
        // §6.2: Iridium's coarse cells can cause detours (longer paths)
        // under J4; delivery still succeeds (checked above). Here we just
        // document that Iridium's hop counts are small (66 sats).
        let pts = run_relay();
        for p in pts.iter().filter(|p| p.constellation == "Iridium") {
            assert!(p.hops <= 20, "{p:?}");
        }
    }
}
