//! Table 4 — SpaceCore's satellite signaling cost reduction, derived
//! from the Figure 20 engine: baseline-per-satellite ÷
//! SpaceCore-per-satellite, per constellation, at 30K capacity.

use serde::Serialize;
use spacecore::solutions::SolutionKind;

#[derive(Debug, Clone, Serialize)]
pub struct Table4 {
    pub capacity: u32,
    pub rows: Vec<Row>,
}

#[derive(Debug, Clone, Serialize)]
pub struct Row {
    pub constellation: String,
    /// (baseline name, reduction factor ×).
    pub reductions: Vec<(String, f64)>,
}

/// Run at the paper's 30K capacity.
pub fn run() -> Table4 {
    run_at(30_000)
}

/// Run at a chosen capacity. The heavy lifting — the full Fig. 20
/// sweep — runs on the parallel engine; the per-constellation ratio
/// rows then fan out over the same engine.
pub fn run_at(capacity: u32) -> Table4 {
    let fig20 = crate::fig20::run();
    let rows = crate::engine::parallel_map(
        vec!["Starlink", "Kuiper", "OneWeb", "Iridium"],
        |cons| {
            let sc = crate::fig20::cell(&fig20, cons, "SpaceCore", capacity).sat_msgs_per_s;
            let reductions = SolutionKind::BASELINES
                .iter()
                .map(|k| {
                    let b = crate::fig20::cell(&fig20, cons, k.name(), capacity).sat_msgs_per_s;
                    (k.name().to_string(), b / sc)
                })
                .collect();
            Row {
                constellation: cons.to_string(),
                reductions,
            }
        },
    );
    Table4 { capacity, rows }
}

/// Text rendering.
pub fn render(r: &Table4) -> String {
    let mut header = vec!["constellation".to_string()];
    header.extend(r.rows[0].reductions.iter().map(|(n, _)| n.clone()));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = crate::report::TextTable::new(&hdr);
    for row in &r.rows {
        let mut cells = vec![row.constellation.clone()];
        for (_, f) in &row.reductions {
            cells.push(format!("{:.1}x", f));
        }
        t.row(cells);
    }
    format!(
        "Table 4 — SpaceCore satellite signaling reduction (capacity {})\n{}",
        r.capacity,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reduction(r: &Table4, cons: &str, baseline: &str) -> f64 {
        r.rows
            .iter()
            .find(|x| x.constellation == cons)
            .unwrap()
            .reductions
            .iter()
            .find(|(n, _)| n == baseline)
            .unwrap()
            .1
    }

    #[test]
    fn all_reductions_significant() {
        // Paper Table 4 ranges from 6.8× to 122.2×; require > 4× for
        // every (constellation, baseline) pair.
        let r = run();
        for row in &r.rows {
            for (n, f) in &row.reductions {
                assert!(*f > 4.0, "{} vs {n}: {f}", row.constellation);
                assert!(*f < 1000.0, "{} vs {n}: {f}", row.constellation);
            }
        }
    }

    #[test]
    fn starlink_ntn_reduction_largest_in_row() {
        // Paper: Starlink row is 122.2 / 17.5 / 40.3 / 49.3 — the 5G NTN
        // factor dominates.
        let r = run();
        let ntn = reduction(&r, "Starlink", "5G NTN");
        for b in ["SkyCore", "DPCM", "Baoyun"] {
            assert!(ntn > reduction(&r, "Starlink", b), "{b}");
        }
    }

    #[test]
    fn skycore_reduction_smallest_for_starlink() {
        // SkyCore localizes sessions too, so it is the closest baseline.
        let r = run();
        let sky = reduction(&r, "Starlink", "SkyCore");
        for b in ["5G NTN", "DPCM", "Baoyun"] {
            assert!(sky < reduction(&r, "Starlink", b), "{b}");
        }
    }

    #[test]
    fn reductions_capacity_invariant() {
        // Rates scale linearly in capacity, so the ratios are stable.
        let a = run_at(10_000);
        let b = run_at(30_000);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            for ((_, fa), (_, fb)) in ra.reductions.iter().zip(&rb.reductions) {
                assert!((fa - fb).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn render_has_x_factors() {
        let txt = render(&run());
        assert!(txt.contains('x'));
        assert!(txt.contains("Starlink"));
    }
}
