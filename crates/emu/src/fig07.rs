//! Figure 7 — breakdown of satellite CPU usage by core functions.
//!
//! For each hardware profile and each initial/mobility-registration rate
//! (the paper sweeps 10–250/s), the stacked per-NF CPU shares for the
//! all-functions-in-space split (the configuration that saturates the
//! Pi in Fig. 7a).

use sc_fiveg::cpu::{HardwareProfile, NfCostTable};
use sc_fiveg::messages::{Procedure, ProcedureKind};
use sc_fiveg::nf::SplitOption;
use serde::Serialize;

/// The registration-rate sweep used by the paper.
pub const RATES: [f64; 10] = [10.0, 20.0, 30.0, 40.0, 50.0, 70.0, 100.0, 150.0, 200.0, 250.0];

#[derive(Debug, Clone, Serialize)]
pub struct Fig07 {
    pub hardware: Vec<HardwareSeries>,
}

#[derive(Debug, Clone, Serialize)]
pub struct HardwareSeries {
    pub hardware: String,
    pub points: Vec<CpuPoint>,
}

#[derive(Debug, Clone, Serialize)]
pub struct CpuPoint {
    pub rate_per_s: f64,
    /// (NF name, CPU %) stacked shares.
    pub breakdown: Vec<(String, f64)>,
    pub total_percent: f64,
}

/// Run the experiment: registration workload is an even mix of initial
/// and mobility registrations (the paper's x-axis label:
/// "Initial/Mobility registrations per second").
pub fn run() -> Fig07 {
    let split = SplitOption::AllFunctions.split();
    let c1 = Procedure::build(ProcedureKind::InitialRegistration);
    let c4 = Procedure::build(ProcedureKind::MobilityRegistration);
    let mut hardware = Vec::new();
    for hw in HardwareProfile::ALL {
        let table = NfCostTable::new(hw);
        let mut points = Vec::new();
        for rate in RATES {
            // Half initial, half mobility registrations.
            let mut merged: Vec<(String, f64)> = Vec::new();
            for (proc_, share) in [(&c1, 0.5), (&c4, 0.5)] {
                for (nf, pct) in table.cpu_breakdown(proc_, &split, rate * share) {
                    match merged.iter_mut().find(|(n, _)| *n == nf.name()) {
                        Some((_, p)) => *p += pct,
                        None => merged.push((nf.name().to_string(), pct)),
                    }
                }
            }
            let total: f64 = merged.iter().map(|(_, p)| p).sum::<f64>().min(100.0);
            points.push(CpuPoint {
                rate_per_s: rate,
                breakdown: merged,
                total_percent: total,
            });
        }
        hardware.push(HardwareSeries {
            hardware: hw.name().to_string(),
            points,
        });
    }
    Fig07 { hardware }
}

/// Text rendering: one table per hardware.
pub fn render(r: &Fig07) -> String {
    let mut out = String::from("Fig. 7 — satellite CPU breakdown by core function\n");
    for hs in &r.hardware {
        out.push_str(&format!("\n{}\n", hs.hardware));
        let nf_names: Vec<&str> = hs.points[0]
            .breakdown
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        let mut header = vec!["rate/s"];
        header.extend(nf_names.iter());
        header.push("total%");
        let mut t = crate::report::TextTable::new(&header);
        for p in &hs.points {
            let mut row = vec![crate::report::fmt_num(p.rate_per_s)];
            for n in &nf_names {
                let v = p
                    .breakdown
                    .iter()
                    .find(|(bn, _)| bn == n)
                    .map(|(_, v)| *v)
                    .unwrap_or(0.0);
                row.push(crate::report::fmt_num(v));
            }
            row.push(crate::report::fmt_num(p.total_percent));
            t.row(row);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_saturates_xeon_does_not() {
        let r = run();
        let pi_max = r.hardware[0].points.last().unwrap().total_percent;
        let xeon_max = r.hardware[1].points.last().unwrap().total_percent;
        // Fig. 7a: hardware 1 hits 100% by 250 reg/s; Fig. 7b: hardware 2
        // stays below saturation.
        assert!(pi_max >= 99.0, "{pi_max}");
        assert!(xeon_max < 80.0, "{xeon_max}");
    }

    #[test]
    fn cpu_monotone_in_rate() {
        for hs in run().hardware {
            for w in hs.points.windows(2) {
                assert!(w[1].total_percent >= w[0].total_percent - 1e-9);
            }
        }
    }

    #[test]
    fn breakdown_covers_core_functions() {
        let r = run();
        let names: Vec<&String> = r.hardware[0].points[0]
            .breakdown
            .iter()
            .map(|(n, _)| n)
            .collect();
        for expect in ["AMF", "SMF", "UPF", "AUSF", "UDM", "PCF"] {
            assert!(names.iter().any(|n| *n == expect), "{expect} missing");
        }
    }

    #[test]
    fn render_has_both_hardware_tables() {
        let txt = render(&run());
        assert!(txt.contains("Raspberry Pi"));
        assert!(txt.contains("Xeon"));
    }
}
