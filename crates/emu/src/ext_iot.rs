//! Extension experiment: traffic-mix sensitivity (the massive-IoT
//! future of §2.2, value proposition 2).
//!
//! How does the per-satellite signaling bill change when the subscriber
//! base shifts from consumer-dominated to IoT-dominated? Per device,
//! IoT signals far less — but the paper's point is that satellites then
//! serve far *more* devices, and under the legacy design every one of
//! them still pays the mobility-registration storm each transit. The
//! experiment sweeps device counts per satellite for both mixes and
//! both designs.

use sc_dataset::traffic::TrafficMix;
use sc_dataset::workload::WorkloadParams;
use sc_fiveg::messages::{Procedure, ProcedureKind};
use sc_fiveg::nf::SplitOption;
use sc_orbit::ConstellationConfig;
use serde::Serialize;

/// Devices-per-satellite sweep (IoT densities go far beyond phones).
pub const DEVICE_COUNTS: [u32; 4] = [30_000, 100_000, 300_000, 1_000_000];

#[derive(Debug, Clone, Serialize)]
pub struct ExtIot {
    pub points: Vec<IotPoint>,
}

#[derive(Debug, Clone, Serialize)]
pub struct IotPoint {
    pub mix: String,
    pub devices: u32,
    /// Legacy (Option 3) satellite signaling, msg/s.
    pub legacy_msgs_per_s: f64,
    /// SpaceCore satellite signaling, msg/s.
    pub spacecore_msgs_per_s: f64,
}

/// Run the experiment.
pub fn run() -> ExtIot {
    let cfg = ConstellationConfig::starlink();
    let base = WorkloadParams::for_constellation(&cfg);
    let split = SplitOption::SessionMobility.split();
    let c2 = Procedure::build(ProcedureKind::SessionEstablishment);
    let c3 = Procedure::build(ProcedureKind::Handover);
    let c4 = Procedure::build(ProcedureKind::MobilityRegistration);
    let paging = Procedure::build(ProcedureKind::Paging);

    let units: Vec<(&str, TrafficMix, u32)> = [
        ("consumer-dominated", TrafficMix::consumer_dominated()),
        ("IoT-dominated", TrafficMix::iot_dominated()),
    ]
    .into_iter()
    .flat_map(|(name, mix)| DEVICE_COUNTS.iter().map(move |&d| (name, mix.clone(), d)))
    .collect();
    let points = crate::engine::parallel_map(units, |(name, mix, devices)| {
        let params = mix.workload_params(&base);
        {
            let sessions = devices as f64 / params.session_interarrival_s;
            let sweeps = devices as f64 / params.transit_s;
            let active_sweeps = sweeps * params.active_fraction;

            // Legacy Option 3: sessions + handovers + per-transit C4 for
            // every device, idle included.
            let legacy = sessions
                * (c2.satellite_messages(&split) as f64 * 3.0
                    + params.downlink_fraction * paging.satellite_messages(&split) as f64)
                + active_sweeps * c3.satellite_messages(&split) as f64
                + sweeps * c4.satellite_messages(&split) as f64;

            // SpaceCore: 4-message local sessions, 3-message handovers
            // for active devices, nothing for idle sweeps.
            let spacecore = sessions * (4.0 + params.downlink_fraction * 2.0)
                + active_sweeps * 3.0;

            IotPoint {
                mix: name.to_string(),
                devices,
                legacy_msgs_per_s: legacy,
                spacecore_msgs_per_s: spacecore,
            }
        }
    });
    ExtIot { points }
}

/// Text rendering.
pub fn render(r: &ExtIot) -> String {
    let mut t = crate::report::TextTable::new(&[
        "mix",
        "devices/sat",
        "legacy msg/s",
        "SpaceCore msg/s",
        "reduction",
    ]);
    for p in &r.points {
        t.row(vec![
            p.mix.clone(),
            p.devices.to_string(),
            crate::report::fmt_num(p.legacy_msgs_per_s),
            crate::report::fmt_num(p.spacecore_msgs_per_s),
            format!("{:.1}x", p.legacy_msgs_per_s / p.spacecore_msgs_per_s),
        ]);
    }
    format!(
        "Extension — traffic-mix sensitivity (massive IoT, §2.2)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point<'a>(r: &'a ExtIot, mix: &str, devices: u32) -> &'a IotPoint {
        r.points
            .iter()
            .find(|p| p.mix.contains(mix) && p.devices == devices)
            .unwrap()
    }

    #[test]
    fn iot_reduction_larger_than_consumer() {
        // IoT devices are idle almost always → the legacy per-transit C4
        // dominates their bill, and SpaceCore eliminates exactly that:
        // the reduction factor must exceed the consumer mix's.
        let r = run();
        for devices in DEVICE_COUNTS {
            let iot = point(&r, "IoT", devices);
            let consumer = point(&r, "consumer", devices);
            let iot_red = iot.legacy_msgs_per_s / iot.spacecore_msgs_per_s;
            let cons_red = consumer.legacy_msgs_per_s / consumer.spacecore_msgs_per_s;
            assert!(iot_red > 1.3 * cons_red, "{iot_red} vs {cons_red}");
        }
    }

    #[test]
    fn million_device_iot_feasible_only_stateless() {
        // At 1M IoT devices/satellite, the legacy design faces ~10⁵
        // msg/s of nearly pure mobility-registration storm; SpaceCore
        // stays an order of magnitude below.
        let r = run();
        let p = point(&r, "IoT", 1_000_000);
        assert!(p.legacy_msgs_per_s > 100_000.0, "{}", p.legacy_msgs_per_s);
        assert!(
            p.spacecore_msgs_per_s < p.legacy_msgs_per_s / 10.0,
            "{}",
            p.spacecore_msgs_per_s
        );
    }

    #[test]
    fn linear_in_devices() {
        let r = run();
        let a = point(&r, "IoT", 100_000).legacy_msgs_per_s;
        let b = point(&r, "IoT", 300_000).legacy_msgs_per_s;
        assert!((b / a - 3.0).abs() < 1e-6);
    }
}
