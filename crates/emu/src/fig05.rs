//! Figure 5b — registration signaling latency through GEO transparent
//! pipes (Inmarsat Explorer 710 vs. Tiantong SC310).
//!
//! The paper measured 9.5 s / 13.5 s mean registration delays over
//! operational GEO satellites (Trace 1 shows one Inmarsat session). We
//! regenerate the latency CDF from the transparent-pipe path model:
//! GEO round-trip (~240 ms at 35,786 km) × the number of serialized
//! signaling round-trips in the capture, plus heavy processing at the
//! remote gateway, with capture-calibrated dispersion.

use sc_dataset::table2::DatasetSource;
use serde::Serialize;

/// The result: a latency CDF per terminal.
#[derive(Debug, Clone, Serialize)]
pub struct Fig05 {
    pub series: Vec<LatencyCdf>,
}

/// CDF of registration latency for one terminal.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyCdf {
    pub terminal: String,
    pub mean_s: f64,
    /// (latency_s, cumulative_fraction) points.
    pub points: Vec<(f64, f64)>,
}

/// GEO one-way propagation at 35,786 km, seconds.
const GEO_ONE_WAY_S: f64 = 0.12;

/// Samples of registration latency for one terminal (deterministic).
fn sample_latencies(source: DatasetSource, n: usize) -> Vec<f64> {
    let mean = source.mean_registration_delay_s();
    // Registration = serialized NAS round-trips over the pipe + gateway
    // processing. Model: `k` round-trips at 2×GEO one-way each, with the
    // residual attributed to gateway queueing (exponential-ish spread).
    let round_trips = 8.0;
    let base = round_trips * 2.0 * GEO_ONE_WAY_S;
    let gw = (mean - base).max(0.5);
    let mut rng = sc_netsim::failure::Xorshift64::new(source as u64 + 7);
    (0..n)
        .map(|_| {
            // Sum of two exponentials approximates the long right tail
            // seen in Trace 1.
            let e1: f64 = -(1.0f64 - rng.next_f64()).ln();
            let e2: f64 = -(1.0f64 - rng.next_f64()).ln();
            base + gw * 0.5 * (e1 + e2)
        })
        .collect()
}

/// Run the experiment.
pub fn run() -> Fig05 {
    let mut series = Vec::new();
    for source in [
        DatasetSource::TiantongSc310,
        DatasetSource::InmarsatExplorer710,
    ] {
        let mut lat = sample_latencies(source, 2000);
        lat.sort_by(|a, b| a.total_cmp(b));
        let n = lat.len();
        let points: Vec<(f64, f64)> = lat
            .iter()
            .enumerate()
            .step_by(n / 40)
            .map(|(i, v)| (*v, (i + 1) as f64 / n as f64))
            .collect();
        let mean_s = lat.iter().sum::<f64>() / n as f64;
        series.push(LatencyCdf {
            terminal: source.name().to_string(),
            mean_s,
            points,
        });
    }
    Fig05 { series }
}

/// [`run`] with telemetry. The figure's series are unchanged; when the
/// recorder is enabled, the run additionally records the CDF summary
/// metrics and replays one C1 registration message-by-message over a
/// GEO transparent-pipe topology (UE — bent-pipe satellite — remote
/// gateway, one-way delay `GEO_ONE_WAY_S` per leg), exercising the
/// `netsim.*`, `fiveg.*`, and `crypto.suci.*` counters the latency
/// model abstracts over.
pub fn run_obs(obs: &sc_obs::Recorder) -> Fig05 {
    let r = run();
    if obs.enabled() {
        record_telemetry(obs, &r);
    }
    r
}

fn record_telemetry(obs: &sc_obs::Recorder, r: &Fig05) {
    let suci_home = sc_crypto::suci::SuciHomeKey::generate(0x0516);
    for (i, s) in r.series.iter().enumerate() {
        obs.inc("emu.fig05.terminals", 1);
        let gauge = if s.terminal.contains("SC310") {
            "emu.fig05.tiantong_mean_s"
        } else {
            "emu.fig05.inmarsat_mean_s"
        };
        obs.set_gauge(gauge, s.mean_s);
        for (v, _) in &s.points {
            obs.observe("emu.fig05.latency_s", *v);
        }
        // Every registration starts with a SUCI concealment (footnote 4).
        let _ = sc_crypto::suci::conceal_obs(
            obs,
            suci_home.public,
            suci_home.params,
            0x4600_0100_0000 + i as u64,
            1000 + i as u64,
        );
    }
    // The C1 the pipe serializes, replayed over UE(0)—satellite(1)—
    // gateway(2) with one-way GEO delay per leg, traced under a
    // `fiveg.proc.c1_initial_registration` root span (route "geo-pipe")
    // so `sctrace` can decompose which legs the bent pipe serializes.
    let c1 = sc_fiveg::messages::Procedure::build_obs_at(
        sc_fiveg::messages::ProcedureKind::InitialRegistration,
        obs,
        0.0,
    );
    let mut g = sc_netsim::topo::Graph::new(3);
    g.add_bidirectional(0, 1, GEO_ONE_WAY_S * 1e3);
    g.add_bidirectional(1, 2, GEO_ONE_WAY_S * 1e3);
    let nf = sc_netsim::failure::NodeFailures::none();
    let sim = sc_netsim::sim::ProcedureSim::new(&g, &nf, sc_netsim::sim::SimConfig::default())
        .with_recorder(obs.clone());
    let steps = crate::obs::replay_steps(&c1);
    let outcome = crate::obs::replay_traced(
        obs,
        &sim,
        &c1,
        &steps,
        "geo-pipe",
        &mut sc_netsim::failure::LossProcess::new(0.0, 1),
    );
    obs.set_gauge("emu.fig05.pipe_replay_latency_ms", outcome.latency_ms);
}

/// Text rendering.
pub fn render(r: &Fig05) -> String {
    let mut t = crate::report::TextTable::new(&["terminal", "mean (s)", "p50 (s)", "p90 (s)"]);
    for s in &r.series {
        let q = |f: f64| {
            s.points
                .iter()
                .find(|(_, c)| *c >= f)
                .map(|(v, _)| *v)
                .unwrap_or(f64::NAN)
        };
        t.row(vec![
            s.terminal.clone(),
            crate::report::fmt_num(s.mean_s),
            crate::report::fmt_num(q(0.5)),
            crate::report::fmt_num(q(0.9)),
        ]);
    }
    format!("Fig. 5b — GEO transparent-pipe registration latency\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_match_paper_headline() {
        let r = run();
        let inmarsat = r
            .series
            .iter()
            .find(|s| s.terminal.contains("Inmarsat"))
            .unwrap();
        let tiantong = r
            .series
            .iter()
            .find(|s| s.terminal.contains("SC310"))
            .unwrap();
        // Paper: 9.5 s and 13.5 s means. Allow sampling noise.
        assert!((inmarsat.mean_s - 9.5).abs() < 1.5, "{}", inmarsat.mean_s);
        assert!((tiantong.mean_s - 13.5).abs() < 2.0, "{}", tiantong.mean_s);
        assert!(tiantong.mean_s > inmarsat.mean_s);
    }

    #[test]
    fn cdf_is_monotone() {
        for s in run().series {
            for w in s.points.windows(2) {
                assert!(w[0].0 <= w[1].0);
                assert!(w[0].1 <= w[1].1);
            }
            let last = s.points.last().unwrap();
            assert!(last.1 > 0.95);
        }
    }

    #[test]
    fn latencies_exceed_physical_floor() {
        // Nothing can beat the serialized GEO round-trips.
        for s in run().series {
            assert!(s.points[0].0 >= 8.0 * 2.0 * GEO_ONE_WAY_S);
        }
    }

    #[test]
    fn run_obs_preserves_series_and_records_cross_crate_metrics() -> Result<(), serde_json::Error> {
        let plain = serde_json::to_string(&run())?;
        let disabled = sc_obs::Recorder::disabled();
        assert_eq!(serde_json::to_string(&run_obs(&disabled))?, plain);
        assert!(disabled.snapshot().is_empty());

        let rec = sc_obs::Recorder::new();
        assert_eq!(serde_json::to_string(&run_obs(&rec))?, plain);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("emu.fig05.terminals"), 2);
        assert_eq!(snap.counter("crypto.suci.concealments"), 2);
        assert_eq!(snap.counter("fiveg.procedures.c1_initial_registration"), 1);
        assert_eq!(snap.counter("netsim.sim.completed"), 1);
        assert!(snap.gauge("emu.fig05.pipe_replay_latency_ms").unwrap_or(0.0) > 1000.0);
        // The replay is traced: a C1 root span tagged "geo-pipe" with
        // the netsim tree hanging off it.
        let root = snap
            .spans
            .iter()
            .find(|s| s.kind == "fiveg.proc.c1_initial_registration")
            .expect("traced replay root span");
        assert!(root
            .fields
            .iter()
            .any(|(k, v)| *k == "route" && *v == sc_obs::FieldValue::from("geo-pipe")));
        assert!(snap
            .spans
            .iter()
            .any(|s| s.kind == "netsim.sim.procedure" && s.parent == Some(root.id)));
        // Deterministic: a second run emits the same bytes.
        let rec2 = sc_obs::Recorder::new();
        run_obs(&rec2);
        assert_eq!(
            rec.snapshot().to_json("fig05"),
            rec2.snapshot().to_json("fig05")
        );
        Ok(())
    }

    #[test]
    fn render_contains_both_terminals() {
        let txt = render(&run());
        assert!(txt.contains("Inmarsat"));
        assert!(txt.contains("SC310"));
    }
}
