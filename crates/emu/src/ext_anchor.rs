//! Extension experiment: the anchor-gateway bottleneck (Fig. 5a,
//! quantified).
//!
//! "At the data plane, each session is coupled to a remote anchor
//! gateway on the ground … this anchor gateway becomes the single-point
//! bottleneck since the global users' traffic would be redirected to
//! it" (§3.1). This experiment measures two things over the real
//! constellation and population:
//!
//! 1. **Triangular routing stretch** — for UE-to-UE flows, the legacy
//!    path (src → anchor gateway → dst) versus SpaceCore's direct
//!    geospatial relay, in delay;
//! 2. **Anchor concentration** — how much of the fleet's traffic lands
//!    on each gateway when sessions are home-anchored, versus
//!    SpaceCore's per-serving-satellite distribution.

use sc_dataset::population::PopulationModel;
use sc_orbit::{ConstellationConfig, GroundStationSet, IdealPropagator};
use serde::Serialize;
use spacecore::relay::GeoRelay;

/// Number of UE-to-UE flows sampled.
pub const FLOWS: usize = 60;

#[derive(Debug, Clone, Serialize)]
pub struct ExtAnchor {
    pub flows: Vec<FlowPoint>,
    /// Mean stretch (legacy delay / direct delay) over all flows.
    pub mean_stretch: f64,
    /// Worst-case stretch.
    pub worst_stretch: f64,
    /// Mean stretch over "remote regional" flows: endpoints within
    /// 5,000 km of each other and both > 5,000 km from the anchor —
    /// the international-expansion case of §2.2 where tromboning to the
    /// home hurts most.
    pub far_flow_stretch: f64,
    /// Fraction of flows anchored at the single busiest gateway
    /// (legacy) — 1/30 would be perfectly balanced.
    pub busiest_anchor_share: f64,
}

#[derive(Debug, Clone, Serialize)]
pub struct FlowPoint {
    pub src: (f64, f64),
    pub dst: (f64, f64),
    /// Direct geospatial-relay delay, ms.
    pub direct_ms: f64,
    /// Legacy via-anchor delay, ms.
    pub anchored_ms: f64,
    /// Which gateway anchored the legacy flow.
    pub anchor: usize,
}

/// Run the experiment.
pub fn run() -> ExtAnchor {
    let cfg = ConstellationConfig::starlink();
    let prop = IdealPropagator::new(cfg.clone());
    let stations = GroundStationSet::starlink_like();
    let relay = GeoRelay::for_shell(&cfg);
    let pop = PopulationModel::world_bank_like();

    // Sample flow endpoints from the population (home anchor: the
    // operator's home gateway — Beijing-side, index of the closest
    // station to the home market; the paper's testbed home).
    let endpoints = pop.sample_ues(2 * FLOWS, 0xF10);
    let home_gateway = stations
        .stations()
        .iter()
        .enumerate()
        .min_by(|a, b| {
            let home = sc_geo::GeoPoint::from_degrees(39.9, 116.4);
            a.1.location
                .distance_km(&home)
                .total_cmp(&b.1.location.distance_km(&home))
        })
        .map(|(i, _)| i)
        .expect("stations non-empty");

    let mut flows = Vec::new();
    let mut anchor_counts = vec![0u32; stations.len()];
    for i in 0..FLOWS {
        let src = endpoints[2 * i];
        let dst = endpoints[2 * i + 1];

        // Direct: Algorithm 1 ground-to-ground.
        let Some(direct) = relay.deliver_ground_to_ground(&prop, &src, &dst, 0.0, 1.0) else {
            continue;
        };
        if !direct.delivered {
            continue;
        }

        // Legacy anchored path over the same fabric: the session's
        // traffic is redirected through the home anchor's cell (the
        // anchor-UPF placement of Options 1-2), i.e. relay src → anchor
        // region, then anchor region → dst. Same routing function as
        // the direct case, so the comparison isolates the *tromboning*,
        // not routing-algorithm differences.
        let anchor_loc = stations.stations()[home_gateway].location;
        let Some(leg1) = relay.deliver_ground_to_ground(&prop, &src, &anchor_loc, 0.0, 1.0)
        else {
            continue;
        };
        let Some(leg2) = relay.deliver_ground_to_ground(&prop, &anchor_loc, &dst, 0.0, 1.0)
        else {
            continue;
        };
        if !leg1.delivered || !leg2.delivered {
            continue;
        }
        let anchored_ms = leg1.delay_ms + leg2.delay_ms + 2.0; // anchor processing

        anchor_counts[home_gateway] += 1;
        flows.push(FlowPoint {
            src: (src.lat.to_degrees(), src.lon.to_degrees()),
            dst: (dst.lat.to_degrees(), dst.lon.to_degrees()),
            direct_ms: direct.delay_ms,
            anchored_ms,
            anchor: home_gateway,
        });
    }

    let stretch_of = |f: &FlowPoint| f.anchored_ms / f.direct_ms.max(1e-9);
    let mean_stretch =
        flows.iter().map(stretch_of).sum::<f64>() / flows.len().max(1) as f64;
    let worst_stretch = flows.iter().map(stretch_of).fold(0.0, f64::max);
    let anchor_loc = stations.stations()[home_gateway].location;
    let far: Vec<&FlowPoint> = flows
        .iter()
        .filter(|f| {
            let s = sc_geo::GeoPoint::from_degrees(f.src.0, f.src.1);
            let d = sc_geo::GeoPoint::from_degrees(f.dst.0, f.dst.1);
            s.distance_km(&anchor_loc) > 5_000.0
                && d.distance_km(&anchor_loc) > 5_000.0
                && s.distance_km(&d) < 5_000.0
        })
        .collect();
    let far_flow_stretch = if far.is_empty() {
        f64::NAN
    } else {
        far.iter().map(|f| stretch_of(f)).sum::<f64>() / far.len() as f64
    };
    let busiest = anchor_counts.iter().max().copied().unwrap_or(0);
    let busiest_anchor_share = busiest as f64 / flows.len().max(1) as f64;

    ExtAnchor {
        flows,
        mean_stretch,
        worst_stretch,
        far_flow_stretch,
        busiest_anchor_share,
    }
}

/// Text rendering.
pub fn render(r: &ExtAnchor) -> String {
    let mut t = crate::report::TextTable::new(&[
        "src (lat,lon)",
        "dst (lat,lon)",
        "direct (ms)",
        "via anchor (ms)",
        "stretch",
    ]);
    for f in r.flows.iter().take(15) {
        t.row(vec![
            format!("{:.0},{:.0}", f.src.0, f.src.1),
            format!("{:.0},{:.0}", f.dst.0, f.dst.1),
            crate::report::fmt_num(f.direct_ms),
            crate::report::fmt_num(f.anchored_ms),
            format!("{:.2}x", f.anchored_ms / f.direct_ms.max(1e-9)),
        ]);
    }
    format!(
        "Extension — anchor-gateway bottleneck (Fig. 5a quantified)\n{}\nmean stretch {:.2}x (far flows {:.2}x, worst {:.2}x), busiest-anchor share {:.0}%\n",
        t.render(),
        r.mean_stretch,
        r.far_flow_stretch,
        r.worst_stretch,
        r.busiest_anchor_share * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn cached() -> &'static ExtAnchor {
        static CACHE: OnceLock<ExtAnchor> = OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn enough_flows_complete() {
        let r = cached();
        assert!(r.flows.len() > FLOWS / 2, "{}", r.flows.len());
    }

    #[test]
    fn anchoring_stretches_far_flows() {
        // Flows near the home anchor barely trombone (most subscribers
        // live near the home market); the bottleneck bites hardest for
        // regional flows far from home — the international-expansion
        // scenario the paper motivates (§2.2 value 1). Long-haul flows
        // can go either way: ISL grid paths (with their Walker-phasing
        // detours) compete with fiber, which is fine — the paper's claim
        // is about load concentration, asserted separately.
        let r = cached();
        assert!(r.far_flow_stretch > 1.5, "{}", r.far_flow_stretch);
        assert!(r.worst_stretch > 2.0, "{}", r.worst_stretch);
    }

    #[test]
    fn home_anchor_concentrates_everything() {
        // The legacy design pins every session of this operator to the
        // home gateway: a perfect single-point bottleneck.
        let r = cached();
        assert_eq!(r.busiest_anchor_share, 1.0);
    }

    #[test]
    fn direct_delays_reasonable() {
        let r = cached();
        for f in &r.flows {
            assert!(f.direct_ms > 0.0 && f.direct_ms < 800.0, "{f:?}");
            assert!(f.anchored_ms > 0.0 && f.anchored_ms < 2000.0, "{f:?}");
        }
    }
}
