//! Extension experiment (beyond the paper's figures): session survival
//! under serving-satellite crashes — the §3.3 / Fig. 13 failure regime
//! replayed message-by-message over the chaos-injected constellation.
//!
//! Scenario: a UE holds an active session; its serving satellite dies
//! (decay, Fig. 13a). The constellation around it is simultaneously
//! unhealthy — a seeded fraction of the fabric crashes (and recovers
//! after a configurable outage), and a post-failure radio loss burst
//! (Fig. 13b) is open while recovery runs. Each solution then executes
//! its crash-recovery exchange from
//! [`spacecore::recovery::RecoveryPlan`] over a
//! [`sc_netsim::chaos::FailureTimeline`]-driven [`ProcedureSim`]:
//! stateless SpaceCore re-establishes *locally* at the next visible
//! satellite from the UE's self-carried replica (4 messages), while the
//! stateful baselines must detect the loss and redo their home-routed
//! registration across the degraded ISL fabric. A session survives only
//! if the solution's IP can survive a serving-satellite change at all
//! (Fig. 21) *and* the recovery exchange completes within the service
//! deadline.
//!
//! Swept: crash rate × crash-recover duration × the five solutions.
//! Everything is seeded; reruns are byte-identical under any
//! `SC_EMU_THREADS`.

use sc_netsim::chaos::FailureTimeline;
use sc_netsim::failure::{LossProcess, Xorshift64};
use sc_netsim::isl::{IslConfig, IslNetwork};
use sc_netsim::sim::{ProcedureSim, SimConfig, SimStep};
use sc_orbit::{ConstellationConfig, GroundStationSet, IdealPropagator, SatId};
use serde::Serialize;
use spacecore::recovery::RecoveryPlan;
use spacecore::solutions::SolutionKind;

/// Fabric crash rates swept (fraction of satellites, Fig. 13a regime).
pub const CRASH_RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.15];
/// Crash-to-recover durations swept, ms (satellite replacement / reboot).
pub const RECOVER_MS: [f64; 2] = [500.0, 5_000.0];
/// Recovery runs per configuration.
pub const RUNS: u64 = 40;
/// Service-continuity deadline, ms: the session is lost if recovery has
/// not completed within this budget after the serving-satellite crash.
pub const DEADLINE_MS: f64 = 4_000.0;
/// Fabric crash times are drawn uniformly over this window, ms.
const HORIZON_MS: f64 = 5_000.0;
/// Post-failure radio loss burst (Fig. 13b): open over
/// `[0, BURST_MS)` after the crash, with this extra per-transmission
/// loss probability.
const BURST_MS: f64 = 2_500.0;
const BURST_P: f64 = 0.35;
/// Ambient per-*hop* signaling loss (`SimConfig::loss_per_hop`): long
/// and chaos-detoured ISL paths compound it, local exchanges dodge it.
const AMBIENT_LOSS: f64 = 0.005;
/// Base seeds (timeline schedule / burst draws / re-crash / ambient loss).
const SEED_TIMELINE: u64 = 0xC4A5;
const SEED_BURST: u64 = 0xB0B5;
const SEED_RECRASH: u64 = 0x5EC0;
const SEED_LOSS: u64 = 0x10_55;

#[derive(Debug, Clone, Serialize)]
pub struct ExtChaos {
    pub points: Vec<ChaosPoint>,
}

#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ChaosPoint {
    pub solution: String,
    /// Fraction of fabric satellites crashing during the window.
    pub crash_rate: f64,
    /// Outage duration before a crashed satellite recovers, ms.
    pub recover_ms: f64,
    /// Fraction of runs whose recovery exchange completed in budget.
    pub completion_rate: f64,
    /// Fraction of runs whose *session* survived: completion × the
    /// solution's Fig. 21 IP-stability gate.
    pub session_survival: f64,
    /// Mean detection + recovery-exchange latency over completed runs,
    /// ms; `None` (JSON `null`) when no run completed.
    pub mean_recovery_ms: Option<f64>,
    /// Mean transmissions per run (retries included).
    pub mean_transmissions: f64,
}

/// The recovery exchange as network legs: local plans run entirely on
/// the new serving satellite; home-routed plans ping-pong between it and
/// the gateway.
fn recovery_steps(plan: &RecoveryPlan, new_serving: usize, gateway: usize) -> Vec<SimStep> {
    // Static label table: `SimStep` labels are `&'static str` (no per-run
    // allocation), and the exchange is at most the 13 messages of a full
    // C2 re-run. Same "m<i>" strings the telemetry always carried.
    const M_LABELS: [&str; 13] = [
        "m1", "m2", "m3", "m4", "m5", "m6", "m7", "m8", "m9", "m10", "m11", "m12", "m13",
    ];
    assert!(
        plan.messages as usize <= M_LABELS.len(),
        "recovery exchange exceeds label table"
    );
    (0..plan.messages)
        .map(|i| {
            let (from, to) = if plan.local {
                (new_serving, new_serving)
            } else if i % 2 == 0 {
                (new_serving, gateway)
            } else {
                (gateway, new_serving)
            };
            SimStep {
                label: M_LABELS[i as usize],
                from,
                to,
            }
        })
        .collect()
}

/// Chaos-hardened simulator settings: exponential backoff with a cap,
/// partitions treated as transient, all bounded by what is left of the
/// service deadline once the solution has detected the crash.
fn chaos_config(plan: &RecoveryPlan) -> SimConfig {
    SimConfig {
        rto_ms: 400.0,
        max_attempts: 8,
        backoff_factor: 2.0,
        rto_cap_ms: 3_200.0,
        retry_on_partition: true,
        total_deadline_ms: (DEADLINE_MS - plan.detection_delay_ms).max(0.0),
        loss_per_hop: true,
        ..SimConfig::default()
    }
}

struct Cell {
    kind: SolutionKind,
    crash_rate: f64,
    recover_ms: f64,
}

fn run_cell(net: &IslNetwork, cell: &Cell, rec: &sc_obs::Recorder) -> ChaosPoint {
    let old_serving = net.sat_node(SatId::new(10, 5));
    let new_serving = net.sat_node(SatId::new(10, 6)); // next along the plane
    let gateway = net.ground_node(0);
    let plan = RecoveryPlan::for_solution(cell.kind);
    let steps = recovery_steps(&plan, new_serving, gateway);
    let cfg = chaos_config(&plan);

    rec.inc("emu.ext_chaos.cells", 1);
    let mut completed = 0u64;
    let mut lat_sum = 0.0;
    let mut tx_sum = 0u64;
    for run in 0..RUNS {
        // The solution's clock starts when it *detects* the crash, so
        // the absolute loss-burst window shifts into its frame.
        let burst_left = (BURST_MS - plan.detection_delay_ms).max(0.0);
        let mut tl = FailureTimeline::random_crashes(
            net.num_sats(),
            cell.crash_rate,
            HORIZON_MS,
            Some(cell.recover_ms),
            SEED_TIMELINE ^ (run * 7 + 1),
        )
        .without_node(new_serving)
        .crash(0.0, old_serving)
        .loss_burst(0.0, burst_left, BURST_P)
        .with_seed(SEED_BURST ^ run);
        // The replacement satellite is itself subject to the fabric
        // crash rate: with probability `crash_rate` it too dies, at a
        // uniform time inside the deadline window, and comes back after
        // `recover_ms`. Fast local recovery has a short exposure window
        // and usually finishes before the blow lands — or rides it out
        // as a transient partition; slow home-routed recovery is almost
        // always caught mid-exchange.
        let mut recrash = Xorshift64::new(SEED_RECRASH ^ (run * 31 + 1));
        if recrash.next_f64() < cell.crash_rate {
            let t = recrash.next_f64() * DEADLINE_MS;
            tl = tl.crash(t, new_serving).recover(t + cell.recover_ms, new_serving);
        }
        // Telemetry for the first run of each cell only: counters stay
        // cheap, and the chaos event stream stays bounded while still
        // exercising every metric (the schedule is seeded per run, so
        // run 0 is representative).
        let run_rec = if run == 0 {
            rec.clone()
        } else {
            sc_obs::Recorder::disabled()
        };
        let sim = ProcedureSim::with_timeline(net.graph(), &tl, cfg.clone()).with_recorder(run_rec);
        let mut loss = LossProcess::new(AMBIENT_LOSS, SEED_LOSS ^ (run * 13 + 1));
        let o = sim.run(&steps, &mut loss);
        rec.inc("emu.ext_chaos.runs", 1);
        if o.completed {
            completed += 1;
            lat_sum += plan.detection_delay_ms + o.latency_ms;
            if plan.ip_survives {
                rec.inc("emu.ext_chaos.survivals", 1);
            }
        }
        tx_sum += o.transmissions as u64;
    }

    let completion_rate = completed as f64 / RUNS as f64;
    ChaosPoint {
        solution: cell.kind.name().to_string(),
        crash_rate: cell.crash_rate,
        recover_ms: cell.recover_ms,
        completion_rate,
        session_survival: if plan.ip_survives {
            completion_rate
        } else {
            0.0
        },
        mean_recovery_ms: if completed > 0 {
            Some(lat_sum / completed as f64)
        } else {
            None
        },
        mean_transmissions: tx_sum as f64 / RUNS as f64,
    }
}

/// Run the experiment with the default worker count.
pub fn run() -> ExtChaos {
    run_obs(&sc_obs::Recorder::disabled())
}

/// [`run`] with telemetry.
pub fn run_obs(obs: &sc_obs::Recorder) -> ExtChaos {
    run_with(crate::engine::thread_count(), obs)
}

/// [`run`] with an explicit worker count; the result — and the merged
/// telemetry — is byte-identical for every `threads` value.
pub fn run_with(threads: usize, obs: &sc_obs::Recorder) -> ExtChaos {
    let cfg = ConstellationConfig::starlink();
    let prop = IdealPropagator::new(cfg.clone());
    let stations = GroundStationSet::starlink_like();
    let net = IslNetwork::build(&prop, &stations, 0.0, IslConfig::default());

    let mut cells = Vec::new();
    for kind in SolutionKind::ALL {
        for crash_rate in CRASH_RATES {
            for recover_ms in RECOVER_MS {
                cells.push(Cell {
                    kind,
                    crash_rate,
                    recover_ms,
                });
            }
        }
    }
    let points = crate::engine::parallel_map_obs_with(threads, obs, cells, |cell, rec| {
        run_cell(&net, &cell, rec)
    });
    ExtChaos { points }
}

/// Text rendering.
pub fn render(r: &ExtChaos) -> String {
    let mut t = crate::report::TextTable::new(&[
        "solution",
        "crash rate",
        "recover (ms)",
        "completion",
        "session survival",
        "mean recovery (ms)",
        "mean tx",
    ]);
    for p in &r.points {
        t.row(vec![
            p.solution.clone(),
            format!("{:.0}%", p.crash_rate * 100.0),
            format!("{:.0}", p.recover_ms),
            format!("{:.0}%", p.completion_rate * 100.0),
            format!("{:.0}%", p.session_survival * 100.0),
            match p.mean_recovery_ms {
                Some(ms) => crate::report::fmt_num(ms),
                None => "-".into(),
            },
            crate::report::fmt_num(p.mean_transmissions),
        ]);
    }
    format!(
        "Extension — session survival under serving-satellite crashes (chaos DES over Starlink)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Deterministic; run once for all tests.
    fn cached() -> &'static ExtChaos {
        static CACHE: OnceLock<ExtChaos> = OnceLock::new();
        CACHE.get_or_init(run)
    }

    fn points_at(r: &ExtChaos, crash: f64, recover: f64) -> Vec<&ChaosPoint> {
        r.points
            .iter()
            .filter(|p| p.crash_rate == crash && p.recover_ms == recover)
            .collect()
    }

    #[test]
    fn stateless_survival_strictly_dominates_at_every_nonzero_crash_rate() {
        // The headline acceptance criterion: stateless local
        // re-establishment sustains strictly higher session survival
        // than every stateful baseline in every nonzero-crash-rate cell.
        let r = cached();
        for crash in CRASH_RATES.into_iter().filter(|c| *c > 0.0) {
            for recover in RECOVER_MS {
                let cell = points_at(r, crash, recover);
                let sc = cell
                    .iter()
                    .find(|p| p.solution == "SpaceCore")
                    .expect("SpaceCore point");
                for p in &cell {
                    if p.solution != "SpaceCore" {
                        assert!(
                            sc.session_survival > p.session_survival,
                            "crash {crash} recover {recover}: SpaceCore {} vs {} {}",
                            sc.session_survival,
                            p.solution,
                            p.session_survival
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn satellite_bound_ips_never_survive() {
        // SkyCore/Baoyun/DPCM bind the UE's address to the dead
        // satellite (Fig. 21): zero survival even when their recovery
        // exchange completes.
        let r = cached();
        for p in &r.points {
            if matches!(p.solution.as_str(), "SkyCore" | "Baoyun" | "DPCM") {
                assert_eq!(p.session_survival, 0.0, "{}", p.solution);
            }
        }
    }

    #[test]
    fn local_recovery_is_fast_and_robust() {
        let r = cached();
        for p in &r.points {
            if p.solution == "SpaceCore" {
                assert!(p.session_survival >= 0.9, "{p:?}");
                if let Some(ms) = p.mean_recovery_ms {
                    assert!(ms < DEADLINE_MS, "{p:?}");
                }
            }
        }
    }

    #[test]
    fn home_routed_recovery_pays_in_latency() {
        // Where 5G NTN recovers at all, it is slower than SpaceCore's
        // local path in the same cell.
        let r = cached();
        for crash in CRASH_RATES {
            for recover in RECOVER_MS {
                let cell = points_at(r, crash, recover);
                let sc = cell.iter().find(|p| p.solution == "SpaceCore").unwrap();
                let ntn = cell.iter().find(|p| p.solution == "5G NTN").unwrap();
                if let (Some(sc_ms), Some(ntn_ms)) = (sc.mean_recovery_ms, ntn.mean_recovery_ms) {
                    assert!(sc_ms < ntn_ms, "crash {crash} recover {recover}");
                }
            }
        }
    }

    #[test]
    fn every_cell_present() {
        let r = cached();
        assert_eq!(
            r.points.len(),
            SolutionKind::ALL.len() * CRASH_RATES.len() * RECOVER_MS.len()
        );
    }

    #[test]
    fn parallel_and_serial_runs_bit_identical_with_telemetry() {
        let reference = {
            let obs = sc_obs::Recorder::new();
            let r = run_with(1, &obs);
            (
                serde_json::to_string(&r).unwrap(),
                obs.snapshot().to_json("t"),
            )
        };
        for threads in [2, 4] {
            let obs = sc_obs::Recorder::new();
            let r = run_with(threads, &obs);
            assert_eq!(
                serde_json::to_string(&r).unwrap(),
                reference.0,
                "threads={threads}"
            );
            assert_eq!(obs.snapshot().to_json("t"), reference.1, "threads={threads}");
        }
    }

    #[test]
    fn telemetry_covers_chaos_and_recovery_metrics() {
        let obs = sc_obs::Recorder::new();
        let _ = run_with(1, &obs);
        let s = obs.snapshot();
        assert!(s.counter("netsim.chaos.crashes") > 0);
        assert!(s.counter("netsim.chaos.recoveries") > 0);
        assert!(s.counter("netsim.chaos.burst_windows") > 0);
        assert!(s.counter("netsim.chaos.burst_losses") > 0);
        assert_eq!(
            s.counter("emu.ext_chaos.runs"),
            (SolutionKind::ALL.len() * CRASH_RATES.len() * RECOVER_MS.len()) as u64 * RUNS
        );
        assert!(s.counter("emu.ext_chaos.survivals") > 0);
        assert!(s.events.iter().any(|e| e.kind == "chaos.crash"));
        assert!(s.events.iter().any(|e| e.kind == "chaos.recover"));
    }
}
