//! Experiment harness: one module per table/figure of the paper's
//! evaluation, each with a `run()` entry point returning a serializable
//! result and a text renderer that prints the same rows/series the paper
//! reports.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig05`] | Fig. 5b — registration latency through GEO transparent pipes |
//! | [`fig07`] | Fig. 7 — satellite CPU breakdown by core function |
//! | [`fig08`] | Fig. 8 — signaling latency vs. load on satellite hardware |
//! | [`fig10`] | Fig. 10 — signaling storms: 4 options × 4 constellations |
//! | [`fig12`] | Fig. 12 — temporal dynamics of one satellite over an orbit |
//! | [`fig13`] | Fig. 13 — failure-process inputs: satellite decay + frame-error bursts |
//! | [`table3`] | Table 3 — geospatial cell sizes per constellation |
//! | [`fig17`] | Fig. 17 — prototype latency/CPU: 5 solutions × 3 procedures |
//! | [`fig18`] | Fig. 18 — ABE micro-bench + geospatial relay ideal vs. J4 |
//! | [`fig19`] | Fig. 19 — state leakage under hijack / man-in-the-middle |
//! | [`fig20`] | Fig. 20 — signaling overhead: 5 solutions × 4 constellations |
//! | [`table4`] | Table 4 — SpaceCore's signaling reduction factors |
//! | [`fig21`] | Fig. 21 — user-level ping/TCP stalling in satellite mobility |
//!
//! Every experiment is deterministic (seeded), emits JSON via `serde`,
//! and is exercised by both a binary (`cargo run -p sc-emu --bin figNN`)
//! and a Criterion bench target (`crates/bench`).
//!
//! Sweeps fan independent cells out over the [`engine`] worker pool
//! (`SC_EMU_THREADS` overrides the worker count); results are ordered
//! deterministically, so the emitted JSON is bit-identical to a
//! single-threaded run. Binaries report wall-clock and thread count on
//! stderr via [`report::timed`].
//!
//! Every binary can also emit a deterministic `sc-obs` telemetry
//! sidecar ([`obs::ObsSink`], enabled by `--obs-out <path>` or
//! `SC_OBS=1`): sorted, byte-stable JSON spanning the netsim DES, the
//! 5G signaling paths, the crypto layer, and SpaceCore itself. Parallel
//! sweeps record through per-cell child recorders merged in input-slot
//! order ([`engine::parallel_map_obs_with`]), so the sidecar is
//! byte-identical across thread counts too. Schema and metric registry:
//! `docs/TELEMETRY.md`.

pub mod churn;
pub mod engine;
pub mod ext_anchor;
pub mod ext_chaos;
pub mod ext_chaosload;
pub mod ext_iot;
pub mod ext_mload;
pub mod ext_resilience;
pub mod ext_scaling;
pub mod fig05;
pub mod fig07;
pub mod fig08;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod obs;
pub mod report;
pub mod table3;
pub mod table4;
