//! Parallel experiment engine.
//!
//! Every sweep in this crate is an embarrassingly-parallel map: a list
//! of independent cells (constellation × solution, time step, shell,
//! traffic mix) each producing a result from pure inputs.
//! [`parallel_map`] fans those cells out over scoped threads
//! (`std::thread::scope` — no extra runtime dependency) and writes each
//! result into its input's slot, so output order — and therefore the
//! serialized JSON — is identical to a serial `map`, regardless of
//! thread count or scheduling.
//!
//! Worker count comes from the `SC_EMU_THREADS` environment variable,
//! defaulting to the machine's available parallelism. `SC_EMU_THREADS=1`
//! runs the map inline on the caller's thread, which is also the
//! fallback when an experiment has a single cell.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count: `SC_EMU_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    std::env::var("SC_EMU_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Map `f` over `items` using [`thread_count`] workers, preserving
/// input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(thread_count(), items, f)
}

/// [`parallel_map`] with an explicit worker count. The result is the
/// same as `items.into_iter().map(f).collect()` for every `threads`
/// value; tests use `threads = 1` as the serial reference.
pub fn parallel_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Dynamic (work-stealing) distribution: workers claim the next
    // unprocessed index, so uneven cell costs — Iridium vs Kuiper-scale
    // shells — don't leave threads idle. Results land in their input's
    // slot, making the output order deterministic.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .take()
                    .expect("each slot is claimed exactly once");
                let r = f(item);
                *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("every slot was computed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let serial: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for threads in [1, 2, 4, 16, 128] {
            let got = parallel_map_with(threads, items.clone(), |i| i * 3);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map_with(8, Vec::<u32>::new(), |i| i), vec![]);
        assert_eq!(parallel_map_with(8, vec![7u32], |i| i + 1), vec![8]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make early items the slowest so a naive chunked split would
        // reorder completion; slot placement must still win.
        let items: Vec<u64> = (0..32).collect();
        let got = parallel_map_with(8, items.clone(), |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * i
        });
        let want: Vec<u64> = items.iter().map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn thread_count_env_override() {
        // The default path: either the env var (when this test runs
        // under a wrapper that sets it) or available parallelism — both
        // must be at least 1.
        assert!(thread_count() >= 1);
    }

    #[test]
    fn non_copy_items_and_results() {
        let items: Vec<String> = (0..20).map(|i| format!("cell-{i}")).collect();
        let got = parallel_map_with(4, items.clone(), |s| s.len());
        let want: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(got, want);
    }
}
