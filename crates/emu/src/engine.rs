//! Parallel experiment engine.
//!
//! Every sweep in this crate is an embarrassingly-parallel map: a list
//! of independent cells (constellation × solution, time step, shell,
//! traffic mix) each producing a result from pure inputs.
//! [`parallel_map`] fans those cells out over scoped threads
//! (`std::thread::scope` — no extra runtime dependency) and writes each
//! result into its input's slot, so output order — and therefore the
//! serialized JSON — is identical to a serial `map`, regardless of
//! thread count or scheduling.
//!
//! Worker count comes from the `SC_EMU_THREADS` environment variable,
//! defaulting to the machine's available parallelism. `SC_EMU_THREADS=1`
//! runs the map inline on the caller's thread, which is also the
//! fallback when an experiment has a single cell.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count: `SC_EMU_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    std::env::var("SC_EMU_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Map `f` over `items` using [`thread_count`] workers, preserving
/// input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(thread_count(), items, f)
}

/// [`parallel_map`] with an explicit worker count. The result is the
/// same as `items.into_iter().map(f).collect()` for every `threads`
/// value; tests use `threads = 1` as the serial reference.
pub fn parallel_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Dynamic (work-stealing) distribution: workers claim the next
    // unprocessed index, so uneven cell costs — Iridium vs Kuiper-scale
    // shells — don't leave threads idle. Results land in their input's
    // slot, making the output order deterministic.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // sc-audit: allow(parallel, reason = "per-index slot lock; fetch_add hands each index to exactly one worker, so there is no cross-thread contention and the read is order-free")
                let mut slot = slots[i].lock().unwrap_or_else(|p| p.into_inner());
                let item = slot.take().expect("each slot is claimed exactly once");
                drop(slot);
                let r = f(item);
                // sc-audit: allow(parallel, reason = "slot-ordered result write: output lands in its input's index, so completion order cannot leak into the collected Vec")
                *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("every slot was computed")
        })
        .collect()
}

/// [`parallel_map_with`] with telemetry: each item runs against its own
/// child recorder, and the children are merged back into `obs` in input
/// order after the map completes. Counters/histograms commute and events
/// append in slot order, so the merged snapshot — and therefore the
/// emitted `telemetry.json` — is byte-identical for every `threads`
/// value. When `obs` is disabled the children are disabled too and the
/// whole scheme costs nothing.
pub fn parallel_map_obs_with<T, R, F>(
    threads: usize,
    obs: &sc_obs::Recorder,
    items: Vec<T>,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T, &sc_obs::Recorder) -> R + Sync,
{
    let children: Vec<sc_obs::Recorder> = (0..items.len()).map(|_| obs.child()).collect();
    let paired: Vec<(T, sc_obs::Recorder)> =
        items.into_iter().zip(children.iter().cloned()).collect();
    let results = parallel_map_with(threads, paired, |(item, rec)| f(item, &rec));
    for c in &children {
        obs.absorb(c);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let serial: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for threads in [1, 2, 4, 16, 128] {
            let got = parallel_map_with(threads, items.clone(), |i| i * 3);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(parallel_map_with(8, Vec::<u32>::new(), |i| i), vec![]);
        assert_eq!(parallel_map_with(8, vec![7u32], |i| i + 1), vec![8]);
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make early items the slowest so a naive chunked split would
        // reorder completion; slot placement must still win.
        let items: Vec<u64> = (0..32).collect();
        let got = parallel_map_with(8, items.clone(), |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * i
        });
        let want: Vec<u64> = items.iter().map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn thread_count_env_override() {
        // The default path: either the env var (when this test runs
        // under a wrapper that sets it) or available parallelism — both
        // must be at least 1.
        assert!(thread_count() >= 1);
    }

    #[test]
    fn obs_map_merges_thread_invariantly() {
        let items: Vec<u64> = (0..24).collect();
        let reference = {
            let obs = sc_obs::Recorder::new();
            for &i in &items {
                obs.inc("cells", 1);
                obs.observe("value", i as f64);
                obs.event(i as f64, "cell", vec![("i", sc_obs::FieldValue::from(i))]);
            }
            obs.snapshot().to_json("t")
        };
        for threads in [1, 2, 4, 16] {
            let obs = sc_obs::Recorder::new();
            let got = parallel_map_obs_with(threads, &obs, items.clone(), |i, rec| {
                rec.inc("cells", 1);
                rec.observe("value", i as f64);
                rec.event(i as f64, "cell", vec![("i", sc_obs::FieldValue::from(i))]);
                i * 2
            });
            assert_eq!(got, items.iter().map(|i| i * 2).collect::<Vec<_>>());
            assert_eq!(obs.snapshot().to_json("t"), reference, "threads={threads}");
        }
    }

    #[test]
    fn obs_map_disabled_recorder_stays_empty() {
        let obs = sc_obs::Recorder::disabled();
        let got = parallel_map_obs_with(4, &obs, vec![1u32, 2, 3], |i, rec| {
            rec.inc("cells", 1);
            i
        });
        assert_eq!(got, vec![1, 2, 3]);
        assert!(obs.snapshot().is_empty());
    }

    #[test]
    fn non_copy_items_and_results() {
        let items: Vec<String> = (0..20).map(|i| format!("cell-{i}")).collect();
        let got = parallel_map_with(4, items.clone(), |s| s.len());
        let want: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(got, want);
    }
}
