//! Stateless churn-randomness primitives shared by the sharded load
//! engines (`ext_mload`, `ext_chaosload`).
//!
//! The engines' determinism contract — results and telemetry
//! byte-identical across `SC_EMU_THREADS` and shard counts — rests on
//! every random draw being a *pure hash* of `(seed, entity, draw#)`
//! rather than a stateful RNG: a UE's own events are totally ordered by
//! its shard's DES, so its draw counter sequence (and therefore every
//! value) is identical under any shard layout or thread schedule.

/// splitmix64 finalizer: the stateless per-UE hash stream.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Uniform `[0, 1)` draw for `(seed, ue, draw#)` — a pure hash, so the
/// value depends only on the UE's own draw counter, never on which
/// shard or thread evaluates it.
pub fn ue_unit(seed: u64, ue: u32, draw: u32) -> f64 {
    let h = mix64(seed ^ mix64(((ue as u64) << 32) | draw as u64));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Exponential draw with mean `mean_s`, clamped to `floor_s` (the
/// engines pass their `MIN_DELAY_S` batch-window contract). The clamp
/// shifts < 1% of the mass for the ≥ 100 s means used here.
pub fn exp_clamped(mean_s: f64, u: f64, floor_s: f64) -> f64 {
    (-mean_s * (1.0 - u).max(1e-12).ln()).max(floor_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ue_unit_is_a_pure_function_of_the_key() {
        for (seed, ue, draw) in [(0u64, 0u32, 0u32), (7, 42, 9), (u64::MAX, u32::MAX, u32::MAX)] {
            assert_eq!(ue_unit(seed, ue, draw), ue_unit(seed, ue, draw));
            assert!((0.0..1.0).contains(&ue_unit(seed, ue, draw)));
        }
        assert_ne!(ue_unit(1, 2, 3), ue_unit(1, 2, 4));
        assert_ne!(ue_unit(1, 2, 3), ue_unit(1, 3, 3));
        assert_ne!(ue_unit(1, 2, 3), ue_unit(2, 2, 3));
    }

    #[test]
    fn exp_clamped_floors_at_the_batch_window() {
        assert_eq!(exp_clamped(100.0, 0.0, 1.0), 1.0);
        assert!(exp_clamped(100.0, 0.999, 0.25) > 100.0);
        for i in 0..1000 {
            assert!(exp_clamped(106.9, ue_unit(4, 1, i), 1.0) >= 1.0);
        }
    }
}
