//! Extension experiment: how SpaceCore's advantage scales with
//! constellation size.
//!
//! The paper closes with "a native stateless architecture in 5G and
//! beyond would be necessary to unleash the potential of LEO
//! mega-constellations" (§7). This experiment makes that trend concrete:
//! the per-satellite signaling reduction versus the legacy 5G NTN
//! design, as the shell grows from Iridium-class (66 satellites) through
//! the Table 1 presets to a hypothetical second-generation shell —
//! stateful designs pay more per satellite as relaying fan-in grows,
//! while SpaceCore's per-satellite cost is size-independent.

use sc_orbit::ConstellationConfig;
use serde::Serialize;
use spacecore::solutions::{Solution, SolutionKind};

#[derive(Debug, Clone, Serialize)]
pub struct ExtScaling {
    pub points: Vec<ScalePoint>,
}

#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    pub shell: String,
    pub total_sats: usize,
    pub spacecore_sat_msgs: f64,
    pub ntn_sat_msgs: f64,
    pub reduction: f64,
}

/// Hypothetical next-generation shell (Starlink Gen2-class density).
fn gen2() -> ConstellationConfig {
    ConstellationConfig {
        name: "Gen2 (hypothetical)",
        planes: 120,
        sats_per_plane: 60,
        altitude_km: 500.0,
        inclination_rad: 53f64.to_radians(),
        phasing: 30,
        min_elevation_rad: 25f64.to_radians(),
    }
}

/// Run at 30K capacity across shells of increasing size.
pub fn run() -> ExtScaling {
    run_with(crate::engine::thread_count())
}

/// Run with an explicit worker count. One cell per shell; output is
/// identical for every `threads` value.
pub fn run_with(threads: usize) -> ExtScaling {
    let mut shells: Vec<ConstellationConfig> = ConstellationConfig::all_presets().to_vec();
    shells.push(gen2());
    shells.sort_by_key(|c| c.total_sats());
    let cap = 30_000;
    let points = crate::engine::parallel_map_with(threads, shells, |cfg| {
        let sc = Solution::new(SolutionKind::SpaceCore, cfg.clone()).sat_msgs_per_s(cap);
        let ntn = Solution::new(SolutionKind::FiveGNtn, cfg.clone()).sat_msgs_per_s(cap);
        ScalePoint {
            shell: cfg.name.to_string(),
            total_sats: cfg.total_sats(),
            spacecore_sat_msgs: sc,
            ntn_sat_msgs: ntn,
            reduction: ntn / sc,
        }
    });
    ExtScaling { points }
}

/// Text rendering.
pub fn render(r: &ExtScaling) -> String {
    let mut t = crate::report::TextTable::new(&[
        "shell",
        "satellites",
        "SpaceCore msg/s",
        "5G NTN msg/s",
        "reduction",
    ]);
    for p in &r.points {
        t.row(vec![
            p.shell.clone(),
            p.total_sats.to_string(),
            crate::report::fmt_num(p.spacecore_sat_msgs),
            crate::report::fmt_num(p.ntn_sat_msgs),
            format!("{:.1}x", p.reduction),
        ]);
    }
    format!(
        "Extension — SpaceCore's advantage vs. constellation scale (30K capacity)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_json_bit_identical_to_serial() {
        let serial = serde_json::to_string_pretty(&run_with(1)).unwrap();
        for threads in [2, 8] {
            let parallel = serde_json::to_string_pretty(&run_with(threads)).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn reduction_grows_with_constellation_size() {
        // The closing claim: bigger constellations need statelessness
        // more. Reductions must be monotone in shell size.
        let r = run();
        for w in r.points.windows(2) {
            assert!(w[0].total_sats < w[1].total_sats);
            assert!(
                w[1].reduction > w[0].reduction,
                "{} {} -> {} {}",
                w[0].shell,
                w[0].reduction,
                w[1].shell,
                w[1].reduction
            );
        }
    }

    #[test]
    fn spacecore_cost_size_independent() {
        // SpaceCore's per-satellite cost depends on served users only,
        // not on the fleet size — identical across same-workload shells
        // up to the transit-time geometry factor.
        let r = run();
        let min = r
            .points
            .iter()
            .map(|p| p.spacecore_sat_msgs)
            .fold(f64::INFINITY, f64::min);
        let max = r
            .points
            .iter()
            .map(|p| p.spacecore_sat_msgs)
            .fold(0.0, f64::max);
        assert!(max / min < 1.5, "{min}..{max}");
    }

    #[test]
    fn gen2_included_and_largest() {
        let r = run();
        let last = r.points.last().unwrap();
        assert!(last.shell.contains("Gen2"));
        assert_eq!(last.total_sats, 7200);
    }
}
