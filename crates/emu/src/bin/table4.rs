//! Regenerates table4 of the paper. Prints the table and writes
//! `results/table4.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — see docs/TELEMETRY.md).

fn main() {
    sc_emu::obs::run_cli(
        "table4",
        |rec| {
            rec.inc("emu.table4.runs", 1);
            sc_emu::table4::run()
        },
        sc_emu::table4::render,
    );
}
