//! Regenerates table4 of the paper. Prints the table and writes
//! `results/table4.json`.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("table4");
    obs.recorder().inc("emu.table4.runs", 1);
    let (r, timing) = sc_emu::report::timed("table4", sc_emu::table4::run);
    timing.eprint();
    println!("{}", sc_emu::table4::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/table4.json", json).expect("write json");
    eprintln!("wrote results/table4.json");
    obs.write();
}
