fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        sc_emu::obs::run_cli(
            "ext_chaosload",
            sc_emu::ext_chaosload::run_smoke_obs,
            sc_emu::ext_chaosload::render,
        );
    } else {
        sc_emu::obs::run_cli(
            "ext_chaosload",
            sc_emu::ext_chaosload::run_obs,
            sc_emu::ext_chaosload::render,
        );
    }
}
