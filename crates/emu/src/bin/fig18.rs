//! Regenerates fig18 of the paper. Prints the table and writes
//! `results/fig18.json`.

fn main() {
    let (r, timing) = sc_emu::report::timed("fig18", sc_emu::fig18::run);
    timing.eprint();
    println!("{}", sc_emu::fig18::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig18.json", json).expect("write json");
    eprintln!("wrote results/fig18.json");
}
