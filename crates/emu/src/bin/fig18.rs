//! Regenerates fig18 of the paper. Prints the table and writes
//! `results/fig18.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — the sidecar carries counts only, never the
//! wall-clock panel-(a) timings; see docs/TELEMETRY.md).

fn main() {
    sc_emu::obs::run_cli("fig18", sc_emu::fig18::run_obs, sc_emu::fig18::render);
}
