//! Regenerates fig18 of the paper. Prints the table and writes
//! `results/fig18.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — the sidecar carries counts only, never the
//! wall-clock panel-(a) timings; see docs/TELEMETRY.md).

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("fig18");
    let rec = obs.recorder();
    let (r, timing) = sc_emu::report::timed("fig18", || sc_emu::fig18::run_obs(&rec));
    timing.eprint();
    println!("{}", sc_emu::fig18::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig18.json", json).expect("write json");
    eprintln!("wrote results/fig18.json");
    obs.write();
}
