//! Extension experiment: anchor-gateway bottleneck.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("ext_anchor");
    obs.recorder().inc("emu.ext_anchor.runs", 1);
    let (r, timing) = sc_emu::report::timed("ext_anchor", sc_emu::ext_anchor::run);
    timing.eprint();
    println!("{}", sc_emu::ext_anchor::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/ext_anchor.json",
        serde_json::to_string_pretty(&r).expect("serialize"),
    )
    .expect("write json");
    eprintln!("wrote results/ext_anchor.json");
    obs.write();
}
