//! Extension experiment: anchor-gateway bottleneck.

fn main() {
    sc_emu::obs::run_cli(
        "ext_anchor",
        |rec| {
            rec.inc("emu.ext_anchor.runs", 1);
            sc_emu::ext_anchor::run()
        },
        sc_emu::ext_anchor::render,
    );
}
