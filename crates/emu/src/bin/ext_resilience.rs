//! Extension experiment: message-level procedure resilience.

fn main() {
    sc_emu::obs::run_cli(
        "ext_resilience",
        |rec| {
            rec.inc("emu.ext_resilience.runs", 1);
            sc_emu::ext_resilience::run()
        },
        sc_emu::ext_resilience::render,
    );
}
