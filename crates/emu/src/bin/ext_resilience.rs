//! Extension experiment: message-level procedure resilience.

fn main() {
    let r = sc_emu::ext_resilience::run();
    println!("{}", sc_emu::ext_resilience::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/ext_resilience.json",
        serde_json::to_string_pretty(&r).expect("serialize"),
    )
    .expect("write json");
    eprintln!("wrote results/ext_resilience.json");
}
