//! Extension experiment: message-level procedure resilience.

fn main() {
    let (r, timing) = sc_emu::report::timed("ext_resilience", sc_emu::ext_resilience::run);
    timing.eprint();
    println!("{}", sc_emu::ext_resilience::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/ext_resilience.json",
        serde_json::to_string_pretty(&r).expect("serialize"),
    )
    .expect("write json");
    eprintln!("wrote results/ext_resilience.json");
}
