//! Extension experiment: message-level procedure resilience.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("ext_resilience");
    obs.recorder().inc("emu.ext_resilience.runs", 1);
    let (r, timing) = sc_emu::report::timed("ext_resilience", sc_emu::ext_resilience::run);
    timing.eprint();
    println!("{}", sc_emu::ext_resilience::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/ext_resilience.json",
        serde_json::to_string_pretty(&r).expect("serialize"),
    )
    .expect("write json");
    eprintln!("wrote results/ext_resilience.json");
    obs.write();
}
