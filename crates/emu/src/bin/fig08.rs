//! Regenerates fig08 of the paper. Prints the table and writes
//! `results/fig08.json`.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("fig08");
    obs.recorder().inc("emu.fig08.runs", 1);
    let (r, timing) = sc_emu::report::timed("fig08", sc_emu::fig08::run);
    timing.eprint();
    println!("{}", sc_emu::fig08::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig08.json", json).expect("write json");
    eprintln!("wrote results/fig08.json");
    obs.write();
}
