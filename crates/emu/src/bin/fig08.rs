//! Regenerates fig08 of the paper. Prints the table and writes
//! `results/fig08.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — see docs/TELEMETRY.md).

fn main() {
    sc_emu::obs::run_cli(
        "fig08",
        |rec| {
            rec.inc("emu.fig08.runs", 1);
            sc_emu::fig08::run()
        },
        sc_emu::fig08::render,
    );
}
