//! Regenerates fig08 of the paper. Prints the table and writes
//! `results/fig08.json`.

fn main() {
    let r = sc_emu::fig08::run();
    println!("{}", sc_emu::fig08::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig08.json", json).expect("write json");
    eprintln!("wrote results/fig08.json");
}
