//! Regenerates fig20 of the paper. Prints the table and writes
//! `results/fig20.json`.

fn main() {
    let obs = sc_emu::obs::ObsSink::from_env("fig20");
    obs.recorder().inc("emu.fig20.runs", 1);
    let (r, timing) = sc_emu::report::timed("fig20", sc_emu::fig20::run);
    timing.eprint();
    println!("{}", sc_emu::fig20::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&r).expect("serialize");
    std::fs::write("results/fig20.json", json).expect("write json");
    eprintln!("wrote results/fig20.json");
    obs.write();
}
