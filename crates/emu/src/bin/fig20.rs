//! Regenerates fig20 of the paper. Prints the table and writes
//! `results/fig20.json` (plus a telemetry sidecar when `--obs-out` or
//! `SC_OBS=1` is given — see docs/TELEMETRY.md).

fn main() {
    sc_emu::obs::run_cli(
        "fig20",
        |rec| {
            rec.inc("emu.fig20.runs", 1);
            sc_emu::fig20::run()
        },
        sc_emu::fig20::render,
    );
}
