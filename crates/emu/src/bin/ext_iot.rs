//! Extension experiment: traffic-mix sensitivity (massive IoT).

fn main() {
    sc_emu::obs::run_cli(
        "ext_iot",
        |rec| {
            rec.inc("emu.ext_iot.runs", 1);
            sc_emu::ext_iot::run()
        },
        sc_emu::ext_iot::render,
    );
}
