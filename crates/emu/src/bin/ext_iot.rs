//! Extension experiment: traffic-mix sensitivity (massive IoT).

fn main() {
    let r = sc_emu::ext_iot::run();
    println!("{}", sc_emu::ext_iot::render(&r));
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/ext_iot.json",
        serde_json::to_string_pretty(&r).expect("serialize"),
    )
    .expect("write json");
    eprintln!("wrote results/ext_iot.json");
}
